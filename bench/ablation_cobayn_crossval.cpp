// Ablation: COBAYN leave-one-out cross-validation (the evaluation
// protocol of the original COBAYN paper, Ashouri et al. TACO 2016).
//
// For every kernel of the synthetic corpus, a model trained on the
// other N-1 kernels predicts top-N flag configurations for it; the best
// of those is scored against the 128-point oracle and against -O3.
// Run for top-1 / top-2 / top-4 prediction budgets: the paper argues 4
// predicted configurations (CF1-CF4) are enough, which shows here as
// the top-4 geomean slowdown approaching 1.0.
#include <cstdio>

#include "cobayn/evaluation.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/task_pool.hpp"

int main() {
  using namespace socrates;

  std::printf("== Ablation: COBAYN leave-one-out cross-validation ==\n");
  std::printf("(geomean slowdown vs the 128-configuration oracle; 32-kernel corpus)\n\n");

  const auto model = platform::PerformanceModel::paper_platform();
  const auto corpus = cobayn::make_corpus(32, 2018);

  // The 32 LOO folds fan out over the task pool (SOCRATES_JOBS); the
  // summary is identical at any job count.
  TaskPool pool;
  cobayn::TrainOptions train;
  train.pool = &pool;

  TextTable table({"Prediction budget", "geomean slowdown", "-O3 geomean",
                   "folds beating -O3"});
  for (const std::size_t top_n : {1u, 2u, 4u, 8u}) {
    const auto cv = cobayn::cross_validate(corpus, model, top_n, train);
    table.add_row({"top-" + std::to_string(top_n),
                   format_double(cv.geomean_predicted_slowdown, 4),
                   format_double(cv.geomean_o3_slowdown, 4),
                   std::to_string(cv.wins_vs_o3) + "/" +
                       std::to_string(cv.folds.size())});
  }
  std::fputs(table.str().c_str(), stdout);

  // Worst folds at top-4 (where the model is least sure).
  const auto cv4 = cobayn::cross_validate(corpus, model, 4, train);
  double worst = 0.0;
  std::string worst_name;
  for (const auto& fold : cv4.folds) {
    if (fold.predicted_slowdown() > worst) {
      worst = fold.predicted_slowdown();
      worst_name = fold.kernel_name;
    }
  }
  std::printf("\nworst top-4 fold: %s at %.4f vs oracle\n", worst_name.c_str(), worst);
  std::printf(
      "Four predictions per kernel — the paper's CF1-CF4 budget — already sit\n"
      "within a percent of the oracle on unseen kernels.\n");
  return 0;
}
