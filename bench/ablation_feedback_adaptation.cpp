// Ablation: the value of mARGOt's online knowledge adaptation.
//
// mARGOt closes the MAPE-K loop with monitor feedback (Section II:
// "feedback information collected from monitors").  This bench runs the
// adaptive 2mm service under a 100 W power cap while a co-runner
// appears at t=60 s and adds 25 W of package power plus a 30% bandwidth
// steal for 120 s, and compares:
//   adaptive : AS-RTM with feedback corrections (default),
//   frozen   : identical AS-RTM whose corrections never learn
//              (feedback inertia ~ 0), i.e. design-time knowledge only.
// Reported per phase: average observed power, cap-violation rate and
// mean kernel time.  The adaptive run should trade speed for staying
// inside the cap during the episode, the frozen run should violate it.
//
// The run also emits BENCH_feedback_adaptation.json (support/bench_json)
// and prints PASS/FAIL on its built-in invariant — the adaptive run
// stays under the cap through the co-runner episode while the frozen
// run violates it — so the feedback_adaptation_bench_* CTest pair can
// gate the artifact against bench/baselines/feedback_adaptation.json.
#include <cstdio>
#include <vector>

#include "socrates/adaptive_app.hpp"
#include "socrates/pipeline.hpp"
#include "support/bench_json.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

struct PhaseStats {
  double avg_power = 0.0;
  double violation_rate = 0.0;
  double avg_exec_ms = 0.0;
};

PhaseStats stats_of(const std::vector<TraceSample>& trace, double lo, double hi,
                    double cap) {
  RunningStats power;
  RunningStats exec;
  double violations = 0.0;
  double n = 0.0;
  for (const auto& s : trace) {
    if (s.timestamp_s < lo || s.timestamp_s >= hi) continue;
    power.add(s.power_w);
    exec.add(s.exec_time_s * 1e3);
    n += 1.0;
    if (s.power_w > cap * 1.02) violations += 1.0;
  }
  return PhaseStats{power.mean(), 100.0 * violations / n, exec.mean()};
}

std::vector<TraceSample> run(bool with_feedback) {
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.02;
  Pipeline pipeline(model, opts);

  AdaptiveApplication app(pipeline.build("2mm"), model, opts.work_scale);
  app.asrtm().set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  app.asrtm().add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 1.0});
  if (!with_feedback) app.asrtm().set_feedback_inertia(1e-9);

  platform::DisturbanceSchedule sched;
  sched.add({60.0, 180.0, /*bw=*/0.3, /*compute=*/0.0, /*power=*/25.0});
  app.set_disturbances(std::move(sched));

  std::vector<TraceSample> trace;
  app.run_until(240.0, trace);
  return trace;
}

}  // namespace

int main() {
  std::printf("== Ablation: online knowledge adaptation under a co-runner ==\n");
  std::printf("(100 W cap; co-runner active 60-180 s: +25 W, 30%% bandwidth steal)\n\n");

  const auto adaptive = run(/*with_feedback=*/true);
  const auto frozen = run(/*with_feedback=*/false);

  // Per-run, per-phase stats.  Each phase skips its first 10 s: that is
  // the adaptation transient itself.
  struct Phase {
    const char* key;
    double lo, hi;
  };
  const Phase phases[] = {
      {"calm", 0.0, 60.0}, {"corunner", 60.0, 180.0}, {"recovered", 180.0, 240.0}};
  PhaseStats stats[2][3];
  const std::vector<TraceSample>* traces[2] = {&adaptive, &frozen};
  for (int r = 0; r < 2; ++r)
    for (int p = 0; p < 3; ++p)
      stats[r][p] = stats_of(*traces[r], phases[p].lo + 10.0, phases[p].hi, 100.0);

  TextTable table({"Run / phase", "avg power [W]", "cap violations", "avg exec [ms]"});
  const auto add = [&](const char* label, const PhaseStats& s) {
    table.add_row({label, format_double(s.avg_power, 1),
                   format_double(s.violation_rate, 1) + "%",
                   format_double(s.avg_exec_ms, 1)});
  };
  add("adaptive / calm", stats[0][0]);
  add("adaptive / co-runner", stats[0][1]);
  add("adaptive / recovered", stats[0][2]);
  table.add_separator();
  add("frozen   / calm", stats[1][0]);
  add("frozen   / co-runner", stats[1][1]);
  add("frozen   / recovered", stats[1][2]);

  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nWith feedback the AS-RTM re-learns the power surface and returns under\n"
      "the cap; the frozen knowledge keeps violating it for the whole episode.\n");

  // Built-in invariant of the seeded, deterministic simulation: the
  // adaptive run rides out the co-runner episode (almost) inside the
  // cap and the frozen run does not.
  const double gap_pct = stats[1][1].violation_rate - stats[0][1].violation_rate;
  const bool adapt_ok =
      stats[0][1].violation_rate <= 5.0 && stats[1][1].violation_rate >= 50.0;
  if (adapt_ok)
    std::printf("\nPASS: online adaptation holds the power cap through the episode.\n");
  else
    std::printf("\nFAIL: the adaptive run did not beat the frozen knowledge.\n");

  // Machine-readable artifact for the baseline gate
  // (bench/baselines/feedback_adaptation.json): bounds pin the
  // invariants — cap held while adapting, cap broken while frozen, both
  // runs identical before and after the episode — not absolute timings.
  JsonWriter w;
  w.begin_object();
  w.kv("power_cap_w", 100.0);
  const char* run_keys[2] = {"adaptive", "frozen"};
  for (int r = 0; r < 2; ++r) {
    w.key(run_keys[r]).begin_object();
    for (int p = 0; p < 3; ++p) {
      w.key(phases[p].key).begin_object();
      w.kv("avg_power_w", stats[r][p].avg_power);
      w.kv("violation_pct", stats[r][p].violation_rate);
      w.kv("avg_exec_ms", stats[r][p].avg_exec_ms);
      w.end_object();
    }
    w.end_object();
  }
  w.key("adaptation").begin_object();
  w.kv("violation_gap_pct", gap_pct);
  w.kv("adaptive_beats_frozen", adapt_ok ? 1 : 0);
  w.end_object();
  w.end_object();
  write_bench_json("feedback_adaptation", w.str());

  return adapt_ok ? 0 : 1;
}
