# Bench binaries land in build/bench/ with nothing else, so
# `for b in build/bench/*; do $b; done` runs exactly the benches.
function(socrates_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    socrates_core socrates_cobayn socrates_dse socrates_weaver
    socrates_margot socrates_kernels socrates_features socrates_bayes
    socrates_ir socrates_platform socrates_support
    benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

socrates_bench(table1_weaving_metrics)
socrates_bench(fig3_pareto_distribution)
socrates_bench(fig4_power_budget_sweep)
socrates_bench(fig5_runtime_trace)
socrates_bench(ablation_cobayn_vs_random)
socrates_bench(ablation_cobayn_crossval)
socrates_bench(ablation_input_aware)
socrates_bench(ablation_dse_strategies)
socrates_bench(ablation_feedback_adaptation)
socrates_bench(ablation_margot_overhead)
socrates_bench(ablation_fault_tolerance)

# The incremental-decision pin: runs only the synthetic-KB benchmarks
# (the filter skips the fixtures that profile the real 2mm space) and
# the bench's built-in steady-vs-cold assertion, which prints PASS/FAIL
# and exits non-zero on a regression of the O(1) decision path.
add_test(NAME decision_bench_smoke
  COMMAND ablation_margot_overhead
          --benchmark_filter=AsrtmDecide
          --benchmark_min_time=0.05)
set_tests_properties(decision_bench_smoke PROPERTIES
  LABELS "bench;smoke"
  PASS_REGULAR_EXPRESSION "PASS: steady-state decision"
  FAIL_REGULAR_EXPRESSION "FAIL:")
