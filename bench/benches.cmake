# Bench binaries land in build/bench/ with nothing else, so
# `for b in build/bench/*; do $b; done` runs exactly the benches.
function(socrates_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    socrates_core socrates_cobayn socrates_dse socrates_weaver
    socrates_server socrates_margot socrates_kernels socrates_features
    socrates_bayes socrates_ir socrates_platform socrates_support
    benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

socrates_bench(table1_weaving_metrics)
socrates_bench(fig3_pareto_distribution)
socrates_bench(fig4_power_budget_sweep)
socrates_bench(fig5_runtime_trace)
socrates_bench(ablation_cobayn_vs_random)
socrates_bench(ablation_cobayn_crossval)
socrates_bench(ablation_input_aware)
socrates_bench(ablation_dse_strategies)
socrates_bench(ablation_feedback_adaptation)
socrates_bench(ablation_margot_overhead)
socrates_bench(ablation_fault_tolerance)
socrates_bench(bench_server)
socrates_bench(bench_decision_sweep)
socrates_bench(bench_warm_start)

# Compares a BENCH_*.json artifact against a committed baseline
# (bench/baselines/*.json); paired with each smoke run via fixtures.
add_executable(bench_baseline_check ${CMAKE_SOURCE_DIR}/bench/bench_baseline_check.cpp)
target_link_libraries(bench_baseline_check PRIVATE socrates_support)
set_target_properties(bench_baseline_check PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# The incremental-decision pin: runs only the synthetic-KB benchmarks
# (the filter skips the fixtures that profile the real 2mm space) and
# the bench's built-in steady-vs-cold assertion, which prints PASS/FAIL
# and exits non-zero on a regression of the O(1) decision path.  The
# run also emits BENCH_margot_overhead.json, which the *_baseline test
# gates against the committed bounds.
add_test(NAME decision_bench_smoke
  COMMAND ablation_margot_overhead
          --benchmark_filter=AsrtmDecide
          --benchmark_min_time=0.05)
set_tests_properties(decision_bench_smoke PROPERTIES
  LABELS "bench;smoke"
  PASS_REGULAR_EXPRESSION "PASS: steady-state decision"
  FAIL_REGULAR_EXPRESSION "FAIL:"
  ENVIRONMENT "SOCRATES_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench"
  FIXTURES_SETUP bench_margot_overhead_json)
add_test(NAME decision_bench_baseline
  COMMAND bench_baseline_check
          ${CMAKE_SOURCE_DIR}/bench/baselines/margot_overhead.json
          ${CMAKE_BINARY_DIR}/bench/BENCH_margot_overhead.json)
set_tests_properties(decision_bench_baseline PROPERTIES
  LABELS "bench;smoke"
  FIXTURES_REQUIRED bench_margot_overhead_json)

# The DSE-strategy pin (quick mode for CTest): two-stage seeded+genetic
# exploration on a two-kernel subset at the default (tiny) budget, with
# the bench's built-in assertions — >= 10x fewer evaluations than the
# full factorial at an undiminished Pareto hypervolume, pruned clone set
# below the 16-clone cross product — and the BENCH_dse.json artifact
# gated by the committed bounds.
add_test(NAME dse_bench_smoke
  COMMAND ablation_dse_strategies --quick)
set_tests_properties(dse_bench_smoke PROPERTIES
  LABELS "bench;smoke"
  PASS_REGULAR_EXPRESSION "PASS: two-stage exploration"
  FAIL_REGULAR_EXPRESSION "FAIL:"
  ENVIRONMENT "SOCRATES_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench"
  FIXTURES_SETUP bench_dse_json
  TIMEOUT 600)
add_test(NAME dse_bench_baseline
  COMMAND bench_baseline_check
          ${CMAKE_SOURCE_DIR}/bench/baselines/dse.json
          ${CMAKE_BINARY_DIR}/bench/BENCH_dse.json)
set_tests_properties(dse_bench_baseline PROPERTIES
  LABELS "bench;smoke"
  FIXTURES_REQUIRED bench_dse_json)

# The fault-tolerance pin: the full (deterministic, seeded) hostile-
# machine ablation with the bench's built-in assertions — the hardened
# stack strictly beats raw with zero surviving corrupted observations,
# and kill-and-resume replays to the exact pre-crash state — and the
# BENCH_fault_tolerance.json artifact gated by the committed bounds.
add_test(NAME fault_tolerance_bench_smoke
  COMMAND ablation_fault_tolerance)
set_tests_properties(fault_tolerance_bench_smoke PROPERTIES
  LABELS "bench;smoke"
  PASS_REGULAR_EXPRESSION "PASS: the hardened stack"
  FAIL_REGULAR_EXPRESSION "FAIL:"
  ENVIRONMENT "SOCRATES_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench"
  FIXTURES_SETUP bench_fault_tolerance_json
  TIMEOUT 600)
add_test(NAME fault_tolerance_bench_baseline
  COMMAND bench_baseline_check
          ${CMAKE_SOURCE_DIR}/bench/baselines/fault_tolerance.json
          ${CMAKE_BINARY_DIR}/bench/BENCH_fault_tolerance.json)
set_tests_properties(fault_tolerance_bench_baseline PROPERTIES
  LABELS "bench;smoke"
  FIXTURES_REQUIRED bench_fault_tolerance_json)

# The batched-decision pin (quick mode for CTest): 1024 tenants x 256
# operating points, per-call decide() vs decide_batch() in steady
# state, with the bench's built-in assertions — >= 5x batch throughput,
# zero steady-state allocations on either path, identical results, a
# fully lock-free sweep — and the BENCH_decision_sweep.json artifact
# gated by the committed bounds.
add_test(NAME decision_sweep_bench_smoke
  COMMAND bench_decision_sweep --quick)
set_tests_properties(decision_sweep_bench_smoke PROPERTIES
  LABELS "bench;smoke"
  PASS_REGULAR_EXPRESSION "PASS: batched sweep"
  FAIL_REGULAR_EXPRESSION "FAIL:"
  ENVIRONMENT "SOCRATES_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench"
  FIXTURES_SETUP bench_decision_sweep_json
  TIMEOUT 600)
add_test(NAME decision_sweep_bench_baseline
  COMMAND bench_baseline_check
          ${CMAKE_SOURCE_DIR}/bench/baselines/decision_sweep.json
          ${CMAKE_BINARY_DIR}/bench/BENCH_decision_sweep.json)
set_tests_properties(decision_sweep_bench_baseline PROPERTIES
  LABELS "bench;smoke"
  FIXTURES_REQUIRED bench_decision_sweep_json)

# The online-adaptation pin: the seeded co-runner episode with the
# bench's built-in invariant — the adaptive AS-RTM holds the power cap
# through the episode while frozen design-time knowledge violates it —
# and the BENCH_feedback_adaptation.json artifact gated by the
# committed bounds.
add_test(NAME feedback_adaptation_bench_smoke
  COMMAND ablation_feedback_adaptation)
set_tests_properties(feedback_adaptation_bench_smoke PROPERTIES
  LABELS "bench;smoke"
  PASS_REGULAR_EXPRESSION "PASS: online adaptation"
  FAIL_REGULAR_EXPRESSION "FAIL:"
  ENVIRONMENT "SOCRATES_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench"
  FIXTURES_SETUP bench_feedback_adaptation_json
  TIMEOUT 600)
add_test(NAME feedback_adaptation_bench_baseline
  COMMAND bench_baseline_check
          ${CMAKE_SOURCE_DIR}/bench/baselines/feedback_adaptation.json
          ${CMAKE_BINARY_DIR}/bench/BENCH_feedback_adaptation.json)
set_tests_properties(feedback_adaptation_bench_baseline PROPERTIES
  LABELS "bench;smoke"
  FIXTURES_REQUIRED bench_feedback_adaptation_json)

# The cross-tenant warm-start pin (quick mode for CTest): a converged
# donor's pooled knowledge must let a similar tenant reach the true
# optimum with >= 3x fewer feedback rounds at a <= 5% rank gap, with
# sharing-off runs bit-identical to the pre-pool behaviour, and the
# warm-seeded DSE at least matching the cold search at an equal budget
# — the BENCH_warm_start.json artifact gated by the committed bounds.
add_test(NAME warm_start_bench_smoke
  COMMAND bench_warm_start --quick)
set_tests_properties(warm_start_bench_smoke PROPERTIES
  LABELS "bench;smoke"
  PASS_REGULAR_EXPRESSION "PASS: warm-started tenants"
  FAIL_REGULAR_EXPRESSION "FAIL:"
  ENVIRONMENT "SOCRATES_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench"
  FIXTURES_SETUP bench_warm_start_json
  TIMEOUT 600)
add_test(NAME warm_start_bench_baseline
  COMMAND bench_baseline_check
          ${CMAKE_SOURCE_DIR}/bench/baselines/warm_start.json
          ${CMAKE_BINARY_DIR}/bench/BENCH_warm_start.json)
set_tests_properties(warm_start_bench_baseline PROPERTIES
  LABELS "bench;smoke"
  FIXTURES_REQUIRED bench_warm_start_json)

# The multi-tenant server pin (quick mode for CTest): clean / overload /
# chaos regimes, kill-and-resume exactness, BENCH_server.json artifact
# gated by machine-stable bounds.
add_test(NAME server_bench_smoke
  COMMAND bench_server --quick)
set_tests_properties(server_bench_smoke PROPERTIES
  LABELS "bench;smoke"
  FAIL_REGULAR_EXPRESSION "FAIL:"
  ENVIRONMENT "SOCRATES_BENCH_JSON_DIR=${CMAKE_BINARY_DIR}/bench"
  FIXTURES_SETUP bench_server_json
  TIMEOUT 600)
add_test(NAME server_bench_baseline
  COMMAND bench_baseline_check
          ${CMAKE_SOURCE_DIR}/bench/baselines/server.json
          ${CMAKE_BINARY_DIR}/bench/BENCH_server.json)
set_tests_properties(server_bench_baseline PROPERTIES
  LABELS "bench;smoke"
  FIXTURES_REQUIRED bench_server_json)
