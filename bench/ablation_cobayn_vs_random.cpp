// Ablation: does COBAYN's compiler-space pruning earn its keep?
//
// The paper reduces the 128-point flag space to 4 COBAYN-predicted
// configurations (CF1-CF4).  This bench quantifies the quality of that
// reduction on the 12 evaluation kernels: for each kernel it compares
// the best modelled execution time reachable with
//   - the 4 configurations predicted by our trained COBAYN model,
//   - 4 uniformly random configurations (averaged over 50 draws),
//   - plain -O3, and
//   - the true optimum of the full 128-point space (oracle),
// all at 16 threads / close binding (the labelling configuration).
// Values are slowdowns relative to the oracle (1.00 = optimal).
#include <algorithm>
#include <cstdio>

#include "cobayn/cobayn.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "socrates/pipeline.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace socrates;

  std::printf("== Ablation: COBAYN-predicted flags vs random picks vs -O3 ==\n");
  std::printf("(best-of-4 modelled exec time, as slowdown vs the 128-point oracle)\n\n");

  const auto model = platform::PerformanceModel::paper_platform();
  // Corpus evaluation + training run through the pipeline: the 48
  // kernels are labelled in parallel and the trained model is a cached
  // artifact shared with every other pipeline binary.
  Pipeline pipeline(model, ToolchainOptions{.corpus_size = 48, .seed = 2018});
  const auto& cobayn_model = pipeline.cobayn_model();
  const auto space = platform::cobayn_search_space();

  platform::Configuration rc;
  rc.threads = 16;
  rc.binding = platform::BindingPolicy::kClose;

  TextTable table({"Benchmark", "COBAYN best-of-4", "Random best-of-4", "-O3", "Oracle [s]"});
  std::vector<double> cobayn_slow, random_slow, o3_slow;

  Rng rng(7);
  for (const auto& bench : kernels::all_benchmarks()) {
    const auto time_of = [&](const platform::FlagConfig& f) {
      rc.flags = f;
      return model.evaluate(bench.model, rc).exec_time_s;
    };

    double oracle = 1e100;
    for (const auto& f : space) oracle = std::min(oracle, time_of(f));

    const auto fv = cobayn::kernel_features_of_source(kernels::benchmark_source(bench.name));
    double best_pred = 1e100;
    for (const auto& p : cobayn_model.predict(fv, 4))
      best_pred = std::min(best_pred, time_of(p.config));

    RunningStats random_best;
    for (int round = 0; round < 50; ++round) {
      double best = 1e100;
      for (int k = 0; k < 4; ++k) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(space.size()) - 1));
        best = std::min(best, time_of(space[pick]));
      }
      random_best.add(best);
    }

    const double o3 = time_of(platform::FlagConfig(platform::OptLevel::kO3));

    cobayn_slow.push_back(best_pred / oracle);
    random_slow.push_back(random_best.mean() / oracle);
    o3_slow.push_back(o3 / oracle);
    table.add_row({bench.name, format_double(best_pred / oracle, 3),
                   format_double(random_best.mean() / oracle, 3),
                   format_double(o3 / oracle, 3), format_double(oracle, 2)});
  }

  table.add_separator();
  table.add_row({"Geomean", format_double(geometric_mean_of(cobayn_slow), 3),
                 format_double(geometric_mean_of(random_slow), 3),
                 format_double(geometric_mean_of(o3_slow), 3), "-"});
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nCOBAYN's 4 predictions should sit closer to the oracle than both\n"
      "4 random draws and the -O3 one-fits-all default.\n");
  return 0;
}
