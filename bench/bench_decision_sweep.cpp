// Bench: batched decision sweeps against the per-call decide() path,
// emitting BENCH_decision_sweep.json (support/bench_json.hpp).
//
// Geometry is pinned to the tentpole target: 1024 tenants, each with a
// 256-point knowledge base.  After a warm sweep publishes every
// tenant's decision, the steady state is measured two ways:
//
//   percall  srv.decide(handle) per tenant — takes the tenant lock,
//            serves the cached decision, republishes.
//   batch    srv.decide_batch(handles, out) — one sweep over the
//            published (best, stamp) pairs; with no concurrent
//            mutations every tenant is served lock-free.
//
// The pinned assertions behind the `decision_sweep_bench_smoke` CTest
// entry: batch throughput >= 5x per-call throughput, zero allocations
// in the steady-state loops of either path, every batch result equal
// to the per-call result for the same tenant, and a fully lock-free
// steady-state sweep.  --quick only trims repetitions; the geometry is
// the same so the gate proves the target scale.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "margot/asrtm.hpp"
#include "server/server.hpp"
#include "support/bench_json.hpp"

// Thread-local allocation counter backing the allocation-free
// assertion on both steady-state decision paths.  Thread-local rather
// than process-wide: the server's shard workers and watchdog allocate
// on their own (idle) schedule, and the pin is about the decide paths
// running on the bench thread.
thread_local std::uint64_t g_allocations = 0;

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace socrates;

constexpr std::size_t kTenants = 1024;
constexpr std::size_t kPoints = 256;
constexpr double kMinRatio = 5.0;

margot::KnowledgeBase sweep_kb() {
  margot::KnowledgeBase kb({"knob"}, {"throughput", "power"});
  for (std::size_t i = 0; i < kPoints; ++i) {
    margot::OperatingPoint op;
    op.knobs = {static_cast<int>(i)};
    const double x = static_cast<double>(i);
    op.metrics = {{1.0 + 0.01 * x, 0.02}, {50.0 + 0.25 * x, 0.5}};
    kb.add(std::move(op));
  }
  return kb;
}

void configure_tenant(margot::Asrtm& asrtm) {
  // The 90 W cap keeps 161 of the 256 points feasible, so the sweep
  // exercises the constraint pass, not just the rank scan.
  asrtm.set_rank(margot::Rank::maximize_throughput(0));
  asrtm.add_constraint({1, margot::ComparisonOp::kLessEqual, 90.0, 0, 1.0});
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct PathResult {
  std::uint64_t decisions = 0;
  double seconds = 0.0;
  double per_s = 0.0;
  std::uint64_t steady_allocs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t repetitions = 200;
  int trials = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      repetitions = 50;
      trials = 3;
    } else {
      std::fprintf(stderr, "unknown argument %s (only --quick)\n", argv[i]);
      return 2;
    }
  }

  server::ServerOptions options = server::ServerOptions::from_env();
  options.max_tenants = kTenants;
  options.rate_limit_per_s = 0.0;
  server::Server srv(options);

  std::vector<server::Server::TenantHandle> handles;
  handles.reserve(kTenants);
  for (std::size_t t = 0; t < kTenants; ++t) {
    server::Server::TenantHandle handle = 0;
    if (!srv.register_tenant("tenant" + std::to_string(t), sweep_kb(),
                             configure_tenant, &handle)) {
      std::fprintf(stderr, "tenant registration refused at %zu\n", t);
      return 2;
    }
    handles.push_back(handle);
  }

  // Warm sweep: publishes every tenant's decision, sizes the scratch
  // buffers, and touches the function-local static metric counters on
  // both paths so the measured loops are pure steady state.  Two
  // per-call rounds: the first decide per tenant is the cold one, and
  // only the second (cached) round registers the cached-decision
  // counter with the metrics registry.
  std::vector<std::size_t> expected(kTenants, 0);
  std::vector<std::size_t> batch_best(kTenants, 0);
  for (int round = 0; round < 2; ++round)
    for (std::size_t t = 0; t < kTenants; ++t)
      expected[t] = srv.decide(handles[t]);
  (void)srv.decide_batch(handles, batch_best);

  // Best-of-trials damps scheduler noise without needing a quiet host;
  // allocations accumulate over *all* trials so a single stray
  // allocation in any steady-state loop fails the pin.
  PathResult percall;
  PathResult batch;
  std::uint64_t lockfree = 0;
  for (int trial = 0; trial < trials; ++trial) {
    {
      const std::uint64_t a0 = g_allocations;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < repetitions; ++r)
        for (std::size_t t = 0; t < kTenants; ++t)
          expected[t] = srv.decide(handles[t]);
      const double s = seconds_since(t0);
      percall.steady_allocs +=
          g_allocations - a0;
      const std::uint64_t n = repetitions * kTenants;
      if (static_cast<double>(n) / s > percall.per_s) {
        percall.decisions = n;
        percall.seconds = s;
        percall.per_s = static_cast<double>(n) / s;
      }
    }
    {
      lockfree = 0;
      const std::uint64_t a0 = g_allocations;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < repetitions; ++r)
        lockfree += srv.decide_batch(handles, batch_best);
      const double s = seconds_since(t0);
      batch.steady_allocs += g_allocations - a0;
      const std::uint64_t n = repetitions * kTenants;
      if (static_cast<double>(n) / s > batch.per_s) {
        batch.decisions = n;
        batch.seconds = s;
        batch.per_s = static_cast<double>(n) / s;
      }
    }
  }

  // Batch results must equal the per-call results for the same tenants
  // (nothing mutated between the loops), and with no writers the whole
  // last sweep set must have been served lock-free.
  bool matches = true;
  for (std::size_t t = 0; t < kTenants; ++t)
    matches = matches && batch_best[t] == expected[t];
  const double lockfree_fraction =
      static_cast<double>(lockfree) /
      static_cast<double>(repetitions * kTenants);

  // A whole-shard sweep serves every tenant of the shard in slot order.
  std::vector<server::Server::TenantHandle> shard_handles(kTenants);
  std::vector<std::size_t> shard_best(kTenants);
  std::size_t shard_served = 0;
  for (std::size_t s = 0; s < options.shards; ++s)
    shard_served += srv.decide_shard(s, shard_handles, shard_best);

  const double ratio = batch.per_s / percall.per_s;
  const std::uint64_t steady_allocs = percall.steady_allocs + batch.steady_allocs;

  JsonWriter w;
  w.begin_object();
  w.key("config").begin_object();
  w.kv("tenants", static_cast<std::uint64_t>(kTenants));
  w.kv("operating_points", static_cast<std::uint64_t>(kPoints));
  w.kv("repetitions", static_cast<std::uint64_t>(repetitions));
  w.end_object();
  w.key("percall").begin_object();
  w.kv("decisions", percall.decisions);
  w.kv("seconds", percall.seconds);
  w.kv("per_s", percall.per_s);
  w.kv("steady_allocs", percall.steady_allocs);
  w.end_object();
  w.key("batch").begin_object();
  w.kv("decisions", batch.decisions);
  w.kv("seconds", batch.seconds);
  w.kv("per_s", batch.per_s);
  w.kv("steady_allocs", batch.steady_allocs);
  w.kv("lockfree_fraction", lockfree_fraction);
  w.end_object();
  w.kv("ratio", ratio);
  w.kv("matches", matches ? 1 : 0);
  w.kv("shard_sweep_served", static_cast<std::uint64_t>(shard_served));
  w.end_object();
  write_bench_json("decision_sweep", w.str());

  std::printf(
      "decision sweep @%zu tenants x %zu OPs: percall=%.2fM/s batch=%.2fM/s "
      "ratio=%.1fx lockfree=%.3f steady_allocs=%llu matches=%d shard=%zu\n",
      kTenants, kPoints, percall.per_s / 1e6, batch.per_s / 1e6, ratio,
      lockfree_fraction, static_cast<unsigned long long>(steady_allocs),
      matches ? 1 : 0, shard_served);

  const bool ok = ratio >= kMinRatio && steady_allocs == 0 && matches &&
                  lockfree_fraction >= 1.0 && shard_served == kTenants;
  if (ok)
    std::printf(
        "PASS: batched sweep is lock-free, allocation-free and >=%.0fx the "
        "per-call decide path\n",
        kMinRatio);
  else
    std::printf(
        "FAIL: batched sweep pin violated (need ratio >= %.0fx, 0 steady "
        "allocations, identical results, lock-free sweep)\n",
        kMinRatio);
  return ok ? 0 : 1;
}
