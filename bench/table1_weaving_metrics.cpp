// Reproduces Table I of the paper:
// "METRICS COLLECTED FROM THE APPLICATION OF LARA STRATEGIES".
//
// Every benchmark source is pushed through the Multiversioning and
// Autotuner strategies with the paper's version space (8 compiler
// configurations x {close, spread}); the weaver meters the attributes
// it checks (Att), the actions it performs (Act) and the logical LOC of
// the original (O-LOC) and weaved (W-LOC) code.  Bloat = D-LOC divided
// by the logical LOC of the complete LARA strategy.
//
// Absolute values differ from the paper (our embedded sources are the
// kernels without the full Polybench harness, and our LARA strategies
// are a reimplementation), but the relationships the paper highlights
// hold: W-LOC is roughly an order of magnitude above O-LOC, and Att/Act
// track each benchmark's kernel structure.  See EXPERIMENTS.md.
#include <cstdio>
#include <string>
#include <vector>

#include "kernels/sources.hpp"
#include "socrates/pipeline.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "weaver/aspects.hpp"
#include "weaver/report.hpp"

int main() {
  using namespace socrates;

  std::printf("== Table I: metrics collected from the application of LARA strategies ==\n");
  std::printf("(version space: Os,O1,O2,O3,CF1-CF4 x {close,spread} = 16 versions/kernel)\n\n");

  TextTable table({"Benchmark", "Att", "Act", "O-LOC", "W-LOC", "D-LOC", "Bloat"});

  double att = 0, act = 0, oloc = 0, wloc = 0, dloc = 0, bloat = 0;
  const auto& names = kernels::benchmark_names();

  // Weave every benchmark through the pipeline's Weave stage; the
  // benchmarks are independent, so they fan out over the task pool and
  // the table is assembled serially in registry order.
  const auto model = platform::PerformanceModel::paper_platform();
  Pipeline pipeline(model);
  std::vector<weaver::WovenBenchmark> woven(names.size());
  pipeline.pool().parallel_for(names.size(), [&](std::size_t i) {
    woven[i] = weaver::weave_benchmark_paper_space(names[i],
                                                   kernels::benchmark_source(names[i]));
  });

  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& name = names[i];
    const auto& r = woven[i].report;
    table.add_row({name, std::to_string(r.attributes), std::to_string(r.actions),
                   std::to_string(r.original_loc), std::to_string(r.weaved_loc),
                   std::to_string(r.delta_loc()), format_double(r.bloat(), 2)});
    att += static_cast<double>(r.attributes);
    act += static_cast<double>(r.actions);
    oloc += static_cast<double>(r.original_loc);
    wloc += static_cast<double>(r.weaved_loc);
    dloc += static_cast<double>(r.delta_loc());
    bloat += r.bloat();
  }
  const double n = static_cast<double>(names.size());
  table.add_separator();
  table.add_row({"Average", format_double(att / n, 0), format_double(act / n, 0),
                 format_double(oloc / n, 0), format_double(wloc / n, 0),
                 format_double(dloc / n, 0), format_double(bloat / n, 2)});

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nComplete LARA strategy: %zu logical lines of aspect code"
              " (paper: 265)\n",
              weaver::strategy_logical_loc());
  return 0;
}
