// Reproduces Figure 3 of the paper:
// "Power/Throughput distribution over the Pareto curve."
//
// For each of the 12 Polybench benchmarks a full-factorial DSE over the
// paper's autotuning space (8 compiler configs x 32 thread counts x 2
// binding policies = 512 points) is profiled on the platform model; the
// Pareto-optimal points (max throughput, min power) are kept, both
// metrics are normalized by their median over the front, and the
// boxplot statistics the figure draws are printed (whisker-low, Q1,
// median, Q3, whisker-high).  The paper's reading — the distributions
// are wide and differ per benchmark, so no one-fits-all configuration
// exists — should be visible directly in the rows.
//
// The campaign runs through the staged pipeline: the 12 x 512-point
// sweeps fan out over the task pool (SOCRATES_JOBS) and each profile is
// a cached artifact, so the second pass over the same benchmarks below
// is served from the cache instead of reprofiled.
#include <chrono>
#include <cstdio>
#include <vector>

#include "dse/dse.hpp"
#include "kernels/registry.hpp"
#include "socrates/pipeline.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

std::vector<std::string> boxplot_row(const std::string& label,
                                     const socrates::BoxplotSummary& s) {
  using socrates::format_double;
  return {label,
          format_double(s.whisker_low, 2),
          format_double(s.q1, 2),
          format_double(s.median, 2),
          format_double(s.q3, 2),
          format_double(s.whisker_high, 2),
          std::to_string(s.n)};
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace socrates;

  std::printf("== Figure 3: power/throughput distribution over the Pareto curve ==\n");
  std::printf("(normalized by the per-benchmark median of the Pareto-optimal points)\n\n");

  const auto model = platform::PerformanceModel::paper_platform();
  const auto space = dse::DesignSpace::paper_space(model.topology());
  Pipeline pipeline(model);

  TextTable table({"Benchmark / metric", "lo", "Q1", "median", "Q3", "hi", "n"});

  const auto cold_start = std::chrono::steady_clock::now();
  for (const auto& bench : kernels::all_benchmarks()) {
    const auto points =
        pipeline.profile_space(bench.name, space, /*repetitions=*/5, /*seed=*/2018);
    const auto front = dse::pareto_filter(points);

    std::vector<double> power;
    std::vector<double> throughput;
    power.reserve(front.size());
    throughput.reserve(front.size());
    for (const std::size_t i : front) {
      power.push_back(points[i].power_mean_w);
      throughput.push_back(points[i].throughput());
    }

    const auto norm_power = normalized_by(power, quantile(power, 0.5));
    const auto norm_thr = normalized_by(throughput, quantile(throughput, 0.5));
    table.add_row(boxplot_row(bench.name + " power", boxplot_summary(norm_power)));
    table.add_row(boxplot_row(bench.name + " thr", boxplot_summary(norm_thr)));
  }
  const double cold_s = seconds_since(cold_start);

  std::fputs(table.str().c_str(), stdout);

  // Who actually sits on the fronts: per benchmark, the mix of compiler
  // configurations among the Pareto-optimal points.  A one-fits-all
  // configuration would dominate every row; instead the mix shifts per
  // benchmark.  Same spaces, same seeds: every profile below is a warm
  // cache hit.
  std::printf("\nPareto-front composition (points per compiler configuration):\n");
  std::printf("%-12s", "benchmark");
  for (const auto& c : space.configs) std::printf(" %5s", c.name.c_str());
  std::printf("  close/spread\n");
  const auto warm_start = std::chrono::steady_clock::now();
  for (const auto& bench : kernels::all_benchmarks()) {
    const auto points = pipeline.profile_space(bench.name, space, 5, 2018);
    const auto front = dse::pareto_filter(points);
    std::vector<std::size_t> per_config(space.configs.size(), 0);
    std::size_t close = 0;
    for (const std::size_t i : front) {
      ++per_config[points[i].config_index];
      if (points[i].configuration.binding == platform::BindingPolicy::kClose) ++close;
    }
    std::printf("%-12s", bench.name.c_str());
    for (const std::size_t n : per_config) std::printf(" %5zu", n);
    std::printf("  %zu/%zu\n", close, front.size() - close);
  }
  const double warm_s = seconds_since(warm_start);

  const auto stats = pipeline.cache().stats();
  std::printf(
      "\nCampaign: %zu jobs; cold profiling pass %.3f s, warm (cached) pass %.3f s\n"
      "Artifact cache: %zu memory hits, %zu disk hits, %zu misses, %zu stores\n",
      pipeline.pool().jobs(), cold_s, warm_s, stats.memory_hits, stats.disk_hits,
      stats.misses, stats.stores);

  std::printf(
      "\nWide, benchmark-dependent distributions confirm the paper's point:\n"
      "there is no one-fits-all configuration across the Pareto fronts.\n");
  return 0;
}
