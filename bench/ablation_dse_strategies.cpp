// Ablation: DSE-strategy agnosticism (Section III: "our approach is
// agnostic with respect to the used DSE strategy").
//
// The claim is quantified as AS-RTM decision *regret*: build the
// knowledge base with different DSE strategies / budgets, then sweep
// the Figure 4 requirement (min exec time s.t. power <= budget,
// 45..140 W) and compare the exec time of each chosen configuration —
// re-evaluated on the noise-free platform model — against the choice
// made from the full-factorial knowledge.  regret = chosen / full - 1,
// averaged over the sweep.  Profiling cost is the number of profiled
// design points.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "dse/sampling.hpp"
#include "kernels/registry.hpp"
#include "margot/asrtm.hpp"
#include "margot/context.hpp"
#include "socrates/pipeline.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

/// True (model-evaluated, noise-free) exec time of the configuration an
/// AS-RTM on `points` picks for each budget.
std::vector<double> sweep_choices(const platform::PerformanceModel& model,
                                  const platform::KernelModelParams& kernel,
                                  const dse::DesignSpace& space,
                                  const std::vector<dse::ProfiledPoint>& points) {
  margot::Asrtm asrtm(dse::to_knowledge_base(points));
  asrtm.set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  const auto handle = asrtm.add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, 0.0, 0, 0.0});

  std::vector<double> times;
  for (double budget = 45.0; budget <= 140.0 + 1e-9; budget += 5.0) {
    asrtm.set_constraint_goal(handle, budget);
    const auto& op = asrtm.best_operating_point();
    const auto config = dse::decode_knobs(space, op.knobs);
    times.push_back(model.evaluate(kernel, config).exec_time_s);
  }
  return times;
}

}  // namespace

int main() {
  std::printf("== Ablation: DSE strategy vs AS-RTM decision quality ==\n");
  std::printf("(regret of the Figure 4 budget sweep vs full-factorial knowledge)\n\n");

  const auto model = platform::PerformanceModel::paper_platform();
  const auto space = dse::DesignSpace::paper_space(model.topology());
  Pipeline pipeline(model);
  TaskPool& pool = pipeline.pool();

  TextTable table({"Benchmark", "points", "full", "strat-6", "rand-25%", "rand-10%"});
  std::vector<double> strat_regret, r25_regret, r10_regret;

  for (const char* name : {"2mm", "atax", "jacobi-2d", "nussinov", "gemver", "syrk"}) {
    const auto& kernel = kernels::find_benchmark(name).model;

    // Full factorial through the pipeline (cached artifact); the
    // sampling strategies share its task pool.
    const auto full = pipeline.profile_space(name, space, 3, 2018);
    const auto strat = dse::stratified_dse(model, kernel, space, 6, 3, 2018, 1.0, &pool);
    const auto rand25 =
        dse::random_subset_dse(model, kernel, space, 0.25, 3, 2018, 1.0, &pool);
    const auto rand10 =
        dse::random_subset_dse(model, kernel, space, 0.10, 3, 2018, 1.0, &pool);

    const auto t_full = sweep_choices(model, kernel, space, full);
    const auto regret_of = [&](const std::vector<dse::ProfiledPoint>& pts) {
      const auto t = sweep_choices(model, kernel, space, pts);
      double acc = 0.0;
      for (std::size_t i = 0; i < t.size(); ++i) acc += t[i] / t_full[i];
      return acc / static_cast<double>(t.size()) - 1.0;
    };

    const double rs = regret_of(strat);
    const double r25 = regret_of(rand25);
    const double r10 = regret_of(rand10);
    strat_regret.push_back(rs);
    r25_regret.push_back(r25);
    r10_regret.push_back(r10);

    table.add_row({name,
                   std::to_string(full.size()) + "/" + std::to_string(strat.size()) +
                       "/" + std::to_string(rand25.size()) + "/" +
                       std::to_string(rand10.size()),
                   "+0.0%", format_double(100.0 * rs, 1) + "%",
                   format_double(100.0 * r25, 1) + "%",
                   format_double(100.0 * r10, 1) + "%"});
  }

  table.add_separator();
  table.add_row({"Mean", "-", "+0.0%",
                 format_double(100.0 * mean_of(strat_regret), 1) + "%",
                 format_double(100.0 * mean_of(r25_regret), 1) + "%",
                 format_double(100.0 * mean_of(r10_regret), 1) + "%"});
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nA stratified ladder of ~96 points loses only a few percent against the\n"
      "512-point full factorial — the DSE strategy is indeed swappable.\n");
  return 0;
}
