// Ablation: pluggable DSE strategies (Section III: "our approach is
// agnostic with respect to the used DSE strategy").
//
// Three questions, answered per Polybench kernel against the 512-point
// full factorial profiled through the pipeline:
//
//   1. Budget: how many design points does each Explorer evaluate?
//   2. Front quality: the 2D hypervolume (throughput up, power down) at
//      a shared reference point.  Raw ratio = explored front vs the
//      512-point measured front (informational: a subset's front is
//      never larger).  The gated metric compares what each strategy
//      DEPLOYS — the front pruned to the same K representatives both
//      paths share — at the points' TRUE (noise-free) model metrics.
//      Judging on measured values would reward winner's-curse overfit:
//      the full factorial's measured extremes are the luckiest of 512
//      noisy draws, an advantage that evaporates on redeployment.  On
//      true quality the cheap search must lose nothing (ratio >= 1.0).
//   3. Decision quality: AS-RTM regret of the Figure 4 budget sweep
//      (min exec time s.t. power <= 45..140 W) against full-factorial
//      knowledge, and the clone set after representative pruning.
//
// Everything is seeded and model-driven, so every number below is
// machine-stable; the run emits BENCH_dse.json and the committed
// baseline (bench/baselines/dse.json) gates the two-stage explorer:
// >= 10x fewer evaluations than full factorial, pruned hypervolume
// ratio >= 1.0, and a pruned clone set strictly below the 16-clone
// cross product.  `--quick` runs a two-kernel subset (the dse-bench-smoke
// CTest entry).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "dse/representative.hpp"
#include "dse/two_stage.hpp"
#include "kernels/registry.hpp"
#include "margot/asrtm.hpp"
#include "margot/context.hpp"
#include "socrates/pipeline.hpp"
#include "support/bench_json.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

/// True (model-evaluated, noise-free) exec time of the configuration an
/// AS-RTM on `kb` picks for each power budget of the Figure 4 sweep.
std::vector<double> sweep_choices(const platform::PerformanceModel& model,
                                  const platform::KernelModelParams& kernel,
                                  const dse::DesignSpace& space,
                                  margot::KnowledgeBase kb) {
  margot::Asrtm asrtm(std::move(kb));
  asrtm.set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  const auto handle = asrtm.add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, 0.0, 0, 0.0});

  std::vector<double> times;
  for (double budget = 45.0; budget <= 140.0 + 1e-9; budget += 5.0) {
    asrtm.set_constraint_goal(handle, budget);
    const auto& op = asrtm.best_operating_point();
    const auto config = dse::decode_knobs(space, op.knobs);
    times.push_back(model.evaluate(kernel, config).exec_time_s);
  }
  return times;
}

double regret_vs(const std::vector<double>& t_full, const std::vector<double>& t) {
  double acc = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) acc += t[i] / t_full[i];
  return acc / static_cast<double>(t.size()) - 1.0;
}

struct StrategyStats {
  std::size_t evaluated_max = 0;
  double hv_ratio_min = 2.0;
  double regret_max = -1.0;

  void fold(std::size_t evaluated, double hv_ratio, double regret) {
    evaluated_max = std::max(evaluated_max, evaluated);
    hv_ratio_min = std::min(hv_ratio_min, hv_ratio);
    regret_max = std::max(regret_max, regret);
  }
};

/// The points behind `indices`, e.g. a representative set.
std::vector<dse::ProfiledPoint> subset_of(const std::vector<dse::ProfiledPoint>& points,
                                          const std::vector<std::size_t>& indices) {
  std::vector<dse::ProfiledPoint> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(points[i]);
  return out;
}

/// The same points re-evaluated at their true (noise-free) model
/// metrics — the deployment quality the selection actually delivers,
/// free of the measurement noise it was selected under.
std::vector<dse::ProfiledPoint> true_values(const platform::PerformanceModel& model,
                                            const platform::KernelModelParams& kernel,
                                            std::vector<dse::ProfiledPoint> points) {
  for (auto& p : points) {
    const auto m = model.evaluate(kernel, p.configuration);
    p.exec_time_mean_s = m.exec_time_s;
    p.power_mean_w = m.avg_power_w;
    p.exec_time_stddev_s = p.power_stddev_w = 0.0;
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  std::printf("== Ablation: pluggable DSE strategies vs the full factorial ==\n");
  std::printf("(budget, Pareto hypervolume and AS-RTM regret per Explorer%s)\n\n",
              quick ? "; --quick subset" : "");

  const auto model = platform::PerformanceModel::paper_platform();
  const auto space = dse::DesignSpace::paper_space(model.topology());
  Pipeline pipeline(model);
  TaskPool& pool = pipeline.pool();

  const std::size_t kRepetitions = 3;
  const std::uint64_t kSeed = 2018;
  const std::size_t kPrune = 8;  ///< representative cap for the clone-set column

  // The CF configs of the paper space seed the model-guided search the
  // same way the pipeline seeds it with the COBAYN predictions.
  dse::TwoStageExplorer::Params two_params;
  for (std::size_t ci = platform::standard_levels().size(); ci < space.configs.size();
       ++ci)
    two_params.seed_configs.push_back(ci);
  const dse::TwoStageExplorer two_stage(two_params);
  const dse::StratifiedExplorer stratified(6);
  const dse::RandomSubsetExplorer subset(0.25);

  const std::vector<const char*> all = {"2mm",      "atax",   "jacobi-2d",
                                        "nussinov", "gemver", "syrk"};
  const std::vector<const char*> benchmarks(all.begin(),
                                            quick ? all.begin() + 2 : all.end());

  TextTable table({"Benchmark", "pts full/2stage/strat/sub", "hv 2stage",
                   "hv pruned", "hv true", "hv strat", "hv sub", "regret 2stage",
                   "clones"});
  StrategyStats two_stats, strat_stats, sub_stats;
  double pruned_ratio_min = 2.0, true_ratio_min = 2.0;
  std::size_t clone_set_max = 0, representatives_max = 0;
  std::vector<double> two_regrets;

  JsonWriter json;
  json.begin_object();
  json.kv("space", static_cast<std::uint64_t>(space.size()));
  json.kv("repetitions", static_cast<std::uint64_t>(kRepetitions));
  json.kv("prune_cap", static_cast<std::uint64_t>(kPrune));
  json.kv("benchmarks", static_cast<std::uint64_t>(benchmarks.size()));
  json.key("per_benchmark");
  json.begin_array();

  for (const char* name : benchmarks) {
    const auto& kernel = kernels::find_benchmark(name).model;

    // Full factorial through the pipeline (cached artifact); the
    // explorers share its task pool and per-point noise streams.
    const auto full = pipeline.profile_space(name, space, kRepetitions, kSeed);
    dse::ExploreContext ctx{model, kernel, space, kRepetitions, kSeed, 1.0, &pool, 1};
    const auto two = two_stage.explore(ctx);
    const auto strat = stratified.explore(ctx);
    const auto sub = subset.explore(ctx);

    // Shared hypervolume reference: slightly worse than the worst
    // measured power, so every front point contributes area.
    double ref_power = 0.0;
    for (const auto& p : full) ref_power = std::max(ref_power, p.power_mean_w);
    ref_power *= 1.05;
    const double hv_full = dse::pareto_hypervolume(full, ref_power);
    const auto hv_ratio = [&](const std::vector<dse::ProfiledPoint>& pts) {
      return dse::pareto_hypervolume(pts, ref_power) / hv_full;
    };
    const double hv_two = hv_ratio(two.points);
    const double hv_strat = hv_ratio(strat.points);
    const double hv_sub = hv_ratio(sub.points);

    // The gated front comparison: both strategies pruned to the same
    // K representatives — the clone set each would actually deploy.
    const auto reps = dse::select_representatives(two.points, kPrune);
    const auto full_reps = dse::select_representatives(full, kPrune);
    const double pruned_ratio =
        dse::pareto_hypervolume(subset_of(two.points, reps.representatives),
                                ref_power) /
        dse::pareto_hypervolume(subset_of(full, full_reps.representatives), ref_power);
    const double true_ratio =
        dse::pareto_hypervolume(
            true_values(model, kernel, subset_of(two.points, reps.representatives)),
            ref_power) /
        dse::pareto_hypervolume(
            true_values(model, kernel, subset_of(full, full_reps.representatives)),
            ref_power);


    // Decision regret of the (pruned) two-stage knowledge base.
    const auto clones = dse::clone_pairs(two.points, reps.representatives);
    const auto t_full = sweep_choices(model, kernel, space, dse::to_knowledge_base(full));
    const double regret_two = regret_vs(
        t_full, sweep_choices(model, kernel, space,
                              dse::to_knowledge_base(two.points, reps.representatives)));

    two_stats.fold(two.evaluated, hv_two, regret_two);
    pruned_ratio_min = std::min(pruned_ratio_min, pruned_ratio);
    true_ratio_min = std::min(true_ratio_min, true_ratio);
    strat_stats.fold(strat.evaluated, hv_strat, 0.0);
    sub_stats.fold(sub.evaluated, hv_sub, 0.0);
    clone_set_max = std::max(clone_set_max, clones.size());
    representatives_max = std::max(representatives_max, reps.representatives.size());
    two_regrets.push_back(regret_two);

    json.begin_object();
    json.kv("name", name);
    json.kv("two_stage_evaluated", static_cast<std::uint64_t>(two.evaluated));
    json.kv("two_stage_generations", static_cast<std::uint64_t>(two.generations));
    json.kv("two_stage_hv_ratio", hv_two);
    json.kv("two_stage_pruned_hv_ratio", pruned_ratio);
    json.kv("two_stage_true_hv_ratio", true_ratio);
    json.kv("two_stage_regret", regret_two);
    json.kv("stratified_hv_ratio", hv_strat);
    json.kv("subset_hv_ratio", hv_sub);
    json.kv("clone_set", static_cast<std::uint64_t>(clones.size()));
    json.end_object();

    table.add_row({name,
                   std::to_string(full.size()) + "/" + std::to_string(two.evaluated) +
                       "/" + std::to_string(strat.evaluated) + "/" +
                       std::to_string(sub.evaluated),
                   format_double(hv_two, 4), format_double(pruned_ratio, 4),
                   format_double(true_ratio, 4), format_double(hv_strat, 4),
                   format_double(hv_sub, 4),
                   format_double(100.0 * regret_two, 1) + "%",
                   std::to_string(clones.size()) + "/16"});
  }
  json.end_array();

  const double reduction_min = static_cast<double>(space.size()) /
                               static_cast<double>(two_stats.evaluated_max);
  json.key("two_stage");
  json.begin_object();
  json.kv("evaluated_max", static_cast<std::uint64_t>(two_stats.evaluated_max));
  json.kv("reduction_min", reduction_min);
  json.kv("hv_ratio_min", two_stats.hv_ratio_min);
  json.kv("pruned_hv_ratio_min", pruned_ratio_min);
  json.kv("true_hv_ratio_min", true_ratio_min);
  json.kv("regret_max", two_stats.regret_max);
  json.kv("clone_set_max", static_cast<std::uint64_t>(clone_set_max));
  json.kv("representatives_max", static_cast<std::uint64_t>(representatives_max));
  json.kv("full_clone_set", 16);
  json.end_object();
  json.key("stratified");
  json.begin_object();
  json.kv("evaluated_max", static_cast<std::uint64_t>(strat_stats.evaluated_max));
  json.kv("hv_ratio_min", strat_stats.hv_ratio_min);
  json.end_object();
  json.key("subset25");
  json.begin_object();
  json.kv("evaluated_max", static_cast<std::uint64_t>(sub_stats.evaluated_max));
  json.kv("hv_ratio_min", sub_stats.hv_ratio_min);
  json.end_object();
  json.end_object();
  write_bench_json("dse", json.str());

  std::fputs(table.str().c_str(), stdout);
  std::printf("\nTwo-stage: <= %zu of %zu points (%.1fx fewer); pruned deployment"
              " hypervolume >= %.4fx\nthe full-factorial deployment's at true metrics"
              " (measured: >= %.4fx, raw subset: >= %.4fx);\nmean pruned regret"
              " %+.1f%%, clone set <= %zu of 16.\n",
              two_stats.evaluated_max, space.size(), reduction_min, true_ratio_min,
              pruned_ratio_min, two_stats.hv_ratio_min, 100.0 * mean_of(two_regrets),
              clone_set_max);

  bool ok = true;
  if (reduction_min < 10.0) {
    std::printf("FAIL: two-stage evaluated %zu points — less than 10x below the "
                "full factorial\n", two_stats.evaluated_max);
    ok = false;
  }
  if (true_ratio_min < 1.0) {
    std::printf("FAIL: true-metric hypervolume ratio %.6f < 1.0 — with both fronts "
                "pruned to %zu representatives, the two-stage deployment is worse "
                "than the full-factorial one\n", true_ratio_min, kPrune);
    ok = false;
  }
  if (clone_set_max >= 16) {
    std::printf("FAIL: pruned clone set (%zu) did not shrink below the full cross "
                "product\n", clone_set_max);
    ok = false;
  }
  if (ok)
    std::printf("PASS: two-stage exploration matches the full-factorial front at "
                ">= 10x fewer evaluations\n");
  return ok ? 0 : 1;
}
