// Ablation: input-aware knowledge (mARGOt data features).
//
// A bandwidth-bound kernel (gemver) serves a mix of input scales.  Two
// runtimes handle the same mix under a max-throughput policy:
//   multi-KB : three knowledge clusters profiled at scales .01/.2/1.0,
//              nearest-cluster selection per input;
//   single-KB: one knowledge base profiled at full scale only.
// For each input the chosen configuration is re-evaluated on the
// noise-free model at the *actual* scale; regret is the time ratio vs
// the per-scale oracle configuration (best of the whole space at that
// scale).  The single profile is near-optimal at 1.0 but pays on small
// cache-resident inputs, where its bandwidth-shy configurations are too
// conservative.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "kernels/registry.hpp"
#include "margot/context.hpp"
#include "socrates/input_aware_app.hpp"
#include "socrates/pipeline.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

/// Best exec time over the whole space at `scale` (noise-free oracle).
double oracle_time(const platform::PerformanceModel& model,
                   const platform::KernelModelParams& kernel,
                   const dse::DesignSpace& space, double scale) {
  double best = 1e100;
  for (std::size_t ci = 0; ci < space.configs.size(); ++ci)
    for (const std::size_t t : space.thread_counts)
      for (const auto b : space.bindings)
        best = std::min(best, model
                                  .evaluate(kernel,
                                            {space.configs[ci].config, t, b}, nullptr,
                                            scale)
                                  .exec_time_s);
  return best;
}

/// Exec time at `scale` of the configuration an AS-RTM on `kb` picks.
double chosen_time(const platform::PerformanceModel& model,
                   const platform::KernelModelParams& kernel,
                   const dse::DesignSpace& space, const margot::KnowledgeBase& kb,
                   double scale) {
  margot::Asrtm asrtm(kb);
  asrtm.set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  const auto& op = asrtm.best_operating_point();
  const auto config = dse::decode_knobs(space, op.knobs);
  return model.evaluate(kernel, config, nullptr, scale).exec_time_s;
}

}  // namespace

int main() {
  std::printf("== Ablation: input-aware knowledge vs a single full-size profile ==\n");
  std::printf("(gemver, max-throughput policy; regret vs the per-scale oracle)\n\n");

  const auto model = platform::PerformanceModel::paper_platform();
  const auto& kernel = kernels::find_benchmark("gemver").model;

  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  Pipeline pipeline(model, opts);

  const auto multi = build_input_aware(pipeline, "gemver", {0.01, 0.2, 1.0});
  const auto single = pipeline.build("gemver", /*work_scale=*/1.0);

  TextTable table({"input scale", "cluster", "multi-KB regret", "single-KB regret"});
  std::vector<double> multi_regret;
  std::vector<double> single_regret;
  for (const double scale : {0.01, 0.03, 0.1, 0.3, 0.6, 1.0}) {
    const double oracle = oracle_time(model, kernel, multi.space, scale);
    const std::size_t cluster = multi.knowledge.select({scale});
    const double t_multi = chosen_time(model, kernel, multi.space,
                                       multi.knowledge.cluster(cluster).knowledge,
                                       scale);
    const double t_single =
        chosen_time(model, kernel, single.space, single.knowledge, scale);
    multi_regret.push_back(t_multi / oracle - 1.0);
    single_regret.push_back(t_single / oracle - 1.0);
    table.add_row({format_double(scale, 2), std::to_string(cluster),
                   format_double(100.0 * multi_regret.back(), 1) + "%",
                   format_double(100.0 * single_regret.back(), 1) + "%"});
  }
  table.add_separator();
  table.add_row({"mean", "-", format_double(100.0 * mean_of(multi_regret), 1) + "%",
                 format_double(100.0 * mean_of(single_regret), 1) + "%"});
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nPer-input knowledge keeps the decision near the oracle at every scale;\n"
      "the full-size-only profile mis-tunes the cache-resident inputs.\n");
  return 0;
}
