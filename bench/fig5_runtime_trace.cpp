// Reproduces Figure 5 of the paper:
// "Execution trace of the 2mm application by varying application
//  requirements at runtime."
//
// The adaptive 2mm binary (toolchain output with the paper's CF1-CF4)
// runs for 300 simulated seconds on a reduced dataset while the rank
// switches:
//     0-100 s : energy-efficient policy, maximize Throughput/Watt^2
//   100-200 s : performance policy,      maximize Throughput
//   200-300 s : back to Throughput/Watt^2
// The trace (power, kernel exec time, binding, compiler flags, threads
// over time — the five stacked panels of the figure) is printed
// downsampled, followed by per-phase summaries.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "margot/state_manager.hpp"
#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "socrates/adaptive_app.hpp"
#include "socrates/pipeline.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace socrates;
  using M = margot::ContextMetrics;

  std::printf("== Figure 5: runtime trace of 2mm with changing requirements ==\n");
  std::printf("(policy: Thr/W^2 [0,100s) -> Thr [100,200s) -> Thr/W^2 [200,300s])\n\n");

  // This bench is the observability showcase: tracing is always on here
  // (SOCRATES_TRACE only picks the export path), with a ring deep enough
  // that the build-phase pipeline spans survive 300 s of decision spans.
  Tracer& tracer = Tracer::global();
  tracer.set_capacity(std::size_t{1} << 18);
  tracer.set_enabled(true);

  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;    // the figure uses the published CF1-CF4
  opts.dse_repetitions = 5;
  opts.work_scale = 0.01;       // the runtime experiment's smaller dataset
  Pipeline pipeline(model, opts);

  AdaptiveApplication app(pipeline.build("2mm"), model, opts.work_scale);
  app.asrtm().enable_decision_journal();

  // Two named mARGOt states; the requirement change is a state switch.
  margot::StateManager states(app.asrtm());
  states.define_state(
      "energy", {},
      margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
  states.define_state("performance", {},
                      margot::Rank::maximize_throughput(M::kThroughput));

  std::vector<TraceSample> trace;
  app.run_until(100.0, trace);
  states.switch_to("performance");
  app.run_until(200.0, trace);
  states.switch_to("energy");
  app.run_until(300.0, trace);

  // Downsampled trace: one row per ~10 s of simulated time.
  TextTable table({"t [s]", "Power [W]", "Exec [ms]", "Flags", "Threads", "Bind"});
  double next_stamp = 0.0;
  for (const auto& s : trace) {
    if (s.timestamp_s < next_stamp) continue;
    table.add_row({format_double(s.timestamp_s, 1), format_double(s.power_w, 1),
                   format_double(s.exec_time_s * 1e3, 1), s.config_name,
                   std::to_string(s.threads), platform::to_string(s.binding)});
    next_stamp += 10.0;
  }
  std::fputs(table.str().c_str(), stdout);

  // Per-phase summary (mean power / exec time, distinct configs).
  const auto phase = [&](double lo, double hi, const char* label) {
    RunningStats power;
    RunningStats exec;
    std::size_t switches = 0;
    for (const auto& s : trace) {
      if (s.timestamp_s < lo || s.timestamp_s >= hi) continue;
      power.add(s.power_w);
      exec.add(s.exec_time_s * 1e3);
      if (s.configuration_changed) ++switches;
    }
    std::printf("%-22s iterations=%5zu  avg power=%6.1f W  avg exec=%6.1f ms  "
                "reconfigurations=%zu\n",
                label, power.count(), power.mean(), exec.mean(), switches);
  };
  std::printf("\n");
  phase(2.0, 100.0, "phase 1 (Thr/W^2):");
  phase(102.0, 200.0, "phase 2 (Thr):");
  phase(202.0, 300.0, "phase 3 (Thr/W^2):");

  // MAPE-K decision journal: every operating-point switch, explained.
  std::printf("\n-- decision journal --\n");
  std::ostringstream journal_text;
  app.asrtm().decision_journal().dump(journal_text);
  std::fputs(journal_text.str().c_str(), stdout);

  // Span census + metrics from the instrumented run.
  std::map<std::string, std::size_t> span_counts;
  for (const auto& e : tracer.snapshot()) ++span_counts[e.category];
  std::printf("\n-- trace spans (%zu buffered, %zu dropped) --\n",
              tracer.snapshot().size(), tracer.dropped());
  for (const auto& [category, count] : span_counts)
    std::printf("%-10s %zu\n", category.c_str(), count);

  std::printf("\n-- metrics --\n");
  std::ostringstream metrics_text;
  MetricsRegistry::global().write_text(metrics_text);
  std::fputs(metrics_text.str().c_str(), stdout);

  // Chrome trace_event export (open in chrome://tracing or Perfetto).
  const char* trace_file = std::getenv("SOCRATES_TRACE_FILE");
  const std::string trace_path =
      trace_file != nullptr ? trace_file : "fig5_trace.json";
  std::ofstream trace_out(trace_path, std::ios::binary | std::ios::trunc);
  if (trace_out) {
    tracer.export_chrome_trace(trace_out);
    std::printf("\nChrome trace written to %s\n", trace_path.c_str());
  } else {
    std::printf("\ncannot write Chrome trace to %s\n", trace_path.c_str());
  }

  std::printf(
      "\nPaper reference: power rises from ~85-95 W (energy policy) to ~145 W\n"
      "(performance policy) while kernel time drops, and the knobs revert at 200 s.\n");
  return 0;
}
