// Ablation: the value of the fault-tolerance stack (docs/ROBUSTNESS.md).
//
// The adaptive 2mm service runs under a 100 W power cap on a machine
// that is both *loaded* (a co-runner appears at t=60 s: +25 W, 30%
// bandwidth steal, until t=180 s) and *hostile*: during the middle of
// the run the energy register wraps every ~134 J, reads spike or fail,
// the counter freezes for a stretch, the clock jitters, and the two
// fastest compiler-config clones (O3 and CF1) crash or return garbage
// measurements with some probability.  Two identical stacks face it:
//   hardened : wraparound correction, invalid-sample rejection, Hampel
//              outlier filter, runaway detection, variant quarantine
//              with exponential backoff, oscillation watchdog,
//   raw      : every defense off — the seed stack of this repo.
// Reported: goal-violation rate (true power over cap, true kernel time
// over budget, or a crashed iteration), corrupted observations that
// reached the trace, and the defense counters.  The hardened stack must
// come out strictly lower on violations, with zero negative or
// non-finite observations.
// A final section exercises the crash-safety layer: the hardened
// service is "killed" mid-run (its CheckpointStore is destroyed without
// a final snapshot) and a restarted AS-RTM replays the journal back to
// the identical operating point, corrections and quarantine set.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "margot/checkpoint.hpp"
#include "socrates/adaptive_app.hpp"
#include "socrates/pipeline.hpp"
#include "support/bench_json.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

constexpr double kPowerCapW = 100.0;
constexpr double kEndS = 240.0;
/// A coarse-ESU energy register: wraps every ~134 J, several times per
/// minute at this service's draw.
constexpr double kWrapRangeUj = 134217728.0;  // 2^27 uJ

struct RunResult {
  std::vector<TraceSample> trace;
  std::size_t quarantine_events = 0;
  std::size_t watchdog_trips = 0;
  std::size_t wraps_corrected = 0;
  std::size_t samples_rejected = 0;
};

platform::FaultSchedule hostile_schedule() {
  using K = platform::SensorFaultKind;
  platform::FaultSchedule faults;
  // Sensor faults, concentrated in the middle of the run.
  faults.add({K::kCounterWrap, 60.0, 180.0, kWrapRangeUj, 1.0});
  faults.add({K::kSpike, 30.0, 210.0, /*uJ=*/4e7, 0.25});
  faults.add({K::kReadFailure, 30.0, 210.0, 0.0, 0.08});
  faults.add({K::kStuckCounter, 100.0, 110.0, 0.0, 1.0});
  faults.add({K::kClockJitter, 120.0, 150.0, /*sigma=*/0.02, 1.0});
  // The two most attractive clones misbehave from t=30 s on.
  platform::VariantFault o3;
  o3.config = platform::FlagConfig(platform::OptLevel::kO3);
  o3.start_s = 30.0;
  o3.crash_probability = 0.10;
  o3.crash_fraction = 0.3;
  o3.garbage_probability = 0.10;
  o3.garbage_scale = 30.0;
  faults.add(o3);
  platform::VariantFault cf1;
  cf1.config = platform::paper_custom_configs()[0].config;
  cf1.start_s = 30.0;
  cf1.crash_probability = 0.10;
  cf1.crash_fraction = 0.3;
  cf1.garbage_probability = 0.10;
  cf1.garbage_scale = 30.0;
  faults.add(cf1);
  return faults;
}

RunResult run(bool hardened) {
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.02;
  Pipeline pipeline(model, opts);

  AdaptiveApplication app(pipeline.build("2mm"), model, opts.work_scale);
  app.asrtm().set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  app.asrtm().add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, kPowerCapW, 0, 1.0});

  if (hardened) {
    auto rob = margot::RobustnessOptions::hardened();
    rob.wrap_range_uj = kWrapRangeUj;  // the platform's register width
    // Clones here fail rarely but persistently (p~0.2 per run): one
    // strike is enough evidence to bench a clone for a while.
    rob.quarantine.failure_threshold = 1;
    rob.quarantine.base_cooldown = 16;
    app.set_robustness(rob);
  } else {
    app.set_robustness(margot::RobustnessOptions::raw());
  }

  platform::DisturbanceSchedule disturbances;
  disturbances.add({60.0, 180.0, /*bw=*/0.3, /*compute=*/0.0, /*power=*/25.0});
  app.set_disturbances(std::move(disturbances));
  app.set_faults(hostile_schedule());

  RunResult result;
  app.run_until(kEndS, result.trace);
  result.quarantine_events = app.asrtm().quarantine_events();
  result.watchdog_trips = app.margot().watchdog().trips();
  result.wraps_corrected = app.margot().energy_monitor().wraps_corrected() +
                           app.margot().power_monitor().wraps_corrected();
  result.samples_rejected = app.margot().time_monitor().rejected() +
                            app.margot().power_monitor().rejected() +
                            app.margot().energy_monitor().rejected();
  return result;
}

/// Median true kernel time of the calm, fault-free opening phase — the
/// basis of the time budget both stacks are judged against.
double calm_median_exec_s(const std::vector<TraceSample>& trace) {
  std::vector<double> times;
  for (const auto& s : trace)
    if (!s.crashed && s.timestamp_s < 30.0) times.push_back(s.exec_time_s);
  std::sort(times.begin(), times.end());
  return times.empty() ? 0.0 : times[times.size() / 2];
}

bool corrupted(const TraceSample& s) {
  return !std::isfinite(s.observed_time_s) || s.observed_time_s < 0.0 ||
         !std::isfinite(s.observed_power_w) || s.observed_power_w < 0.0 ||
         !std::isfinite(s.observed_energy_j) || s.observed_energy_j < 0.0;
}

struct PhaseStats {
  double violation_pct = 0.0;
  double avg_power = 0.0;
  std::size_t crashes = 0;
  std::size_t corrupted_obs = 0;
};

PhaseStats stats_of(const std::vector<TraceSample>& trace, double lo, double hi,
                    double time_budget_s) {
  PhaseStats out;
  RunningStats power;
  double violations = 0.0;
  double n = 0.0;
  for (const auto& s : trace) {
    if (s.timestamp_s < lo || s.timestamp_s >= hi) continue;
    n += 1.0;
    if (s.crashed) {
      ++out.crashes;
      violations += 1.0;  // a dead iteration delivered nothing in time
      continue;
    }
    power.add(s.power_w);
    if (!s.crashed && corrupted(s)) ++out.corrupted_obs;
    if (s.power_w > kPowerCapW * 1.05 || s.exec_time_s > time_budget_s)
      violations += 1.0;
  }
  out.violation_pct = n > 0.0 ? 100.0 * violations / n : 0.0;
  out.avg_power = power.count() > 0 ? power.mean() : 0.0;
  return out;
}

/// Kill-and-resume: runs the hardened workload with a CheckpointStore
/// attached, destroys the store mid-flight (crash-equivalent: no final
/// snapshot), and verifies a restarted AS-RTM replays the journal to
/// the same learned state.  Returns true on an exact match and reports
/// the replayed-event count for the machine-readable artifact.
bool kill_and_resume_demo(std::size_t* replayed_out) {
  namespace fs = std::filesystem;
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.02;
  Pipeline pipeline(model, opts);
  const auto knowledge = pipeline.build("2mm").knowledge;

  const auto dir = fs::temp_directory_path() / "socrates_ablation_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "asrtm.ckpt").string();

  // Phase 1: the "first boot" learns under the hostile machine.
  margot::Asrtm live(knowledge);
  std::size_t journaled = 0;
  std::size_t best_before = 0;
  {
    margot::CheckpointStore store(path);
    store.attach(live);
    live.set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
    live.add_constraint(
        {M::kPower, margot::ComparisonOp::kLessEqual, kPowerCapW, 0, 1.0});
    // A condensed version of the hostile run: feedback drift on both
    // steering metrics plus two clones benched by the quarantine.
    for (int i = 0; i < 40; ++i) {
      const auto op = live.find_best_operating_point();
      live.send_feedback(op, M::kExecTime,
                         knowledge[op].metrics[M::kExecTime].mean * 1.2);
      live.send_feedback(op, M::kPower, knowledge[op].metrics[M::kPower].mean * 1.1);
      if (i % 10 == 3) live.report_variant_failure(op);
      if (i % 10 == 4) live.report_variant_failure(op);
      live.advance_quarantine();
    }
    best_before = live.find_best_operating_point();
    journaled = store.journaled_events();
    // Scope exit WITHOUT detach(): the process "dies" here.  No
    // snapshot exists — the journal alone must carry the state.
  }

  // Phase 2: the restarted process replays the journal.
  margot::Asrtm resumed(knowledge);
  margot::CheckpointStore store(path);
  const auto result = store.attach(resumed);
  resumed.set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  resumed.add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, kPowerCapW, 0, 1.0});

  const bool same_point = resumed.find_best_operating_point() == best_before;
  const bool same_corrections =
      resumed.correction(M::kExecTime) == live.correction(M::kExecTime) &&
      resumed.correction(M::kPower) == live.correction(M::kPower);
  bool same_quarantine = resumed.quarantined_count() == live.quarantined_count();
  for (std::size_t i = 0; same_quarantine && i < knowledge.size(); ++i)
    same_quarantine = resumed.is_quarantined(i) == live.is_quarantined(i);

  std::printf(
      "Journaled %zu events; restore note: %s\n"
      "  replayed %zu, skipped %zu\n"
      "  operating point %zu -> %zu (%s), corrections %s, quarantine set %s\n",
      journaled, result.note.c_str(), result.replayed, result.skipped, best_before,
      resumed.find_best_operating_point(), same_point ? "identical" : "DIFFERENT",
      same_corrections ? "identical" : "DIFFERENT",
      same_quarantine ? "identical" : "DIFFERENT");
  fs::remove_all(dir);
  if (replayed_out) *replayed_out = result.replayed;
  return same_point && same_corrections && same_quarantine;
}

void write_phase(JsonWriter& w, const char* name, const PhaseStats& s) {
  w.key(name).begin_object();
  w.kv("violation_pct", s.violation_pct);
  w.kv("avg_power_w", s.avg_power);
  w.kv("crashes", static_cast<std::uint64_t>(s.crashes));
  w.kv("corrupted_obs", static_cast<std::uint64_t>(s.corrupted_obs));
  w.end_object();
}

void write_run(JsonWriter& w, const char* name, const RunResult& r,
               const PhaseStats& overall, double budget_s) {
  w.key(name).begin_object();
  write_phase(w, "calm", stats_of(r.trace, 0.0, 30.0, budget_s));
  write_phase(w, "hostile", stats_of(r.trace, 30.0, 210.0, budget_s));
  write_phase(w, "recovered", stats_of(r.trace, 210.0, kEndS, budget_s));
  write_phase(w, "overall", overall);
  w.key("defenses").begin_object();
  w.kv("samples_rejected", static_cast<std::uint64_t>(r.samples_rejected));
  w.kv("wraps_corrected", static_cast<std::uint64_t>(r.wraps_corrected));
  w.kv("quarantine_events", static_cast<std::uint64_t>(r.quarantine_events));
  w.kv("watchdog_trips", static_cast<std::uint64_t>(r.watchdog_trips));
  w.end_object();
  w.end_object();
}

}  // namespace

int main() {
  std::printf("== Ablation: fault tolerance under a hostile machine ==\n");
  std::printf(
      "(100 W cap; co-runner 60-180 s; register wraps every %.0f J, spikes,\n"
      " read failures, stuck counter, clock jitter; O3 and CF1 clones crash\n"
      " or return garbage with p=0.1 each from t=30 s)\n\n",
      kWrapRangeUj * 1e-6);

  const RunResult hardened = run(/*hardened=*/true);
  const RunResult raw = run(/*hardened=*/false);

  // The time budget: 5x the calm-phase median of the raw run (both
  // stacks face the same machine, so the calm phases are comparable).
  // Generous enough that a well-steered stack stays inside it even
  // while the power cap + co-runner force a slower configuration; only
  // blind or thrashing selections (and garbage clones) land outside.
  const double budget_s = 5.0 * calm_median_exec_s(raw.trace);

  TextTable table({"Run / phase", "goal viol.", "avg power [W]", "crashes",
                   "corrupted obs"});
  const auto add = [&](const char* label, const RunResult& r, double lo, double hi) {
    const auto s = stats_of(r.trace, lo, hi, budget_s);
    table.add_row({label, format_double(s.violation_pct, 1) + "%",
                   format_double(s.avg_power, 1), std::to_string(s.crashes),
                   std::to_string(s.corrupted_obs)});
  };
  add("hardened / calm", hardened, 0.0, 30.0);
  add("hardened / hostile", hardened, 30.0, 210.0);
  add("hardened / recovered", hardened, 210.0, kEndS);
  table.add_separator();
  add("raw      / calm", raw, 0.0, 30.0);
  add("raw      / hostile", raw, 30.0, 210.0);
  add("raw      / recovered", raw, 210.0, kEndS);
  std::fputs(table.str().c_str(), stdout);

  TextTable defenses({"Run", "rejected samples", "wraps corrected",
                      "quarantine events", "watchdog trips"});
  defenses.add_row({"hardened", std::to_string(hardened.samples_rejected),
                    std::to_string(hardened.wraps_corrected),
                    std::to_string(hardened.quarantine_events),
                    std::to_string(hardened.watchdog_trips)});
  defenses.add_row({"raw", std::to_string(raw.samples_rejected),
                    std::to_string(raw.wraps_corrected),
                    std::to_string(raw.quarantine_events),
                    std::to_string(raw.watchdog_trips)});
  std::printf("\n");
  std::fputs(defenses.str().c_str(), stdout);

  const auto overall_h = stats_of(hardened.trace, 0.0, kEndS, budget_s);
  const auto overall_r = stats_of(raw.trace, 0.0, kEndS, budget_s);
  std::printf(
      "\nOverall goal-violation rate: hardened %.1f%% vs raw %.1f%% "
      "(time budget %.0f ms, cap %.0f W).\n",
      overall_h.violation_pct, overall_r.violation_pct, budget_s * 1e3, kPowerCapW);
  std::printf(
      "Hardened trace: %zu corrupted observations (must be 0); raw trace: %zu.\n",
      overall_h.corrupted_obs, overall_r.corrupted_obs);
  const bool robust_ok =
      overall_h.violation_pct < overall_r.violation_pct && overall_h.corrupted_obs == 0;
  if (robust_ok)
    std::printf("PASS: the hardened stack is strictly more robust.\n");
  else
    std::printf("FAIL: the defenses did not beat the raw baseline.\n");

  std::printf("\n== Kill-and-resume: crash-safe runtime knowledge ==\n");
  std::size_t replayed = 0;
  const bool resume_ok = kill_and_resume_demo(&replayed);
  if (resume_ok)
    std::printf("PASS: the restarted AS-RTM resumed at its pre-crash state.\n");
  else
    std::printf("FAIL: the replayed state diverged from the pre-crash state.\n");

  // Machine-readable artifact for the baseline gate
  // (bench/baselines/fault_tolerance.json): bounds live on the
  // invariants of the seeded, deterministic simulation — the hardened
  // stack strictly beats raw, zero corrupted observations survive the
  // hardened monitors, each defense actually fired, and the resume is
  // exact — not on absolute timings.
  JsonWriter w;
  w.begin_object();
  w.kv("time_budget_s", budget_s);
  write_run(w, "hardened", hardened, overall_h, budget_s);
  write_run(w, "raw", raw, overall_r, budget_s);
  w.key("robustness").begin_object();
  w.kv("violation_gap_pct", overall_r.violation_pct - overall_h.violation_pct);
  w.kv("hardened_beats_raw", robust_ok ? 1 : 0);
  w.end_object();
  w.key("resume").begin_object();
  w.kv("exact", resume_ok ? 1 : 0);
  w.kv("replayed", static_cast<std::uint64_t>(replayed));
  w.end_object();
  w.end_object();
  write_bench_json("fault_tolerance", w.str());

  return robust_ok && resume_ok ? 0 : 1;
}
