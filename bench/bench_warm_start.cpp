// Bench: cross-tenant knowledge sharing — what a warm start is worth,
// emitting BENCH_warm_start.json (support/bench_json.hpp).
//
//   server  A donor tenant runs against design-time knowledge that
//           underestimates the true power draw by 1.5x, so its first
//           decisions overshoot the cap and the feedback loop has to
//           walk the thread count down to the truly feasible optimum.
//           Once converged, checkpoint_all() publishes its corrected
//           representatives into the knowledge pool; a similar tenant
//           registering afterwards is seeded from them and must land on
//           the same optimum with >= 3x fewer feedback rounds and a
//           true-rank gap within 5%.  Three cold variants (sharing
//           disabled, featureless profile, plain register_tenant) must
//           produce bit-identical decision sequences — sharing off is
//           exactly the old behaviour.
//   dse     A donor kernel's two-stage exploration hands its best
//           measured points (as flat indices) plus the merged COBAYN
//           posterior to a similar kernel's explorer via
//           warm_flat_seeds / seed_configs.  At an equal, deliberately
//           small budget the warm search must find an operating point
//           at least as fast as the cold search's best.
//
// Everything is seeded and model-driven, so the artifact is machine-
// stable; bench/baselines/warm_start.json gates it in CI
// (warm-start-bench-smoke preset).  --quick shrinks the COBAYN corpus
// for CTest; the server episode is already small.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "cobayn/cobayn.hpp"
#include "dse/dse.hpp"
#include "dse/explorer.hpp"
#include "dse/two_stage.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "margot/asrtm.hpp"
#include "server/server.hpp"
#include "support/bench_json.hpp"
#include "support/task_pool.hpp"

namespace {

using namespace socrates;

// ---- server episode ----------------------------------------------------------------

constexpr double kPowerCap = 100.0;
// True behaviour per thread count: exec falls with threads, power
// crosses the cap between 6 and 8 threads — the true optimum is 6.
const std::vector<int> kThreads = {1, 2, 4, 6, 8, 12, 16};
const std::vector<double> kPowerShare = {0.3, 0.4, 0.6, 0.9, 1.034, 1.3, 1.6};
constexpr std::size_t kTrueBest = 3;  // threads 6

double true_exec(std::size_t op) {
  return 10.0 / std::pow(static_cast<double>(kThreads[op]), 0.8);
}
double true_power(std::size_t op) { return kPowerCap * kPowerShare[op]; }

/// Design-time knowledge: the platform model underestimates exec by
/// 1.6x and power by 1.5x, so the cold AS-RTM believes 12 threads fit
/// under the cap until feedback teaches it otherwise.
margot::KnowledgeBase design_kb() {
  margot::KnowledgeBase kb({"threads"}, {"exec_time_s", "power_w"});
  for (std::size_t i = 0; i < kThreads.size(); ++i) {
    margot::OperatingPoint op;
    op.knobs = {kThreads[i]};
    op.metrics = {{true_exec(i) / 1.6, 0.01}, {true_power(i) / 1.5, 0.5}};
    kb.add(std::move(op));
  }
  return kb;
}

void configure(margot::Asrtm& asrtm) {
  asrtm.set_rank(margot::Rank::minimize_exec_time(0));
  asrtm.add_constraint({1, margot::ComparisonOp::kLessEqual, kPowerCap, 0, 1.0});
}

features::FeatureVector server_features(double level) {
  features::FeatureVector fv;
  for (const std::size_t idx : cobayn::CobaynModel::model_feature_indices())
    fv.values[idx] = level;
  return fv;
}

/// Decide/feedback rounds: each round decides, then reports the *true*
/// exec and power of the decided point.  Returns the decision sequence.
std::vector<std::size_t> drive(server::Server& srv, std::uint64_t handle,
                               std::size_t rounds) {
  std::vector<std::size_t> decisions;
  decisions.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t op = srv.decide(handle);
    decisions.push_back(op);
    if (srv.submit_feedback(handle, op, 0, true_exec(op)) != server::Admission::kAccepted ||
        srv.submit_feedback(handle, op, 1, true_power(op)) != server::Admission::kAccepted) {
      std::fprintf(stderr, "feedback refused in round %zu\n", r);
      std::exit(2);
    }
    if (!srv.drain(10.0)) {
      std::fprintf(stderr, "drain timed out in round %zu\n", r);
      std::exit(2);
    }
  }
  return decisions;
}

/// Feedback rounds spent before the decisions settle on the true
/// optimum (rounds == sequence length when they never do).
std::size_t rounds_to_truth(const std::vector<std::size_t>& decisions) {
  std::size_t settle = decisions.size();
  for (std::size_t i = decisions.size(); i-- > 0;) {
    if (decisions[i] != kTrueBest) break;
    settle = i;
  }
  return settle;
}

server::ServerOptions server_options() {
  server::ServerOptions o;
  o.shards = 2;
  o.ring_capacity = 256;
  o.batch_drain = 32;
  o.max_tenants = 8;
  o.shard_stall_deadline_s = 60.0;
  o.rate_limit_per_s = 0.0;
  o.pool_publish_after = 32;
  return o;
}

// ---- dse episode -------------------------------------------------------------------

double best_exec(const std::vector<dse::ProfiledPoint>& points) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : points) best = std::min(best, p.exec_time_mean_s);
  return best;
}

/// A profiled point's flat index in `space` (the transfer currency of
/// warm_flat_seeds).
std::size_t flat_of(const dse::DesignSpace& space, const dse::ProfiledPoint& p) {
  dse::detail::FlatPoint fp;
  fp.config = p.config_index;
  for (std::size_t t = 0; t < space.thread_counts.size(); ++t)
    if (space.thread_counts[t] == p.configuration.threads) fp.thread = t;
  for (std::size_t b = 0; b < space.bindings.size(); ++b)
    if (space.bindings[b] == p.configuration.binding) fp.binding = b;
  return dse::detail::compose_flat(space, fp);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown argument %s (only --quick)\n", argv[i]);
      return 2;
    }
  }
  bool all_ok = true;

  // ---- server: donor converges, warm tenant skips the cold walk ----------------
  std::printf("== server: donor cold walk vs pool-seeded warm start ==\n");
  const std::size_t rounds = 48;
  std::vector<std::size_t> donor_decisions;
  std::vector<std::size_t> warm_decisions;
  server::Server::Stats stats;
  server::CreateResult warm;
  {
    server::Server srv(server_options());
    server::TenantProfile donor_profile;
    donor_profile.features = server_features(3.0);
    const auto donor =
        srv.create_tenant("donor", design_kb(), configure, donor_profile);
    if (!donor.created || donor.warm_started) {
      std::fprintf(stderr, "donor registration went wrong\n");
      return 2;
    }
    donor_decisions = drive(srv, donor.handle, rounds);
    srv.checkpoint_all();  // republish with the final corrections

    server::TenantProfile warm_profile;
    warm_profile.features = server_features(3.02);
    warm = srv.create_tenant("warm", design_kb(), configure, warm_profile);
    if (!warm.created) {
      std::fprintf(stderr, "warm registration went wrong\n");
      return 2;
    }
    warm_decisions = drive(srv, warm.handle, rounds);
    stats = srv.stats();
  }
  const std::size_t cold_rounds = rounds_to_truth(donor_decisions);
  const std::size_t warm_rounds = rounds_to_truth(warm_decisions);
  const double speedup = static_cast<double>(cold_rounds) /
                         static_cast<double>(std::max<std::size_t>(1, warm_rounds));
  const std::size_t warm_first = warm_decisions.empty() ? kTrueBest : warm_decisions[0];
  const double rank_gap = true_exec(warm_first) / true_exec(kTrueBest) - 1.0;
  const bool server_ok = warm.warm_started && warm.seeded_points > 0 &&
                         stats.pool_entries >= 1 && stats.warm_started == 1 &&
                         cold_rounds > 0 && cold_rounds < rounds &&
                         warm_rounds < rounds && speedup >= 3.0 && rank_gap <= 0.05;
  all_ok = all_ok && server_ok;
  std::printf(
      "   cold: %zu rounds to the true optimum, warm: %zu (%.1fx fewer), "
      "rank gap %.3f, %zu seeded points -> %s\n",
      cold_rounds, warm_rounds, speedup, rank_gap, warm.seeded_points,
      server_ok ? "OK" : "FAIL");

  // ---- server: sharing off is bit-identical to the old cold behaviour ----------
  std::vector<std::vector<std::size_t>> cold_variants;
  {
    server::ServerOptions off = server_options();
    off.share_knowledge = false;
    server::Server srv(off);
    server::TenantProfile profile;
    profile.features = server_features(3.0);
    const auto t = srv.create_tenant("t", design_kb(), configure, profile);
    cold_variants.push_back(drive(srv, t.handle, rounds));
  }
  {
    server::Server srv(server_options());  // sharing on, but no features
    const auto t = srv.create_tenant("t", design_kb(), configure);
    cold_variants.push_back(drive(srv, t.handle, rounds));
  }
  {
    server::Server srv(server_options());  // the pre-pool entry point
    std::uint64_t handle = 0;
    if (!srv.register_tenant("t", design_kb(), configure, &handle)) return 2;
    cold_variants.push_back(drive(srv, handle, rounds));
  }
  const bool cold_identical =
      cold_variants[0] == donor_decisions && cold_variants[1] == donor_decisions &&
      cold_variants[2] == donor_decisions;
  all_ok = all_ok && cold_identical;
  std::printf("   sharing-off / featureless / plain-register sequences %s\n",
              cold_identical ? "identical to the cold walk" : "DIVERGED (FAIL)");

  // ---- dse: donor's measured best + merged posterior warm the explorer ---------
  std::printf("== dse: warm-seeded two-stage vs cold at an equal budget ==\n");
  const auto& platform_model = platform::PerformanceModel::paper_platform();
  const std::string donor_name = "2mm";
  const std::string recipient_name = "3mm";
  const auto& donor_kernel = kernels::find_benchmark(donor_name).model;
  const auto& recipient_kernel = kernels::find_benchmark(recipient_name).model;

  const auto corpus = cobayn::make_corpus(quick ? 16 : 32, 2018);
  const auto model = cobayn::CobaynModel::train(corpus, platform_model);
  const auto fv_donor =
      cobayn::kernel_features_of_source(kernels::benchmark_source(donor_name));
  const auto fv_recipient =
      cobayn::kernel_features_of_source(kernels::benchmark_source(recipient_name));
  const auto merged = cobayn::CobaynModel::merge_posterior(
      model.export_posterior(fv_donor), static_cast<double>(model.training_rows()),
      model.export_posterior(fv_recipient), static_cast<double>(model.training_rows()));

  // The shared space is built the way the pipeline builds it: the four
  // standard levels plus the posterior-predicted CF1..CF4 — here from
  // the *merged* donor+recipient posterior, so the pooled prior decides
  // which configurations exist at all.  The CF indices are the
  // seeding-stage bias for both searches; donor flat indices transfer
  // because both kernels explore the identical space.
  dse::DesignSpace space = dse::DesignSpace::paper_space(platform_model.topology());
  space.configs = platform::standard_levels();
  std::vector<std::size_t> seed_configs;
  for (const auto& cfg : cobayn::CobaynModel::top_configs(merged, 4)) {
    seed_configs.push_back(space.configs.size());
    space.configs.push_back(
        {"CF" + std::to_string(seed_configs.size()), cfg});
  }

  TaskPool pool(4);
  dse::ExploreContext donor_ctx{platform_model, donor_kernel, space, 3, 2018, 1.0,
                                &pool, 1};
  dse::TwoStageExplorer::Params donor_params;
  donor_params.budget = 64;
  donor_params.population = 8;
  donor_params.generations = 8;
  donor_params.seed_configs = seed_configs;
  const auto donor_result = dse::TwoStageExplorer(donor_params).explore(donor_ctx);

  // The donor's four fastest measured points, as flat indices — what
  // the server pool hands a similar kernel.
  auto ranked = donor_result.points;
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.exec_time_mean_s < b.exec_time_mean_s;
  });
  std::vector<std::size_t> warm_seeds;
  for (std::size_t i = 0; i < ranked.size() && warm_seeds.size() < 4; ++i)
    warm_seeds.push_back(flat_of(space, ranked[i]));

  dse::ExploreContext ctx{platform_model, recipient_kernel, space, 3, 2018, 1.0,
                          &pool, 1};
  dse::TwoStageExplorer::Params cold_params;
  cold_params.budget = 24;
  cold_params.population = 8;
  cold_params.generations = 4;
  cold_params.seed_configs = seed_configs;
  dse::TwoStageExplorer::Params warm_params = cold_params;
  warm_params.warm_flat_seeds = warm_seeds;

  const auto cold_result = dse::TwoStageExplorer(cold_params).explore(ctx);
  const auto warm_result = dse::TwoStageExplorer(warm_params).explore(ctx);
  const double cold_best = best_exec(cold_result.points);
  const double warm_best = best_exec(warm_result.points);
  const double warm_ratio = cold_best / warm_best;
  const bool dse_ok = !warm_seeds.empty() && warm_ratio >= 1.0 &&
                      warm_result.evaluated <= cold_params.budget;
  all_ok = all_ok && dse_ok;
  std::printf(
      "   budget %zu: cold best %.4fs, warm best %.4fs (ratio %.3f, %zu seeds, "
      "%zu seed configs) -> %s\n",
      cold_params.budget, cold_best, warm_best, warm_ratio, warm_seeds.size(),
      seed_configs.size(), dse_ok ? "OK" : "FAIL");

  // ---- artifact ----------------------------------------------------------------
  JsonWriter w;
  w.begin_object();
  w.kv("mode", quick ? "quick" : "full");
  w.key("server").begin_object();
  w.kv("rounds", static_cast<std::uint64_t>(rounds));
  w.kv("cold_rounds_to_truth", static_cast<std::uint64_t>(cold_rounds));
  w.kv("warm_rounds_to_truth", static_cast<std::uint64_t>(warm_rounds));
  w.kv("speedup", speedup);
  w.kv("warm_rank_gap", rank_gap);
  w.kv("seeded_points", static_cast<std::uint64_t>(warm.seeded_points));
  w.kv("pool_entries", static_cast<std::uint64_t>(stats.pool_entries));
  w.kv("warm_started", static_cast<std::uint64_t>(stats.warm_started));
  w.kv("cold_identical_when_disabled", cold_identical ? 1 : 0);
  w.end_object();
  w.key("dse").begin_object();
  w.kv("budget", static_cast<std::uint64_t>(cold_params.budget));
  w.kv("donor_best_exec_s", best_exec(donor_result.points));
  w.kv("cold_best_exec_s", cold_best);
  w.kv("warm_best_exec_s", warm_best);
  w.kv("warm_vs_cold_ratio", warm_ratio);
  w.kv("warm_seeds", static_cast<std::uint64_t>(warm_seeds.size()));
  w.kv("seed_configs", static_cast<std::uint64_t>(seed_configs.size()));
  w.end_object();
  w.end_object();
  write_bench_json("warm_start", w.str());

  std::printf("%s: warm-started tenants reach the converged optimum with >= 3x "
              "fewer updates at a <= 5%% rank gap\n",
              all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
