// Bench: the overload-safe multi-tenant AS-RTM server under three
// regimes, emitting BENCH_server.json (support/bench_json.hpp).
//
//   clean     kBlock policy, journaling on: mixed feedback + decision
//             traffic across many tenants, flat out.  Measures sustained
//             feedback throughput and decision latency percentiles, then
//             kills the server (crash-equivalent destructor) and resumes
//             it, verifying every tenant recovers to exactly the
//             committed prefix of its feedback stream — at most one
//             uncommitted group-commit batch lost per tenant.
//   overload  kDropOldest policy with a deliberately small ring and
//             periodic injected shard stalls: the ingest is driven well
//             past drain capacity.  Measures how much is shed and that
//             decision latency does not collapse (p99 within a small
//             multiple of clean).
//   chaos     shard-stall + ingest-flood + journal-fail armed (seeded,
//             deterministic): the watchdog must restart stalled shards,
//             floods must shed instead of wedging, and a final
//             kill-and-resume must bring back every tenant.
//
// Default is the full run (>= 1k tenants, the ISSUE's >= 1M updates/sec
// target printed against the measured number); --quick runs a scaled-
// down version for CTest, whose artifact is gated by
// bench/baselines/server.json (machine-stable invariants: conservation,
// shedding, recovery — not absolute nanoseconds).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "margot/asrtm.hpp"
#include "server/server.hpp"
#include "support/bench_json.hpp"
#include "support/chaos.hpp"
#include "support/statistics.hpp"

namespace {

using namespace socrates;
namespace fs = std::filesystem;

struct BenchConfig {
  bool quick = false;
  std::size_t tenants = 1024;
  std::size_t clean_events = 3'000'000;
  std::size_t overload_events = 1'500'000;
  std::size_t chaos_events = 150'000;
  std::size_t decide_every = 256;  ///< decision sample cadence (events)
};

margot::KnowledgeBase tenant_kb() {
  // Metric 0 mean of point 0 is 1.0, so feeding a constant 1.25
  // drives the correction EWMA along a closed-form trajectory — the
  // resume check below recomputes it exactly from the event count.
  margot::KnowledgeBase kb({"knob"}, {"throughput", "power"});
  for (std::size_t i = 0; i < 8; ++i) {
    margot::OperatingPoint op;
    op.knobs = {static_cast<int>(i)};
    op.metrics = {{1.0 + 0.05 * static_cast<double>(i), 0.01},
                  {60.0 + static_cast<double>(i), 0.5}};
    kb.add(std::move(op));
  }
  return kb;
}

void configure_tenant(margot::Asrtm& asrtm) {
  asrtm.set_rank(margot::Rank::maximize_throughput(0));
  asrtm.add_constraint({1, margot::ComparisonOp::kLessEqual, 66.0, 0, 1.0});
}

constexpr double kFeedbackValue = 1.25;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RegimeResult {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double throughput_per_s = 0.0;
  double decision_p50_ns = 0.0;
  double decision_p99_ns = 0.0;
  server::Server::Stats stats;
  bool conservation_ok = false;
};

/// Drives `events` feedback updates round-robin over the tenants, with
/// a decision sampled every `decide_every` events, then drains.
RegimeResult drive(server::Server& srv, const std::vector<std::uint64_t>& handles,
                   std::size_t events, std::size_t decide_every,
                   const std::function<void(std::size_t)>& per_event_hook = {}) {
  RegimeResult result;
  std::vector<double> decide_ns;
  decide_ns.reserve(events / decide_every + 1);
  const double t0 = now_s();
  for (std::size_t i = 0; i < events; ++i) {
    if (per_event_hook) per_event_hook(i);
    const std::uint64_t handle = handles[i % handles.size()];
    (void)srv.submit_feedback(handle, 0, 0, kFeedbackValue);
    if (i % decide_every == 0) {
      const auto d0 = std::chrono::steady_clock::now();
      (void)srv.decide(handle);
      const auto d1 = std::chrono::steady_clock::now();
      decide_ns.push_back(
          std::chrono::duration<double, std::nano>(d1 - d0).count());
    }
  }
  srv.drain(120.0);
  result.seconds = now_s() - t0;
  result.events = events;
  result.throughput_per_s =
      result.seconds > 0 ? static_cast<double>(events) / result.seconds : 0.0;
  result.decision_p50_ns = quantile(decide_ns, 0.5);
  result.decision_p99_ns = quantile(decide_ns, 0.99);
  result.stats = srv.stats();
  result.conservation_ok =
      result.stats.drained + result.stats.shed == result.stats.accepted;
  return result;
}

std::vector<std::uint64_t> register_tenants(server::Server& srv, std::size_t n) {
  std::vector<std::uint64_t> handles;
  handles.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    std::uint64_t handle = 0;
    if (!srv.register_tenant("tenant" + std::to_string(t), tenant_kb(),
                             configure_tenant, &handle)) {
      std::fprintf(stderr, "tenant registration refused at %zu\n", t);
      std::exit(2);
    }
    handles.push_back(handle);
  }
  return handles;
}

/// Correction value after `n` constant-feedback events (the EWMA
/// trajectory the journal replay must land on exactly).
double reference_correction(std::size_t n) {
  margot::Asrtm reference(tenant_kb());
  for (std::size_t i = 0; i < n; ++i) reference.send_feedback(0, 0, kFeedbackValue);
  return reference.correction(0);
}

void write_regime(JsonWriter& w, const char* name, const RegimeResult& r) {
  w.key(name).begin_object();
  w.kv("events", static_cast<std::uint64_t>(r.events));
  w.kv("seconds", r.seconds);
  w.kv("throughput_per_s", r.throughput_per_s);
  w.kv("decision_p50_ns", r.decision_p50_ns);
  w.kv("decision_p99_ns", r.decision_p99_ns);
  w.kv("accepted", r.stats.accepted);
  w.kv("drained", r.stats.drained);
  w.kv("shed", r.stats.shed);
  w.kv("conservation_ok", r.conservation_ok ? 1 : 0);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
      config.tenants = 64;
      config.clean_events = 60'000;
      config.overload_events = 60'000;
      config.chaos_events = 20'000;
      config.decide_every = 64;
    } else {
      std::fprintf(stderr, "unknown argument %s (only --quick)\n", argv[i]);
      return 2;
    }
  }

  const fs::path root =
      fs::temp_directory_path() / ("socrates_bench_server." + std::to_string(::getpid()));
  fs::remove_all(root);
  fs::create_directories(root);

  server::ServerOptions base = server::ServerOptions::from_env();
  base.max_tenants = config.tenants;
  base.rate_limit_per_s = 0.0;          // contract testing is the server tests' job
  base.breaker.error_threshold = 1u << 30;  // no trips from valid traffic
  base.shard_stall_deadline_s = 5.0;
  bool all_ok = true;

  // ---- clean regime + exact kill-and-resume -----------------------------------
  std::printf("== clean: %zu tenants, %zu events, policy=block ==\n", config.tenants,
              config.clean_events);
  RegimeResult clean;
  std::vector<std::size_t> applied_at_kill(config.tenants, 0);
  std::vector<std::size_t> buffered_at_kill(config.tenants, 0);
  server::ServerOptions clean_options = base;
  clean_options.policy = server::BackpressurePolicy::kBlock;
  clean_options.checkpoint_dir = (root / "clean").string();
  {
    server::Server srv(clean_options);
    const auto handles = register_tenants(srv, config.tenants);
    clean = drive(srv, handles, config.clean_events, config.decide_every);
    for (std::size_t t = 0; t < config.tenants; ++t) {
      const auto status = srv.tenant_status(handles[t]);
      applied_at_kill[t] = status.applied;
      buffered_at_kill[t] = status.buffered_events;
    }
    // Destructor without checkpoint_all(): the kill.
  }
  std::printf("   %.0f updates/s, decide p50=%.0fns p99=%.0fns, drained=%llu\n",
              clean.throughput_per_s, clean.decision_p50_ns, clean.decision_p99_ns,
              static_cast<unsigned long long>(clean.stats.drained));

  std::size_t resume_exact = 0;
  std::size_t max_lost = 0;
  double resume_seconds = 0.0;
  {
    const double t0 = now_s();
    server::Server resumed(clean_options);
    const auto handles = register_tenants(resumed, config.tenants);
    resume_seconds = now_s() - t0;
    for (std::size_t t = 0; t < config.tenants; ++t) {
      const std::size_t survived = applied_at_kill[t] - buffered_at_kill[t];
      max_lost = std::max(max_lost, buffered_at_kill[t]);
      const double expected = reference_correction(survived);
      double actual = 0.0;
      resumed.with_tenant(handles[t], [&](margot::Asrtm& asrtm) {
        actual = asrtm.correction(0);
      });
      if (actual == expected) ++resume_exact;
    }
  }
  const bool lost_bound_ok = max_lost < clean_options.group_commit;
  const bool resume_ok = resume_exact == config.tenants;
  all_ok = all_ok && clean.conservation_ok && lost_bound_ok && resume_ok;
  std::printf(
      "   resume: %zu/%zu tenants exact, max lost %zu events (group_commit %zu) "
      "in %.2fs -> %s\n",
      resume_exact, config.tenants, max_lost, clean_options.group_commit,
      resume_seconds, resume_ok && lost_bound_ok ? "OK" : "FAIL");

  // ---- overload regime ---------------------------------------------------------
  std::printf("== overload: policy=drop-oldest, small ring, injected stalls ==\n");
  server::ServerOptions overload_options = base;
  overload_options.policy = server::BackpressurePolicy::kDropOldest;
  overload_options.ring_capacity = 1024;
  overload_options.checkpoint_dir = (root / "overload").string();
  RegimeResult overload;
  {
    server::Server srv(overload_options);
    const auto handles = register_tenants(srv, config.tenants);
    // Periodic injected stalls guarantee the ring actually fills (2x+
    // overload) even on hosts whose drain outruns this single producer.
    const std::size_t stall_every = config.overload_events / 8;
    overload = drive(srv, handles, config.overload_events, config.decide_every,
                     [&](std::size_t i) {
                       if (i % stall_every == 0) {
                         for (std::size_t s = 0; s < srv.options().shards; ++s) {
                           srv.inject_stall(s, 0.02);
                         }
                       }
                     });
  }
  const double p99_vs_clean = clean.decision_p99_ns > 0
                                  ? overload.decision_p99_ns / clean.decision_p99_ns
                                  : 0.0;
  all_ok = all_ok && overload.conservation_ok && overload.stats.shed > 0;
  std::printf(
      "   %.0f updates/s offered, shed=%llu (%.1f%%), decide p99=%.0fns "
      "(%.1fx clean)\n",
      overload.throughput_per_s,
      static_cast<unsigned long long>(overload.stats.shed),
      100.0 * static_cast<double>(overload.stats.shed) /
          static_cast<double>(overload.stats.accepted ? overload.stats.accepted : 1),
      overload.decision_p99_ns, p99_vs_clean);

  // ---- chaos regime ------------------------------------------------------------
  std::printf("== chaos: shard-stall + ingest-flood + journal-fail armed ==\n");
  ChaosSpec spec;
  spec.shard_stall = 0.0005;
  spec.stall_ms = 150.0;
  spec.ingest_flood = 0.002;
  spec.flood_burst = 8.0;
  spec.journal_fail = 0.01;
  spec.seed = 2018;
  ChaosEngine::global().install(spec);

  server::ServerOptions chaos_options = base;
  chaos_options.policy = server::BackpressurePolicy::kDropOldest;
  chaos_options.ring_capacity = 1024;
  chaos_options.shard_stall_deadline_s = 0.1;
  chaos_options.watchdog_period_s = 0.02;
  chaos_options.restart_backoff_base_s = 0.0;
  chaos_options.checkpoint_dir = (root / "chaos").string();
  RegimeResult chaos;
  std::size_t chaos_recovered = 0;
  {
    server::Server srv(chaos_options);
    const auto handles = register_tenants(srv, config.tenants);
    chaos = drive(srv, handles, config.chaos_events, config.decide_every);
    // The stall site draws per worker loop; a short run may finish
    // before the schedule fires.  Keep light traffic flowing until the
    // watchdog has restarted at least one shard (seeded chaos makes
    // this quick), then re-drain and take the regime's final stats.
    const double poll_deadline = now_s() + 30.0;
    std::size_t i = 0;
    while (srv.stats().shard_restarts < 1 && now_s() < poll_deadline) {
      (void)srv.submit_feedback(handles[i++ % handles.size()], 0, 0, kFeedbackValue);
      if (i % 64 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    srv.drain(60.0);
    chaos.stats = srv.stats();
    chaos.conservation_ok =
        chaos.stats.drained + chaos.stats.shed == chaos.stats.accepted;
    // Crash-equivalent kill under chaos.
  }
  ChaosEngine::global().disarm();
  {
    server::Server resumed(chaos_options);
    const auto handles = register_tenants(resumed, config.tenants);
    for (std::size_t t = 0; t < config.tenants; ++t) {
      double correction = 0.0;
      std::size_t best = 0;
      resumed.with_tenant(handles[t], [&](margot::Asrtm& asrtm) {
        correction = asrtm.correction(0);
        best = asrtm.find_best_operating_point();
      });
      // Recovery = a structurally sound tenant: replay produced a sane
      // correction (between fresh and the EWMA target) and a servable
      // decision.  Chaos may legitimately have dropped journal batches,
      // so exact state is not required here — the clean regime pins that.
      if (correction >= 1.0 && correction <= kFeedbackValue + 1e-9 &&
          best < tenant_kb().size()) {
        ++chaos_recovered;
      }
    }
  }
  const bool chaos_ok =
      chaos.conservation_ok && chaos_recovered == config.tenants &&
      chaos.stats.shard_restarts >= 1;
  all_ok = all_ok && chaos_ok;
  std::printf(
      "   restarts=%llu, shed=%llu, recovered %zu/%zu tenants -> %s\n",
      static_cast<unsigned long long>(chaos.stats.shard_restarts),
      static_cast<unsigned long long>(chaos.stats.shed), chaos_recovered,
      config.tenants, chaos_ok ? "OK" : "FAIL");

  // ---- artifact ----------------------------------------------------------------
  JsonWriter w;
  w.begin_object();
  w.kv("mode", config.quick ? "quick" : "full");
  w.key("config").begin_object();
  w.kv("tenants", static_cast<std::uint64_t>(config.tenants));
  w.kv("shards", static_cast<std::uint64_t>(base.shards));
  w.kv("ring_capacity", static_cast<std::uint64_t>(base.ring_capacity));
  w.kv("group_commit", static_cast<std::uint64_t>(base.group_commit));
  w.end_object();
  write_regime(w, "clean", clean);
  w.key("resume").begin_object();
  w.kv("exact_tenants", static_cast<std::uint64_t>(resume_exact));
  w.kv("tenants", static_cast<std::uint64_t>(config.tenants));
  w.kv("exact_fraction",
       static_cast<double>(resume_exact) / static_cast<double>(config.tenants));
  w.kv("max_lost_events", static_cast<std::uint64_t>(max_lost));
  w.kv("lost_bound_ok", lost_bound_ok ? 1 : 0);
  w.kv("seconds", resume_seconds);
  w.end_object();
  write_regime(w, "overload", overload);
  w.key("overload_extra").begin_object();
  w.kv("p99_vs_clean", p99_vs_clean);
  w.kv("shed_any", overload.stats.shed > 0 ? 1 : 0);
  w.end_object();
  write_regime(w, "chaos", chaos);
  w.key("chaos_extra").begin_object();
  w.kv("shard_restarts", chaos.stats.shard_restarts);
  w.kv("recovered_tenants", static_cast<std::uint64_t>(chaos_recovered));
  w.kv("recovered_fraction",
       static_cast<double>(chaos_recovered) / static_cast<double>(config.tenants));
  w.end_object();
  w.end_object();
  write_bench_json("server", w.str());

  fs::remove_all(root);

  if (!config.quick) {
    const bool throughput_target = clean.throughput_per_s >= 1e6;
    const bool latency_target = p99_vs_clean > 0 && p99_vs_clean <= 5.0;
    std::printf("%s: sustained %.2fM updates/s across %zu tenants (target 1M/s)\n",
                throughput_target ? "PASS" : "MISS", clean.throughput_per_s / 1e6,
                config.tenants);
    std::printf("%s: overload p99 %.1fx clean (target <= 5x)\n",
                latency_target ? "PASS" : "MISS", p99_vs_clean);
  }
  std::printf("%s: conservation, loss bound and recovery invariants\n",
              all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
