// Ablation: mARGOt runtime overhead (google-benchmark).
//
// The paper claims "the intrusiveness of mARGOt in the application code
// is limited to an initialization call ... and to start/stop/update
// calls around the regions of interest".  Limited *code* intrusiveness
// only matters if the *runtime* cost of those calls is negligible
// against the kernels they wrap.  This bench measures, on the real host
// (wall clock, not the simulated platform):
//   - Asrtm::find_best_operating_point over the full 512-point 2mm
//     knowledge base, with 0 / 1 / 2 active constraints,
//   - the whole update/start/stop cycle of the woven API,
//   - monitor push + statistics,
// in nanoseconds per call.  Compare with the ~10-200 ms kernel times of
// Figures 4/5: the MAPE loop costs well under 0.1% of a kernel run.
// The observability additions are measured here too: a TraceSpan on the
// disabled path must cost a single relaxed atomic load (compare
// BM_TracerDisabledSpan against BM_TracerEnabledSpan), and journaling
// must not change the asymptotics of the selection loop (compare
// BM_AsrtmSelect_WithJournal against BM_AsrtmSelect_NoConstraints).
// The robustness layer pins its zero-overhead-when-disabled claims the
// same way: a disarmed ChaosEngine probe is one relaxed atomic load
// (BM_ChaosDisabledProbe), a supervised stage that never fails costs a
// couple of steady_clock reads (BM_SupervisorCleanRun), and an AS-RTM
// without an event sink pays nothing for the checkpoint machinery
// (BM_FeedbackUpdate vs BM_FeedbackUpdate_WithEventSink).
#include <benchmark/benchmark.h>

#include "dse/dse.hpp"
#include "margot/context.hpp"
#include "observability/trace.hpp"
#include "platform/clock.hpp"
#include "platform/rapl.hpp"
#include "socrates/pipeline.hpp"
#include "support/chaos.hpp"
#include "support/supervisor.hpp"

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

margot::KnowledgeBase kb_2mm() {
  // Through the pipeline: each BM_ fixture below rebuilds this
  // knowledge base, but only the first call profiles — the rest are
  // artifact-cache hits.
  static const auto model = platform::PerformanceModel::paper_platform();
  static Pipeline pipeline(model);
  const auto space = dse::DesignSpace::paper_space(model.topology());
  return dse::to_knowledge_base(pipeline.profile_space("2mm", space, 3, 2018));
}

void BM_AsrtmSelect_NoConstraints(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  asrtm.set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmSelect_NoConstraints);

void BM_AsrtmSelect_PowerBudget(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  asrtm.set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  asrtm.add_constraint({M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 1.0});
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmSelect_PowerBudget);

void BM_AsrtmSelect_TwoConstraints(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  asrtm.set_rank(margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
  asrtm.add_constraint({M::kPower, margot::ComparisonOp::kLessEqual, 120.0, 0, 1.0});
  asrtm.add_constraint({M::kThroughput, margot::ComparisonOp::kGreaterEqual, 0.2, 1, 0.0});
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmSelect_TwoConstraints);

void BM_FullMapeCycle(benchmark::State& state) {
  // update + start + (simulated 1 ms region) + stop, as woven by the
  // Autotuner strategy.  The clock/energy advance is part of the loop
  // body but costs ~nothing; the measured cost is the mARGOt glue.
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  margot::Context ctx(kb_2mm(), clock, rapl);
  ctx.asrtm().set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  std::vector<int> knobs(3);
  for (auto _ : state) {
    ctx.update(knobs);
    ctx.start_monitors();
    clock.advance(1e-3);
    rapl.accrue(1e-3, 90.0);
    ctx.stop_monitors();
  }
}
BENCHMARK(BM_FullMapeCycle);

void BM_MonitorPushAndStats(benchmark::State& state) {
  margot::CircularMonitor monitor(16);
  double x = 1.0;
  for (auto _ : state) {
    monitor.push(x);
    x += 0.5;
    benchmark::DoNotOptimize(monitor.average());
    benchmark::DoNotOptimize(monitor.stddev());
  }
}
BENCHMARK(BM_MonitorPushAndStats);

void BM_FeedbackUpdate(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  for (auto _ : state) {
    asrtm.send_feedback(0, M::kExecTime, 1.0);
    benchmark::DoNotOptimize(asrtm.correction(M::kExecTime));
  }
}
BENCHMARK(BM_FeedbackUpdate);

void BM_AsrtmSelect_WithJournal(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  asrtm.set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  asrtm.enable_decision_journal();
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmSelect_WithJournal);

void BM_TracerDisabledSpan(benchmark::State& state) {
  Tracer tracer;  // private tracer so a SOCRATES_TRACE env cannot skew this
  tracer.set_enabled(false);
  for (auto _ : state) {
    TraceSpan span("bench", "bench", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TracerDisabledSpan);

void BM_TracerEnabledSpan(benchmark::State& state) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (auto _ : state) {
    TraceSpan span("bench", "bench", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TracerEnabledSpan);

void BM_ChaosDisabledProbe(benchmark::State& state) {
  // The gate every pipeline call site takes when SOCRATES_CHAOS is
  // unset: a single relaxed atomic load, nothing else.
  ChaosEngine engine;  // private engine so a SOCRATES_CHAOS env cannot skew this
  for (auto _ : state) benchmark::DoNotOptimize(engine.enabled());
}
BENCHMARK(BM_ChaosDisabledProbe);

void BM_ChaosArmedIndexedDraw(benchmark::State& state) {
  ChaosEngine engine;
  ChaosSpec spec;
  spec.stage_fail = 0.5;
  engine.install(spec);
  std::uint64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(engine.fire_indexed("dse.point", i++));
}
BENCHMARK(BM_ChaosArmedIndexedDraw);

void BM_SupervisorCleanRun(benchmark::State& state) {
  // A supervised stage that succeeds first try: the whole retry/
  // timeout/backoff machinery reduces to two steady_clock reads and a
  // SupervisorReport fill.
  Supervisor supervisor;
  for (auto _ : state) {
    const auto outcome = supervisor.run("bench", [] {});
    benchmark::DoNotOptimize(&outcome);
  }
}
BENCHMARK(BM_SupervisorCleanRun);

void BM_FeedbackUpdate_WithEventSink(benchmark::State& state) {
  // The checkpoint hook: with a sink installed every feedback call
  // additionally builds one RuntimeEvent and invokes the sink (here a
  // counter; CheckpointStore adds one formatted+flushed journal line).
  margot::Asrtm asrtm(kb_2mm());
  std::uint64_t events = 0;
  asrtm.set_event_sink([&events](const margot::RuntimeEvent&) { ++events; });
  for (auto _ : state) {
    asrtm.send_feedback(0, M::kExecTime, 1.0);
    benchmark::DoNotOptimize(asrtm.correction(M::kExecTime));
  }
  benchmark::DoNotOptimize(events);
}
BENCHMARK(BM_FeedbackUpdate_WithEventSink);

}  // namespace

BENCHMARK_MAIN();
