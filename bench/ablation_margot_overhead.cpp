// Ablation: mARGOt runtime overhead (google-benchmark).
//
// The paper claims "the intrusiveness of mARGOt in the application code
// is limited to an initialization call ... and to start/stop/update
// calls around the regions of interest".  Limited *code* intrusiveness
// only matters if the *runtime* cost of those calls is negligible
// against the kernels they wrap.  This bench measures, on the real host
// (wall clock, not the simulated platform):
//   - Asrtm::find_best_operating_point over the full 512-point 2mm
//     knowledge base, with 0 / 1 / 2 active constraints,
//   - the whole update/start/stop cycle of the woven API,
//   - monitor push + statistics,
// in nanoseconds per call.  Compare with the ~10-200 ms kernel times of
// Figures 4/5: the MAPE loop costs well under 0.1% of a kernel run.
// The observability additions are measured here too: a TraceSpan on the
// disabled path must cost a single relaxed atomic load (compare
// BM_TracerDisabledSpan against BM_TracerEnabledSpan), and journaling
// must not change the asymptotics of the selection loop (compare
// BM_AsrtmSelect_WithJournal against BM_AsrtmSelect_NoConstraints).
// The robustness layer pins its zero-overhead-when-disabled claims the
// same way: a disarmed ChaosEngine probe is one relaxed atomic load
// (BM_ChaosDisabledProbe), a supervised stage that never fails costs a
// couple of steady_clock reads (BM_SupervisorCleanRun), and an AS-RTM
// without an event sink pays nothing for the checkpoint machinery
// (BM_FeedbackUpdate vs BM_FeedbackUpdate_WithEventSink).
//
// The incremental decision engine is *pinned* here, not just measured:
// after the registered benchmarks run, main() asserts on a synthetic
// 1024-point knowledge base that the steady-state (clean-epoch)
// decision is allocation-free and >= 10x faster than the cold decision,
// and exits non-zero otherwise.  The `decision_bench_smoke` CTest entry
// runs exactly this assertion so a regression of the O(1) path fails CI.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <new>

#include "dse/dse.hpp"
#include "margot/context.hpp"
#include "observability/trace.hpp"
#include "platform/clock.hpp"
#include "platform/rapl.hpp"
#include "socrates/pipeline.hpp"
#include "support/bench_json.hpp"
#include "support/chaos.hpp"
#include "support/supervisor.hpp"

// Process-wide allocation counter backing the allocation-free assertion
// on the steady-state decision path.
std::atomic<std::uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

margot::KnowledgeBase kb_2mm() {
  // Through the pipeline: each BM_ fixture below rebuilds this
  // knowledge base, but only the first call profiles — the rest are
  // artifact-cache hits.
  static const auto model = platform::PerformanceModel::paper_platform();
  static Pipeline pipeline(model);
  const auto space = dse::DesignSpace::paper_space(model.topology());
  return dse::to_knowledge_base(pipeline.profile_space("2mm", space, 3, 2018));
}

void BM_AsrtmSelect_NoConstraints(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  asrtm.set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmSelect_NoConstraints);

void BM_AsrtmSelect_PowerBudget(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  asrtm.set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  asrtm.add_constraint({M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 1.0});
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmSelect_PowerBudget);

void BM_AsrtmSelect_TwoConstraints(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  asrtm.set_rank(margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
  asrtm.add_constraint({M::kPower, margot::ComparisonOp::kLessEqual, 120.0, 0, 1.0});
  asrtm.add_constraint({M::kThroughput, margot::ComparisonOp::kGreaterEqual, 0.2, 1, 0.0});
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmSelect_TwoConstraints);

void BM_FullMapeCycle(benchmark::State& state) {
  // update + start + (simulated 1 ms region) + stop, as woven by the
  // Autotuner strategy.  The clock/energy advance is part of the loop
  // body but costs ~nothing; the measured cost is the mARGOt glue.
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  margot::Context ctx(kb_2mm(), clock, rapl);
  ctx.asrtm().set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  std::vector<int> knobs(3);
  for (auto _ : state) {
    ctx.update(knobs);
    ctx.start_monitors();
    clock.advance(1e-3);
    rapl.accrue(1e-3, 90.0);
    ctx.stop_monitors();
  }
}
BENCHMARK(BM_FullMapeCycle);

void BM_MonitorPushAndStats(benchmark::State& state) {
  margot::CircularMonitor monitor(16);
  double x = 1.0;
  for (auto _ : state) {
    monitor.push(x);
    x += 0.5;
    benchmark::DoNotOptimize(monitor.average());
    benchmark::DoNotOptimize(monitor.stddev());
  }
}
BENCHMARK(BM_MonitorPushAndStats);

void BM_FeedbackUpdate(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  for (auto _ : state) {
    asrtm.send_feedback(0, M::kExecTime, 1.0);
    benchmark::DoNotOptimize(asrtm.correction(M::kExecTime));
  }
}
BENCHMARK(BM_FeedbackUpdate);

void BM_AsrtmSelect_WithJournal(benchmark::State& state) {
  margot::Asrtm asrtm(kb_2mm());
  asrtm.set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  asrtm.enable_decision_journal();
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmSelect_WithJournal);

void BM_TracerDisabledSpan(benchmark::State& state) {
  Tracer tracer;  // private tracer so a SOCRATES_TRACE env cannot skew this
  tracer.set_enabled(false);
  for (auto _ : state) {
    TraceSpan span("bench", "bench", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TracerDisabledSpan);

void BM_TracerEnabledSpan(benchmark::State& state) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (auto _ : state) {
    TraceSpan span("bench", "bench", tracer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TracerEnabledSpan);

void BM_ChaosDisabledProbe(benchmark::State& state) {
  // The gate every pipeline call site takes when SOCRATES_CHAOS is
  // unset: a single relaxed atomic load, nothing else.
  ChaosEngine engine;  // private engine so a SOCRATES_CHAOS env cannot skew this
  for (auto _ : state) benchmark::DoNotOptimize(engine.enabled());
}
BENCHMARK(BM_ChaosDisabledProbe);

void BM_ChaosArmedIndexedDraw(benchmark::State& state) {
  ChaosEngine engine;
  ChaosSpec spec;
  spec.stage_fail = 0.5;
  engine.install(spec);
  std::uint64_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(engine.fire_indexed("dse.point", i++));
}
BENCHMARK(BM_ChaosArmedIndexedDraw);

void BM_SupervisorCleanRun(benchmark::State& state) {
  // A supervised stage that succeeds first try: the whole retry/
  // timeout/backoff machinery reduces to two steady_clock reads and a
  // SupervisorReport fill.
  Supervisor supervisor;
  for (auto _ : state) {
    const auto outcome = supervisor.run("bench", [] {});
    benchmark::DoNotOptimize(&outcome);
  }
}
BENCHMARK(BM_SupervisorCleanRun);

void BM_FeedbackUpdate_WithEventSink(benchmark::State& state) {
  // The checkpoint hook: with a sink installed every feedback call
  // additionally builds one RuntimeEvent and invokes the sink (here a
  // counter; CheckpointStore adds one formatted+flushed journal line).
  margot::Asrtm asrtm(kb_2mm());
  std::uint64_t events = 0;
  asrtm.set_event_sink([&events](const margot::RuntimeEvent&) { ++events; });
  for (auto _ : state) {
    asrtm.send_feedback(0, M::kExecTime, 1.0);
    benchmark::DoNotOptimize(asrtm.correction(M::kExecTime));
  }
  benchmark::DoNotOptimize(events);
}
BENCHMARK(BM_FeedbackUpdate_WithEventSink);

// ---- incremental decision engine ------------------------------------------

// Synthetic knowledge base: deterministic, positive metrics (metric 0 =
// throughput-like, ascending; metric 1 = power-like), no pipeline run
// needed, so the pinned check below stays cheap enough for CI.
margot::KnowledgeBase kb_synthetic(std::size_t n) {
  margot::KnowledgeBase kb({"knob"}, {"throughput", "power"});
  for (std::size_t i = 0; i < n; ++i) {
    margot::OperatingPoint op;
    op.knobs = {static_cast<int>(i)};
    const double x = static_cast<double>(i);
    op.metrics = {{0.5 + 0.001 * x, 0.01}, {60.0 + 0.05 * x, 0.5}};
    kb.add(std::move(op));
  }
  return kb;
}

margot::Asrtm make_synthetic_asrtm(std::size_t n) {
  margot::Asrtm asrtm(kb_synthetic(n));
  asrtm.set_rank(margot::Rank::maximize_throughput(0));
  asrtm.add_constraint({1, margot::ComparisonOp::kLessEqual, 95.0, 0, 1.0});
  asrtm.add_constraint({0, margot::ComparisonOp::kGreaterEqual, 0.6, 1, 0.0});
  return asrtm;
}

void BM_AsrtmDecide_Cold1024(benchmark::State& state) {
  margot::Asrtm asrtm = make_synthetic_asrtm(1024);
  for (auto _ : state) {
    asrtm.invalidate_decision_cache();
    benchmark::DoNotOptimize(asrtm.find_best_operating_point());
  }
}
BENCHMARK(BM_AsrtmDecide_Cold1024);

void BM_AsrtmDecide_Cached1024(benchmark::State& state) {
  margot::Asrtm asrtm = make_synthetic_asrtm(1024);
  benchmark::DoNotOptimize(asrtm.find_best_operating_point());
  for (auto _ : state) benchmark::DoNotOptimize(asrtm.find_best_operating_point());
}
BENCHMARK(BM_AsrtmDecide_Cached1024);

/// The pinned assertion behind the `decision_bench_smoke` CTest entry:
/// at 1024 operating points the clean-epoch decision must be >= 10x
/// faster than the cold decision and allocate nothing.
bool run_decision_scaling_check() {
  constexpr std::size_t kPoints = 1024;
  constexpr double kMinSpeedup = 10.0;
  margot::Asrtm asrtm = make_synthetic_asrtm(kPoints);

  // Warm everything once: scratch buffers, constraint columns, and the
  // function-local static counter references inside the decision paths.
  asrtm.invalidate_decision_cache();
  benchmark::DoNotOptimize(asrtm.find_best_operating_point());
  benchmark::DoNotOptimize(asrtm.find_best_operating_point());

  const auto per_call_ns = [&](bool cold, std::size_t calls) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < calls; ++i) {
      if (cold) asrtm.invalidate_decision_cache();
      benchmark::DoNotOptimize(asrtm.find_best_operating_point());
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count() /
           static_cast<double>(calls);
  };

  // Best-of-trials damps scheduler noise without needing a quiet host.
  double cold_ns = std::numeric_limits<double>::infinity();
  double steady_ns = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 7; ++trial) {
    cold_ns = std::min(cold_ns, per_call_ns(/*cold=*/true, 200));
    steady_ns = std::min(steady_ns, per_call_ns(/*cold=*/false, 20000));
  }

  benchmark::DoNotOptimize(asrtm.find_best_operating_point());
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i)
    benchmark::DoNotOptimize(asrtm.find_best_operating_point());
  const std::uint64_t steady_allocs =
      g_allocations.load(std::memory_order_relaxed) - before;

  const double ratio = cold_ns / steady_ns;

  // Machine-readable artifact for the baseline gate
  // (bench/baselines/margot_overhead.json): bounds live on the ratio
  // and the allocation count, which are hardware-independent.
  JsonWriter w;
  w.begin_object();
  w.kv("operating_points", static_cast<std::uint64_t>(kPoints));
  w.key("decide").begin_object();
  w.kv("cold_ns", cold_ns);
  w.kv("steady_ns", steady_ns);
  w.kv("ratio", ratio);
  w.kv("steady_allocs", steady_allocs);
  w.end_object();
  w.end_object();
  write_bench_json("margot_overhead", w.str());

  std::printf(
      "decision scaling @%zu OPs: cold=%.0fns steady=%.0fns ratio=%.1fx "
      "steady_allocs=%llu\n",
      kPoints, cold_ns, steady_ns, ratio,
      static_cast<unsigned long long>(steady_allocs));
  const bool ok = ratio >= kMinSpeedup && steady_allocs == 0;
  if (ok)
    std::printf(
        "PASS: steady-state decision is allocation-free and >=%.0fx faster "
        "than cold\n",
        kMinSpeedup);
  else
    std::printf(
        "FAIL: steady-state decision pin violated (need ratio >= %.0fx and 0 "
        "allocations)\n",
        kMinSpeedup);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return run_decision_scaling_check() ? 0 : 1;
}
