// Reproduces Figure 4 of the paper:
// "Static analysis of the proposed approach, that aims at minimizing
//  execution time given a constraint on power budget (x-axis)."
//
// The 2mm knowledge base (full-factorial DSE over the paper space) is
// handed to the AS-RTM with the requirement
//     minimize exec_time  s.t.  power <= budget
// and the budget is swept from 45 W to 140 W in 5 W steps, printing the
// selected execution time, compiler configuration, OpenMP thread count
// and binding policy — the four stacked panels of the figure.
// Expected shapes (paper): execution time is monotone non-increasing in
// the budget with a flat infeasible floor at the left edge; threads
// broadly grow; the compiler-flag and binding rows show no clear trend.
#include <cstdio>

#include "dse/dse.hpp"
#include "margot/asrtm.hpp"
#include "margot/context.hpp"
#include "socrates/pipeline.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace socrates;
  using M = margot::ContextMetrics;

  std::printf("== Figure 4: min exec time under a power budget (2mm) ==\n\n");

  const auto model = platform::PerformanceModel::paper_platform();
  const auto space = dse::DesignSpace::paper_space(model.topology());
  Pipeline pipeline(model);
  const auto points =
      pipeline.profile_space("2mm", space, /*repetitions=*/5, /*seed=*/2018);

  margot::Asrtm asrtm(dse::to_knowledge_base(points));
  asrtm.set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  const auto budget_constraint = asrtm.add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, 0.0, /*priority=*/0,
       /*confidence=*/0.0});

  TextTable table({"Budget [W]", "Exec time [ms]", "Power [W]", "Compiler flags",
                   "Threads", "Bind", "Feasible"});

  for (double budget = 45.0; budget <= 140.0 + 1e-9; budget += 5.0) {
    asrtm.set_constraint_goal(budget_constraint, budget);
    const auto& op = asrtm.best_operating_point();
    const auto config = dse::decode_knobs(space, op.knobs);
    table.add_row({format_double(budget, 0),
                   format_double(op.metrics[M::kExecTime].mean * 1e3, 0),
                   format_double(op.metrics[M::kPower].mean, 1),
                   space.configs[static_cast<std::size_t>(op.knobs[0])].name,
                   std::to_string(config.threads),
                   platform::to_string(config.binding),
                   asrtm.last_selection_feasible() ? "yes" : "no"});
  }

  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "\nPaper reference: exec time spans ~1.1 s (140 W) to ~15.3 s (floor),\n"
      "with non-monotone flag/binding choices across budgets.\n");
  return 0;
}
