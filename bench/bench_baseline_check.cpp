// Compares a BENCH_*.json artifact against a committed baseline
// (bench/baselines/*.json).  CTest pairs each bench smoke run with one
// of these checks through a fixture, so a perf or invariant regression
// fails CI with the violated bound spelled out instead of scrolling by.
//
//   bench_baseline_check <baseline.json> <candidate.json>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/bench_json.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <baseline.json> <candidate.json>\n", argv[0]);
    return 2;
  }
  std::string baseline_text;
  if (!read_file(argv[1], baseline_text)) {
    std::fprintf(stderr, "cannot read baseline %s\n", argv[1]);
    return 2;
  }
  std::string candidate_text;
  if (!read_file(argv[2], candidate_text)) {
    std::fprintf(stderr, "cannot read candidate %s (did the bench run first?)\n",
                 argv[2]);
    return 2;
  }
  try {
    const auto checks = socrates::parse_baseline(baseline_text);
    const auto failures = socrates::check_against_baseline(checks, candidate_text);
    for (const auto& failure : failures) {
      std::fprintf(stderr, "BASELINE VIOLATION: %s\n", failure.c_str());
    }
    if (!failures.empty()) return 1;
    std::printf("BASELINE OK: %zu check(s) against %s\n", checks.size(), argv[1]);
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "baseline check error: %s\n", error.what());
    return 2;
  }
}
