// Scenario: the deployment split mARGOt is designed around.
//
// Offline (design time, e.g. on a staging machine): run the toolchain,
// profile the DSE, and persist the application knowledge to a file.
// Online (production): load the knowledge — no profiling, no COBAYN,
// just the AS-RTM — and start adapting immediately.  The example also
// measures the real 2mm kernel with the monitor stack to show the
// real-hardware profiling path (wall clock; Joules only when the host
// exposes RAPL).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "margot/kb_io.hpp"
#include "socrates/adaptive_app.hpp"
#include "socrates/real_profile.hpp"
#include "socrates/pipeline.hpp"

int main() {
  using namespace socrates;
  using M = margot::ContextMetrics;

  const auto model = platform::PerformanceModel::paper_platform();
  const char* kb_path = "/tmp/socrates_2mm_knowledge.csv";

  // ---- offline: build + persist --------------------------------------
  {
    ToolchainOptions opts;
    opts.use_paper_cfs = true;
    opts.dse_repetitions = 5;
    Pipeline pipeline(model, opts);
    const auto binary = pipeline.build("2mm");
    std::ofstream out(kb_path);
    margot::save_knowledge(binary.knowledge, out);
    std::printf("offline: profiled %zu operating points -> %s\n",
                binary.knowledge.size(), kb_path);
  }

  // ---- online: load + adapt -------------------------------------------
  {
    std::ifstream in(kb_path);
    auto knowledge = margot::load_knowledge(in);
    std::printf("online:  loaded %zu operating points, starting the AS-RTM\n",
                knowledge.size());

    // Rebuild the runtime around the loaded knowledge.  The design
    // space is reconstructed from the same reduced space definition.
    ToolchainOptions opts;
    opts.use_paper_cfs = true;
    opts.dse_repetitions = 1;  // throwaway: only the space layout is used
    Pipeline pipeline(model, opts);
    auto binary = pipeline.build("2mm");
    binary.knowledge = std::move(knowledge);

    AdaptiveApplication app(std::move(binary), model);
    app.asrtm().set_rank(margot::Rank::minimize_energy(M::kExecTime, M::kPower));
    const auto s = app.run_iteration();
    std::printf("online:  min-energy pick: %s, %zu threads, %s -> %.0f ms @ %.1f W "
                "(%.1f J/run)\n",
                s.config_name.c_str(), s.threads, platform::to_string(s.binding),
                s.exec_time_s * 1e3, s.power_w, s.exec_time_s * s.power_w);
  }

  // ---- bonus: the real-hardware profiling path -------------------------
  const auto real = profile_real_kernel("2mm", 96, 5);
  std::printf("\nreal 2mm (n=96, %zu reps): %.2f ms +/- %.2f ms, checksum %.4f\n",
              real.repetitions, real.exec_time_mean_s * 1e3,
              real.exec_time_stddev_s * 1e3, real.checksum);
  if (real.energy_available) {
    std::printf("energy via %s: %.2f J (%.1f W avg)\n", real.energy_backend.c_str(),
                real.energy_mean_j, real.avg_power_w);
  } else {
    std::printf("energy: no RAPL on this host (backend '%s'), not fabricated\n",
                real.energy_backend.c_str());
  }
  return 0;
}
