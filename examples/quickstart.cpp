// Quickstart: from a plain Polybench source to a runtime-tuned kernel
// in ~40 lines of user code.
//
//   1. run the real 2mm kernel (actual computation, wall clock);
//   2. let the SOCRATES toolchain build the adaptive binary for it
//      (features -> COBAYN -> weaving -> DSE -> knowledge);
//   3. ask the AS-RTM for the best configuration under a 90 W cap;
//   4. run a few adaptive iterations and watch the selection settle.
#include <chrono>
#include <cstdio>

#include "kernels/registry.hpp"
#include "socrates/adaptive_app.hpp"
#include "socrates/pipeline.hpp"

int main() {
  using namespace socrates;
  using M = margot::ContextMetrics;

  // --- 1. the kernel is real code ------------------------------------
  const auto& bench = kernels::find_benchmark("2mm");
  const auto t0 = std::chrono::steady_clock::now();
  const double checksum = bench.run(/*n=*/96);
  const auto wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("real 2mm run:      checksum=%.6f  wall=%.1f ms\n", checksum, wall * 1e3);

  // --- 2. build the adaptive binary -----------------------------------
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;  // skip COBAYN training for a fast start
  opts.dse_repetitions = 3;
  Pipeline pipeline(model, opts);
  auto binary = pipeline.build("2mm");
  std::printf("adaptive binary:   %zu operating points, %zu kernel versions, "
              "%zu weaved LOC\n",
              binary.knowledge.size(), binary.woven.kernels[0].versions.size(),
              binary.woven.report.weaved_loc);

  // --- 3. one AS-RTM decision ------------------------------------------
  margot::Asrtm asrtm(binary.knowledge);
  asrtm.set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  asrtm.add_constraint({M::kPower, margot::ComparisonOp::kLessEqual, 90.0, 0, 1.0});
  const auto& op = asrtm.best_operating_point();
  const auto config = dse::decode_knobs(binary.space, op.knobs);
  std::printf("best under 90 W:   %s, %zu threads, %s  ->  %.0f ms @ %.1f W\n",
              binary.space.configs[static_cast<std::size_t>(op.knobs[0])].name.c_str(),
              config.threads, platform::to_string(config.binding),
              op.metrics[M::kExecTime].mean * 1e3, op.metrics[M::kPower].mean);

  // --- 4. run adaptively (simulated platform) ----------------------------
  AdaptiveApplication app(std::move(binary), model);
  app.asrtm().set_rank(margot::Rank::maximize_throughput_per_watt2(M::kThroughput,
                                                                   M::kPower));
  std::printf("\nadaptive run (energy-efficient policy, simulated machine):\n");
  for (int i = 0; i < 5; ++i) {
    const auto s = app.run_iteration();
    std::printf("  iter %d: t=%6.0f ms  P=%6.1f W  [%s, %zu threads, %s]%s\n", i,
                s.exec_time_s * 1e3, s.power_w, s.config_name.c_str(), s.threads,
                platform::to_string(s.binding),
                s.configuration_changed ? "  <- reconfigured" : "");
  }
  return 0;
}
