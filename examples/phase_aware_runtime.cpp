// Scenario: a batch pipeline whose requirements change per phase — the
// generalization of Figure 5 to several applications.
//
// Three Polybench workloads (compute-bound syrk, bandwidth-bound
// gemver, branchy nussinov) run back to back.  During "interactive
// hours" the pipeline must hit a throughput SLA at minimum power
// (constraint + minimize-power-style rank); overnight it switches to an
// energy-efficient Thr/W^2 policy.  Each application carries its own
// knowledge base, so the same policy lands on different knobs per
// kernel — the per-kernel autotuning granularity SOCRATES argues for.
//
// Each application also records its MAPE-K decision journal, and the
// example queries it after both phases: every knob change is printed
// with the requirement change (or drift) that triggered it.
#include <cstdio>
#include <vector>

#include "socrates/adaptive_app.hpp"
#include "socrates/pipeline.hpp"
#include "support/statistics.hpp"

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

void report(const char* phase, const char* bench, const std::vector<TraceSample>& trace) {
  RunningStats power;
  RunningStats thr;
  for (const auto& s : trace) {
    power.add(s.power_w);
    thr.add(1.0 / s.exec_time_s);
  }
  const auto& last = trace.back();
  std::printf("  %-12s %-9s avg %6.1f W  %7.2f runs/s  [%s, %zu threads, %s]\n", phase,
              bench, power.mean(), thr.mean(), last.config_name.c_str(), last.threads,
              platform::to_string(last.binding));
}

}  // namespace

int main() {
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.02;
  Pipeline pipeline(model, opts);

  std::printf("== phase-aware pipeline: per-kernel policies ==\n\n");

  for (const char* name : {"syrk", "gemver", "nussinov"}) {
    AdaptiveApplication app(pipeline.build(name), model, opts.work_scale);
    app.asrtm().enable_decision_journal();

    // Interactive phase: meet an SLA of 60% of this kernel's peak
    // throughput, and among the points that do, burn the least power.
    // (Rank: minimize power == maximize power^-1.)
    double peak_thr = 0.0;
    for (const auto& op : app.binary().knowledge.points())
      peak_thr = std::max(peak_thr, op.metrics[M::kThroughput].mean);
    app.asrtm().set_rank(margot::Rank{margot::RankDirection::kMinimize,
                                      {{M::kPower, 1.0}}});
    const auto sla = app.asrtm().add_constraint(
        {M::kThroughput, margot::ComparisonOp::kGreaterEqual, 0.6 * peak_thr, 0, 0.0});

    std::vector<TraceSample> interactive;
    app.run_until(app.now_s() + 30.0, interactive);
    report("interactive", name, interactive);

    // Overnight phase: drop the SLA, maximize Thr/W^2.
    app.asrtm().clear_constraints();
    (void)sla;
    app.asrtm().set_rank(
        margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
    std::vector<TraceSample> overnight;
    app.run_until(app.now_s() + 30.0, overnight);
    report("overnight", name, overnight);

    const double j_inter = interactive.back().power_w / (1.0 / interactive.back().exec_time_s);
    const double j_night = overnight.back().power_w / (1.0 / overnight.back().exec_time_s);
    std::printf("  %-12s %-9s energy/run: %5.2f J -> %5.2f J\n", "(J per run)", name,
                j_inter, j_night);

    // Why did the knobs move?  Query the MAPE-K decision journal.
    // Noisy feedback can produce hundreds of drift switches, so print
    // only the first and last few records.
    const auto& journal = app.asrtm().decision_journal();
    std::printf("  %-12s %-9s %zu operating-point switch(es):\n", "(journal)", name,
                journal.total_decisions());
    const auto& records = journal.records();
    const std::size_t n = records.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (n > 6 && i == 3) {
        std::printf("    ... %zu more ...\n", n - 6);
        i = n - 4;
        continue;
      }
      const auto& r = records[i];
      std::printf("    t=%6.1fs  op %-4zu <- %s\n", r.timestamp_s, r.chosen,
                  r.trigger.c_str());
    }
    std::printf("\n");
  }

  std::printf("Same policies, different knobs per kernel: that is the kernel-level\n"
              "granularity SOCRATES automates.\n");
  return 0;
}
