// Scenario: a batch pipeline whose requirements change per phase — the
// generalization of Figure 5 to several applications.
//
// Three Polybench workloads (compute-bound syrk, bandwidth-bound
// gemver, branchy nussinov) run back to back.  During "interactive
// hours" the pipeline must hit a throughput SLA at minimum power
// (constraint + minimize-power-style rank); overnight it switches to an
// energy-efficient Thr/W^2 policy.  Each application carries its own
// knowledge base, so the same policy lands on different knobs per
// kernel — the per-kernel autotuning granularity SOCRATES argues for.
//
// Each application also records its MAPE-K decision journal, and the
// example queries it after both phases: every knob change is printed
// with the requirement change (or drift) that triggered it.
//
// The closing section shows crash-safe knowledge: the runtime state a
// long-running pipeline learns (feedback corrections, quarantine, the
// active phase) is journaled by a CheckpointStore, so a killed process
// resumes at its pre-crash operating point instead of re-learning the
// platform from scratch.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "margot/checkpoint.hpp"
#include "margot/state_manager.hpp"
#include "socrates/adaptive_app.hpp"
#include "socrates/pipeline.hpp"
#include "support/statistics.hpp"

namespace {

using namespace socrates;
using M = margot::ContextMetrics;

void report(const char* phase, const char* bench, const std::vector<TraceSample>& trace) {
  RunningStats power;
  RunningStats thr;
  for (const auto& s : trace) {
    power.add(s.power_w);
    thr.add(1.0 / s.exec_time_s);
  }
  const auto& last = trace.back();
  std::printf("  %-12s %-9s avg %6.1f W  %7.2f runs/s  [%s, %zu threads, %s]\n", phase,
              bench, power.mean(), thr.mean(), last.config_name.c_str(), last.threads,
              platform::to_string(last.binding));
}

}  // namespace

int main() {
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.02;
  Pipeline pipeline(model, opts);

  std::printf("== phase-aware pipeline: per-kernel policies ==\n\n");

  for (const char* name : {"syrk", "gemver", "nussinov"}) {
    AdaptiveApplication app(pipeline.build(name), model, opts.work_scale);
    app.asrtm().enable_decision_journal();

    // Interactive phase: meet an SLA of 60% of this kernel's peak
    // throughput, and among the points that do, burn the least power.
    // (Rank: minimize power == maximize power^-1.)
    double peak_thr = 0.0;
    for (const auto& op : app.binary().knowledge.points())
      peak_thr = std::max(peak_thr, op.metrics[M::kThroughput].mean);
    app.asrtm().set_rank(margot::Rank{margot::RankDirection::kMinimize,
                                      {{M::kPower, 1.0}}});
    const auto sla = app.asrtm().add_constraint(
        {M::kThroughput, margot::ComparisonOp::kGreaterEqual, 0.6 * peak_thr, 0, 0.0});

    std::vector<TraceSample> interactive;
    app.run_until(app.now_s() + 30.0, interactive);
    report("interactive", name, interactive);

    // Overnight phase: drop the SLA, maximize Thr/W^2.
    app.asrtm().clear_constraints();
    (void)sla;
    app.asrtm().set_rank(
        margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
    std::vector<TraceSample> overnight;
    app.run_until(app.now_s() + 30.0, overnight);
    report("overnight", name, overnight);

    const double j_inter = interactive.back().power_w / (1.0 / interactive.back().exec_time_s);
    const double j_night = overnight.back().power_w / (1.0 / overnight.back().exec_time_s);
    std::printf("  %-12s %-9s energy/run: %5.2f J -> %5.2f J\n", "(J per run)", name,
                j_inter, j_night);

    // Why did the knobs move?  Query the MAPE-K decision journal.
    // Noisy feedback can produce hundreds of drift switches, so print
    // only the first and last few records.
    const auto& journal = app.asrtm().decision_journal();
    std::printf("  %-12s %-9s %zu operating-point switch(es):\n", "(journal)", name,
                journal.total_decisions());
    const auto& records = journal.records();
    const std::size_t n = records.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (n > 6 && i == 3) {
        std::printf("    ... %zu more ...\n", n - 6);
        i = n - 4;
        continue;
      }
      const auto& r = records[i];
      std::printf("    t=%6.1fs  op %-4zu <- %s\n", r.timestamp_s, r.chosen,
                  r.trigger.c_str());
    }
    std::printf("\n");
  }

  std::printf("Same policies, different knobs per kernel: that is the kernel-level\n"
              "granularity SOCRATES automates.\n\n");

  // ---- crash-safe knowledge: kill the process, keep the learning --------
  std::printf("== kill-and-resume: the overnight phase survives a crash ==\n");
  namespace fs = std::filesystem;
  const auto ckpt_dir = fs::temp_directory_path() / "socrates_phase_aware_ckpt";
  fs::remove_all(ckpt_dir);
  fs::create_directories(ckpt_dir);
  const std::string ckpt = (ckpt_dir / "syrk.ckpt").string();

  const auto knowledge = pipeline.build("syrk").knowledge;  // artifact-cache hit
  const auto define_phases = [](margot::StateManager& states) {
    states.define_state("interactive", {},
                        margot::Rank{margot::RankDirection::kMinimize,
                                     {{M::kPower, 1.0}}});
    states.define_state("overnight", {},
                        margot::Rank::maximize_throughput_per_watt2(M::kThroughput,
                                                                    M::kPower));
  };

  std::size_t best_before = 0;
  {
    margot::Asrtm live(knowledge);
    margot::CheckpointStore store(ckpt);
    store.attach(live);
    margot::StateManager states(live);
    define_phases(states);
    states.switch_to("overnight");
    // A stretch of overnight operation: the platform runs ~15% slower
    // than the design-time knowledge promised, and the AS-RTM learns it.
    for (int i = 0; i < 20; ++i) {
      const auto op = live.find_best_operating_point();
      live.send_feedback(op, M::kExecTime,
                         knowledge[op].metrics[M::kExecTime].mean * 1.15);
    }
    best_before = live.find_best_operating_point();
    std::printf("  before the crash: phase '%s', operating point %zu, "
                "exec-time correction %.3f\n",
                states.active_state().c_str(), best_before,
                live.correction(M::kExecTime));
    // Scope exit without detach(): the process "dies" here — no final
    // snapshot, only the append-only journal survives.
  }

  margot::Asrtm resumed(knowledge);
  margot::CheckpointStore store(ckpt);
  const auto restore = store.attach(resumed);
  // Requirements are application-owned: re-create the phases, then
  // re-activate the journaled one.
  margot::StateManager states(resumed);
  define_phases(states);
  if (!restore.active_state.empty()) states.switch_to(restore.active_state);
  std::printf("  after restart:    %s -> phase '%s', operating point %zu, "
              "exec-time correction %.3f\n",
              restore.note.c_str(), states.active_state().c_str(),
              resumed.find_best_operating_point(), resumed.correction(M::kExecTime));
  std::printf("  %s\n", resumed.find_best_operating_point() == best_before
                            ? "The restarted runtime resumed exactly where it was killed."
                            : "MISMATCH: the replayed state diverged!");
  store.detach();
  fs::remove_all(ckpt_dir);
  return 0;
}
