// Toolchain tour: every stage of Figure 1, verbose, for one benchmark.
//
// Shows what each SOCRATES component produces on the way from original
// source to adaptive binary:
//   stage 1  GCC-Milepost  -> static feature vector of the kernel
//   stage 2  COBAYN        -> 4 predicted flag configurations (CF1-4)
//   stage 3  LARA/MANET    -> the woven adaptive source (excerpt)
//   stage 4  DSE           -> profiled operating points + Pareto front
//   stage 5  mARGOt        -> a first AS-RTM decision on the knowledge
//
// Usage: toolchain_tour [benchmark]   (default: correlation)
#include <cstdio>
#include <string>

#include "cobayn/cobayn.hpp"
#include "ir/printer.hpp"
#include "margot/context.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "socrates/pipeline.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace socrates;
  using M = margot::ContextMetrics;

  const std::string name = argc > 1 ? argv[1] : "correlation";
  const auto model = platform::PerformanceModel::paper_platform();

  ToolchainOptions opts;
  opts.corpus_size = 48;
  opts.dse_repetitions = 3;
  Pipeline pipeline(model, opts);

  std::printf("==== SOCRATES toolchain tour: %s ====\n\n", name.c_str());
  const auto binary = pipeline.build(name);

  // Stage 1: static features.
  std::printf("[1] GCC-Milepost static features of %s:\n",
              kernels::find_benchmark(name).kernel_function.c_str());
  const auto& fnames = features::FeatureVector::names();
  for (const std::size_t idx : cobayn::CobaynModel::model_feature_indices())
    std::printf("      %-22s = %.2f\n", fnames[idx].c_str(), binary.kernel_features[idx]);

  // Stage 2: COBAYN predictions.
  std::printf("\n[2] COBAYN predicted flag configurations (trained on %zu synthetic "
              "kernels):\n",
              opts.corpus_size);
  for (const auto& cf : binary.custom_configs)
    std::printf("      %s = -%s\n", cf.name.c_str(),
                replace_all(cf.config.pragma_options(), ",", " -f").c_str());

  // Stage 3: weaving.
  const auto& report = binary.woven.report;
  std::printf("\n[3] LARA weaving: Att=%zu Act=%zu, %zu -> %zu logical LOC "
              "(bloat %.2f)\n",
              report.attributes, report.actions, report.original_loc,
              report.weaved_loc, report.bloat());
  std::printf("    woven source excerpt (first 24 lines):\n");
  const std::string woven_text = ir::print(binary.woven.unit);
  std::size_t shown = 0;
  for (const auto& line : split(woven_text, '\n')) {
    std::printf("      | %s\n", line.c_str());
    if (++shown >= 24) break;
  }

  // Stage 4: DSE.
  const auto front = dse::pareto_filter(binary.profile);
  std::printf("\n[4] DSE: %zu operating points profiled, %zu Pareto-optimal\n",
              binary.profile.size(), front.size());

  // Stage 5: a decision.
  margot::Asrtm asrtm(binary.knowledge);
  asrtm.set_rank(margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
  const auto& op = asrtm.best_operating_point();
  const auto config = dse::decode_knobs(binary.space, op.knobs);
  std::printf("\n[5] AS-RTM (maximize Thr/W^2): %s, %zu threads, %s "
              "-> %.0f ms @ %.1f W\n",
              binary.space.configs[static_cast<std::size_t>(op.knobs[0])].name.c_str(),
              config.threads, platform::to_string(config.binding),
              op.metrics[M::kExecTime].mean * 1e3, op.metrics[M::kPower].mean);

  // Under the hood: the staged pipeline that ran all of the above.
  std::printf("\nPipeline stages (%zu jobs):\n", pipeline.pool().jobs());
  for (const auto& stage : pipeline.last_report().stages)
    std::printf("      %-14s %8.3f ms%s\n", stage.name.c_str(),
                stage.seconds * 1e3, stage.cache_hit ? "  (cache hit)" : "");
  return 0;
}
