// Scenario: a compute node under a datacenter power cap that changes
// during the day (the energy-budget evolution the paper's introduction
// motivates: "the energy/power budget can evolve depending on external
// events").
//
// A 2mm-based service runs continuously; the facility sends a new power
// cap every 60 simulated seconds.  The AS-RTM keeps minimizing kernel
// time subject to the current cap, adapting compiler version, thread
// count and binding on the fly.  A static -O3/32-thread baseline is
// replayed under the same schedule for comparison: it is faster only
// while the cap is generous and *violates* every tight cap.
#include <cstdio>
#include <vector>

#include "kernels/registry.hpp"
#include "socrates/adaptive_app.hpp"
#include "socrates/pipeline.hpp"
#include "support/statistics.hpp"

int main() {
  using namespace socrates;
  using M = margot::ContextMetrics;

  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.02;
  Pipeline pipeline(model, opts);

  // The day's cap schedule (W): generous -> brownout -> recovery.
  const std::vector<double> caps = {130.0, 110.0, 70.0, 55.0, 90.0, 140.0};

  AdaptiveApplication app(pipeline.build("2mm"), model, opts.work_scale);
  app.asrtm().set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  const auto cap_constraint = app.asrtm().add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, caps[0], 0, 1.0});

  std::printf("== power-capped server: 2mm service under a changing cap ==\n\n");
  std::printf("%-10s %-10s %-12s %-12s %-24s %s\n", "window", "cap [W]", "power [W]",
              "exec [ms]", "configuration", "within cap?");

  double total_iters = 0.0;
  double violations = 0.0;
  for (std::size_t window = 0; window < caps.size(); ++window) {
    app.asrtm().set_constraint_goal(cap_constraint, caps[window]);
    std::vector<TraceSample> trace;
    app.run_until(static_cast<double>(window + 1) * 60.0, trace);

    RunningStats power;
    RunningStats exec;
    for (const auto& s : trace) {
      power.add(s.power_w);
      exec.add(s.exec_time_s * 1e3);
      if (s.power_w > caps[window] * 1.05) violations += 1.0;  // 5% measurement slack
    }
    total_iters += static_cast<double>(trace.size());
    const auto& last = trace.back();
    char config_text[64];
    std::snprintf(config_text, sizeof config_text, "%s/%zut/%s",
                  last.config_name.c_str(), last.threads,
                  platform::to_string(last.binding));
    std::printf("%-10zu %-10.0f %-12.1f %-12.1f %-24s %s\n", window, caps[window],
                power.mean(), exec.mean(), config_text,
                power.mean() <= caps[window] * 1.02 ? "yes" : "NO");
  }

  std::printf("\nadaptive service:  %.0f kernel iterations, %.0f cap violations\n",
              total_iters, violations);

  // --- static baseline: best unconstrained config, never adapts --------
  platform::KernelExecutor baseline(model, kernels::find_benchmark("2mm").model,
                                    opts.work_scale, /*seed=*/13);
  platform::Configuration static_cfg;
  static_cfg.flags = platform::FlagConfig(platform::OptLevel::kO3);
  static_cfg.threads = 32;
  static_cfg.binding = platform::BindingPolicy::kClose;
  double static_iters = 0.0;
  double static_violations = 0.0;
  for (std::size_t window = 0; window < caps.size(); ++window) {
    while (baseline.clock().now_s() < static_cast<double>(window + 1) * 60.0) {
      const auto m = baseline.run(static_cfg);
      static_iters += 1.0;
      if (m.avg_power_w > caps[window] * 1.05) static_violations += 1.0;
    }
  }
  std::printf("static -O3/32t:    %.0f kernel iterations, %.0f cap violations\n",
              static_iters, static_violations);
  std::printf("\nThe static baseline wins raw iterations but tramples every tight cap;\n"
              "the adaptive service stays inside the budget envelope throughout.\n");
  return 0;
}
