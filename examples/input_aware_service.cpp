// Scenario: a service whose request sizes vary wildly — the data-
// feature use case (mARGOt's input-aware knowledge).
//
// A gemver-based analytics service receives batches of requests; small
// batches are cache resident and scale across many threads, full-size
// batches hit the memory-bandwidth wall early.  The toolchain profiles
// the kernel at three representative scales; at runtime every batch
// declares its size and the application transparently switches to the
// nearest knowledge cluster before the AS-RTM decides.  A single-
// knowledge run (profiled only at full size) handles the same request
// mix for comparison — its decisions are tuned for the wrong input on
// the small batches.
#include <cstdio>
#include <vector>

#include "socrates/input_aware_app.hpp"
#include "socrates/pipeline.hpp"
#include "support/statistics.hpp"

int main() {
  using namespace socrates;
  using M = margot::ContextMetrics;

  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  Pipeline pipeline(model, opts);

  std::printf("== input-aware service: gemver with varying batch sizes ==\n\n");

  InputAwareApplication app(build_input_aware(pipeline, "gemver", {0.01, 0.2, 1.0}),
                            model);
  app.set_rank_all(margot::Rank::maximize_throughput(M::kThroughput));

  // The request mix: (scale, batches) pairs.
  const std::vector<std::pair<double, int>> mix = {
      {0.01, 40}, {1.0, 4}, {0.05, 30}, {0.3, 8}, {1.0, 4}, {0.02, 40}};

  std::printf("%-12s %-9s %-12s %-24s %s\n", "batch scale", "cluster", "exec [ms]",
              "chosen configuration", "switched?");
  for (const auto& [scale, batches] : mix) {
    const bool switched = app.set_input(scale);
    RunningStats exec;
    TraceSample last{};
    for (int b = 0; b < batches; ++b) {
      last = app.run_iteration();
      exec.add(last.exec_time_s * 1e3);
    }
    char config_text[64];
    std::snprintf(config_text, sizeof config_text, "%s / %zu threads / %s",
                  last.config_name.c_str(), last.threads,
                  platform::to_string(last.binding));
    std::printf("%-12.2f %-9zu %-12.2f %-24s %s\n", scale, app.active_cluster(),
                exec.mean(), config_text, switched ? "yes" : "no");
  }

  std::printf(
      "\nSmall batches pick deeper thread counts than full-size ones: the\n"
      "bandwidth wall sits elsewhere per input, and the per-cluster knowledge\n"
      "captures that where a single full-size profile cannot.\n");
  return 0;
}
