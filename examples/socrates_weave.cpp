// socrates_weave: the source-to-source tool as a command line.
//
// Weaves a C file (or a bundled Polybench benchmark) with the
// Multiversioning + Autotuner strategies and prints the adaptive C
// source on stdout; the Table I metrics go to stderr so the output can
// be piped into a file or a compiler.
//
//   socrates_weave 2mm                 # bundled benchmark by name
//   socrates_weave path/to/app.c       # any C file in the subset
//   socrates_weave 2mm --metrics-only  # just the Att/Act/LOC row
//   socrates_weave app.c --autotune    # + run the whole toolchain and
//                                      #   print AS-RTM decisions
//
// The input must contain at least one function whose name starts with
// "kernel_" and a main() that calls it.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ir/printer.hpp"
#include "kernels/sources.hpp"
#include "margot/context.hpp"
#include "socrates/pipeline.hpp"
#include "weaver/report.hpp"

namespace {

bool is_bundled(const std::string& name) {
  for (const auto& b : socrates::kernels::benchmark_names())
    if (b == name) return true;
  for (const auto& b : socrates::kernels::extended_benchmark_names())
    if (b == name) return true;
  return false;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "socrates_weave: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace socrates;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: socrates_weave <benchmark-name | file.c> [--metrics-only]\n"
                 "bundled benchmarks:");
    for (const auto& b : kernels::benchmark_names())
      std::fprintf(stderr, " %s", b.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  const std::string target = argv[1];
  const bool metrics_only = argc > 2 && std::strcmp(argv[2], "--metrics-only") == 0;
  const bool autotune = argc > 2 && std::strcmp(argv[2], "--autotune") == 0;

  const std::string source =
      is_bundled(target) ? kernels::benchmark_source(target) : read_file(target);

  try {
    const auto woven = weaver::weave_benchmark_paper_space(target, source);
    if (!metrics_only && !autotune) std::fputs(ir::print(woven.unit).c_str(), stdout);
    const auto& r = woven.report;
    std::fprintf(stderr,
                 "socrates_weave: %s  Att=%zu Act=%zu O-LOC=%zu W-LOC=%zu D-LOC=%zu "
                 "Bloat=%.2f  (%zu kernel(s), %zu versions each)\n",
                 target.c_str(), r.attributes, r.actions, r.original_loc, r.weaved_loc,
                 r.delta_loc(), r.bloat(), woven.kernels.size(),
                 woven.kernels.empty() ? 0 : woven.kernels.front().versions.size());
    if (autotune) {
      using M = margot::ContextMetrics;
      const auto model = platform::PerformanceModel::paper_platform();
      ToolchainOptions opts;
      opts.dse_repetitions = 3;
      Pipeline pipeline(model, opts);
      const auto binary = is_bundled(target)
                              ? pipeline.build(target)
                              : pipeline.build_from_source(target, source);

      std::printf("COBAYN-reduced compiler space:");
      for (const auto& c : binary.space.configs) std::printf(" %s", c.name.c_str());
      std::printf("\n%zu operating points profiled. AS-RTM decisions:\n",
                  binary.knowledge.size());

      const auto decide = [&](const char* label, const margot::Rank& rank) {
        margot::Asrtm asrtm(binary.knowledge);
        asrtm.set_rank(rank);
        const auto& op = asrtm.best_operating_point();
        const auto config = dse::decode_knobs(binary.space, op.knobs);
        std::printf("  %-22s %s, %zu threads, %s -> %.0f ms @ %.1f W\n", label,
                    binary.space.configs[static_cast<std::size_t>(op.knobs[0])]
                        .name.c_str(),
                    config.threads, platform::to_string(config.binding),
                    op.metrics[M::kExecTime].mean * 1e3, op.metrics[M::kPower].mean);
      };
      decide("min exec time:", margot::Rank::minimize_exec_time(M::kExecTime));
      decide("max Thr/W^2:",
             margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
      decide("min energy/run:", margot::Rank::minimize_energy(M::kExecTime, M::kPower));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "socrates_weave: %s\n", e.what());
    return 1;
  }
  return 0;
}
