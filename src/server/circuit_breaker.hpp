// Per-tenant circuit breaker.
//
// A tenant that misbehaves — floods non-finite feedback, flaps its
// goals hundreds of times a second — burns shard CPU on work the
// AS-RTM will reject or churn on.  The breaker quarantines such a
// tenant with classic closed → open → half-open semantics:
//
//   closed     requests pass; errors inside a sliding window are
//              counted, and `error_threshold` of them trip the breaker.
//   open       every request is rejected for a cooldown that grows
//              exponentially (base_cooldown * 2^consecutive_trips,
//              capped at max_cooldown) — the same backoff discipline as
//              the AS-RTM's variant quarantine and the supervisor's
//              retry schedule.
//   half-open  after the cooldown a probe trickle is admitted:
//              `probe_quota` consecutive successes close the breaker
//              (and reset the backoff); a single error re-opens it with
//              a doubled cooldown.
//
// Time is injected (seconds, caller's clock), so tests drive the state
// machine deterministically; there is no internal clock and no thread.
// The caller serializes access (the server holds the tenant's ingress
// mutex).
#pragma once

#include <cstddef>

namespace socrates::server {

class CircuitBreaker {
 public:
  struct Options {
    std::size_t error_threshold = 32;  ///< errors in window to trip
    double window_s = 1.0;             ///< sliding error-count window
    double base_cooldown_s = 0.25;     ///< first open cooldown
    double max_cooldown_s = 8.0;       ///< backoff ceiling
    std::size_t probe_quota = 4;       ///< half-open successes to close
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// True when a request may pass at `now_s`.  Drives the
  /// open → half-open transition when the cooldown has elapsed.
  bool allow(double now_s);

  /// Records a misbehaviour observation (non-finite feedback, goal
  /// flood).  May trip closed → open or re-open a half-open breaker.
  void record_error(double now_s);

  /// Records a healthy, accepted request.  In half-open, counts toward
  /// the probe quota that closes the breaker.
  void record_ok(double now_s);

  /// Trips the breaker immediately, regardless of the error window —
  /// used when the server itself decides a tenant must be quarantined
  /// (an exception escaped its AS-RTM, a rebuild failed).  No-op when
  /// already open.
  void force_open(double now_s);

  State state() const { return state_; }
  /// Lifetime closed/half-open → open transitions.
  std::size_t trips() const { return trips_; }
  double cooldown_s() const;

 private:
  void trip(double now_s);

  Options options_;
  State state_ = State::kClosed;
  double window_start_s_ = 0.0;
  std::size_t window_errors_ = 0;
  double opened_at_s_ = 0.0;
  std::size_t consecutive_trips_ = 0;  ///< resets when the breaker closes
  std::size_t probe_successes_ = 0;
  std::size_t trips_ = 0;
};

const char* to_string(CircuitBreaker::State state);

}  // namespace socrates::server
