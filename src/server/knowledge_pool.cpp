#include "server/knowledge_pool.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>

#include "cobayn/cobayn.hpp"
#include "margot/kb_io.hpp"
#include "observability/metrics.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/serialize.hpp"

namespace socrates::server {

namespace {

/// A posterior can only be the 128-combo COBAYN export; anything bigger
/// in a pool file is corruption, not data.
constexpr std::size_t kMaxPosterior = 4096;

void write_entry(std::ostream& os, const PoolEntry& e) {
  os << "entry " << e.donor.size() << '\n' << e.donor << '\n';
  os << "features";
  for (const double v : e.features.values) os << ' ' << format_exact(v);
  os << '\n';
  os << "posterior " << e.posterior.size();
  for (const double p : e.posterior) os << ' ' << format_exact(p);
  os << '\n';
  os << "weight " << format_exact(e.posterior_weight) << ' ' << e.feedback_updates
     << '\n';
  const std::string kb = margot::knowledge_to_string(e.representatives);
  os << "kb " << kb.size() << '\n' << kb;
}

/// Reads one `label <len>\n<len raw bytes>` block.
std::string read_block(std::istream& in, const char* label) {
  std::string tag;
  std::size_t len = 0;
  in >> tag >> len;
  SOCRATES_REQUIRE_MSG(in && tag == label, "pool: expected '" << label << "' block");
  in.get();  // the newline after the length
  std::string body(len, '\0');
  in.read(body.data(), static_cast<std::streamsize>(len));
  SOCRATES_REQUIRE_MSG(static_cast<std::size_t>(in.gcount()) == len,
                       "pool: truncated '" << label << "' block");
  return body;
}

PoolEntry read_entry(std::istream& in) {
  PoolEntry e;
  e.donor = read_block(in, "entry");
  std::string tag;
  in >> tag;
  SOCRATES_REQUIRE_MSG(in && tag == "features", "pool: expected 'features'");
  for (double& v : e.features.values) v = parse_exact(in);
  std::size_t n = 0;
  in >> tag >> n;
  SOCRATES_REQUIRE_MSG(in && tag == "posterior" && n <= kMaxPosterior,
                       "pool: bad posterior block");
  e.posterior.resize(n);
  for (double& p : e.posterior) p = parse_exact(in);
  in >> tag;
  SOCRATES_REQUIRE_MSG(in && tag == "weight", "pool: expected 'weight'");
  e.posterior_weight = parse_exact(in);
  in >> e.feedback_updates;
  SOCRATES_REQUIRE_MSG(static_cast<bool>(in), "pool: bad update count");
  in.get();  // the newline before the kb block
  e.representatives = margot::knowledge_from_string(read_block(in, "kb"));
  return e;
}

Gauge& entries_gauge() {
  static Gauge& g = MetricsRegistry::global().gauge("server.pool_entries");
  return g;
}

Counter& corrupt_counter() {
  static Counter& c =
      MetricsRegistry::global().counter("server.pool_corrupt_entries");
  return c;
}

}  // namespace

KnowledgePool::KnowledgePool(Options options) : options_(std::move(options)) {
  options_.generations = std::max<std::size_t>(1, options_.generations);
  options_.max_entries = std::max<std::size_t>(1, options_.max_entries);
  options_.max_representatives = std::max<std::size_t>(1, options_.max_representatives);
  options_.distance_threshold = std::max(0.0, options_.distance_threshold);
  if (!options_.path.empty()) load_from_disk();
  entries_gauge().set(static_cast<double>(entries_.size()));
}

std::string KnowledgePool::generation_path(std::size_t generation) const {
  return generation == 0 ? options_.path
                         : options_.path + "." + std::to_string(generation);
}

void KnowledgePool::load_from_disk() {
  // Newest generation first; a corrupt file (bad magic, short payload,
  // hash mismatch, unparsable entry) falls through to the next rung
  // instead of failing construction — pool loss degrades new tenants
  // to cold starts, which is always safe.
  for (std::size_t g = 0; g < options_.generations; ++g) {
    std::ifstream in(generation_path(g), std::ios::binary);
    if (!in) continue;  // missing generation: normal on first boot
    try {
      std::string magic, version;
      std::size_t payload_bytes = 0;
      std::uint64_t expected_hash = 0;
      in >> magic >> version >> payload_bytes >> expected_hash;
      SOCRATES_REQUIRE_MSG(in && magic == "socrates-pool" && version == "v1",
                           "pool: not a pool file");
      in.get();  // header newline
      std::string payload(payload_bytes, '\0');
      in.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
      SOCRATES_REQUIRE_MSG(static_cast<std::size_t>(in.gcount()) == payload_bytes,
                           "pool: truncated payload");
      SOCRATES_REQUIRE_MSG(stable_hash64(payload) == expected_hash,
                           "pool: payload hash mismatch");

      std::istringstream body(payload);
      std::string tag;
      std::size_t count = 0;
      body >> tag >> count;
      SOCRATES_REQUIRE_MSG(body && tag == "entries" && count <= options_.max_entries,
                           "pool: bad entry count");
      std::vector<PoolEntry> loaded;
      loaded.reserve(count);
      for (std::size_t i = 0; i < count; ++i) loaded.push_back(read_entry(body));
      entries_ = std::move(loaded);
      if (g > 0)
        log_warn() << "knowledge pool: recovered from generation " << g << " ("
                   << generation_path(g) << ")";
      return;
    } catch (const std::exception& e) {
      corrupt_counter().add(1);
      log_warn() << "knowledge pool: generation " << g << " unusable: " << e.what();
    }
  }
}

bool KnowledgePool::save() const {
  if (options_.path.empty()) return true;
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(mu_);
    os << "entries " << entries_.size() << '\n';
    for (const auto& e : entries_) write_entry(os, e);
  }
  const std::string payload = os.str();

  // Rotate the generation chain (best effort: a missing older
  // generation is fine), then publish tmp+rename so a crash mid-write
  // never clobbers the newest good file.
  std::error_code ec;
  for (std::size_t g = options_.generations; g-- > 1;)
    std::filesystem::rename(generation_path(g - 1), generation_path(g), ec);

  const std::string tmp = options_.path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      log_warn() << "knowledge pool: cannot write " << tmp;
      return false;
    }
    out << "socrates-pool v1 " << payload.size() << ' ' << stable_hash64(payload)
        << '\n'
        << payload;
    out.flush();
    if (!out) {
      std::filesystem::remove(tmp, ec);
      log_warn() << "knowledge pool: short write on " << tmp;
      return false;
    }
  }
  std::filesystem::rename(tmp, options_.path, ec);
  if (ec) {
    log_warn() << "knowledge pool: cannot publish " << options_.path << ": "
               << ec.message();
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

void KnowledgePool::publish(PoolEntry entry) {
  static Counter& publishes =
      MetricsRegistry::global().counter("server.pool_publishes");
  entry.representatives =
      prune_representatives(entry.representatives, options_.max_representatives);
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = std::find_if(entries_.begin(), entries_.end(),
                               [&](const PoolEntry& e) { return e.donor == entry.donor; });
  if (existing != entries_.end())
    *existing = std::move(entry);
  else
    entries_.push_back(std::move(entry));
  while (entries_.size() > options_.max_entries) entries_.erase(entries_.begin());
  publishes.add(1);
  entries_gauge().set(static_cast<double>(entries_.size()));
}

std::optional<PoolMatch> KnowledgePool::lookup(const features::FeatureVector& fv) const {
  static Counter& hits = MetricsRegistry::global().counter("server.pool_hits");
  static Counter& misses = MetricsRegistry::global().counter("server.pool_misses");
  std::lock_guard<std::mutex> lock(mu_);
  const PoolEntry* best = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const auto& e : entries_) {
    const double d = feature_distance(fv, e.features);
    if (d < best_distance) {  // strict: ties go to the earliest publish
      best_distance = d;
      best = &e;
    }
  }
  if (best == nullptr || best_distance > options_.distance_threshold) {
    misses.add(1);
    return std::nullopt;
  }
  ChaosEngine& chaos = ChaosEngine::global();
  if (chaos.enabled() && chaos.corrupt_pool("server.pool")) {
    // An injected corrupt entry: the match is voided and the caller
    // cold-starts — the contract a real damaged entry must also meet.
    corrupt_counter().add(1);
    misses.add(1);
    return std::nullopt;
  }
  hits.add(1);
  return PoolMatch{*best, best_distance};
}

std::size_t KnowledgePool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

double KnowledgePool::feature_distance(const features::FeatureVector& a,
                                       const features::FeatureVector& b) {
  const auto& indices = cobayn::CobaynModel::model_feature_indices();
  double sum_sq = 0.0;
  for (const std::size_t idx : indices) {
    const double va = a[idx];
    const double vb = b[idx];
    if (!std::isfinite(va) || !std::isfinite(vb))
      return std::numeric_limits<double>::infinity();
    const double rel = std::abs(va - vb) / (1.0 + std::abs(va) + std::abs(vb));
    sum_sq += rel * rel;
  }
  return std::sqrt(sum_sq / static_cast<double>(indices.size()));
}

margot::KnowledgeBase KnowledgePool::prune_representatives(
    const margot::KnowledgeBase& kb, std::size_t cap) {
  if (cap == 0 || kb.size() <= cap) return kb;
  // Order by the first metric's mean — in the server's schema that is
  // the primary EFP (e.g. exec time) — and keep both extremes plus an
  // evenly spaced spread between them.  Deterministic: stable sort,
  // index tie-break, integer position arithmetic.
  std::vector<std::size_t> order(kb.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (!kb.metric_names().empty()) {
    const double* means = kb.metric_means(0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return means[a] < means[b]; });
  }
  margot::KnowledgeBase pruned(kb.knob_names(), kb.metric_names());
  if (cap == 1) {
    pruned.add(kb[order.front()]);
    return pruned;
  }
  for (std::size_t k = 0; k < cap; ++k) {
    const std::size_t pos = k * (kb.size() - 1) / (cap - 1);
    pruned.add(kb[order[pos]]);
  }
  return pruned;
}

}  // namespace socrates::server
