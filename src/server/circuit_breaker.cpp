#include "server/circuit_breaker.hpp"

#include <algorithm>

#include "observability/metrics.hpp"

namespace socrates::server {

const char* to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

double CircuitBreaker::cooldown_s() const {
  // Exponential backoff on consecutive trips, like the AS-RTM's
  // variant quarantine: 2^(trips-1) * base, capped.
  const std::size_t shift =
      std::min<std::size_t>(consecutive_trips_ > 0 ? consecutive_trips_ - 1 : 0, 32);
  const double cooldown =
      options_.base_cooldown_s * static_cast<double>(std::size_t{1} << shift);
  return std::min(cooldown, options_.max_cooldown_s);
}

void CircuitBreaker::trip(double now_s) {
  state_ = State::kOpen;
  opened_at_s_ = now_s;
  ++consecutive_trips_;
  ++trips_;
  window_errors_ = 0;
  probe_successes_ = 0;
  MetricsRegistry::global().counter("server.breaker_trips").add(1);
}

bool CircuitBreaker::allow(double now_s) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_s - opened_at_s_ >= cooldown_s()) {
        state_ = State::kHalfOpen;
        probe_successes_ = 0;
        MetricsRegistry::global().counter("server.breaker_half_opens").add(1);
        return true;
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::record_error(double now_s) {
  if (state_ == State::kHalfOpen) {
    // A probe failed: straight back to open with a doubled cooldown.
    trip(now_s);
    return;
  }
  if (state_ == State::kOpen) return;  // already quarantined
  if (now_s - window_start_s_ >= options_.window_s) {
    window_start_s_ = now_s;
    window_errors_ = 0;
  }
  if (++window_errors_ >= options_.error_threshold) trip(now_s);
}

void CircuitBreaker::force_open(double now_s) {
  if (state_ == State::kOpen) return;
  trip(now_s);
}

void CircuitBreaker::record_ok(double now_s) {
  (void)now_s;
  if (state_ != State::kHalfOpen) return;
  if (++probe_successes_ >= options_.probe_quota) {
    state_ = State::kClosed;
    consecutive_trips_ = 0;  // healthy again: backoff resets
    window_errors_ = 0;
    MetricsRegistry::global().counter("server.breaker_closes").add(1);
  }
}

}  // namespace socrates::server
