// Cross-tenant COBAYN knowledge pool.
//
// SOCRATES's central claim is that what was learned tuning one kernel
// transfers to *similar* kernels (COBAYN conditions its Bayesian
// network on static features; Luo et al., arXiv 1407.4075, show
// representative operating-point sets transfer across applications
// whose feature vectors are close).  The multi-tenant server exploits
// that: when a tenant has converged — enough feedback applied that its
// corrected knowledge is trustworthy — the server publishes the
// tenant's *corrected* representative set plus its COBAYN posterior
// into this pool, keyed by the kernel's feature vector.  When a new
// tenant registers with features within a normalized distance threshold
// of a pooled entry, its knowledge base is seeded from the donor's
// representatives and its DSE seed stage can be warm-started from the
// pooled posterior (TwoStageExplorer::Params::warm_flat_seeds), so a
// short-running workload skips most of its cold feedback phase
// (docs/SERVER.md, "Cross-tenant knowledge sharing").
//
// Concurrency: one mutex over a small entry vector — publishes happen
// at convergence (rare) and lookups at tenant registration (rare); the
// feedback/decision hot paths never touch the pool.
//
// Crash safety: save() writes a single self-validating file (header
// with payload length + content hash) through tmp+rename, rotating
// the same generation chain the checkpoint layer uses (`pool`,
// `pool.1`, ...).  Loading walks the generations newest-first and
// falls back past corrupt ones, counting `server.pool_corrupt_entries`
// — a damaged pool degrades new tenants to cold starts, never crashes
// the server.  The chaos site "server.pool" (`pool-corrupt` key)
// simulates exactly that on lookup.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "features/features.hpp"
#include "margot/operating_point.hpp"

namespace socrates::server {

/// One donor kernel's transferable knowledge.
struct PoolEntry {
  std::string donor;                     ///< tenant name (replace-on-republish key)
  features::FeatureVector features;      ///< the donor kernel's static features
  margot::KnowledgeBase representatives; ///< pruned, feedback-corrected points
  std::vector<double> posterior;         ///< exported COBAYN posterior (may be empty)
  double posterior_weight = 0.0;         ///< merge weight (e.g. training rows)
  std::uint64_t feedback_updates = 0;    ///< evidence behind the corrections

  // A KnowledgeBase has no empty schema, so a default entry carries a
  // one-column placeholder until publish/load assigns the real one.
  PoolEntry() : representatives({"_"}, {"_"}) {}
};

/// A lookup hit: a copy of the matched entry plus its distance.
struct PoolMatch {
  PoolEntry entry;
  double distance = 0.0;
};

class KnowledgePool {
 public:
  struct Options {
    /// Normalized feature distance below which an entry is "similar
    /// enough" to seed from (see feature_distance).
    double distance_threshold = 0.25;
    std::size_t max_entries = 256;         ///< FIFO eviction beyond this
    std::size_t max_representatives = 16;  ///< per-entry pruning cap
    std::string path;                      ///< "" = memory-only pool
    std::size_t generations = 2;           ///< snapshot files kept on disk
  };

  /// Loads the newest parseable generation when `options.path` names a
  /// file (missing files are a normal first boot, not an error).
  explicit KnowledgePool(Options options);

  /// Inserts (or, same donor, replaces) an entry.  The representative
  /// set is pruned to max_representatives; the oldest entry is evicted
  /// beyond max_entries.  Updates the `server.pool_entries` gauge and
  /// counts `server.pool_publishes`.
  void publish(PoolEntry entry);

  /// Nearest entry within the distance threshold, or nullopt.  Ties
  /// break toward the earliest-published entry, so the result is a
  /// deterministic function of the publish history.  Counts
  /// `server.pool_hits` / `server.pool_misses`; the "server.pool"
  /// chaos site can void a hit (counted as a corrupt entry).
  std::optional<PoolMatch> lookup(const features::FeatureVector& fv) const;

  std::size_t size() const;
  const Options& options() const { return options_; }

  /// Persists the pool (no-op, true, when memory-only).  Rotates
  /// generations and writes tmp+rename; false on I/O failure (the
  /// in-memory pool stays intact).
  bool save() const;

  /// Normalized distance between two feature vectors over the
  /// model-relevant features (CobaynModel::model_feature_indices):
  /// RMS of |a-b| / (1 + |a| + |b|) per feature — scale-free, in
  /// [0, ~1), and 0 for identical kernels.
  static double feature_distance(const features::FeatureVector& a,
                                 const features::FeatureVector& b);

  /// At most `cap` points of `kb`, keeping both extremes of the first
  /// metric and an evenly spaced spread between them (deterministic).
  static margot::KnowledgeBase prune_representatives(const margot::KnowledgeBase& kb,
                                                     std::size_t cap);

 private:
  std::string generation_path(std::size_t generation) const;
  void load_from_disk();

  Options options_;
  mutable std::mutex mu_;
  std::vector<PoolEntry> entries_;  ///< publish order (oldest first)
};

}  // namespace socrates::server
