// Overload-safe multi-tenant AS-RTM server.
//
// SOCRATES as a *service*: many applications (tenants) share one
// autotuning runtime instead of linking their own.  Each tenant brings
// a design-time knowledge base and its requirements; the server owns a
// margot::Asrtm per tenant, shards tenants across supervised worker
// threads, and keeps the two runtime paths of the paper's MAPE-K loop
// fast and safe under overload:
//
//   feedback (write) — submit_feedback() is admission-controlled
//       (token bucket, circuit breaker), then enqueued on the owning
//       shard's bounded lock-free ring (server/mpsc_ring.hpp) under the
//       configured backpressure policy.  The shard worker batch-drains
//       the ring and applies events to the AS-RTM, where group-commit
//       checkpointing (margot/checkpoint.hpp) journals them.
//
//   decision (read) — decide() takes the tenant lock and serves the
//       O(1) epoch-cached find_best_operating_point(); feedback that
//       did not move a correction past the decision epsilon never
//       invalidates the cache, so decisions stay cheap while feedback
//       floods.
//
// Robustness mechanisms (contract in docs/SERVER.md):
//   - per-tenant TokenBucket rate limiting and a max_tenants admission
//     cap: a noisy tenant is rejected at the door;
//   - per-tenant CircuitBreaker: non-finite feedback and goal-flapping
//     trip it, quarantining the tenant with exponential-backoff
//     half-open probing;
//   - a watchdog thread monitors per-shard heartbeats; a stalled shard
//     (chaos-injected or real) is restarted with supervisor backoff and
//     its tenants are rebuilt from their checkpoints;
//   - destruction is crash-equivalent (no final snapshot): a new server
//     pointed at the same checkpoint directory recovers every tenant,
//     losing at most one uncommitted journal batch each.
//
// Observability: every path bumps `server.*` metrics in the PR 3
// registry; docs/OBSERVABILITY.md lists them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "features/features.hpp"
#include "margot/asrtm.hpp"
#include "margot/checkpoint.hpp"
#include "margot/operating_point.hpp"
#include "server/circuit_breaker.hpp"
#include "server/knowledge_pool.hpp"
#include "server/mpsc_ring.hpp"
#include "server/token_bucket.hpp"

namespace socrates::server {

struct ServerOptions {
  std::size_t shards = 2;            ///< worker threads / rings, >= 1
  std::size_t ring_capacity = 4096;  ///< per-shard ring slots (rounded to 2^k)
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  std::size_t batch_drain = 128;     ///< max events a worker drains per wakeup
  std::size_t max_tenants = 1024;    ///< admission cap; registration beyond it fails

  // Per-tenant ingress contract.
  double rate_limit_per_s = 0.0;     ///< token-bucket refill; 0 = unlimited
  double rate_burst = 256.0;         ///< token-bucket ceiling
  CircuitBreaker::Options breaker;   ///< quarantine policy
  std::size_t goal_update_threshold = 64;  ///< goal updates per window before
                                           ///< flapping counts as breaker errors
  double goal_window_s = 1.0;

  // Shard supervision.
  double shard_stall_deadline_s = 0.5;  ///< heartbeat silence that counts as a stall
  double watchdog_period_s = 0.05;
  double restart_backoff_base_s = 0.01; ///< supervisor-style backoff between restarts
  double restart_backoff_max_s = 0.5;

  // Crash safety ("" disables persistence).
  std::string checkpoint_dir;
  std::size_t journal_capacity = 4096;  ///< events between automatic snapshots
  std::size_t group_commit = 64;        ///< journal lines per write+flush
  // Durable-storage resilience knobs, forwarded to every tenant's
  // CheckpointStore (margot/checkpoint.hpp): snapshot generations kept
  // on disk, fsync-on-commit, degraded-mode re-probe backoff, and the
  // per-tenant journal disk quota (0 = unbounded).
  std::size_t checkpoint_generations = 2;
  bool checkpoint_fsync = false;
  double checkpoint_probe_base_s = 0.05;
  double checkpoint_probe_max_s = 2.0;
  std::size_t checkpoint_journal_max_bytes = 0;

  // Cross-tenant knowledge sharing (server/knowledge_pool.hpp;
  // docs/SERVER.md, "Cross-tenant knowledge sharing").  When enabled, a
  // tenant registered through create_tenant() with a feature vector is
  // warm-started from the nearest converged donor within
  // pool_distance_threshold, and publishes its own corrected knowledge
  // back once pool_publish_after feedback events have been applied.
  bool share_knowledge = true;
  double pool_distance_threshold = 0.25;    ///< normalized feature distance
  std::size_t pool_publish_after = 64;      ///< applied events before a tenant donates
  std::size_t pool_max_representatives = 16;
  std::size_t pool_max_entries = 256;

  /// Reads the SOCRATES_SERVER_* knobs (docs/SERVER.md) over these
  /// defaults through support/env (clamped, warn-once):
  ///   SOCRATES_SERVER_SHARDS, _RING, _BATCH, _MAX_TENANTS,
  ///   _GROUP_COMMIT, _JOURNAL_CAP (sizes), _POLICY
  ///   ("block" | "drop-oldest" | "reject"),
  ///   _SHARE_KNOWLEDGE ("0" disables the pool),
  ///   _POOL_DISTANCE, _POOL_PUBLISH, _POOL_REPS, _POOL_ENTRIES.
  /// The storage-resilience knobs come from the checkpoint layer's own
  /// environment (SOCRATES_CHECKPOINT_GENERATIONS, _FSYNC, _PROBE_MS —
  /// see CheckpointStore::Options::from_env), so one setting governs
  /// embedded and served AS-RTMs alike.
  static ServerOptions from_env();
};

/// One feedback observation in flight between submit and apply.
struct FeedbackEvent {
  std::uint32_t slot = 0;    ///< tenant index
  std::uint32_t metric = 0;
  std::uint32_t op = 0;
  double value = 0.0;
};

/// Outcome of an ingress call (submit_feedback / update_goal).
enum class Admission {
  kAccepted,     ///< enqueued (or applied, for goals)
  kShed,         ///< ring full under kReject: the event was refused
  kRateLimited,  ///< token bucket empty
  kQuarantined,  ///< circuit breaker open
  kInvalid,      ///< malformed request: non-finite / non-positive
                 ///< observation or out-of-range op/metric index
                 ///< (each counts as a breaker error)
};

const char* to_string(Admission admission);

/// Optional per-tenant context handed to Server::create_tenant.  A
/// tenant with a feature vector participates in cross-tenant knowledge
/// sharing: it can be warm-started from a similar converged donor at
/// registration and donates its own corrected knowledge back once it
/// converges.  A tenant without features (the default) always cold
/// starts and never donates — byte-identical to register_tenant.
struct TenantProfile {
  std::optional<features::FeatureVector> features;
  /// The tenant's own COBAYN posterior over compiler configurations
  /// (CobaynModel::export_posterior), merged with a matched donor's at
  /// warm start.  Empty = adopt the donor's posterior unweighted.
  std::vector<double> posterior;
  double posterior_weight = 0.0;
};

/// What Server::create_tenant did.
struct CreateResult {
  bool created = false;        ///< false: cap reached or runtime build threw
  std::uint64_t handle = 0;    ///< valid only when created
  bool warm_started = false;   ///< knowledge was seeded from a pool donor
  std::string donor;           ///< donor tenant name when warm_started
  double pool_distance = 0.0;  ///< feature distance to the donor
  std::size_t seeded_points = 0;  ///< donor points merged into the KB
  /// Merged posterior (donor ⊕ own, weight-proportional) for
  /// warm-starting a DSE run (TwoStageExplorer::Params::warm_flat_seeds
  /// via CobaynModel::top_configs); empty on a cold start.
  std::vector<double> warm_posterior;
};

class Server {
 public:
  using TenantHandle = std::uint64_t;

  explicit Server(ServerOptions options);
  /// Crash-equivalent: workers are stopped and joined, but no final
  /// snapshot is written — buffered journal batches are dropped exactly
  /// as a kill would drop them.  Call checkpoint_all() first for a
  /// clean shutdown.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServerOptions& options() const { return options_; }

  // ---- tenant lifecycle ------------------------------------------------
  /// Registers a tenant: its AS-RTM is built from `knowledge`,
  /// `configure` (may be empty) applies requirements, and — when the
  /// server persists — a CheckpointStore attaches, restoring any prior
  /// state for this tenant name.  `configure` is retained and re-run
  /// when a shard restart rebuilds the tenant.  Returns false (and
  /// counts server.tenants_rejected) when max_tenants are registered or
  /// when the AS-RTM build / configure functor throws.
  bool register_tenant(const std::string& name, margot::KnowledgeBase knowledge,
                       std::function<void(margot::Asrtm&)> configure,
                       TenantHandle* out_handle);

  /// register_tenant plus cross-tenant knowledge sharing.  When the
  /// pool is enabled and `profile` carries a feature vector, the pool
  /// is probed for a converged donor within the distance threshold:
  /// on a hit, donor representatives overwrite matching knob
  /// configurations in `knowledge` (their metrics are
  /// feedback-corrected, hence more trustworthy than design-time
  /// estimates), new configurations are appended, and the result's
  /// warm_posterior carries the donor⊕own merged COBAYN posterior.  A
  /// donor whose knob/metric schema differs is skipped
  /// (server.pool_schema_mismatches) — the tenant cold-starts.
  ///
  /// Exception safety at the slot boundary: a registration that fails
  /// after admission (runtime build or configure throws) releases its
  /// reserved slot, so the next create_tenant can reuse it and the
  /// max_tenants cap is never eroded by failed attempts.
  CreateResult create_tenant(const std::string& name, margot::KnowledgeBase knowledge,
                             std::function<void(margot::Asrtm&)> configure,
                             const TenantProfile& profile = {});

  /// The pool, or nullptr when sharing is disabled (tests, benches).
  KnowledgePool* knowledge_pool() { return pool_.get(); }

  std::size_t tenant_count() const { return tenant_count_.load(std::memory_order_acquire); }

  // ---- the two runtime paths ------------------------------------------
  /// Admission-controlled, policy-mediated enqueue of one observation.
  /// Malformed requests — op_index/metric outside the tenant's
  /// knowledge base, non-finite or non-positive observations — are
  /// refused at ingress with kInvalid and count as breaker errors, so
  /// a flood of them quarantines the sender instead of reaching (and
  /// tripping contracts inside) the shard worker.
  Admission submit_feedback(TenantHandle handle, std::size_t op_index,
                            std::size_t metric, double observed);

  /// Best operating point for the tenant right now (the O(1) cached
  /// decision path when nothing moved).
  std::size_t decide(TenantHandle handle);

  /// Batched decision sweep: writes the best operating point of
  /// handles[i] to out[i] (out must be at least handles.size() long).
  /// Every locked decide publishes its result stamped with the
  /// tenant's mutation stamp; a sweep serves tenants whose stamp has
  /// not moved straight from that published pair — no tenant lock, no
  /// AS-RTM call, no allocation — and takes the lock once only for
  /// tenants whose decision inputs actually changed since.  At steady
  /// state a sweep is therefore three atomic loads per tenant, which
  /// is what makes per-invocation decision overhead affordable for
  /// short-running kernels (ROADMAP item 1 / item 3).  Returns the
  /// number of tenants served lock-free; bumps the server.batch_*
  /// metrics.  Safe to call concurrently with feedback, goal updates
  /// and shard restarts.
  std::size_t decide_batch(std::span<const TenantHandle> handles,
                           std::span<std::size_t> out);

  /// Whole-shard sweep: decides every tenant living on `shard` (in
  /// slot order), writing its handle and best point to the parallel
  /// output spans.  Returns the number of tenants written; throws when
  /// either span is too small.  Same fast path and metrics as
  /// decide_batch.
  std::size_t decide_shard(std::size_t shard, std::span<TenantHandle> out_handles,
                           std::span<std::size_t> out_best);

  /// Changes a constraint goal.  Goal updates beyond
  /// goal_update_threshold per goal_window_s count as breaker errors
  /// (oscillating-tenant quarantine) and are rejected.
  Admission update_goal(TenantHandle handle, std::size_t constraint_handle,
                        double goal);

  // ---- flow control / persistence -------------------------------------
  /// Blocks until every accepted event has been drained (applied or
  /// shed) and the rings are empty, or `timeout_s` elapses.  True on
  /// full drain.
  bool drain(double timeout_s);

  /// Snapshots every tenant's checkpoint now (clean-shutdown point).
  /// Also republishes every featured tenant's corrected knowledge into
  /// the pool — convergence threshold waived at the clean-shutdown
  /// point — and persists the pool alongside the checkpoints.
  void checkpoint_all();

  // ---- introspection ---------------------------------------------------
  struct Stats {
    std::uint64_t submitted = 0;     ///< submit_feedback calls
    std::uint64_t accepted = 0;      ///< events enqueued (incl. flood copies)
    std::uint64_t shed = 0;          ///< evicted (kDropOldest) or refused (kReject)
    std::uint64_t rate_limited = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t invalid = 0;
    std::uint64_t drained = 0;       ///< events applied by shard workers
    std::uint64_t shard_restarts = 0;
    std::uint64_t breaker_trips = 0; ///< over all tenants
    std::size_t tenants = 0;
    std::size_t durability_degraded = 0;  ///< tenants serving from memory only
    // Cross-tenant knowledge sharing (0 when the pool is disabled).
    std::size_t pool_entries = 0;    ///< donors currently in the pool
    std::size_t warm_started = 0;    ///< tenants seeded from a donor
  };
  Stats stats() const;

  struct TenantStatus {
    std::uint64_t applied = 0;         ///< feedback events applied to the AS-RTM
    CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
    std::uint64_t breaker_trips = 0;
    std::size_t buffered_events = 0;   ///< journal lines a crash now would lose
    std::uint64_t journaled_events = 0;
    std::uint64_t snapshots = 0;
    // Disk health (margot::CheckpointStore::DiskStatus).  A degraded
    // tenant still serves decisions and applies feedback in memory; it
    // re-establishes durability with a full snapshot at the next
    // successful re-probe.
    bool durability_degraded = false;
    std::uint64_t disk_io_errors = 0;
    std::uint64_t disk_recoveries = 0;
    std::uint64_t disk_events_dropped = 0;
    std::string disk_last_error;
  };
  TenantStatus tenant_status(TenantHandle handle);

  /// Runs `fn` with the tenant's AS-RTM under its lock (tests, benches).
  void with_tenant(TenantHandle handle, const std::function<void(margot::Asrtm&)>& fn);

  // ---- test hooks ------------------------------------------------------
  /// Replaces the ingress clock (seconds; token bucket, breaker, goal
  /// window).  Install before traffic; default is the steady clock
  /// relative to server construction.
  void set_time_source(std::function<double()> now);

  /// Parks shard `shard` for `seconds` at its next loop iteration —
  /// deterministic stand-in for the chaos shard-stall site.
  void inject_stall(std::size_t shard, double seconds);

  std::size_t shard_of(TenantHandle handle) const;

 private:
  struct Tenant {
    std::string name;
    std::uint32_t slot = 0;
    std::size_t shard = 0;
    margot::KnowledgeBase knowledge;                 ///< retained for rebuilds
    std::function<void(margot::Asrtm&)> configure;   ///< re-applied on rebuild
    // Ingress-validation bounds cached from the (immutable) knowledge
    // base so submit_feedback can range-check without any lock.
    std::size_t op_count = 0;
    std::size_t metric_count = 0;

    // Knowledge-sharing profile (immutable after registration).  A
    // tenant only donates to / draws from the pool when has_features.
    bool has_features = false;
    features::FeatureVector features;
    std::vector<double> posterior;    ///< own COBAYN posterior (may be empty)
    double posterior_weight = 0.0;
    bool warm_started = false;        ///< seeded from a donor at creation
    /// Set by the shard worker once this tenant's corrected knowledge
    /// has been donated (one automatic publish per tenant; a later
    /// checkpoint_all refreshes it).
    std::atomic<bool> pool_published{false};

    std::mutex mu;  ///< guards asrtm + store (shard worker vs. decide/goal)
    std::unique_ptr<margot::Asrtm> asrtm;
    std::unique_ptr<margot::CheckpointStore> store;  ///< null when not persisting

    std::mutex ingress_mu;  ///< guards bucket/breaker/goal window (submitters)
    TokenBucket bucket;
    CircuitBreaker breaker;
    double goal_window_start_s = 0.0;
    std::size_t goal_updates_in_window = 0;

    std::atomic<std::uint64_t> applied{0};

    // Published decision for decide_batch's lock-free fast path.  A
    // locked decide stores the chosen index (pub_best, release) and
    // then the mutation stamp it decided under (pub_stamp, release);
    // every locked mutation of the AS-RTM bumps mutation_stamp.  A
    // sweep reads pub_stamp, pub_best, mutation_stamp in that order
    // (all acquire): a stamp match proves the best it read was decided
    // from inputs that have not moved since — without touching the
    // asrtm pointer, so a concurrent shard-restart swap cannot be
    // observed mid-free.
    static constexpr std::uint64_t kNeverPublished =
        std::numeric_limits<std::uint64_t>::max();
    std::atomic<std::uint64_t> mutation_stamp{0};
    std::atomic<std::uint64_t> pub_stamp{kNeverPublished};
    std::atomic<std::size_t> pub_best{0};

    explicit Tenant(margot::KnowledgeBase kb) : knowledge(std::move(kb)) {}
  };

  struct Shard {
    std::unique_ptr<MpscRing<FeedbackEvent>> ring;
    std::thread worker;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> heartbeat{0};      ///< bumped each worker loop
    std::atomic<double> injected_stall_s{0.0};    ///< consumed at loop top
    std::atomic<std::uint64_t> drained{0};
    std::atomic<std::uint64_t> restarts{0};
    // Watchdog-side bookkeeping (watchdog thread only).
    std::uint64_t last_heartbeat_seen = 0;
    double silent_since_s = 0.0;
  };

  double now_s() const;
  double steady_now_s() const;  ///< real clock (watchdog), never overridden
  /// Tenants currently in checkpoint degraded (in-memory) mode.
  std::size_t count_durability_degraded() const;
  void start_shard(std::size_t index);
  void shard_worker(std::size_t index);
  void watchdog_loop();
  /// Stops, recovers and respawns a stalled shard: every tenant on it
  /// is rebuilt from its knowledge base + configure functor and its
  /// checkpoint replayed (the stalled store's buffered batch is lost,
  /// crash-equivalently).  A tenant whose rebuild throws (e.g. a buggy
  /// configure functor) is quarantined — breaker forced open, old
  /// runtime kept for reads — and the remaining tenants still recover;
  /// the watchdog thread never sees the exception.
  void restart_shard(std::size_t index);
  /// Builds a fresh AS-RTM (+ checkpoint store) for `tenant` and swaps
  /// it in.  Strong-ish exception safety: if the AS-RTM construction or
  /// configure functor throws, the tenant's previous runtime is left
  /// untouched; only a throwing checkpoint attach can leave it on the
  /// old runtime without persistence.
  void build_tenant_runtime(Tenant& tenant);
  std::string checkpoint_path(const std::string& name) const;
  /// Decides under the tenant lock (caller holds tenant.mu) and
  /// publishes the result for the lock-free sweep path.
  std::size_t decide_locked(Tenant& tenant);
  /// One sweep step: serves the published decision when the mutation
  /// stamp matches (returns true), otherwise takes the lock and
  /// decides (returns false).
  bool decide_one(Tenant& tenant, std::size_t& out);
  /// Merges a pool donor's representatives into `knowledge` (same knob
  /// config → metrics replaced, new config → appended).  Returns the
  /// number of donor points merged; 0 on schema mismatch.
  static std::size_t seed_knowledge(margot::KnowledgeBase& knowledge,
                                    const margot::KnowledgeBase& donor);
  /// Donates `tenant`'s feedback-corrected knowledge to the pool: each
  /// metric column scaled by the AS-RTM's current correction factor.
  /// Takes tenant.mu; no-op when the pool is off or the tenant has no
  /// features.
  void publish_to_pool(Tenant& tenant);

  ServerOptions options_;
  std::function<double()> now_;  ///< ingress clock (test-overridable)
  std::chrono::steady_clock::time_point anchor_;

  // Fixed-size slot array (max_tenants entries, allocated once in the
  // constructor).  Slots are filled in order under registration_mu_ and
  // published by the tenant_count_ release store; lock-free readers on
  // the hot path index only slots below their acquire-loaded count, so
  // no container ever mutates under them.
  std::unique_ptr<std::unique_ptr<Tenant>[]> tenants_;
  std::atomic<std::size_t> tenant_count_{0};
  std::mutex registration_mu_;

  /// Cross-tenant knowledge pool; null when options_.share_knowledge is
  /// off (create_tenant then behaves exactly like register_tenant).
  std::unique_ptr<KnowledgePool> pool_;
  std::atomic<std::size_t> warm_started_{0};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::thread watchdog_;
  std::atomic<bool> shutdown_{false};  ///< aborts blocked producers + watchdog

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> invalid_{0};
};

}  // namespace socrates::server
