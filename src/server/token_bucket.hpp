// Per-tenant token-bucket rate limiter.
//
// Admission control for the multi-tenant server (docs/SERVER.md): each
// tenant refills `rate` tokens per second up to a `burst` ceiling, and
// every accepted feedback submission spends one.  A tenant that floods
// beyond its contract is rejected at the door — before its events cost
// ring space or shard CPU — so one noisy tenant cannot starve the
// others.  Time is injected (seconds on the caller's clock) so tests
// and the simulated platform drive it deterministically.
#pragma once

#include "support/error.hpp"

namespace socrates::server {

class TokenBucket {
 public:
  /// Unlimited: every admit() succeeds.
  TokenBucket() = default;

  /// `rate_per_s` tokens per second, holding at most `burst`.  The
  /// bucket starts full.  A rate of 0 means unlimited.
  TokenBucket(double rate_per_s, double burst) {
    SOCRATES_REQUIRE(rate_per_s >= 0.0);
    SOCRATES_REQUIRE(burst >= 1.0);
    rate_ = rate_per_s;
    burst_ = burst;
    tokens_ = burst;
    unlimited_ = rate_per_s <= 0.0;
  }

  bool unlimited() const { return unlimited_; }

  /// True when `cost` tokens are available at `now_s` (and spends them).
  bool admit(double now_s, double cost = 1.0) {
    if (unlimited_) return true;
    if (now_s > last_s_) {
      tokens_ += (now_s - last_s_) * rate_;
      if (tokens_ > burst_) tokens_ = burst_;
      last_s_ = now_s;
    }
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_s_ = 0.0;
  bool unlimited_ = true;
};

}  // namespace socrates::server
