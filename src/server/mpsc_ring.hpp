// Bounded lock-free ring buffer for the server's feedback ingest.
//
// The multi-tenant server (docs/SERVER.md) funnels feedback updates
// from many client threads into one worker per shard.  The queue in
// the middle must be bounded (overload may not grow memory without
// limit), lock-free (a million pushes a second cannot share a mutex)
// and *sheddable* (when the ring is full, the configured backpressure
// policy decides who loses).
//
// The ring is Vyukov's bounded MPMC queue: each cell carries a
// sequence number; producers claim a slot with one CAS on the enqueue
// cursor and publish with a release store of the cell sequence;
// consumers mirror the dance on the dequeue cursor.  Although the
// server uses it as an MPSC queue (one drain thread per shard), full
// MPMC semantics are load-bearing: the *drop-oldest* backpressure
// policy has the producer dequeue the oldest entry to make room, which
// is only safe because any thread may legally consume.
//
// Backpressure policies (the overload contract of docs/SERVER.md):
//   kBlock      — spin/yield until space frees; no loss, producers pay.
//   kDropOldest — evict the oldest queued event and retry; bounded
//                 staleness, newest data wins (telemetry-style).
//   kReject     — fail the push; the caller counts and the client is
//                 told to back off (admission-control style).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>

#include "support/error.hpp"

namespace socrates::server {

enum class BackpressurePolicy { kBlock, kDropOldest, kReject };

const char* to_string(BackpressurePolicy policy);

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to the next power of two (cursor masking).
  explicit MpscRing(std::size_t capacity) {
    SOCRATES_REQUIRE(capacity >= 2);
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i <= mask_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Lock-free push; false when the ring is full.
  bool try_push(const T& value) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Lock-free pop; false when the ring is empty.
  bool try_pop(T& out) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          out = cell.value;
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Pops up to `max` entries into `out`; returns how many (the
  /// shard's batch-drain primitive).
  std::size_t pop_batch(T* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && try_pop(out[n])) ++n;
    return n;
  }

  bool empty() const { return approx_size() == 0; }

  /// Instantaneous occupancy; exact only when producers and the
  /// consumer are quiescent (used for gauges and tests).
  std::size_t approx_size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< enqueue cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< dequeue cursor
};

/// Outcome of a policy-mediated push.
struct PushResult {
  bool accepted = false;
  std::size_t shed = 0;  ///< entries evicted to make room (kDropOldest)
};

/// Pushes under the given backpressure policy.  `abort` (optional) lets
/// a kBlock producer bail out on server shutdown instead of spinning
/// forever.
template <typename T>
PushResult push_with_policy(MpscRing<T>& ring, const T& value,
                            BackpressurePolicy policy,
                            const std::atomic<bool>* abort = nullptr) {
  PushResult result;
  switch (policy) {
    case BackpressurePolicy::kBlock:
      while (!ring.try_push(value)) {
        if (abort != nullptr && abort->load(std::memory_order_relaxed)) return result;
        std::this_thread::yield();
      }
      result.accepted = true;
      return result;
    case BackpressurePolicy::kDropOldest:
      while (!ring.try_push(value)) {
        T evicted;
        if (ring.try_pop(evicted)) ++result.shed;
      }
      result.accepted = true;
      return result;
    case BackpressurePolicy::kReject:
      result.accepted = ring.try_push(value);
      return result;
  }
  return result;
}

}  // namespace socrates::server
