#include "server/server.hpp"

#include <cmath>
#include <filesystem>
#include <thread>

#include "cobayn/cobayn.hpp"
#include "observability/metrics.hpp"
#include "support/chaos.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace socrates::server {

namespace {

void sleep_s(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Supervisor-style exponential backoff between restarts of one shard.
double restart_backoff_s(const ServerOptions& options, std::uint64_t restarts) {
  if (options.restart_backoff_base_s <= 0.0) return 0.0;
  const std::uint64_t shift = restarts < 16 ? restarts : 16;
  const double backoff =
      options.restart_backoff_base_s * static_cast<double>(std::uint64_t{1} << shift);
  return backoff < options.restart_backoff_max_s ? backoff
                                                 : options.restart_backoff_max_s;
}

/// Tenant names become checkpoint file names; anything exotic maps to '_'.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

const char* to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
    case BackpressurePolicy::kReject: return "reject";
  }
  return "?";
}

const char* to_string(Admission admission) {
  switch (admission) {
    case Admission::kAccepted: return "accepted";
    case Admission::kShed: return "shed";
    case Admission::kRateLimited: return "rate-limited";
    case Admission::kQuarantined: return "quarantined";
    case Admission::kInvalid: return "invalid";
  }
  return "?";
}

ServerOptions ServerOptions::from_env() {
  ServerOptions o;
  o.shards = env::size_or("SOCRATES_SERVER_SHARDS", o.shards, 1, 64);
  o.ring_capacity = env::size_or("SOCRATES_SERVER_RING", o.ring_capacity, 2, 1u << 20);
  o.batch_drain = env::size_or("SOCRATES_SERVER_BATCH", o.batch_drain, 1, 1u << 16);
  o.max_tenants = env::size_or("SOCRATES_SERVER_MAX_TENANTS", o.max_tenants, 1, 1u << 20);
  o.group_commit = env::size_or("SOCRATES_SERVER_GROUP_COMMIT", o.group_commit, 1, 1u << 16);
  o.journal_capacity =
      env::size_or("SOCRATES_SERVER_JOURNAL_CAP", o.journal_capacity, 1, 1u << 24);
  const std::string policy = env::choice_or(
      "SOCRATES_SERVER_POLICY", "block", {"block", "drop-oldest", "reject"});
  if (policy == "drop-oldest") {
    o.policy = BackpressurePolicy::kDropOldest;
  } else if (policy == "reject") {
    o.policy = BackpressurePolicy::kReject;
  } else {
    o.policy = BackpressurePolicy::kBlock;
  }
  o.share_knowledge = env::flag_or("SOCRATES_SERVER_SHARE_KNOWLEDGE", o.share_knowledge);
  o.pool_distance_threshold = env::real_or("SOCRATES_SERVER_POOL_DISTANCE",
                                           o.pool_distance_threshold, 0.0, 10.0);
  o.pool_publish_after =
      env::size_or("SOCRATES_SERVER_POOL_PUBLISH", o.pool_publish_after, 1, 1u << 24);
  o.pool_max_representatives =
      env::size_or("SOCRATES_SERVER_POOL_REPS", o.pool_max_representatives, 1, 4096);
  o.pool_max_entries =
      env::size_or("SOCRATES_SERVER_POOL_ENTRIES", o.pool_max_entries, 1, 1u << 20);
  // Storage-resilience knobs ride the checkpoint layer's own env
  // (SOCRATES_CHECKPOINT_GENERATIONS / _FSYNC / _PROBE_MS) so embedded
  // and served AS-RTMs are governed by one setting.
  margot::CheckpointStore::Options copts;
  copts.generations = o.checkpoint_generations;
  copts.fsync_on_commit = o.checkpoint_fsync;
  copts.probe_base_s = o.checkpoint_probe_base_s;
  copts.probe_max_s = o.checkpoint_probe_max_s;
  copts.journal_max_bytes = o.checkpoint_journal_max_bytes;
  copts = margot::CheckpointStore::Options::from_env(copts);
  o.checkpoint_generations = copts.generations;
  o.checkpoint_fsync = copts.fsync_on_commit;
  o.checkpoint_probe_base_s = copts.probe_base_s;
  o.checkpoint_probe_max_s = copts.probe_max_s;
  o.checkpoint_journal_max_bytes = copts.journal_max_bytes;
  return o;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), anchor_(std::chrono::steady_clock::now()) {
  SOCRATES_REQUIRE(options_.shards >= 1);
  SOCRATES_REQUIRE(options_.ring_capacity >= 2);
  SOCRATES_REQUIRE(options_.batch_drain >= 1);
  SOCRATES_REQUIRE(options_.max_tenants >= 1);
  SOCRATES_REQUIRE(options_.group_commit >= 1);
  // Fixed-size slot array: the hot path indexes it lock-free, gated
  // only on tenant_count_, and the array itself never reallocates or
  // mutates once a slot is published.
  tenants_ = std::make_unique<std::unique_ptr<Tenant>[]>(options_.max_tenants);
  if (!options_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      log_warn() << "server: cannot create checkpoint dir " << options_.checkpoint_dir
                 << ": " << ec.message() << " — persistence disabled";
      options_.checkpoint_dir.clear();
    }
  }
  if (options_.share_knowledge) {
    KnowledgePool::Options popts;
    popts.distance_threshold = options_.pool_distance_threshold;
    popts.max_entries = options_.pool_max_entries;
    popts.max_representatives = options_.pool_max_representatives;
    popts.generations = options_.checkpoint_generations;
    // The pool persists next to the tenant checkpoints (memory-only
    // when persistence is off) and shares their generation policy.
    if (!options_.checkpoint_dir.empty())
      popts.path = options_.checkpoint_dir + "/knowledge_pool.kp";
    pool_ = std::make_unique<KnowledgePool>(std::move(popts));
  }
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring = std::make_unique<MpscRing<FeedbackEvent>>(options_.ring_capacity);
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < options_.shards; ++i) start_shard(i);
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Server::~Server() {
  shutdown_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  for (auto& shard : shards_) {
    shard->stop.store(true, std::memory_order_release);
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Tenants (and their CheckpointStores) now destruct crash-equivalently:
  // no final snapshot, buffered group-commit batches dropped.
}

double Server::steady_now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - anchor_)
      .count();
}

double Server::now_s() const { return now_ ? now_() : steady_now_s(); }

void Server::set_time_source(std::function<double()> now) { now_ = std::move(now); }

std::string Server::checkpoint_path(const std::string& name) const {
  return options_.checkpoint_dir + "/" + sanitize(name) + ".ckpt";
}

void Server::build_tenant_runtime(Tenant& tenant) {
  // Build the replacement runtime off to the side first: a throwing
  // Asrtm constructor or tenant configure functor must leave the live
  // runtime untouched so the caller can quarantine instead of crash.
  auto asrtm = std::make_unique<margot::Asrtm>(tenant.knowledge);
  if (tenant.configure) tenant.configure(*asrtm);
  // Commit point.  Order matters: the old store holds a pointer into
  // the old AS-RTM as its event sink (and the journal file open), so it
  // dies first; only then may the new store replay that journal into
  // the new AS-RTM.  The old store's buffered batch is dropped,
  // crash-equivalently.
  tenant.store.reset();
  if (!options_.checkpoint_dir.empty()) {
    margot::CheckpointStore::Options copts;
    copts.journal_capacity = options_.journal_capacity;
    copts.group_commit = options_.group_commit;
    copts.generations = options_.checkpoint_generations;
    copts.fsync_on_commit = options_.checkpoint_fsync;
    copts.probe_base_s = options_.checkpoint_probe_base_s;
    copts.probe_max_s = options_.checkpoint_probe_max_s;
    copts.journal_max_bytes = options_.checkpoint_journal_max_bytes;
    auto store = std::make_unique<margot::CheckpointStore>(
        checkpoint_path(tenant.name), copts);
    store->attach(*asrtm);
    tenant.store = std::move(store);
  }
  tenant.asrtm = std::move(asrtm);
  // A rebuilt runtime invalidates any published decision: bump the
  // mutation stamp so batch sweeps fall back to a locked decide.
  tenant.mutation_stamp.fetch_add(1, std::memory_order_release);
}

bool Server::register_tenant(const std::string& name, margot::KnowledgeBase knowledge,
                             std::function<void(margot::Asrtm&)> configure,
                             TenantHandle* out_handle) {
  const CreateResult result =
      create_tenant(name, std::move(knowledge), std::move(configure), {});
  if (result.created && out_handle != nullptr) *out_handle = result.handle;
  return result.created;
}

std::size_t Server::seed_knowledge(margot::KnowledgeBase& knowledge,
                                   const margot::KnowledgeBase& donor) {
  // Transfer requires an identical schema: knob/metric name lists must
  // match exactly, or a donor metric would land in the wrong column.
  if (knowledge.knob_names() != donor.knob_names() ||
      knowledge.metric_names() != donor.metric_names())
    return 0;
  // Rebuild rather than patch in place: a donor point whose knob
  // configuration exists in the design-time KB replaces that point's
  // metrics (the donor's are feedback-corrected measurements, the
  // tenant's are design-time estimates); unseen configurations append.
  margot::KnowledgeBase seeded(knowledge.knob_names(), knowledge.metric_names());
  std::size_t merged = 0;
  for (std::size_t i = 0; i < knowledge.size(); ++i) {
    margot::OperatingPoint op = knowledge[i];
    if (const auto hit = donor.find(op.knobs)) {
      op = donor[*hit];
      ++merged;
    }
    seeded.add(std::move(op));
  }
  for (std::size_t i = 0; i < donor.size(); ++i) {
    margot::OperatingPoint op = donor[i];
    if (!knowledge.find(op.knobs)) {
      seeded.add(std::move(op));
      ++merged;
    }
  }
  knowledge = std::move(seeded);
  return merged;
}

CreateResult Server::create_tenant(const std::string& name,
                                   margot::KnowledgeBase knowledge,
                                   std::function<void(margot::Asrtm&)> configure,
                                   const TenantProfile& profile) {
  SOCRATES_REQUIRE(!knowledge.empty());
  CreateResult result;
  std::lock_guard<std::mutex> lock(registration_mu_);
  const std::size_t slot = tenant_count_.load(std::memory_order_relaxed);
  if (slot >= options_.max_tenants) {
    MetricsRegistry::global().counter("server.tenants_rejected").add(1);
    return result;
  }
  // Probe the pool before the AS-RTM is built so a warm start seeds the
  // knowledge the runtime is constructed from.
  if (pool_ && profile.features) {
    if (const auto match = pool_->lookup(*profile.features)) {
      const std::size_t seeded =
          seed_knowledge(knowledge, match->entry.representatives);
      if (seeded > 0) {
        result.warm_started = true;
        result.donor = match->entry.donor;
        result.pool_distance = match->distance;
        result.seeded_points = seeded;
        MetricsRegistry::global().counter("server.pool_seeded_points").add(seeded);
        // Warm DSE posterior: donor ⊕ own, weight-proportional.  A
        // donor posterior of a different size is a model-schema
        // mismatch — keep the tenant's own.
        if (profile.posterior.empty()) {
          result.warm_posterior = match->entry.posterior;
        } else if (match->entry.posterior.empty()) {
          result.warm_posterior = profile.posterior;
        } else if (profile.posterior.size() == match->entry.posterior.size()) {
          result.warm_posterior = cobayn::CobaynModel::merge_posterior(
              profile.posterior, profile.posterior_weight, match->entry.posterior,
              match->entry.posterior_weight);
        } else {
          MetricsRegistry::global().counter("server.pool_schema_mismatches").add(1);
          result.warm_posterior = profile.posterior;
        }
      } else {
        // Matched on features but the knob/metric schema differs: the
        // donor's points cannot be mapped — cold start.
        MetricsRegistry::global().counter("server.pool_schema_mismatches").add(1);
      }
    }
  }
  auto tenant = std::make_unique<Tenant>(std::move(knowledge));
  tenant->name = name;
  tenant->slot = static_cast<std::uint32_t>(slot);
  tenant->shard = tenant->slot % options_.shards;
  tenant->configure = std::move(configure);
  tenant->op_count = tenant->knowledge.size();
  tenant->metric_count = tenant->knowledge.metric_names().size();
  tenant->has_features = profile.features.has_value();
  if (profile.features) tenant->features = *profile.features;
  tenant->posterior = profile.posterior;
  tenant->posterior_weight = profile.posterior_weight;
  tenant->warm_started = result.warm_started;
  tenant->bucket = options_.rate_limit_per_s > 0.0
                       ? TokenBucket(options_.rate_limit_per_s, options_.rate_burst)
                       : TokenBucket();
  tenant->breaker = CircuitBreaker(options_.breaker);
  // Slot-boundary exception safety: the slot is occupied only between
  // the two statements below, and tenant_count_ is published last —
  // if the runtime build (AS-RTM ctor, configure functor, checkpoint
  // attach) throws, the catch releases the slot so the next
  // registration reuses it and the max_tenants cap never erodes.
  tenants_[slot] = std::move(tenant);
  try {
    build_tenant_runtime(*tenants_[slot]);
  } catch (const std::exception& e) {
    log_warn() << "server: tenant " << name << " rejected, runtime build failed: "
               << e.what();
    tenants_[slot].reset();
    MetricsRegistry::global().counter("server.tenants_rejected").add(1);
    result.warm_started = false;
    result.warm_posterior.clear();
    return result;
  }
  // Publish after the entry is fully built: readers gate on tenant_count_.
  tenant_count_.store(slot + 1, std::memory_order_release);
  MetricsRegistry::global().gauge("server.tenants").set(
      static_cast<double>(slot + 1));
  if (result.warm_started) {
    warm_started_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("server.warm_tenants").add(1);
  }
  result.created = true;
  result.handle = slot;
  return result;
}

std::size_t Server::shard_of(TenantHandle handle) const {
  SOCRATES_REQUIRE(handle < tenant_count());
  return tenants_[handle]->shard;
}

Admission Server::submit_feedback(TenantHandle handle, std::size_t op_index,
                                  std::size_t metric, double observed) {
  SOCRATES_REQUIRE(handle < tenant_count());
  Tenant& tenant = *tenants_[handle];
  submitted_.fetch_add(1, std::memory_order_relaxed);
  static Counter& quarantined_c = MetricsRegistry::global().counter("server.quarantined");
  static Counter& invalid_c = MetricsRegistry::global().counter("server.invalid_feedback");
  static Counter& limited_c = MetricsRegistry::global().counter("server.rate_limited");
  static Counter& accepted_c = MetricsRegistry::global().counter("server.accepted");
  static Counter& shed_c = MetricsRegistry::global().counter("server.shed");

  const double now = now_s();
  {
    std::lock_guard<std::mutex> lock(tenant.ingress_mu);
    if (!tenant.breaker.allow(now)) {
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      quarantined_c.add(1);
      return Admission::kQuarantined;
    }
    if (op_index >= tenant.op_count || metric >= tenant.metric_count ||
        !std::isfinite(observed) || observed <= 0.0) {
      // Malformed requests never reach the shard worker: an
      // out-of-range op/metric would trip Asrtm::send_feedback's
      // contract there (terminating the whole server from the worker
      // thread), and a non-finite value would be rejected after costing
      // ring space.  The ingress refuses both, and a flood of them
      // trips the breaker.
      tenant.breaker.record_error(now);
      invalid_.fetch_add(1, std::memory_order_relaxed);
      invalid_c.add(1);
      return Admission::kInvalid;
    }
    if (!tenant.bucket.admit(now)) {
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      limited_c.add(1);
      return Admission::kRateLimited;
    }
    tenant.breaker.record_ok(now);
  }

  FeedbackEvent event;
  event.slot = tenant.slot;
  event.metric = static_cast<std::uint32_t>(metric);
  event.op = static_cast<std::uint32_t>(op_index);
  event.value = observed;

  Shard& shard = *shards_[tenant.shard];
  std::size_t copies = 1;
  auto& chaos = ChaosEngine::global();
  if (chaos.enabled() && chaos.flood_ingest("server.ingest")) {
    // An injected flood amplifies this event; the extra copies are
    // harmless duplicates whose purpose is to exercise shedding.
    copies += static_cast<std::size_t>(chaos.spec().flood_burst);
  }

  bool accepted = false;
  for (std::size_t i = 0; i < copies; ++i) {
    const PushResult result =
        push_with_policy(*shard.ring, event, options_.policy, &shutdown_);
    if (result.shed > 0) {
      shed_.fetch_add(result.shed, std::memory_order_relaxed);
      shed_c.add(result.shed);
    }
    if (result.accepted) {
      accepted = true;
      accepted_.fetch_add(1, std::memory_order_relaxed);
      accepted_c.add(1);
    } else if (options_.policy == BackpressurePolicy::kReject) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      shed_c.add(1);
    }
  }
  if (accepted) return Admission::kAccepted;
  // kReject with a full ring (or kBlock aborted by shutdown).
  return Admission::kShed;
}

std::size_t Server::decide_locked(Tenant& tenant) {
  // Caller holds tenant.mu, so mutation_stamp cannot move while we
  // decide (mutators bump it under the same lock).
  const std::uint64_t stamp = tenant.mutation_stamp.load(std::memory_order_relaxed);
  const std::size_t best = tenant.asrtm->find_best_operating_point();
  // Publish best first, stamp second: sweeps read the stamp first, so
  // a stamp match guarantees the best they read is at least this new.
  tenant.pub_best.store(best, std::memory_order_release);
  tenant.pub_stamp.store(stamp, std::memory_order_release);
  return best;
}

bool Server::decide_one(Tenant& tenant, std::size_t& out) {
  const std::uint64_t published = tenant.pub_stamp.load(std::memory_order_acquire);
  const std::size_t best = tenant.pub_best.load(std::memory_order_acquire);
  if (published == tenant.mutation_stamp.load(std::memory_order_acquire)) {
    out = best;
    return true;
  }
  std::lock_guard<std::mutex> lock(tenant.mu);
  out = decide_locked(tenant);
  return false;
}

std::size_t Server::decide(TenantHandle handle) {
  SOCRATES_REQUIRE(handle < tenant_count());
  Tenant& tenant = *tenants_[handle];
  static Counter& decisions_c = MetricsRegistry::global().counter("server.decisions");
  decisions_c.add(1);
  std::lock_guard<std::mutex> lock(tenant.mu);
  return decide_locked(tenant);
}

std::size_t Server::decide_batch(std::span<const TenantHandle> handles,
                                 std::span<std::size_t> out) {
  SOCRATES_REQUIRE_MSG(out.size() >= handles.size(),
                       "decide_batch output span holds "
                           << out.size() << " slots, need " << handles.size());
  const std::size_t count = tenant_count();
  static Counter& sweeps_c = MetricsRegistry::global().counter("server.batch_sweeps");
  static Counter& decisions_c =
      MetricsRegistry::global().counter("server.batch_decisions");
  static Counter& lockfree_c =
      MetricsRegistry::global().counter("server.batch_lockfree");
  static Counter& locked_c = MetricsRegistry::global().counter("server.batch_locked");
  std::size_t lockfree = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    SOCRATES_REQUIRE(handles[i] < count);
    lockfree += decide_one(*tenants_[handles[i]], out[i]);
  }
  sweeps_c.add(1);
  decisions_c.add(handles.size());
  lockfree_c.add(lockfree);
  locked_c.add(handles.size() - lockfree);
  return lockfree;
}

std::size_t Server::decide_shard(std::size_t shard,
                                 std::span<TenantHandle> out_handles,
                                 std::span<std::size_t> out_best) {
  SOCRATES_REQUIRE(shard < options_.shards);
  const std::size_t count = tenant_count();
  static Counter& sweeps_c = MetricsRegistry::global().counter("server.batch_sweeps");
  static Counter& decisions_c =
      MetricsRegistry::global().counter("server.batch_decisions");
  static Counter& lockfree_c =
      MetricsRegistry::global().counter("server.batch_lockfree");
  static Counter& locked_c = MetricsRegistry::global().counter("server.batch_locked");
  std::size_t written = 0;
  std::size_t lockfree = 0;
  for (std::size_t slot = 0; slot < count; ++slot) {
    Tenant& tenant = *tenants_[slot];
    if (tenant.shard != shard) continue;
    SOCRATES_REQUIRE_MSG(
        written < out_handles.size() && written < out_best.size(),
        "decide_shard output spans too small for shard " << shard);
    out_handles[written] = slot;
    lockfree += decide_one(tenant, out_best[written]);
    ++written;
  }
  sweeps_c.add(1);
  decisions_c.add(written);
  lockfree_c.add(lockfree);
  locked_c.add(written - lockfree);
  return written;
}

Admission Server::update_goal(TenantHandle handle, std::size_t constraint_handle,
                              double goal) {
  SOCRATES_REQUIRE(handle < tenant_count());
  Tenant& tenant = *tenants_[handle];
  static Counter& floods_c = MetricsRegistry::global().counter("server.goal_floods");
  static Counter& quarantined_c = MetricsRegistry::global().counter("server.quarantined");
  const double now = now_s();
  {
    std::lock_guard<std::mutex> lock(tenant.ingress_mu);
    if (!tenant.breaker.allow(now)) {
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      quarantined_c.add(1);
      return Admission::kQuarantined;
    }
    if (now - tenant.goal_window_start_s >= options_.goal_window_s) {
      tenant.goal_window_start_s = now;
      tenant.goal_updates_in_window = 0;
    }
    if (++tenant.goal_updates_in_window > options_.goal_update_threshold) {
      // Goal flapping: every update past the threshold is a breaker
      // error, so a tenant rewriting its requirements hundreds of times
      // a second quarantines itself instead of thrashing the decision
      // cache for everyone on its shard.
      tenant.breaker.record_error(now);
      floods_c.add(1);
      return Admission::kInvalid;
    }
    tenant.breaker.record_ok(now);
  }
  std::lock_guard<std::mutex> lock(tenant.mu);
  tenant.asrtm->set_constraint_goal(constraint_handle, goal);
  tenant.mutation_stamp.fetch_add(1, std::memory_order_release);
  return Admission::kAccepted;
}

void Server::start_shard(std::size_t index) {
  Shard& shard = *shards_[index];
  shard.stop.store(false, std::memory_order_release);
  shard.worker = std::thread([this, index] { shard_worker(index); });
}

void Server::shard_worker(std::size_t index) {
  Shard& shard = *shards_[index];
  std::vector<FeedbackEvent> batch(options_.batch_drain);
  const std::string site = "server.shard" + std::to_string(index);
  auto& chaos = ChaosEngine::global();
  static Counter& drained_c = MetricsRegistry::global().counter("server.drained");
  static Counter& stalls_c = MetricsRegistry::global().counter("server.stalls_injected");

  while (!shard.stop.load(std::memory_order_acquire)) {
    shard.heartbeat.fetch_add(1, std::memory_order_relaxed);

    // Stall injection (test hook or chaos).  The stall is a bounded
    // sleep taken while holding NO tenant lock, so the watchdog can
    // always join this thread and recovery never deadlocks on a lock
    // the stalled worker holds.
    double stall = shard.injected_stall_s.exchange(0.0, std::memory_order_acq_rel);
    if (stall <= 0.0 && chaos.enabled() && chaos.stall_shard(site)) {
      stall = chaos.spec().stall_ms / 1000.0;
    }
    if (stall > 0.0) {
      stalls_c.add(1);
      sleep_s(stall);
    }

    const std::size_t n = shard.ring->pop_batch(batch.data(), batch.size());
    if (n == 0) {
      // Idle: a short sleep instead of a pure yield keeps N shard
      // workers from monopolizing a small core count while still
      // bumping the heartbeat ~tens of thousands of times a second.
      sleep_s(0.00005);
      continue;
    }
    // Apply events grouped by tenant: consecutive same-tenant events
    // share one lock acquisition (feedback arrives in per-tenant bursts,
    // so this collapses most locking on the drain path).
    std::size_t i = 0;
    while (i < n) {
      const std::uint32_t slot = batch[i].slot;
      std::size_t j = i;
      while (j < n && batch[j].slot == slot) ++j;
      Tenant& tenant = *tenants_[slot];
      std::size_t applied = 0;
      // Defense in depth: ingress validation should make a throwing
      // apply unreachable, but an exception escaping this thread body
      // would std::terminate the whole server — quarantine the one
      // tenant instead and keep draining everyone else's events.
      const auto quarantine = [&](const char* what) {
        log_warn() << "server: tenant " << tenant.name << " feedback apply failed ("
                   << what << ") — quarantined";
        MetricsRegistry::global().counter("server.apply_failures").add(1);
        std::lock_guard<std::mutex> ingress(tenant.ingress_mu);
        tenant.breaker.force_open(now_s());
      };
      try {
        std::lock_guard<std::mutex> lock(tenant.mu);
        for (std::size_t k = i; k < j; ++k) {
          tenant.asrtm->send_feedback(batch[k].op, batch[k].metric, batch[k].value);
          ++applied;
        }
      } catch (const std::exception& e) {
        quarantine(e.what());
      } catch (...) {
        quarantine("non-standard exception");
      }
      // Bump even on a partial (quarantined) apply: any feedback that
      // landed invalidates the published decision.  A bump after the
      // unlock can only cost a fast path, never serve a stale best.
      if (applied > 0) tenant.mutation_stamp.fetch_add(1, std::memory_order_release);
      const std::uint64_t total =
          tenant.applied.fetch_add(applied, std::memory_order_relaxed) + applied;
      // Convergence donation: once enough feedback has been applied the
      // tenant's corrections are trustworthy — publish its knowledge to
      // the pool exactly once (checkpoint_all refreshes it later).  The
      // exchange makes the one-shot race-free against a concurrent
      // checkpoint_all.
      if (pool_ && tenant.has_features && total >= options_.pool_publish_after &&
          !tenant.pool_published.exchange(true, std::memory_order_relaxed)) {
        publish_to_pool(tenant);
      }
      i = j;
    }
    shard.drained.fetch_add(n, std::memory_order_relaxed);
    drained_c.add(n);
  }
}

void Server::publish_to_pool(Tenant& tenant) {
  if (!pool_ || !tenant.has_features) return;
  PoolEntry entry;
  entry.donor = tenant.name;
  entry.features = tenant.features;
  entry.posterior = tenant.posterior;
  entry.posterior_weight = tenant.posterior_weight;
  entry.feedback_updates = tenant.applied.load(std::memory_order_relaxed);
  // What transfers is the *corrected* knowledge: the design-time metric
  // columns scaled by the AS-RTM's learned per-metric correction (the
  // EWMA ratio of observed to predicted), i.e. the server's best
  // current estimate of what this kernel actually measures.
  margot::KnowledgeBase corrected(tenant.knowledge.knob_names(),
                                  tenant.knowledge.metric_names());
  {
    std::lock_guard<std::mutex> lock(tenant.mu);
    const std::size_t metrics = tenant.knowledge.metric_names().size();
    std::vector<double> factor(metrics, 1.0);
    for (std::size_t m = 0; m < metrics; ++m)
      factor[m] = tenant.asrtm->correction(m);
    for (std::size_t i = 0; i < tenant.knowledge.size(); ++i) {
      margot::OperatingPoint op = tenant.knowledge[i];
      for (std::size_t m = 0; m < metrics; ++m) {
        op.metrics[m].mean *= factor[m];
        op.metrics[m].stddev *= std::abs(factor[m]);
      }
      corrected.add(std::move(op));
    }
  }
  entry.representatives = std::move(corrected);
  pool_->publish(std::move(entry));
}

std::size_t Server::count_durability_degraded() const {
  const std::size_t count = tenant_count();
  std::size_t degraded = 0;
  for (std::size_t t = 0; t < count; ++t) {
    Tenant& tenant = *tenants_[t];
    std::lock_guard<std::mutex> lock(tenant.mu);
    if (tenant.store && tenant.store->degraded()) ++degraded;
  }
  return degraded;
}

void Server::watchdog_loop() {
  static Counter& restarts_c = MetricsRegistry::global().counter("server.shard_restarts");
  static Gauge& degraded_g =
      MetricsRegistry::global().gauge("server.durability_degraded_tenants");
  while (!shutdown_.load(std::memory_order_acquire)) {
    sleep_s(options_.watchdog_period_s);
    // Disk-health supervision: surface how many tenants are currently
    // riding in-memory degraded mode (each re-probes on its own
    // exponential backoff — the watchdog only reports).
    degraded_g.set(static_cast<double>(count_durability_degraded()));
    const double now = steady_now_s();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = *shards_[i];
      const std::uint64_t beat = shard.heartbeat.load(std::memory_order_relaxed);
      if (beat != shard.last_heartbeat_seen) {
        shard.last_heartbeat_seen = beat;
        shard.silent_since_s = now;
        continue;
      }
      if (now - shard.silent_since_s < options_.shard_stall_deadline_s) continue;
      log_warn() << "server: shard " << i << " heartbeat silent for "
                 << (now - shard.silent_since_s) << "s — restarting";
      restarts_c.add(1);
      restart_shard(i);
      shard.last_heartbeat_seen = shard.heartbeat.load(std::memory_order_relaxed);
      shard.silent_since_s = steady_now_s();
    }
  }
}

void Server::restart_shard(std::size_t index) {
  Shard& shard = *shards_[index];
  const double started = steady_now_s();
  shard.stop.store(true, std::memory_order_release);
  // Injected stalls are bounded sleeps, so the join always returns.
  if (shard.worker.joinable()) shard.worker.join();
  const std::uint64_t restarts = shard.restarts.fetch_add(1, std::memory_order_relaxed);
  sleep_s(restart_backoff_s(options_, restarts));

  // Rebuild every tenant on this shard from its checkpoint.  The old
  // store's buffered batch is dropped (crash-equivalent), which is
  // exactly the "at most one uncommitted batch" loss the overload
  // contract allows; everything committed replays.
  const std::size_t count = tenant_count();
  for (std::size_t t = 0; t < count; ++t) {
    Tenant& tenant = *tenants_[t];
    if (tenant.shard != index) continue;
    // A throwing rebuild (buggy configure functor, bad checkpoint I/O)
    // must not escape the watchdog thread and take the server down:
    // quarantine this tenant — it keeps its pre-restart runtime for
    // reads — and keep recovering the others.
    const auto quarantine = [&](const char* what) {
      log_warn() << "server: tenant " << tenant.name << " rebuild failed ("
                 << what << ") — quarantined";
      MetricsRegistry::global().counter("server.rebuild_failures").add(1);
      std::lock_guard<std::mutex> ingress(tenant.ingress_mu);
      tenant.breaker.force_open(now_s());
    };
    try {
      std::lock_guard<std::mutex> lock(tenant.mu);
      build_tenant_runtime(tenant);
    } catch (const std::exception& e) {
      quarantine(e.what());
    } catch (...) {
      quarantine("non-standard exception");
    }
  }
  start_shard(index);
  MetricsRegistry::global()
      .histogram("server.recovery_seconds")
      .observe(steady_now_s() - started);
}

bool Server::drain(double timeout_s) {
  const double deadline = steady_now_s() + timeout_s;
  while (true) {
    const std::uint64_t accepted = accepted_.load(std::memory_order_acquire);
    std::uint64_t drained = 0;
    bool empty = true;
    for (const auto& shard : shards_) {
      drained += shard->drained.load(std::memory_order_acquire);
      empty = empty && shard->ring->empty();
    }
    const std::uint64_t shed = shed_.load(std::memory_order_acquire);
    if (empty && drained + shed >= accepted) return true;
    if (steady_now_s() >= deadline) return false;
    sleep_s(0.0001);
  }
}

void Server::checkpoint_all() {
  const std::size_t count = tenant_count();
  std::size_t degraded = 0;
  for (std::size_t t = 0; t < count; ++t) {
    Tenant& tenant = *tenants_[t];
    std::lock_guard<std::mutex> lock(tenant.mu);
    if (!tenant.store) continue;
    // A full disk (ENOSPC) or failing device must not turn the clean
    // shutdown point into a crash: checkpoint() absorbs write failures
    // into degraded mode, and any unexpected escape is contained to the
    // one tenant.
    try {
      tenant.store->checkpoint();
    } catch (const std::exception& e) {
      log_warn() << "server: tenant " << tenant.name
                 << " checkpoint failed (" << e.what() << ") — still serving";
      MetricsRegistry::global().counter("server.checkpoint_failures").add(1);
    }
    if (tenant.store->degraded()) ++degraded;
  }
  MetricsRegistry::global()
      .gauge("server.durability_degraded_tenants")
      .set(static_cast<double>(degraded));
  // Clean-shutdown point: every featured tenant donates its current
  // corrected knowledge (convergence threshold waived — whatever was
  // learned is worth persisting), then the pool snapshots next to the
  // tenant checkpoints.
  if (pool_) {
    for (std::size_t t = 0; t < count; ++t) {
      Tenant& tenant = *tenants_[t];
      if (!tenant.has_features) continue;
      tenant.pool_published.store(true, std::memory_order_relaxed);
      publish_to_pool(tenant);
    }
    pool_->save();
  }
}

Server::Stats Server::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.tenants = tenant_count();
  for (const auto& shard : shards_) {
    s.drained += shard->drained.load(std::memory_order_relaxed);
    s.shard_restarts += shard->restarts.load(std::memory_order_relaxed);
  }
  for (std::size_t t = 0; t < s.tenants; ++t) {
    std::lock_guard<std::mutex> lock(tenants_[t]->ingress_mu);
    s.breaker_trips += tenants_[t]->breaker.trips();
  }
  s.durability_degraded = count_durability_degraded();
  s.pool_entries = pool_ ? pool_->size() : 0;
  s.warm_started = warm_started_.load(std::memory_order_relaxed);
  return s;
}

Server::TenantStatus Server::tenant_status(TenantHandle handle) {
  SOCRATES_REQUIRE(handle < tenant_count());
  Tenant& tenant = *tenants_[handle];
  TenantStatus status;
  status.applied = tenant.applied.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(tenant.ingress_mu);
    status.breaker = tenant.breaker.state();
    status.breaker_trips = tenant.breaker.trips();
  }
  std::lock_guard<std::mutex> lock(tenant.mu);
  if (tenant.store) {
    status.buffered_events = tenant.store->buffered_events();
    status.journaled_events = tenant.store->journaled_events();
    status.snapshots = tenant.store->snapshots_written();
    const auto disk = tenant.store->disk_status();
    status.durability_degraded = disk.degraded;
    status.disk_io_errors = disk.io_errors;
    status.disk_recoveries = disk.recoveries;
    status.disk_events_dropped = disk.events_dropped;
    status.disk_last_error = disk.last_error;
  }
  return status;
}

void Server::with_tenant(TenantHandle handle,
                         const std::function<void(margot::Asrtm&)>& fn) {
  SOCRATES_REQUIRE(handle < tenant_count());
  SOCRATES_REQUIRE(fn != nullptr);
  Tenant& tenant = *tenants_[handle];
  std::lock_guard<std::mutex> lock(tenant.mu);
  fn(*tenant.asrtm);
  // The functor may have mutated the runtime arbitrarily.
  tenant.mutation_stamp.fetch_add(1, std::memory_order_release);
}

void Server::inject_stall(std::size_t shard, double seconds) {
  SOCRATES_REQUIRE(shard < shards_.size());
  SOCRATES_REQUIRE(seconds >= 0.0);
  shards_[shard]->injected_stall_s.store(seconds, std::memory_order_release);
}

}  // namespace socrates::server
