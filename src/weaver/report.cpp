#include "weaver/report.hpp"

#include "ir/loc_counter.hpp"
#include "ir/parser.hpp"
#include "weaver/aspects.hpp"

namespace socrates::weaver {

namespace {

template <typename ApplyMultiversioning>
WovenBenchmark weave_impl(const std::string& name, const std::string& source,
                          ApplyMultiversioning&& multiversion) {
  WovenBenchmark out;
  out.unit = ir::parse(source);
  out.report.benchmark = name;
  out.report.original_loc = ir::logical_loc(out.unit);
  out.report.strategy_loc = strategy_logical_loc();

  WeavingMetrics metrics;
  Weaver weaver(out.unit, metrics);
  out.kernels = multiversion(weaver);
  apply_autotuner(weaver, out.kernels);

  out.report.attributes = metrics.attributes_checked;
  out.report.actions = metrics.actions_performed;
  out.report.weaved_loc = ir::logical_loc(out.unit);
  return out;
}

}  // namespace

WovenBenchmark weave_benchmark(const std::string& name, const std::string& source,
                               const std::vector<platform::NamedConfig>& configs,
                               const std::vector<platform::BindingPolicy>& bindings) {
  return weave_impl(name, source, [&](Weaver& weaver) {
    return apply_multiversioning(weaver, configs, bindings);
  });
}

WovenBenchmark weave_benchmark(const std::string& name, const std::string& source,
                               const std::vector<CloneSpec>& clones) {
  return weave_impl(name, source, [&](Weaver& weaver) {
    return apply_multiversioning(weaver, clones);
  });
}

WovenBenchmark weave_benchmark_paper_space(const std::string& name,
                                           const std::string& source) {
  return weave_benchmark(name, source, platform::reduced_design_space(),
                         {platform::BindingPolicy::kClose, platform::BindingPolicy::kSpread});
}

}  // namespace socrates::weaver
