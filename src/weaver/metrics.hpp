// Weaving metrics (Table I of the paper).
//
// The paper instruments its LARA strategies with two counters:
//   Att — number of attributes checked about the source code (function
//         signature information, OpenMP pragma information, ...);
//   Act — number of actions performed on the code (code insertions,
//         cloning, pragma insertion).
// Every attribute accessor and every action of our weaver bumps these
// through the shared WeavingMetrics, so the Table I reproduction counts
// exactly what the strategies really did.
#pragma once

#include <cstddef>

namespace socrates::weaver {

struct WeavingMetrics {
  std::size_t attributes_checked = 0;  ///< Att column
  std::size_t actions_performed = 0;   ///< Act column

  void att(std::size_t n = 1) { attributes_checked += n; }
  void act(std::size_t n = 1) { actions_performed += n; }
};

}  // namespace socrates::weaver
