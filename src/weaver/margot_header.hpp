// The C-facing mARGOt interface the woven code includes.
//
// The Autotuner strategy inserts `#include "margot.h"` plus calls to
// the four functions below.  This module embeds that header (and a
// reference stub implementation) so the weaver's output is genuinely
// compilable C: the compile test writes both next to the woven source
// and runs the system C compiler over it.  In a full deployment the
// stub is replaced by the generated bridge into the C++ runtime
// (margot::Context), exactly how mARGOt's high-level interface wraps
// its C++ core for C applications.
#pragma once

#include <string>

namespace socrates::weaver {

/// Contents of "margot.h": declarations of margot_init,
/// margot_update(version*, threads*), margot_start_monitors,
/// margot_stop_monitors.
const std::string& margot_header_source();

/// A self-contained reference implementation ("margot_stub.c"): cycles
/// deterministically through versions so a woven binary can run
/// without the C++ runtime (useful for smoke-testing woven output).
const std::string& margot_stub_source();

}  // namespace socrates::weaver
