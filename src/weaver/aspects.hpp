// The LARA aspect sources of the two strategies.
//
// In SOCRATES the strategies are written in LARA (an aspect-oriented
// DSL) and executed by the MANET weaver.  Our C++ strategies in
// strategies.cpp are the execution engine; the equivalent LARA sources
// are embedded here both as documentation of the weaving logic and as
// the denominator of Table I's Bloat metric:
//     Bloat = D-LOC / (logical LOC of the complete LARA strategy)
// i.e. how many lines of C are woven into the application per line of
// aspect code (the paper reports 265 strategy lines and an average
// Bloat of 4.10).
#pragma once

#include <cstddef>
#include <string>

namespace socrates::weaver {

/// LARA source of the Multiversioning strategy.
const std::string& multiversioning_aspect();

/// LARA source of the Autotuner strategy.
const std::string& autotuner_aspect();

/// Logical lines of code of a LARA source: non-blank lines that are not
/// pure comments ("//" or block comments) and not lone braces/end.
std::size_t lara_logical_loc(const std::string& source);

/// Total logical LOC of the complete strategy (both aspects) — the
/// Bloat denominator.
std::size_t strategy_logical_loc();

}  // namespace socrates::weaver
