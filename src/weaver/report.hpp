// End-to-end weaving of one benchmark + the Table I metrics row.
#pragma once

#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "platform/flags.hpp"
#include "platform/topology.hpp"
#include "weaver/strategies.hpp"

namespace socrates::weaver {

/// One row of Table I.
struct WeaveReport {
  std::string benchmark;
  std::size_t attributes = 0;    ///< Att
  std::size_t actions = 0;       ///< Act
  std::size_t original_loc = 0;  ///< O-LOC (logical)
  std::size_t weaved_loc = 0;    ///< W-LOC (logical)
  std::size_t strategy_loc = 0;  ///< LARA aspect logical LOC (Bloat denominator)

  std::size_t delta_loc() const { return weaved_loc - original_loc; }  ///< D-LOC
  double bloat() const {
    return static_cast<double>(delta_loc()) / static_cast<double>(strategy_loc);
  }
};

/// A fully woven benchmark: the adaptive source plus its metrics.
struct WovenBenchmark {
  ir::TranslationUnit unit;
  std::vector<MultiversionedKernel> kernels;
  WeaveReport report;
};

/// Parses `source`, applies Multiversioning then Autotuner with the
/// given version space, and collects the Table I metrics.
WovenBenchmark weave_benchmark(const std::string& name, const std::string& source,
                               const std::vector<platform::NamedConfig>& configs,
                               const std::vector<platform::BindingPolicy>& bindings);

/// Same, over an explicit clone list — the pipeline's pruned-clone-set
/// path (dse/representative.hpp).
WovenBenchmark weave_benchmark(const std::string& name, const std::string& source,
                               const std::vector<CloneSpec>& clones);

/// Convenience: the paper's version space — reduced_design_space() x
/// {close, spread}.
WovenBenchmark weave_benchmark_paper_space(const std::string& name,
                                           const std::string& source);

}  // namespace socrates::weaver
