// The two LARA strategies of SOCRATES (Section II, Figure 2).
//
// Multiversioning: clones every kernel once per (compiler config,
// binding policy) pair, tagging each clone with "#pragma GCC optimize"
// and rewriting its OpenMP pragmas to the target proc_bind policy and
// to a runtime-controlled num_threads; generates a wrapper that
// dispatches on control variables; retargets every original call site
// to the wrapper.
//
// Autotuner: integrates mARGOt — inserts the header and the
// initialization call in main, and surrounds each wrapper call with
// margot_update / margot_start_monitors / margot_stop_monitors.
//
// Both strategies operate exclusively through the metered Weaver
// interface, so Table I's Att/Act counters reflect their real work.
#pragma once

#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "platform/flags.hpp"
#include "platform/topology.hpp"
#include "weaver/weaver.hpp"

namespace socrates::weaver {

/// One generated kernel version.
struct VersionInfo {
  int id = 0;                      ///< value of the version control variable
  std::string function_name;      ///< name of the clone
  std::string config_name;        ///< "O2", "CF1", ...
  platform::FlagConfig flags;
  platform::BindingPolicy binding = platform::BindingPolicy::kClose;
};

/// Everything later stages need to know about one multiversioned kernel.
struct MultiversionedKernel {
  std::string kernel_name;   ///< original function name
  std::string wrapper_name;  ///< dispatch function
  std::string version_var;   ///< control variable selecting the version
  std::string threads_var;   ///< control variable for num_threads
  std::vector<VersionInfo> versions;
};

/// Names of the control variables the strategies introduce — one pair
/// per kernel, so a multi-phase application tunes each phase
/// independently (e.g. "__margot_version_kernel_2mm").
std::string version_variable(const std::string& kernel_name);
std::string threads_variable(const std::string& kernel_name);

/// One clone of the static version space: a compiler configuration
/// bound to a binding policy.  The representative-set pruning of
/// dse/representative.hpp emits a subset of the full cross product.
struct CloneSpec {
  platform::NamedConfig config;
  platform::BindingPolicy binding = platform::BindingPolicy::kClose;
};

/// Applies Multiversioning to every "kernel_*" function of the unit.
/// `configs` x `bindings` defines the static version space (num_threads
/// stays dynamic, as in the paper).  Returns one entry per kernel.
std::vector<MultiversionedKernel> apply_multiversioning(
    Weaver& weaver, const std::vector<platform::NamedConfig>& configs,
    const std::vector<platform::BindingPolicy>& bindings);

/// Multiversioning over an explicit clone list (e.g. a pruned
/// representative set).  Version ids follow the list order; the
/// cross-product overload delegates here with the historical
/// config-major-then-binding order, so full-space weaves are unchanged.
std::vector<MultiversionedKernel> apply_multiversioning(
    Weaver& weaver, const std::vector<CloneSpec>& clones);

/// Applies the Autotuner strategy: margot.h include, margot_init() in
/// main, update/start/stop calls around every wrapper call site.
void apply_autotuner(Weaver& weaver, const std::vector<MultiversionedKernel>& kernels);

}  // namespace socrates::weaver
