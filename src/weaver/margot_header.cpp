#include "weaver/margot_header.hpp"

namespace socrates::weaver {

const std::string& margot_header_source() {
  static const std::string kHeader = R"C(/* margot.h — C interface of the mARGOt autotuner (SOCRATES build).
 *
 * The weaver's Autotuner strategy surrounds every kernel-wrapper call
 * with this API:
 *
 *   margot_update(&version_var, &threads_var);
 *   margot_start_monitors();
 *   kernel_wrapper(...);
 *   margot_stop_monitors();
 *
 * and inserts one margot_init() at the beginning of main.
 */
#ifndef SOCRATES_MARGOT_H
#define SOCRATES_MARGOT_H

#ifdef __cplusplus
extern "C" {
#endif

/* Initializes the autotuner (loads the application knowledge). */
void margot_init(void);

/* Runs the AS-RTM and writes the chosen configuration into the
 * application's control variables.  Returns 1 when the configuration
 * changed since the previous call, 0 otherwise. */
int margot_update(int *version, int *num_threads);

/* Starts / stops the monitor set around the region of interest; stop
 * also feeds the observations back into the knowledge adaptation. */
void margot_start_monitors(void);
void margot_stop_monitors(void);

#ifdef __cplusplus
}
#endif

#endif /* SOCRATES_MARGOT_H */
)C";
  return kHeader;
}

const std::string& margot_stub_source() {
  static const std::string kStub = R"C(/* margot_stub.c — reference stand-alone implementation of margot.h.
 * Cycles deterministically through the first 16 versions and a small
 * thread ladder; replace with the generated bridge into the C++
 * runtime for real adaptation. */
#include "margot.h"

static int margot_call_count = 0;

void margot_init(void)
{
  margot_call_count = 0;
}

int margot_update(int *version, int *num_threads)
{
  const int threads_ladder[4] = {1, 4, 16, 32};
  const int old_version = *version;
  *version = margot_call_count % 16;
  *num_threads = threads_ladder[(margot_call_count / 16) % 4];
  margot_call_count++;
  return *version != old_version || margot_call_count == 1;
}

void margot_start_monitors(void)
{
}

void margot_stop_monitors(void)
{
}
)C";
  return kStub;
}

}  // namespace socrates::weaver
