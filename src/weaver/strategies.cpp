#include "weaver/strategies.hpp"

#include <sstream>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::weaver {

namespace {

/// C-identifier-safe suffix for a version ("CF1", close) -> "cf1_close".
std::string version_suffix(const std::string& config_name,
                           platform::BindingPolicy binding) {
  std::string s = config_name;
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s + "_" + platform::to_string(binding);
}

/// Builds the wrapper function by synthesizing C text and parsing it —
/// the same thing MANET does when it instantiates a code template.
std::unique_ptr<ir::FunctionDecl> build_wrapper(const ir::FunctionDecl& kernel,
                                                const std::string& wrapper_name,
                                                const std::string& version_var,
                                                const std::vector<VersionInfo>& versions) {
  std::ostringstream src;
  std::string signature = ir::print_signature(kernel);
  // Rename in the signature text: the name is followed by '('.
  signature = replace_all(signature, kernel.name + "(", wrapper_name + "(");
  src << signature << "\n{\n";

  std::string args;
  for (std::size_t i = 0; i < kernel.params.size(); ++i) {
    if (i > 0) args += ", ";
    args += kernel.params[i].name;
  }

  for (std::size_t i = 0; i < versions.size(); ++i) {
    src << (i == 0 ? "  if (" : "  else if (") << version_var
        << " == " << versions[i].id << ")\n";
    src << "    " << versions[i].function_name << "(" << args << ");\n";
  }
  src << "  else\n    " << kernel.name << "(" << args << ");\n";
  src << "}\n";

  ir::TranslationUnit parsed = ir::parse(src.str());
  SOCRATES_ENSURE(parsed.items.size() == 1 &&
                  parsed.items.front()->kind == ir::TopLevelKind::kFunction);
  return std::unique_ptr<ir::FunctionDecl>(
      static_cast<ir::FunctionDecl*>(parsed.items.front().release()));
}

}  // namespace

std::string version_variable(const std::string& kernel_name) {
  return "__margot_version_" + kernel_name;
}

std::string threads_variable(const std::string& kernel_name) {
  return "__margot_num_threads_" + kernel_name;
}

std::vector<MultiversionedKernel> apply_multiversioning(
    Weaver& weaver, const std::vector<platform::NamedConfig>& configs,
    const std::vector<platform::BindingPolicy>& bindings) {
  SOCRATES_REQUIRE(!configs.empty());
  SOCRATES_REQUIRE(!bindings.empty());
  std::vector<CloneSpec> clones;
  clones.reserve(configs.size() * bindings.size());
  for (const auto& named : configs)
    for (const auto binding : bindings) clones.push_back({named, binding});
  return apply_multiversioning(weaver, clones);
}

std::vector<MultiversionedKernel> apply_multiversioning(
    Weaver& weaver, const std::vector<CloneSpec>& clones) {
  SOCRATES_REQUIRE(!clones.empty());

  const auto kernels = weaver.select_functions_with_prefix("kernel_");
  SOCRATES_REQUIRE_MSG(!kernels.empty(), "no kernel_* function to multiversion");

  std::vector<MultiversionedKernel> result;

  for (ir::FunctionDecl* kernel : kernels) {
    MultiversionedKernel mk;
    mk.kernel_name = weaver.att_name(*kernel);
    mk.wrapper_name = mk.kernel_name + "_wrapper";
    mk.version_var = version_variable(mk.kernel_name);
    mk.threads_var = threads_variable(mk.kernel_name);

    // Per-kernel control variables: a multi-phase application tunes
    // each kernel independently.
    {
      ir::VarDecl version_var;
      version_var.type_text = "int";
      version_var.name = mk.version_var;
      version_var.init = ir::parse_expression("0");
      weaver.act_add_global(std::move(version_var));

      ir::VarDecl threads_var;
      threads_var.type_text = "int";
      threads_var.name = mk.threads_var;
      threads_var.init = ir::parse_expression("1");
      weaver.act_add_global(std::move(threads_var));
    }

    // Inspect the kernel the way the LARA aspect does before cloning:
    // full signature, loop structure, OpenMP pragma information.
    weaver.att_return_type(*kernel);
    const std::size_t n_params = weaver.att_param_count(*kernel);
    for (std::size_t i = 0; i < n_params; ++i) weaver.att_param(*kernel, i);
    for (const ir::Stmt* loop : weaver.select_loops(*kernel))
      weaver.att_loop_depth(*loop);
    for (const ir::PragmaStmt* p : weaver.select_omp_pragmas(*kernel))
      weaver.att_omp_info(*p);

    int version_id = 0;
    for (const auto& [named, binding] : clones) {
      const std::string clone_name =
          mk.kernel_name + "_" + version_suffix(named.name, binding);

      ir::FunctionDecl* clone = weaver.act_clone_function(*kernel, clone_name);

      // Compiler options for this clone (Figure 2b of the paper).
      weaver.act_insert_pragma_before(*clone, ir::Pragma{"GCC push_options"});
      weaver.act_insert_pragma_before(
          *clone, ir::gcc_optimize_pragma(named.config.pragma_options()));
      weaver.act_insert_pragma_after(*clone, ir::Pragma{"GCC pop_options"});

      // Parallelization knobs: every OpenMP pragma of the clone gets
      // the static binding policy and the dynamic thread count.
      for (ir::PragmaStmt* pragma : weaver.select_omp_pragmas(*clone)) {
        ir::OmpPragma info = weaver.att_omp_info(*pragma);
        info.set_clause("num_threads", mk.threads_var);
        info.set_clause("proc_bind", std::string(platform::to_string(binding)));
        weaver.act_set_pragma(*pragma, info.render());
      }

      mk.versions.push_back(
          VersionInfo{version_id, clone_name, named.name, named.config, binding});
      ++version_id;
    }

    // Dispatch wrapper (Figure 2b) appended at the end of the unit.
    weaver.act_add_function(
        build_wrapper(*kernel, mk.wrapper_name, mk.version_var, mk.versions));

    // Retarget every original call site, skipping the generated code.
    for (ir::FunctionDecl* fn : weaver.select_functions()) {
      const std::string name = weaver.att_name(*fn);
      if (name == mk.wrapper_name) continue;
      if (starts_with(name, mk.kernel_name)) continue;  // original + clones
      for (ir::CallExpr* call : weaver.select_calls(*fn, mk.kernel_name))
        weaver.act_retarget_call(*call, mk.wrapper_name);
    }

    result.push_back(std::move(mk));
  }
  return result;
}

void apply_autotuner(Weaver& weaver, const std::vector<MultiversionedKernel>& kernels) {
  SOCRATES_REQUIRE(!kernels.empty());

  weaver.act_add_include("\"margot.h\"");

  ir::FunctionDecl* main_fn = weaver.unit().find_function("main");
  SOCRATES_REQUIRE_MSG(main_fn != nullptr && main_fn->body != nullptr,
                       "Autotuner strategy requires a main function");
  weaver.act_insert_at_begin(*main_fn, ir::parse_statement("margot_init();"));

  // Surround every wrapper call with the mARGOt API (Figure 2c).
  for (const auto& mk : kernels) {
    const std::string update_stmt =
        "margot_update(&" + mk.version_var + ", &" + mk.threads_var + ");";
    for (ir::FunctionDecl* fn : weaver.select_functions()) {
      const std::string name = weaver.att_name(*fn);
      if (name == mk.wrapper_name || starts_with(name, mk.kernel_name)) continue;
      weaver.act_insert_around_calls(
          *fn, mk.wrapper_name,
          {update_stmt, "margot_start_monitors();"},
          {"margot_stop_monitors();"});
    }
  }
}

}  // namespace socrates::weaver
