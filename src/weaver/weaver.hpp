// The aspect weaver: LARA-style join points and actions over the C AST.
//
// LARA aspects `select` join points (files, functions, loops, calls,
// pragmas), read their *attributes*, and `apply` *actions* (insert,
// clone, replace, def).  MANET is the source-to-source compiler that
// executes those aspects on C code.  This class is the equivalent
// engine: a thin, metered layer over ir::TranslationUnit whose
// attribute reads count towards Att and whose mutations count towards
// Act (Table I semantics).  The strategies in strategies.hpp are
// written exclusively against this interface — they never touch the
// AST directly — mirroring the separation between LARA aspect code and
// the weaving engine.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "ir/omp.hpp"
#include "weaver/metrics.hpp"

namespace socrates::weaver {

class Weaver {
 public:
  /// The weaver mutates `tu` in place; both references must outlive it.
  Weaver(ir::TranslationUnit& tu, WeavingMetrics& metrics);

  ir::TranslationUnit& unit() { return tu_; }
  WeavingMetrics& metrics() { return metrics_; }

  // ---- select ----------------------------------------------------------
  /// All function definitions (join point "function").
  std::vector<ir::FunctionDecl*> select_functions();
  /// Function definitions whose name starts with `prefix`.
  std::vector<ir::FunctionDecl*> select_functions_with_prefix(const std::string& prefix);
  /// OpenMP pragma statements inside a function (join point "pragma").
  std::vector<ir::PragmaStmt*> select_omp_pragmas(ir::FunctionDecl& fn);
  /// Loop statements inside a function (join point "loop").
  std::vector<ir::Stmt*> select_loops(ir::FunctionDecl& fn);
  /// Call expressions to `callee` anywhere in a function body.
  std::vector<ir::CallExpr*> select_calls(ir::FunctionDecl& fn, const std::string& callee);

  // ---- attributes (each read counts towards Att) -------------------------
  std::string att_name(const ir::FunctionDecl& fn);
  std::string att_return_type(const ir::FunctionDecl& fn);
  std::size_t att_param_count(const ir::FunctionDecl& fn);
  /// Reads one parameter's type and name (counts as two attributes,
  /// like LARA's $param.type and $param.name).
  const ir::VarDecl& att_param(const ir::FunctionDecl& fn, std::size_t i);
  /// Whether the function contains at least one OpenMP pragma.
  bool att_has_omp(ir::FunctionDecl& fn);
  /// Structured OpenMP info of a pragma (directive + each clause read
  /// counts; mirrors the paper's "OpenMP pragma information").
  ir::OmpPragma att_omp_info(const ir::PragmaStmt& pragma);
  /// Loop nest depth of a loop statement's body.
  std::size_t att_loop_depth(const ir::Stmt& loop);
  /// Callee name of a call expression.
  std::string att_callee(const ir::CallExpr& call);

  // ---- actions (each counts towards Act) ----------------------------------
  /// Clones `fn` under a new name, inserting the clone right after the
  /// original.  Returns the clone.
  ir::FunctionDecl* act_clone_function(const ir::FunctionDecl& fn,
                                       const std::string& new_name);
  /// Inserts a top-level pragma immediately before `fn`.
  void act_insert_pragma_before(const ir::FunctionDecl& fn, ir::Pragma pragma);
  /// Inserts a top-level pragma immediately after `fn`.
  void act_insert_pragma_after(const ir::FunctionDecl& fn, ir::Pragma pragma);
  /// Overwrites the raw text of an existing pragma statement.
  void act_set_pragma(ir::PragmaStmt& pragma, std::string new_raw);
  /// Adds an #include at the top of the file (after existing includes).
  void act_add_include(const std::string& target);
  /// Declares a global variable before the first function.
  void act_add_global(ir::VarDecl decl);
  /// Appends a new function definition at the end of the unit.
  ir::FunctionDecl* act_add_function(std::unique_ptr<ir::FunctionDecl> fn);
  /// Renames the callee of a call expression.
  void act_retarget_call(ir::CallExpr& call, const std::string& new_callee);
  /// Inserts a statement at the very beginning of a function body.
  void act_insert_at_begin(ir::FunctionDecl& fn, ir::StmtPtr stmt);
  /// Surrounds every statement containing a call to `callee` inside
  /// `fn` with the given statements (parsed from C text; `before` in
  /// order above the call, `after` in order below it).  Returns the
  /// number of call sites found.
  std::size_t act_insert_around_calls(ir::FunctionDecl& fn, const std::string& callee,
                                      const std::vector<std::string>& before,
                                      const std::vector<std::string>& after);

 private:
  ir::TranslationUnit& tu_;
  WeavingMetrics& metrics_;

  std::size_t index_of_function(const ir::FunctionDecl& fn) const;
};

}  // namespace socrates::weaver
