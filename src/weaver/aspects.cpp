#include "weaver/aspects.hpp"

#include "support/strings.hpp"

namespace socrates::weaver {

namespace {

const char* const kMultiversioningLara = R"LARA(
// Multiversioning.lara
// Generates one clone of each kernel per (compiler-config, binding)
// pair, rewrites the OpenMP pragmas of every clone, emits the dispatch
// wrapper and retargets the original call sites (Figure 2b).
import socrates.ConfigSpace;
import socrates.Naming;

aspectdef Multiversioning
  input configs, bindings end
  output kernels end

  kernels = [];

  select function end
  apply
    if (!$function.name.startsWith("kernel_"))
      continue;

    var kernel = { name: $function.name, versions: [] };
    kernel.wrapper = $function.name + "_wrapper";
    kernel.versionVar = "__margot_version_" + kernel.name;
    kernel.threadsVar = "__margot_num_threads_" + kernel.name;

    // Per-kernel control variables: each phase tunes independently.
    exec addGlobal("int", kernel.versionVar, "0");
    exec addGlobal("int", kernel.threadsVar, "1");

    // Inspect the kernel before cloning: full signature, loop
    // structure and OpenMP pragma information.
    var rtype = $function.returnType;
    var params = [];
    for (var i = 0; i < $function.paramCount; i++) {
      var $p = $function.param(i);
      params.push({ type: $p.type, name: $p.name });
    }
    select $function.loop end
    apply
      var depth = $loop.nestDepth;
    end
    select $function.pragma end
    apply
      if ($pragma.isOpenMP) {
        var directive = $pragma.directive;
        var clauses = $pragma.clauses;
      }
    end

    var versionId = 0;
    for (var cfg of configs) {
      for (var bind of bindings) {
        var cloneName = kernel.name + "_" + Naming.suffix(cfg.name, bind);

        exec cloneFunction($function, cloneName);
        var $clone = AST.function(cloneName);

        // Compiler options for this clone.
        insert before $clone %{#pragma GCC push_options}%;
        insert before $clone %{#pragma GCC optimize("[[cfg.options]]")}%;
        insert after  $clone %{#pragma GCC pop_options}%;

        // Parallelization knobs of every OpenMP pragma in the clone.
        select $clone.pragma end
        apply
          if (!$pragma.isOpenMP)
            continue;
          var info = $pragma.ompInfo;
          info.setClause("num_threads", kernel.threadsVar);
          info.setClause("proc_bind", bind);
          exec setPragma($pragma, info.render());
        end

        kernel.versions.push({ id: versionId, fn: cloneName,
                               config: cfg.name, binding: bind });
        versionId++;
      }
    }

    // Dispatch wrapper: switches on the version control variable.
    var wrapperCode = Naming.signature(rtype, kernel.wrapper, params) + "{\n";
    for (var v of kernel.versions) {
      wrapperCode += "  " + (v.id == 0 ? "if" : "else if");
      wrapperCode += " (" + kernel.versionVar + " == " + v.id + ")\n";
      wrapperCode += "    " + v.fn + "(" + Naming.args(params) + ");\n";
    }
    wrapperCode += "  else\n    " + kernel.name + "(" + Naming.args(params) + ");\n}";
    exec addFunction(wrapperCode);

    // Retarget every original call site to the wrapper.
    select function{name != kernel.wrapper}.call end
    apply
      if ($call.name == kernel.name && !$function.name.startsWith(kernel.name))
        exec setCallee($call, kernel.wrapper);
    end

    kernels.push(kernel);
  end
end
)LARA";

const char* const kAutotunerLara = R"LARA(
// Autotuner.lara
// Integrates the mARGOt autotuner: header include, initialization in
// main, and update/start/stop calls around every wrapper call site
// (Figure 2c).
import socrates.Multiversioning;

aspectdef Autotuner
  input kernels end

  select file end
  apply
    exec addInclude("margot.h");
  end

  select function{name == "main"} end
  apply
    insert at_begin %{margot_init();}%;
  end

  for (var kernel of kernels) {
    select function.call{name == kernel.wrapper} end
    apply
      if ($function.name == kernel.wrapper)
        continue;
      if ($function.name.startsWith(kernel.name))
        continue;
      insert before $call %{margot_update(&[[kernel.versionVar]], &[[kernel.threadsVar]]);}%;
      insert before $call %{margot_start_monitors();}%;
      insert after  $call %{margot_stop_monitors();}%;
    end
  }
end
)LARA";

}  // namespace

const std::string& multiversioning_aspect() {
  static const std::string kSource = kMultiversioningLara;
  return kSource;
}

const std::string& autotuner_aspect() {
  static const std::string kSource = kAutotunerLara;
  return kSource;
}

std::size_t lara_logical_loc(const std::string& source) {
  std::size_t loc = 0;
  bool in_block_comment = false;
  for (const std::string& raw_line : split(source, '\n')) {
    std::string line = trim(raw_line);
    if (line.empty()) continue;
    if (in_block_comment) {
      if (contains(line, "*/")) in_block_comment = false;
      continue;
    }
    if (starts_with(line, "//")) continue;
    if (starts_with(line, "/*")) {
      if (!contains(line, "*/")) in_block_comment = true;
      continue;
    }
    if (line == "{" || line == "}" || line == "end" || line == "}%;") continue;
    ++loc;
  }
  return loc;
}

std::size_t strategy_logical_loc() {
  return lara_logical_loc(multiversioning_aspect()) +
         lara_logical_loc(autotuner_aspect());
}

}  // namespace socrates::weaver
