#include "weaver/weaver.hpp"

#include "ir/parser.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::weaver {

Weaver::Weaver(ir::TranslationUnit& tu, WeavingMetrics& metrics)
    : tu_(tu), metrics_(metrics) {}

// ---- select -----------------------------------------------------------------

std::vector<ir::FunctionDecl*> Weaver::select_functions() { return tu_.functions(); }

std::vector<ir::FunctionDecl*> Weaver::select_functions_with_prefix(
    const std::string& prefix) {
  std::vector<ir::FunctionDecl*> out;
  for (ir::FunctionDecl* fn : tu_.functions()) {
    metrics_.att();  // name inspection during the match
    if (starts_with(fn->name, prefix)) out.push_back(fn);
  }
  return out;
}

std::vector<ir::PragmaStmt*> Weaver::select_omp_pragmas(ir::FunctionDecl& fn) {
  std::vector<ir::PragmaStmt*> out;
  SOCRATES_REQUIRE(fn.body != nullptr);
  ir::walk_stmt_mut(*fn.body, [&](ir::Stmt& s) {
    if (s.kind != ir::StmtKind::kPragma) return;
    auto& p = static_cast<ir::PragmaStmt&>(s);
    metrics_.att();  // pragma-kind inspection
    if (p.pragma.is_omp()) out.push_back(&p);
  });
  return out;
}

std::vector<ir::Stmt*> Weaver::select_loops(ir::FunctionDecl& fn) {
  std::vector<ir::Stmt*> out;
  SOCRATES_REQUIRE(fn.body != nullptr);
  ir::walk_stmt_mut(*fn.body, [&](ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kFor || s.kind == ir::StmtKind::kWhile ||
        s.kind == ir::StmtKind::kDoWhile)
      out.push_back(&s);
  });
  return out;
}

std::vector<ir::CallExpr*> Weaver::select_calls(ir::FunctionDecl& fn,
                                                const std::string& callee) {
  std::vector<ir::CallExpr*> out;
  SOCRATES_REQUIRE(fn.body != nullptr);
  ir::walk_stmt_exprs(*fn.body, [&](const ir::Expr& e) {
    if (e.kind != ir::ExprKind::kCall) return;
    metrics_.att();  // callee-name inspection during the match
    auto& call = const_cast<ir::CallExpr&>(static_cast<const ir::CallExpr&>(e));
    if (call.callee == callee) out.push_back(&call);
  });
  return out;
}

// ---- attributes ----------------------------------------------------------------

std::string Weaver::att_name(const ir::FunctionDecl& fn) {
  metrics_.att();
  return fn.name;
}

std::string Weaver::att_return_type(const ir::FunctionDecl& fn) {
  metrics_.att();
  return fn.return_type;
}

std::size_t Weaver::att_param_count(const ir::FunctionDecl& fn) {
  metrics_.att();
  return fn.params.size();
}

const ir::VarDecl& Weaver::att_param(const ir::FunctionDecl& fn, std::size_t i) {
  SOCRATES_REQUIRE(i < fn.params.size());
  metrics_.att(2);  // $param.type and $param.name
  return fn.params[i];
}

bool Weaver::att_has_omp(ir::FunctionDecl& fn) {
  bool found = false;
  SOCRATES_REQUIRE(fn.body != nullptr);
  ir::walk_stmt_mut(*fn.body, [&](ir::Stmt& s) {
    if (s.kind != ir::StmtKind::kPragma) return;
    metrics_.att();
    if (static_cast<ir::PragmaStmt&>(s).pragma.is_omp()) found = true;
  });
  return found;
}

ir::OmpPragma Weaver::att_omp_info(const ir::PragmaStmt& pragma) {
  const auto parsed = ir::parse_omp(pragma.pragma);
  SOCRATES_REQUIRE_MSG(parsed.has_value(), "not an OpenMP pragma: " << pragma.pragma.raw);
  // Directive plus one attribute read per clause, as a LARA aspect
  // inspecting "OpenMP pragma information" would perform.
  metrics_.att(1 + parsed->clauses.size());
  return *parsed;
}

std::size_t Weaver::att_loop_depth(const ir::Stmt& loop) {
  metrics_.att();
  std::size_t depth = 0;
  ir::walk_stmt(loop, [&](const ir::Stmt& s) {
    if (&s == &loop) return;
    if (s.kind == ir::StmtKind::kFor || s.kind == ir::StmtKind::kWhile ||
        s.kind == ir::StmtKind::kDoWhile)
      ++depth;  // counts nested loops, an upper bound on extra depth
  });
  return depth;
}

std::string Weaver::att_callee(const ir::CallExpr& call) {
  metrics_.att();
  return call.callee;
}

// ---- actions --------------------------------------------------------------------

std::size_t Weaver::index_of_function(const ir::FunctionDecl& fn) const {
  for (std::size_t i = 0; i < tu_.items.size(); ++i)
    if (tu_.items[i].get() == &fn) return i;
  SOCRATES_REQUIRE_MSG(false, "function '" << fn.name << "' is not part of this unit");
  return 0;  // unreachable
}

ir::FunctionDecl* Weaver::act_clone_function(const ir::FunctionDecl& fn,
                                             const std::string& new_name) {
  const std::size_t at = index_of_function(fn);
  auto clone = fn.clone_function();
  clone->name = new_name;
  ir::FunctionDecl* raw = clone.get();
  tu_.items.insert(tu_.items.begin() + static_cast<std::ptrdiff_t>(at) + 1,
                   std::move(clone));
  metrics_.act();
  return raw;
}

void Weaver::act_insert_pragma_before(const ir::FunctionDecl& fn, ir::Pragma pragma) {
  const std::size_t at = index_of_function(fn);
  tu_.items.insert(tu_.items.begin() + static_cast<std::ptrdiff_t>(at),
                   std::make_unique<ir::TopLevelPragma>(std::move(pragma)));
  metrics_.act();
}

void Weaver::act_insert_pragma_after(const ir::FunctionDecl& fn, ir::Pragma pragma) {
  const std::size_t at = index_of_function(fn);
  tu_.items.insert(tu_.items.begin() + static_cast<std::ptrdiff_t>(at) + 1,
                   std::make_unique<ir::TopLevelPragma>(std::move(pragma)));
  metrics_.act();
}

void Weaver::act_set_pragma(ir::PragmaStmt& pragma, std::string new_raw) {
  pragma.pragma.raw = std::move(new_raw);
  metrics_.act();
}

void Weaver::act_add_include(const std::string& target) {
  // After the last existing include (or at the very top).
  std::size_t at = 0;
  for (std::size_t i = 0; i < tu_.items.size(); ++i)
    if (tu_.items[i]->kind == ir::TopLevelKind::kInclude) at = i + 1;
  tu_.items.insert(tu_.items.begin() + static_cast<std::ptrdiff_t>(at),
                   std::make_unique<ir::IncludeDirective>(target));
  metrics_.act();
}

void Weaver::act_add_global(ir::VarDecl decl) {
  // Before the first function definition.
  std::size_t at = tu_.items.size();
  for (std::size_t i = 0; i < tu_.items.size(); ++i) {
    if (tu_.items[i]->kind == ir::TopLevelKind::kFunction) {
      at = i;
      break;
    }
  }
  std::vector<ir::VarDecl> decls;
  decls.push_back(std::move(decl));
  tu_.items.insert(tu_.items.begin() + static_cast<std::ptrdiff_t>(at),
                   std::make_unique<ir::GlobalVarDecl>(std::move(decls)));
  metrics_.act();
}

ir::FunctionDecl* Weaver::act_add_function(std::unique_ptr<ir::FunctionDecl> fn) {
  ir::FunctionDecl* raw = fn.get();
  tu_.items.push_back(std::move(fn));
  metrics_.act();
  return raw;
}

void Weaver::act_retarget_call(ir::CallExpr& call, const std::string& new_callee) {
  call.callee = new_callee;
  metrics_.act();
}

void Weaver::act_insert_at_begin(ir::FunctionDecl& fn, ir::StmtPtr stmt) {
  SOCRATES_REQUIRE(fn.body != nullptr);
  fn.body->stmts.insert(fn.body->stmts.begin(), std::move(stmt));
  metrics_.act();
}

namespace {

/// True when the statement (non-recursively through compounds) contains
/// a call to `callee` in any of its expressions.
bool stmt_calls(const ir::Stmt& stmt, const std::string& callee) {
  if (stmt.kind == ir::StmtKind::kCompound) return false;  // handled per child
  bool found = false;
  ir::walk_stmt_exprs(stmt, [&](const ir::Expr& e) {
    if (e.kind == ir::ExprKind::kCall &&
        static_cast<const ir::CallExpr&>(e).callee == callee)
      found = true;
  });
  return found;
}

}  // namespace

std::size_t Weaver::act_insert_around_calls(ir::FunctionDecl& fn,
                                            const std::string& callee,
                                            const std::vector<std::string>& before,
                                            const std::vector<std::string>& after) {
  SOCRATES_REQUIRE(fn.body != nullptr);
  // Collect the compound blocks first: inserting while the walker is
  // iterating a block's statement vector would invalidate its iterators.
  std::vector<ir::CompoundStmt*> blocks;
  ir::walk_stmt_mut(*fn.body, [&](ir::Stmt& s) {
    if (s.kind == ir::StmtKind::kCompound)
      blocks.push_back(&static_cast<ir::CompoundStmt&>(s));
  });

  std::size_t sites = 0;
  for (ir::CompoundStmt* block : blocks) {
    for (std::size_t i = 0; i < block->stmts.size(); ++i) {
      if (!stmt_calls(*block->stmts[i], callee)) continue;
      // After-statements first (insertion index stays valid), reversed
      // so they end up in the given order.
      for (std::size_t k = after.size(); k-- > 0;) {
        block->stmts.insert(block->stmts.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                            ir::parse_statement(after[k]));
        metrics_.act();
      }
      for (std::size_t k = before.size(); k-- > 0;) {
        block->stmts.insert(block->stmts.begin() + static_cast<std::ptrdiff_t>(i),
                            ir::parse_statement(before[k]));
        metrics_.act();
      }
      i += before.size() + after.size();  // skip the fresh statements
      ++sites;
    }
  }
  return sites;
}

}  // namespace socrates::weaver
