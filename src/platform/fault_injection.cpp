#include "platform/fault_injection.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace socrates::platform {

const char* to_string(SensorFaultKind kind) {
  switch (kind) {
    case SensorFaultKind::kCounterWrap: return "counter-wrap";
    case SensorFaultKind::kStuckCounter: return "stuck-counter";
    case SensorFaultKind::kReadFailure: return "read-failure";
    case SensorFaultKind::kSpike: return "spike";
    case SensorFaultKind::kClockJitter: return "clock-jitter";
  }
  return "?";
}

void FaultSchedule::add(SensorFault fault) {
  SOCRATES_REQUIRE(fault.end_s > fault.start_s);
  SOCRATES_REQUIRE(fault.probability >= 0.0 && fault.probability <= 1.0);
  SOCRATES_REQUIRE(fault.magnitude >= 0.0);
  if (fault.kind == SensorFaultKind::kCounterWrap)
    SOCRATES_REQUIRE_MSG(fault.magnitude > 0.0, "wrap range must be positive");
  sensor_faults_.push_back(fault);
}

void FaultSchedule::add(VariantFault fault) {
  SOCRATES_REQUIRE(fault.end_s > fault.start_s);
  SOCRATES_REQUIRE(fault.crash_probability >= 0.0 && fault.crash_probability <= 1.0);
  SOCRATES_REQUIRE(fault.garbage_probability >= 0.0 && fault.garbage_probability <= 1.0);
  SOCRATES_REQUIRE(fault.crash_fraction >= 0.0 && fault.crash_fraction <= 1.0);
  // A crash that consumes no simulated time would let run_until() spin
  // forever on a quarantine-less stack.
  if (fault.crash_probability > 0.0)
    SOCRATES_REQUIRE_MSG(fault.crash_fraction > 0.0,
                         "crashing variants must burn some time before dying");
  SOCRATES_REQUIRE(fault.garbage_scale > 0.0);
  variant_faults_.push_back(fault);
}

double FaultSchedule::corrupt_energy_reading(double clean_uj, double t_s, Rng& rng,
                                             StuckState& stuck) const {
  double value = clean_uj;
  bool stuck_active = false;
  for (const SensorFault& f : sensor_faults_) {
    if (!f.active_at(t_s)) continue;
    switch (f.kind) {
      case SensorFaultKind::kCounterWrap:
        value = std::fmod(value, f.magnitude);
        break;
      case SensorFaultKind::kStuckCounter:
        stuck_active = true;
        if (!stuck.latched) {
          stuck.latched = true;
          stuck.value_uj = value;
        }
        value = stuck.value_uj;
        break;
      case SensorFaultKind::kReadFailure:
        if (rng.uniform() < f.probability)
          return std::numeric_limits<double>::quiet_NaN();
        break;
      case SensorFaultKind::kSpike:
        if (rng.uniform() < f.probability) value += f.magnitude;
        break;
      case SensorFaultKind::kClockJitter:
        break;  // handled by corrupt_timestamp
    }
  }
  if (!stuck_active) stuck.latched = false;
  return value;
}

double FaultSchedule::corrupt_timestamp(double clean_s, double t_s, Rng& rng) const {
  double value = clean_s;
  for (const SensorFault& f : sensor_faults_) {
    if (f.kind != SensorFaultKind::kClockJitter || !f.active_at(t_s)) continue;
    value += rng.normal(0.0, f.magnitude);
  }
  return value;
}

FaultSchedule::VariantRoll FaultSchedule::roll_variant(const Configuration& config,
                                                       double t_s, Rng& rng) const {
  for (const VariantFault& f : variant_faults_) {
    if (!f.active_at(t_s) || !(f.config == config.flags)) continue;
    if (f.crash_probability > 0.0 && rng.uniform() < f.crash_probability)
      return {VariantOutcome::kCrash, &f};
    if (f.garbage_probability > 0.0 && rng.uniform() < f.garbage_probability)
      return {VariantOutcome::kGarbage, &f};
  }
  return {};
}

FaultyEnergyCounter::FaultyEnergyCounter(const EnergyCounter& inner, const Clock& clock,
                                         const FaultSchedule& faults, std::uint64_t seed)
    : inner_(inner), clock_(clock), faults_(faults), rng_(seed) {}

double FaultyEnergyCounter::energy_uj() const {
  return faults_.corrupt_energy_reading(inner_.energy_uj(), clock_.now_s(), rng_,
                                        stuck_);
}

FaultyClock::FaultyClock(const Clock& inner, const FaultSchedule& faults,
                         std::uint64_t seed)
    : inner_(inner), faults_(faults), rng_(seed) {}

double FaultyClock::now_s() const {
  const double clean = inner_.now_s();
  return faults_.corrupt_timestamp(clean, clean, rng_);
}

}  // namespace socrates::platform
