// Simulated kernel executor.
//
// Glue between the performance model and the runtime stack: each run()
// advances a virtual clock by the modelled execution time and deposits
// the modelled energy into a simulated RAPL counter.  mARGOt's time and
// energy monitors observe *only* the clock and the counter — exactly
// the interface they would have on real hardware — so the adaptation
// logic cannot peek at model internals.
#pragma once

#include "platform/clock.hpp"
#include "platform/disturbance.hpp"
#include "platform/kernel_model.hpp"
#include "platform/perf_model.hpp"
#include "platform/rapl.hpp"
#include "support/rng.hpp"

namespace socrates::platform {

class KernelExecutor {
 public:
  /// `work_scale` scales the kernel dataset for every run (Figure 5
  /// uses a smaller dataset than the static DSE; see DESIGN.md).
  KernelExecutor(const PerformanceModel& model, KernelModelParams kernel,
                 double work_scale = 1.0, std::uint64_t noise_seed = 42);

  /// Executes one kernel invocation under `config`: advances the clock,
  /// accrues energy, returns the measurement.
  Measurement run(const Configuration& config);

  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  const SimulatedRapl& rapl() const { return rapl_; }
  SimulatedRapl& rapl() { return rapl_; }
  const KernelModelParams& kernel() const { return kernel_; }

  /// Simulated idle time between kernel invocations: advances the
  /// clock and accrues idle-power energy.
  void idle(double seconds);

  /// Installs external-load episodes; subsequent run() measurements are
  /// perturbed by the episodes active at the simulated time.  The
  /// adaptive layers never see the schedule — only its effect through
  /// the monitors.
  void set_disturbances(DisturbanceSchedule schedule);
  const DisturbanceSchedule& disturbances() const { return disturbances_; }

  /// Changes the dataset scale of subsequent runs (input change).
  void set_work_scale(double work_scale);
  double work_scale() const { return work_scale_; }

 private:
  const PerformanceModel& model_;
  KernelModelParams kernel_;
  double work_scale_;
  Rng noise_;
  VirtualClock clock_;
  SimulatedRapl rapl_;
  DisturbanceSchedule disturbances_;
};

}  // namespace socrates::platform
