// Simulated kernel executor.
//
// Glue between the performance model and the runtime stack: each run()
// advances a virtual clock by the modelled execution time and deposits
// the modelled energy into a simulated RAPL counter.  mARGOt's time and
// energy monitors observe *only* the clock and the counter — exactly
// the interface they would have on real hardware — so the adaptation
// logic cannot peek at model internals.  When a FaultSchedule is
// installed, the monitors additionally observe the clock and counter
// *through* the schedule's sensor faults (sensor_clock() /
// sensor_counter()), and run() may crash or return garbage for the
// clones the schedule marks faulty.
#pragma once

#include "platform/clock.hpp"
#include "platform/disturbance.hpp"
#include "platform/fault_injection.hpp"
#include "platform/kernel_model.hpp"
#include "platform/perf_model.hpp"
#include "platform/rapl.hpp"
#include "support/rng.hpp"

namespace socrates::platform {

class KernelExecutor {
 public:
  /// `work_scale` scales the kernel dataset for every run (Figure 5
  /// uses a smaller dataset than the static DSE; see DESIGN.md).
  KernelExecutor(const PerformanceModel& model, KernelModelParams kernel,
                 double work_scale = 1.0, std::uint64_t noise_seed = 42);

  /// Executes one kernel invocation under `config`: advances the clock,
  /// accrues energy, returns the measurement.  Throws VariantCrash when
  /// the fault schedule makes this clone crash (the clock and counter
  /// still advance by the partial run).
  Measurement run(const Configuration& config);

  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }
  const SimulatedRapl& rapl() const { return rapl_; }
  SimulatedRapl& rapl() { return rapl_; }
  const KernelModelParams& kernel() const { return kernel_; }

  /// The time base as the *monitors* should see it: the true clock
  /// filtered through the fault schedule (identical to clock() while no
  /// clock faults are active).
  const Clock& sensor_clock() const { return faulty_clock_; }

  /// The energy counter as the monitors should see it (see above).
  const EnergyCounter& sensor_counter() const { return faulty_rapl_; }

  /// Simulated idle time between kernel invocations: advances the
  /// clock and accrues idle-power energy.
  void idle(double seconds);

  /// Installs external-load episodes; subsequent run() measurements are
  /// perturbed by the episodes active at the simulated time.  The
  /// adaptive layers never see the schedule — only its effect through
  /// the monitors.
  void set_disturbances(DisturbanceSchedule schedule);
  const DisturbanceSchedule& disturbances() const { return disturbances_; }

  /// Installs sensor / variant faults; like disturbances, the adaptive
  /// layers only ever see their effects.
  void set_faults(FaultSchedule schedule);
  const FaultSchedule& faults() const { return faults_; }

  /// Changes the dataset scale of subsequent runs (input change).
  void set_work_scale(double work_scale);
  double work_scale() const { return work_scale_; }

 private:
  const PerformanceModel& model_;
  KernelModelParams kernel_;
  double work_scale_;
  Rng noise_;
  VirtualClock clock_;
  SimulatedRapl rapl_;
  DisturbanceSchedule disturbances_;
  FaultSchedule faults_;
  Rng fault_rng_;                   ///< separate stream: faults never shift noise
  FaultyClock faulty_clock_;        ///< sensor view over clock_ + faults_
  FaultyEnergyCounter faulty_rapl_; ///< sensor view over rapl_ + faults_
};

}  // namespace socrates::platform
