// External-load disturbances.
//
// The paper motivates runtime autotuning with environments where "the
// application workload and resource partitioning change dynamically"
// and budgets "evolve depending on external events".  This module
// models the classic case: a co-runner appears on the machine for a
// while, stealing memory bandwidth and burning power.  The executor
// applies the active disturbances to every measurement, and — because
// mARGOt only sees the monitors — the AS-RTM's feedback loop has to
// *discover* the change through its corrections (the MAPE-K reaction
// exercised by tests/adaptation and bench/ablation_feedback_adaptation).
#pragma once

#include <cstddef>
#include <vector>

#include "platform/kernel_model.hpp"
#include "platform/perf_model.hpp"

namespace socrates::platform {

/// One co-runner episode on the simulated machine.
struct Disturbance {
  double start_s = 0.0;
  double end_s = 0.0;
  /// Fraction of the machine's memory bandwidth the co-runner consumes
  /// while active (0..1).  Slows memory-bound kernels the most.
  double bandwidth_steal = 0.0;
  /// Fraction of compute capability consumed (core time stolen by the
  /// co-runner's threads), applied to the parallel compute phase.
  double compute_steal = 0.0;
  /// Extra package power drawn by the co-runner itself.
  double power_overhead_w = 0.0;

  bool active_at(double t_s) const { return t_s >= start_s && t_s < end_s; }
};

/// A time-ordered set of disturbances (episodes may overlap; effects
/// compose multiplicatively for slowdowns and additively for power).
class DisturbanceSchedule {
 public:
  void add(Disturbance d);
  bool empty() const { return episodes_.empty(); }
  std::size_t size() const { return episodes_.size(); }

  /// Applies every episode active at time `t_s` to a clean measurement
  /// of `kernel`.  The slowdown of a bandwidth steal scales with the
  /// kernel's memory intensity; a compute steal scales with the
  /// parallel fraction.
  Measurement apply(const Measurement& clean, const KernelModelParams& kernel,
                    double t_s) const;

 private:
  std::vector<Disturbance> episodes_;
};

}  // namespace socrates::platform
