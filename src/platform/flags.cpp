#include "platform/flags.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::platform {

const char* to_string(OptLevel level) {
  switch (level) {
    case OptLevel::kOs: return "Os";
    case OptLevel::kO1: return "O1";
    case OptLevel::kO2: return "O2";
    case OptLevel::kO3: return "O3";
  }
  return "?";
}

const char* flag_spelling(Flag flag) {
  switch (flag) {
    case Flag::kUnsafeMath: return "unsafe-math-optimizations";
    case Flag::kNoGuessBranchProb: return "no-guess-branch-probability";
    case Flag::kNoIvopts: return "no-ivopts";
    case Flag::kNoTreeLoopOptimize: return "no-tree-loop-optimize";
    case Flag::kNoInline: return "no-inline-functions";
    case Flag::kUnrollAllLoops: return "unroll-all-loops";
  }
  return "?";
}

FlagConfig::FlagConfig(OptLevel level, unsigned flag_bits)
    : level_(level), bits_(flag_bits) {
  SOCRATES_REQUIRE_MSG(flag_bits < (1u << kFlagCount), "flag bits out of range");
}

FlagConfig FlagConfig::with(Flag flag) const {
  FlagConfig out = *this;
  out.bits_ |= 1u << static_cast<std::size_t>(flag);
  return out;
}

FlagConfig FlagConfig::without(Flag flag) const {
  FlagConfig out = *this;
  out.bits_ &= ~(1u << static_cast<std::size_t>(flag));
  return out;
}

std::string FlagConfig::pragma_options() const {
  std::string out = to_string(level_);
  for (std::size_t i = 0; i < kFlagCount; ++i) {
    const auto flag = static_cast<Flag>(i);
    if (has(flag)) out += std::string(",") + flag_spelling(flag);
  }
  return out;
}

FlagConfig FlagConfig::parse(const std::string& options) {
  const auto parts = split(options, ',');
  SOCRATES_REQUIRE(!parts.empty());

  OptLevel level = OptLevel::kO2;
  const std::string level_text = trim(parts.front());
  if (level_text == "Os") level = OptLevel::kOs;
  else if (level_text == "O1") level = OptLevel::kO1;
  else if (level_text == "O2") level = OptLevel::kO2;
  else if (level_text == "O3") level = OptLevel::kO3;
  else SOCRATES_REQUIRE_MSG(false, "unknown optimization level '" << level_text << "'");

  FlagConfig out(level);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string name = trim(parts[i]);
    bool found = false;
    for (std::size_t f = 0; f < kFlagCount; ++f) {
      if (name == flag_spelling(static_cast<Flag>(f))) {
        out = out.with(static_cast<Flag>(f));
        found = true;
        break;
      }
    }
    // Accept the paper's abbreviated spellings ("no-inline").
    if (!found && name == "no-inline") {
      out = out.with(Flag::kNoInline);
      found = true;
    }
    SOCRATES_REQUIRE_MSG(found, "unknown flag '" << name << "'");
  }
  return out;
}

std::vector<NamedConfig> standard_levels() {
  return {
      {"Os", FlagConfig(OptLevel::kOs)},
      {"O1", FlagConfig(OptLevel::kO1)},
      {"O2", FlagConfig(OptLevel::kO2)},
      {"O3", FlagConfig(OptLevel::kO3)},
  };
}

std::vector<NamedConfig> paper_custom_configs() {
  const FlagConfig cf1 = FlagConfig(OptLevel::kO3)
                             .with(Flag::kNoGuessBranchProb)
                             .with(Flag::kNoIvopts)
                             .with(Flag::kNoTreeLoopOptimize)
                             .with(Flag::kNoInline);
  const FlagConfig cf2 =
      FlagConfig(OptLevel::kO2).with(Flag::kNoInline).with(Flag::kUnrollAllLoops);
  const FlagConfig cf3 = FlagConfig(OptLevel::kO2)
                             .with(Flag::kUnsafeMath)
                             .with(Flag::kNoIvopts)
                             .with(Flag::kNoTreeLoopOptimize)
                             .with(Flag::kUnrollAllLoops);
  const FlagConfig cf4 = FlagConfig(OptLevel::kO2).with(Flag::kNoInline);
  return {{"CF1", cf1}, {"CF2", cf2}, {"CF3", cf3}, {"CF4", cf4}};
}

std::vector<NamedConfig> reduced_design_space() {
  auto out = standard_levels();
  for (auto& c : paper_custom_configs()) out.push_back(std::move(c));
  return out;
}

std::vector<FlagConfig> cobayn_search_space() {
  std::vector<FlagConfig> out;
  out.reserve(2u << kFlagCount);
  for (const OptLevel level : {OptLevel::kO2, OptLevel::kO3}) {
    for (unsigned bits = 0; bits < (1u << kFlagCount); ++bits) {
      out.emplace_back(level, bits);
    }
  }
  return out;
}

}  // namespace socrates::platform
