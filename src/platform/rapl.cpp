#include "platform/rapl.hpp"

#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::platform {

namespace {

std::vector<std::string> find_package_domains(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return files;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (!starts_with(name, "intel-rapl:")) continue;
    if (name.find(':') != name.rfind(':')) continue;  // skip sub-domains a:b:c
    const fs::path energy = entry.path() / "energy_uj";
    std::ifstream in(energy);
    if (!in.good()) continue;
    files.push_back(energy.string());
  }
  return files;
}

}  // namespace

bool SysfsRaplReader::available(const std::string& powercap_root) {
  return !find_package_domains(powercap_root).empty();
}

SysfsRaplReader::SysfsRaplReader(const std::string& powercap_root)
    : domain_files_(find_package_domains(powercap_root)),
      last_values_(domain_files_.size(), 0.0) {
  SOCRATES_REQUIRE_MSG(!domain_files_.empty(),
                       "no readable intel-rapl package domain under " << powercap_root);
}

double SysfsRaplReader::energy_uj() const {
  double total = 0.0;
  for (std::size_t i = 0; i < domain_files_.size(); ++i) {
    std::ifstream in(domain_files_[i]);
    double value = 0.0;
    if (in >> value) {
      last_values_[i] = value;
      total += value;
    } else {
      // Domain vanished or turned unreadable: substitute its last good
      // value so the summed counter neither drops nor throws.
      ++read_errors_;
      total += last_values_[i];
    }
  }
  return total;
}

void SimulatedRapl::accrue(double seconds, double power_w) {
  SOCRATES_REQUIRE(seconds >= 0.0);
  SOCRATES_REQUIRE(power_w >= 0.0);
  energy_uj_ += seconds * power_w * 1e6;
}

EnergySource make_energy_source() {
  EnergySource source;
  if (SysfsRaplReader::available()) {
    source.counter = std::make_unique<SysfsRaplReader>();
    return source;
  }
  auto simulated = std::make_unique<SimulatedRapl>();
  source.simulated = simulated.get();
  source.counter = std::move(simulated);
  return source;
}

}  // namespace socrates::platform
