// Compiler-option knob space (the paper's CO knob).
//
// The space matches Section II of the paper: the four GCC standard
// levels -Os/-O1/-O2/-O3 plus the six specific transformation flags
// taken from Chen et al. ("Deconstructing iterative optimization"):
//   -funsafe-math-optimizations  -fno-guess-branch-probability
//   -fno-ivopts                  -fno-tree-loop-optimize
//   -fno-inline-functions        -funroll-all-loops
// COBAYN explores the 128-point space {O2,O3} x 2^6 (the size quoted
// in the paper) and reduces it to four custom configurations CF1-CF4.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace socrates::platform {

enum class OptLevel { kOs, kO1, kO2, kO3 };

const char* to_string(OptLevel level);

/// The six boolean transformation flags, bit positions in FlagConfig.
enum class Flag : std::size_t {
  kUnsafeMath = 0,         ///< -funsafe-math-optimizations
  kNoGuessBranchProb = 1,  ///< -fno-guess-branch-probability
  kNoIvopts = 2,           ///< -fno-ivopts
  kNoTreeLoopOptimize = 3, ///< -fno-tree-loop-optimize
  kNoInline = 4,           ///< -fno-inline-functions
  kUnrollAllLoops = 5,     ///< -funroll-all-loops
};

inline constexpr std::size_t kFlagCount = 6;

/// Spelling used inside "#pragma GCC optimize(...)" strings.
const char* flag_spelling(Flag flag);

/// One point of the compiler-option space.
class FlagConfig {
 public:
  FlagConfig() = default;
  explicit FlagConfig(OptLevel level, unsigned flag_bits = 0);

  OptLevel level() const { return level_; }
  bool has(Flag flag) const { return (bits_ & (1u << static_cast<std::size_t>(flag))) != 0; }
  unsigned flag_bits() const { return bits_; }

  FlagConfig with(Flag flag) const;
  FlagConfig without(Flag flag) const;

  /// Comma-separated option string as it appears in the GCC pragma,
  /// e.g. "O2,no-inline-functions,unroll-all-loops".
  std::string pragma_options() const;

  /// Parses the pragma_options() format back.  Throws on unknown names.
  static FlagConfig parse(const std::string& options);

  bool operator==(const FlagConfig& other) const = default;

 private:
  OptLevel level_ = OptLevel::kO2;
  unsigned bits_ = 0;
};

/// Named configuration (a row of the reduced design space).
struct NamedConfig {
  std::string name;  ///< "O3", "CF1", ...
  FlagConfig config;
};

/// The four GCC standard levels, named "Os","O1","O2","O3".
std::vector<NamedConfig> standard_levels();

/// The paper's COBAYN-suggested configurations (Section III):
///   CF1: O3, no-guess-branch-probability, no-ivopts,
///        no-tree-loop-optimize, no-inline
///   CF2: O2, no-inline, unroll-all-loops
///   CF3: O2, unsafe-math-optimizations, no-ivopts,
///        no-tree-loop-optimize, unroll-all-loops
///   CF4: O2, no-inline
std::vector<NamedConfig> paper_custom_configs();

/// standard_levels() followed by paper_custom_configs() — the reduced
/// 8-point design space used by the experiments.
std::vector<NamedConfig> reduced_design_space();

/// The full iterative-compilation space COBAYN searches: {O2, O3} x
/// all 64 subsets of the six flags = 128 configurations.
std::vector<FlagConfig> cobayn_search_space();

}  // namespace socrates::platform
