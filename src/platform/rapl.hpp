// RAPL-style energy counters.
//
// On the paper's platform power is measured through the Intel RAPL
// interface.  This module exposes the same contract — a monotonically
// increasing package-energy counter in microjoules — with two
// implementations: a sysfs reader for real hardware
// (/sys/class/powercap/intel-rapl*) and a simulated counter fed by the
// performance model.  mARGOt's power/energy monitors are written
// against the EnergyCounter interface, so the whole adaptive stack is
// oblivious to which one is underneath (the container this repo is
// built in has no powercap interface; see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace socrates::platform {

/// Range of the RAPL energy register: 32 bits of microjoules.  Real
/// counters wrap modulo this value every few minutes under load; the
/// hardened energy/power monitors correct deltas that straddle a wrap.
inline constexpr double kRaplWrapRangeUj = 4294967296.0;

class EnergyCounter {
 public:
  virtual ~EnergyCounter() = default;
  /// Cumulative package energy in microjoules.  Monotone.
  virtual double energy_uj() const = 0;
  /// Human-readable backend name ("rapl-sysfs", "simulated").
  virtual std::string backend() const = 0;
};

/// Reads and sums every package domain under /sys/class/powercap.
/// Construct only when available() returns true.  Domain files that
/// become unreadable (hot-unplug, permission flip, vanished hwmon)
/// after construction are skipped at read time: the last value seen for
/// that domain is substituted so the sum stays monotone, and the
/// failure is tallied in read_errors().
class SysfsRaplReader final : public EnergyCounter {
 public:
  /// True when at least one intel-rapl package domain is readable.
  static bool available(const std::string& powercap_root = "/sys/class/powercap");

  explicit SysfsRaplReader(const std::string& powercap_root = "/sys/class/powercap");

  double energy_uj() const override;
  std::string backend() const override { return "rapl-sysfs"; }

  /// Paths of the energy_uj files being summed.
  const std::vector<std::string>& domains() const { return domain_files_; }

  /// Number of per-domain reads that failed since construction.
  std::size_t read_errors() const { return read_errors_; }

 private:
  std::vector<std::string> domain_files_;
  mutable std::vector<double> last_values_;  ///< per domain, last good read
  mutable std::size_t read_errors_ = 0;
};

/// Simulated counter: the executor deposits energy as simulated time
/// advances.
class SimulatedRapl final : public EnergyCounter {
 public:
  double energy_uj() const override { return energy_uj_; }
  std::string backend() const override { return "simulated"; }

  /// Accrues `seconds` of execution at `power_w` watts.
  void accrue(double seconds, double power_w);

 private:
  double energy_uj_ = 0.0;
};

/// SysfsRaplReader when the host exposes RAPL, otherwise the simulated
/// counter (returned alongside a non-owning pointer to it so the caller
/// can feed it).
struct EnergySource {
  std::unique_ptr<EnergyCounter> counter;
  SimulatedRapl* simulated = nullptr;  ///< non-null iff simulated backend
};

EnergySource make_energy_source();

}  // namespace socrates::platform
