#include "platform/topology.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace socrates::platform {

const char* to_string(BindingPolicy policy) {
  return policy == BindingPolicy::kClose ? "close" : "spread";
}

BindingPolicy binding_from_string(const std::string& text) {
  if (text == "close") return BindingPolicy::kClose;
  if (text == "spread") return BindingPolicy::kSpread;
  SOCRATES_REQUIRE_MSG(false, "unknown binding policy '" << text << "'");
  return BindingPolicy::kClose;  // unreachable
}

MachineTopology MachineTopology::xeon_e5_2630_v3() {
  return MachineTopology{/*sockets=*/2, /*cores_per_socket=*/8, /*threads_per_core=*/2};
}

std::vector<ThreadPlacement> place_threads(const MachineTopology& topology,
                                           std::size_t threads, BindingPolicy policy) {
  SOCRATES_REQUIRE(threads >= 1);
  SOCRATES_REQUIRE_MSG(threads <= topology.logical_cores(),
                       "requested " << threads << " threads on a machine with "
                                    << topology.logical_cores() << " logical cores");

  const std::size_t n_cores = topology.physical_cores();
  // Build the place (core) visit order for each policy.
  std::vector<std::pair<std::size_t, std::size_t>> core_order;  // (socket, core)
  core_order.reserve(n_cores);
  if (policy == BindingPolicy::kClose) {
    for (std::size_t s = 0; s < topology.sockets; ++s)
      for (std::size_t c = 0; c < topology.cores_per_socket; ++c) core_order.emplace_back(s, c);
  } else {
    // spread: alternate sockets, stepping through core indices.
    for (std::size_t c = 0; c < topology.cores_per_socket; ++c)
      for (std::size_t s = 0; s < topology.sockets; ++s) core_order.emplace_back(s, c);
  }

  std::vector<ThreadPlacement> placement;
  placement.reserve(threads);
  std::size_t t = 0;
  for (std::size_t slot = 0; slot < topology.threads_per_core && t < threads; ++slot) {
    for (const auto& [socket, core] : core_order) {
      if (t >= threads) break;
      placement.push_back(ThreadPlacement{socket, core, slot});
      ++t;
    }
  }
  return placement;
}

PlacementSummary summarize(const MachineTopology& topology,
                           const std::vector<ThreadPlacement>& placement) {
  PlacementSummary s;
  s.threads = placement.size();
  s.cores_per_socket_used.assign(topology.sockets, 0);

  // Per-core thread counts.
  std::vector<std::vector<std::size_t>> per_core(
      topology.sockets, std::vector<std::size_t>(topology.cores_per_socket, 0));
  for (const auto& p : placement) {
    SOCRATES_REQUIRE(p.socket < topology.sockets);
    SOCRATES_REQUIRE(p.core < topology.cores_per_socket);
    ++per_core[p.socket][p.core];
  }
  for (std::size_t socket = 0; socket < topology.sockets; ++socket) {
    std::size_t used = 0;
    for (std::size_t core = 0; core < topology.cores_per_socket; ++core) {
      const std::size_t n = per_core[socket][core];
      if (n == 0) continue;
      ++used;
      if (n >= 2) ++s.cores_with_two;
    }
    s.cores_per_socket_used[socket] = used;
    s.cores_used += used;
    if (used > 0) ++s.sockets_used;
  }
  return s;
}

}  // namespace socrates::platform
