// Per-kernel characterization consumed by the analytical models.
//
// These parameters are the "ground truth hardware behaviour" of a
// kernel on the modelled machine.  For the 12 Polybench kernels they
// are hand-calibrated from the kernels' well-known structure (matrix
// multiplies are compute-bound and vectorize, matvec kernels are
// bandwidth-bound, seidel-2d has a loop-carried dependence, ...); for
// synthetic training kernels they are derived from the generator's
// structural parameters, so static source features and model behaviour
// stay correlated — which is exactly the signal COBAYN learns.
#pragma once

#include <string>

namespace socrates::platform {

struct KernelModelParams {
  std::string name;

  /// Sequential execution time in seconds at -O2, one thread, on the
  /// reference dataset of the static experiments (Figures 3 and 4).
  double seq_work_s = 1.0;

  /// Fraction of the work inside OpenMP-parallel regions (Amdahl).
  double parallel_fraction = 0.95;

  /// Fraction of single-thread execution time stalled on memory; the
  /// roofline term of the performance model scales from this.
  double mem_intensity = 0.4;

  /// 0..1: how much the kernel benefits from -funroll-all-loops.
  double unroll_affinity = 0.5;

  /// 0..1: how much the kernel benefits from the extra vectorization
  /// enabled at -O3 (and from unsafe-math for FP reductions).
  double vectorization_affinity = 0.5;

  /// 0..1: fraction of floating-point arithmetic (drives unsafe-math).
  double fp_ratio = 0.9;

  /// 0..1: density of data-dependent branches (drives
  /// no-guess-branch-probability both ways).
  double branchiness = 0.1;

  /// 0..1: density of function calls in hot code (drives no-inline).
  double call_density = 0.05;

  /// 0..1: instruction-footprint pressure; unrolling hurts when high.
  double icache_sensitivity = 0.3;

  /// 0..1: how much induction-variable optimization matters (deep
  /// regular nests benefit, so -fno-ivopts costs them).
  double ivopt_sensitivity = 0.5;

  /// 0..1: how much tree-loop-optimize (interchange/distribution
  /// heuristics) helps; for some stencils the heuristics backfire and
  /// disabling them wins, expressed by a negative-leaning value < 0.5.
  double loop_opt_sensitivity = 0.5;
};

}  // namespace socrates::platform
