// Analytical model of compiler-flag effects.
//
// At runtime a SOCRATES binary switches between kernel clones compiled
// with different "#pragma GCC optimize" option sets.  This container
// has a single core and one compiler invocation, so the *effect* of a
// flag configuration is modelled instead: a per-kernel multiplicative
// speedup on the compute phase (relative to -O2) plus a core-power
// factor (higher-ILP code draws more power per cycle).  The weaver
// still performs the real source transformation; only the timing
// consequence of the flags is analytic.  See DESIGN.md §2 for why this
// preserves the paper's observable behaviour.
#pragma once

#include "platform/flags.hpp"
#include "platform/kernel_model.hpp"

namespace socrates::platform {

/// Multiplicative compute-speed factor of `config` for this kernel,
/// relative to plain -O2 (which returns exactly 1.0).  Always > 0.
double compute_speedup(const KernelModelParams& kernel, const FlagConfig& config);

/// Core dynamic-power factor of the generated code relative to -O2.
/// Denser ILP / wider vectors burn more power per core per second.
/// Clamped to [0.85, 1.20].
double core_power_factor(const KernelModelParams& kernel, const FlagConfig& config);

}  // namespace socrates::platform
