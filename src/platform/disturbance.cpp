#include "platform/disturbance.hpp"

#include "support/error.hpp"

namespace socrates::platform {

void DisturbanceSchedule::add(Disturbance d) {
  SOCRATES_REQUIRE(d.end_s > d.start_s);
  SOCRATES_REQUIRE(d.bandwidth_steal >= 0.0 && d.bandwidth_steal < 1.0);
  SOCRATES_REQUIRE(d.compute_steal >= 0.0 && d.compute_steal < 1.0);
  SOCRATES_REQUIRE(d.power_overhead_w >= 0.0);
  episodes_.push_back(d);
}

Measurement DisturbanceSchedule::apply(const Measurement& clean,
                                       const KernelModelParams& kernel,
                                       double t_s) const {
  Measurement out = clean;
  for (const Disturbance& d : episodes_) {
    if (!d.active_at(t_s)) continue;
    // Losing a share s of the bandwidth stretches the memory-bound part
    // of the run by 1/(1-s); the overall slowdown is weighted by the
    // kernel's memory intensity (and analogously for compute).
    const double mem_slow =
        1.0 + kernel.mem_intensity * (1.0 / (1.0 - d.bandwidth_steal) - 1.0);
    const double comp_slow = 1.0 + (1.0 - kernel.mem_intensity) *
                                       kernel.parallel_fraction *
                                       (1.0 / (1.0 - d.compute_steal) - 1.0);
    out.exec_time_s *= mem_slow * comp_slow;
    out.avg_power_w += d.power_overhead_w;
  }
  out.energy_j = out.exec_time_s * out.avg_power_w;
  return out;
}

}  // namespace socrates::platform
