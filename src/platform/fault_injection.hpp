// Platform-level fault injection.
//
// The disturbance model (platform/disturbance.hpp) covers the *benign*
// dynamics the paper talks about — co-runners stealing bandwidth and
// power.  This module covers the hostile ones a production deployment
// actually meets: RAPL counters that wrap their 32-bit register, sysfs
// reads that transiently fail, frozen counters, spike outliers, clock
// jitter, and compiled kernel clones that crash or return garbage.  A
// FaultSchedule mirrors DisturbanceSchedule: the executor and the
// sensor decorators consult it at simulated time t, while the adaptive
// layers above (monitors, AS-RTM) never see the schedule — they must
// *survive* it through the defenses exercised by
// tests/fault_tolerance_test and bench/ablation_fault_tolerance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "platform/clock.hpp"
#include "platform/perf_model.hpp"
#include "platform/rapl.hpp"
#include "support/rng.hpp"

namespace socrates::platform {

/// Kinds of sensor faults a schedule can inject.
enum class SensorFaultKind {
  /// The energy counter wraps modulo `magnitude` microjoules (RAPL's
  /// energy register is 32 bits wide; the canonical range is 2^32 uJ).
  kCounterWrap,
  /// The counter freezes at its episode-entry value (hung MSR read).
  kStuckCounter,
  /// With `probability`, a read fails and yields NaN (vanished or
  /// unreadable sysfs file).
  kReadFailure,
  /// With `probability`, a read is inflated by `magnitude` uJ (bus
  /// glitch / firmware hiccup producing a one-sample outlier).
  kSpike,
  /// Timestamps gain N(0, magnitude seconds) of noise, so short
  /// regions can even appear to run backwards.
  kClockJitter,
};

const char* to_string(SensorFaultKind kind);

/// One sensor-fault episode on the simulated machine.
struct SensorFault {
  SensorFaultKind kind = SensorFaultKind::kSpike;
  double start_s = 0.0;
  double end_s = 0.0;
  /// kCounterWrap: wrap range in uJ; kSpike: amplitude in uJ;
  /// kClockJitter: jitter standard deviation in seconds.
  double magnitude = 0.0;
  /// kReadFailure / kSpike: per-read fault probability.
  double probability = 1.0;

  bool active_at(double t_s) const { return t_s >= start_s && t_s < end_s; }
};

/// A compiler-config clone that misbehaves: with some probability each
/// invocation crashes (aborting after a fraction of its runtime) or
/// returns garbage measurements (a pathological execution).
struct VariantFault {
  FlagConfig config;                ///< the faulty clone
  double start_s = 0.0;
  double end_s = 1e300;             ///< default: faulty forever
  double crash_probability = 0.0;
  double garbage_probability = 0.0;
  /// A crashing run burns this fraction of its nominal time before dying.
  double crash_fraction = 0.1;
  /// A garbage run inflates exec time by ~this factor (and skews power).
  double garbage_scale = 50.0;

  bool active_at(double t_s) const { return t_s >= start_s && t_s < end_s; }
};

/// Thrown by KernelExecutor::run when the selected clone crashes.
class VariantCrash : public std::runtime_error {
 public:
  VariantCrash(const std::string& what, double partial_time_s)
      : std::runtime_error(what), partial_time_s_(partial_time_s) {}

  /// Simulated time the run consumed before dying.
  double partial_time_s() const { return partial_time_s_; }

 private:
  double partial_time_s_;
};

/// A time-ordered set of sensor and variant faults (episodes may
/// overlap; sensor corruptions compose in declaration order).
class FaultSchedule {
 public:
  void add(SensorFault fault);
  void add(VariantFault fault);

  bool empty() const { return sensor_faults_.empty() && variant_faults_.empty(); }
  std::size_t sensor_fault_count() const { return sensor_faults_.size(); }
  std::size_t variant_fault_count() const { return variant_faults_.size(); }

  /// Latch state for kStuckCounter, owned by the reading side so one
  /// schedule can corrupt several independent counters.
  struct StuckState {
    bool latched = false;
    double value_uj = 0.0;
  };

  /// Applies every sensor fault active at `t_s` to a clean counter
  /// reading.  May return NaN (failed read).
  double corrupt_energy_reading(double clean_uj, double t_s, Rng& rng,
                                StuckState& stuck) const;

  /// Applies clock-jitter faults active at `t_s` to a clean timestamp.
  double corrupt_timestamp(double clean_s, double t_s, Rng& rng) const;

  enum class VariantOutcome { kNominal, kCrash, kGarbage };

  struct VariantRoll {
    VariantOutcome outcome = VariantOutcome::kNominal;
    const VariantFault* fault = nullptr;  ///< non-null unless nominal
  };

  /// Rolls the dice for one invocation of `config` at time `t_s`.
  VariantRoll roll_variant(const Configuration& config, double t_s, Rng& rng) const;

 private:
  std::vector<SensorFault> sensor_faults_;
  std::vector<VariantFault> variant_faults_;
};

/// EnergyCounter decorator: the monitors read the inner counter through
/// the fault schedule, exactly as they would read a flaky RAPL MSR.
class FaultyEnergyCounter final : public EnergyCounter {
 public:
  /// All referents must outlive the decorator.
  FaultyEnergyCounter(const EnergyCounter& inner, const Clock& clock,
                      const FaultSchedule& faults, std::uint64_t seed = 0xfa017);

  double energy_uj() const override;
  std::string backend() const override { return "faulty(" + inner_.backend() + ")"; }

 private:
  const EnergyCounter& inner_;
  const Clock& clock_;
  const FaultSchedule& faults_;
  mutable Rng rng_;
  mutable FaultSchedule::StuckState stuck_;
};

/// Clock decorator: timestamps pass through the schedule's jitter
/// faults (which may transiently violate monotonicity — that is the
/// fault being modelled).
class FaultyClock final : public Clock {
 public:
  FaultyClock(const Clock& inner, const FaultSchedule& faults,
              std::uint64_t seed = 0xc10c);

  double now_s() const override;

 private:
  const Clock& inner_;
  const FaultSchedule& faults_;
  mutable Rng rng_;
};

}  // namespace socrates::platform
