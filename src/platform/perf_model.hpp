// Analytical performance / power model of the modelled NUMA machine.
//
// The model reproduces the first-order effects that create the paper's
// trade-off space:
//   - Amdahl scaling with a serial fraction per kernel;
//   - a memory roofline: one core can pull core_bw_gbs of bandwidth,
//     a socket saturates at socket_bw_gbs, so memory-bound kernels stop
//     scaling early under `close` binding and later under `spread`;
//   - hyperthreading with a sub-linear second-thread gain;
//   - per-socket turbo: fewer active cores run faster, and dynamic
//     power grows super-linearly with the turbo frequency;
//   - compiler-flag effects via platform::compute_speedup /
//     core_power_factor;
//   - socket-level power gating: `close` on few threads keeps the
//     second socket parked, `spread` pays two uncores but doubles the
//     available bandwidth.
// Deterministic multiplicative lognormal noise models measurement
// jitter; pass a nullptr Rng for noise-free evaluation.
#pragma once

#include <cstddef>

#include "platform/compiler_model.hpp"
#include "platform/flags.hpp"
#include "platform/kernel_model.hpp"
#include "platform/topology.hpp"
#include "support/rng.hpp"

namespace socrates::platform {

/// Machine constants of the modelled 2x Xeon E5-2630 v3 box.
struct MachinePowerModel {
  double idle_power_w = 38.0;    ///< chassis + DRAM background + parked sockets
  double socket_active_w = 9.0;  ///< uncore power per socket with >=1 thread
  double core_dynamic_w = 6.0;   ///< fully-busy core at base frequency
  double stall_power_share = 0.35;  ///< power of a memory-stalled core
  double ht_power_bonus = 0.15;     ///< extra power of a 2-thread core
  double ht_throughput_gain = 0.28; ///< extra throughput of a 2-thread core
  double dram_w_per_gbs = 0.35;     ///< DRAM power per achieved GB/s
  double turbo_headroom = 0.30;     ///< single-core turbo frequency bonus
  double turbo_power_exponent = 2.0;///< dynamic power ~ freq^exponent
  double core_bw_gbs = 9.0;         ///< bandwidth one core can pull
  double socket_bw_gbs = 30.0;      ///< per-socket memory bandwidth
  double ht_bw_gain = 0.20;         ///< extra bandwidth pull of a 2nd HT thread
};

/// One (simulated) run of a kernel.
struct Measurement {
  double exec_time_s = 0.0;
  double avg_power_w = 0.0;
  double energy_j = 0.0;

  double throughput() const { return 1.0 / exec_time_s; }  ///< kernel runs / s
};

/// The knob configuration under evaluation (CO, TN, BP of the paper).
struct Configuration {
  FlagConfig flags;
  std::size_t threads = 1;
  BindingPolicy binding = BindingPolicy::kClose;
};

class PerformanceModel {
 public:
  PerformanceModel(MachineTopology topology, MachinePowerModel machine,
                   double time_noise_sigma = 0.02, double power_noise_sigma = 0.015);

  /// Model with the paper's platform and default constants.
  static PerformanceModel paper_platform();

  const MachineTopology& topology() const { return topology_; }
  const MachinePowerModel& machine() const { return machine_; }

  /// Noise magnitudes (exposed so cache keys can fingerprint the
  /// platform: two models that measure differently must never share
  /// artifacts).
  double time_noise_sigma() const { return time_noise_sigma_; }
  double power_noise_sigma() const { return power_noise_sigma_; }

  /// Evaluates one kernel run.  `work_scale` scales the dataset (the
  /// runtime experiment of Figure 5 uses a smaller dataset than the
  /// static DSE of Figures 3/4).  `noise` == nullptr -> expected values.
  Measurement evaluate(const KernelModelParams& kernel, const Configuration& config,
                       Rng* noise = nullptr, double work_scale = 1.0) const;

 private:
  MachineTopology topology_;
  MachinePowerModel machine_;
  double time_noise_sigma_;
  double power_noise_sigma_;
};

}  // namespace socrates::platform
