// Time bases.
//
// mARGOt monitors timestamp observations; the runtime experiments of
// the paper replay a 300-second execution trace.  A Clock interface
// with a real (steady_clock) and a virtual (simulation-driven)
// implementation lets the same monitor/AS-RTM code run against wall
// time in the examples and against simulated time in the benches.
#pragma once

#include <chrono>

namespace socrates::platform {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since an arbitrary epoch; monotone non-decreasing.
  virtual double now_s() const = 0;
};

/// Wall time via std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : start_(std::chrono::steady_clock::now()) {}
  double now_s() const override {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Simulation-driven time: advanced explicitly by the executor.
class VirtualClock final : public Clock {
 public:
  double now_s() const override { return now_; }
  void advance(double seconds);

 private:
  double now_ = 0.0;
};

}  // namespace socrates::platform
