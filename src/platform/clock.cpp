#include "platform/clock.hpp"

#include "support/error.hpp"

namespace socrates::platform {

void VirtualClock::advance(double seconds) {
  SOCRATES_REQUIRE(seconds >= 0.0);
  now_ += seconds;
}

}  // namespace socrates::platform
