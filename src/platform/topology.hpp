// Machine topology and OpenMP thread placement.
//
// Models the paper's experimental platform: a 2-socket NUMA machine
// with two Intel Xeon E5-2630 v3 CPUs (8 cores per socket, 2-way
// hyperthreading, 16 physical / 32 logical cores).  Thread placement
// follows the OpenMP 4 semantics of OMP_PLACES=cores with the `close`
// and `spread` proc_bind policies, which is exactly the knob space
// SOCRATES exposes (Section II of the paper).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace socrates::platform {

/// OpenMP proc_bind policy (the paper's BP knob).
enum class BindingPolicy { kClose, kSpread };

const char* to_string(BindingPolicy policy);
BindingPolicy binding_from_string(const std::string& text);

struct MachineTopology {
  std::size_t sockets = 2;
  std::size_t cores_per_socket = 8;
  std::size_t threads_per_core = 2;

  std::size_t physical_cores() const { return sockets * cores_per_socket; }
  std::size_t logical_cores() const { return physical_cores() * threads_per_core; }

  /// The paper's platform (2x Xeon E5-2630 v3).
  static MachineTopology xeon_e5_2630_v3();
};

/// Where one OpenMP thread landed.
struct ThreadPlacement {
  std::size_t socket = 0;
  std::size_t core = 0;  ///< core index within the socket
  std::size_t slot = 0;  ///< 0 = first hw thread on the core, 1 = second
};

/// Aggregated view of a placement, consumed by the performance model.
struct PlacementSummary {
  std::size_t threads = 0;
  std::size_t sockets_used = 0;
  std::size_t cores_used = 0;          ///< physical cores with >= 1 thread
  std::size_t cores_with_two = 0;      ///< physical cores running 2 threads
  std::vector<std::size_t> cores_per_socket_used;  ///< per-socket core counts
};

/// Places `threads` OpenMP threads on the machine under OMP_PLACES=cores.
///
/// close : consecutive threads on consecutive cores (socket 0 first);
///         once every core has one thread, a second round fills the
///         remaining hyperthread slots in the same order.
/// spread: threads are distributed round-robin across sockets, then
///         across cores within each socket, maximising distance.
///
/// Preconditions: 1 <= threads <= topology.logical_cores().
std::vector<ThreadPlacement> place_threads(const MachineTopology& topology,
                                           std::size_t threads, BindingPolicy policy);

/// Summarizes a placement (counts used by the perf/power model).
PlacementSummary summarize(const MachineTopology& topology,
                           const std::vector<ThreadPlacement>& placement);

}  // namespace socrates::platform
