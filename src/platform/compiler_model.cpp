#include "platform/compiler_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace socrates::platform {

namespace {

double base_level_factor(const KernelModelParams& k, OptLevel level) {
  switch (level) {
    case OptLevel::kOs:
      // Size-optimized code loses scheduling quality but relieves
      // icache-pressured kernels a little.
      return 0.86 + 0.05 * k.icache_sensitivity;
    case OptLevel::kO1:
      return 0.93;
    case OptLevel::kO2:
      return 1.0;
    case OptLevel::kO3:
      // O3's win is mostly the vectorizer plus more aggressive
      // unrolling; branchy or irregular kernels gain little and can
      // regress slightly from code growth.
      return 1.0 + 0.10 * k.vectorization_affinity + 0.02 * k.unroll_affinity -
             0.03 * k.branchiness - 0.02 * k.icache_sensitivity;
  }
  return 1.0;
}

}  // namespace

double compute_speedup(const KernelModelParams& k, const FlagConfig& config) {
  double s = base_level_factor(k, config.level());
  const bool at_o3 = config.level() == OptLevel::kO3;

  if (config.has(Flag::kUnsafeMath)) {
    // Enables FP reassociation: reductions vectorize, FMA contraction.
    s *= 1.0 + 0.07 * k.fp_ratio * k.vectorization_affinity + 0.015 * k.fp_ratio;
  }
  if (config.has(Flag::kNoGuessBranchProb)) {
    // Hurts branchy code (no static prediction for layout) but can help
    // very regular loop nests where the guesses mis-shape the CFG.
    s *= 1.0 - 0.05 * k.branchiness + 0.02 * (1.0 - k.branchiness);
  }
  if (config.has(Flag::kNoIvopts)) {
    // Induction-variable optimization matters for deep regular nests;
    // for flat kernels the pass sometimes introduces register pressure.
    s *= 1.0 - 0.05 * k.ivopt_sensitivity + 0.02 * (1.0 - k.ivopt_sensitivity);
  }
  if (config.has(Flag::kNoTreeLoopOptimize)) {
    // loop_opt_sensitivity < 0.5 encodes kernels where the heuristics
    // backfire, so disabling the pass is a win there.
    s *= 1.0 + 0.06 * (0.5 - k.loop_opt_sensitivity);
  }
  if (config.has(Flag::kNoInline)) {
    // Costs call-dense kernels; relieves icache pressure elsewhere.
    s *= 1.0 - 0.08 * k.call_density + 0.015 * k.icache_sensitivity;
  }
  if (config.has(Flag::kUnrollAllLoops)) {
    // Unrolling pays off on small hot bodies; at O3 part of the benefit
    // is already captured by the vectorizer's own unrolling.
    const double gain = (at_o3 ? 0.05 : 0.09) * k.unroll_affinity;
    s *= 1.0 + gain - 0.05 * k.icache_sensitivity;
  }

  SOCRATES_ENSURE(s > 0.0);
  return s;
}

double core_power_factor(const KernelModelParams& k, const FlagConfig& config) {
  // Faster code keeps execution units busier: power tracks the
  // compute speedup sublinearly, with an extra bump for wide vectors.
  const double s = compute_speedup(k, config);
  double p = 1.0 + 0.45 * (s - 1.0);
  if (config.level() == OptLevel::kO3 || config.has(Flag::kUnsafeMath)) {
    p += 0.03 * k.vectorization_affinity;
  }
  if (config.level() == OptLevel::kOs) p -= 0.03;
  return std::clamp(p, 0.85, 1.20);
}

}  // namespace socrates::platform
