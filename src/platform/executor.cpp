#include "platform/executor.hpp"

#include "support/error.hpp"

namespace socrates::platform {

KernelExecutor::KernelExecutor(const PerformanceModel& model, KernelModelParams kernel,
                               double work_scale, std::uint64_t noise_seed)
    : model_(model),
      kernel_(std::move(kernel)),
      work_scale_(work_scale),
      noise_(noise_seed) {}

Measurement KernelExecutor::run(const Configuration& config) {
  Measurement m = model_.evaluate(kernel_, config, &noise_, work_scale_);
  m = disturbances_.apply(m, kernel_, clock_.now_s());
  clock_.advance(m.exec_time_s);
  rapl_.accrue(m.exec_time_s, m.avg_power_w);
  return m;
}

void KernelExecutor::idle(double seconds) {
  clock_.advance(seconds);
  rapl_.accrue(seconds, model_.machine().idle_power_w);
}

void KernelExecutor::set_disturbances(DisturbanceSchedule schedule) {
  disturbances_ = std::move(schedule);
}

void KernelExecutor::set_work_scale(double work_scale) {
  SOCRATES_REQUIRE(work_scale > 0.0);
  work_scale_ = work_scale;
}

}  // namespace socrates::platform
