#include "platform/executor.hpp"

#include <sstream>

#include "support/error.hpp"

namespace socrates::platform {

KernelExecutor::KernelExecutor(const PerformanceModel& model, KernelModelParams kernel,
                               double work_scale, std::uint64_t noise_seed)
    : model_(model),
      kernel_(std::move(kernel)),
      work_scale_(work_scale),
      noise_(noise_seed),
      fault_rng_(noise_seed ^ 0x9e3779b97f4a7c15ULL),
      faulty_clock_(clock_, faults_, noise_seed ^ 0xc10cULL),
      faulty_rapl_(rapl_, clock_, faults_, noise_seed ^ 0xfa017ULL) {}

Measurement KernelExecutor::run(const Configuration& config) {
  Measurement m = model_.evaluate(kernel_, config, &noise_, work_scale_);
  m = disturbances_.apply(m, kernel_, clock_.now_s());

  const auto roll = faults_.roll_variant(config, clock_.now_s(), fault_rng_);
  if (roll.outcome == FaultSchedule::VariantOutcome::kCrash) {
    // The run dies after a fraction of its time; the machine still
    // spent that time and energy.
    const double partial = m.exec_time_s * roll.fault->crash_fraction;
    clock_.advance(partial);
    rapl_.accrue(partial, m.avg_power_w);
    std::ostringstream os;
    os << "variant crash: clone '" << config.flags.pragma_options() << "' died after "
       << partial << " s";
    throw VariantCrash(os.str(), partial);
  }
  if (roll.outcome == FaultSchedule::VariantOutcome::kGarbage) {
    // A pathological execution (denormals, mistuned clone): wildly
    // inflated runtime with skewed power draw.
    m.exec_time_s *= roll.fault->garbage_scale * fault_rng_.uniform(0.5, 1.5);
    m.avg_power_w *= fault_rng_.uniform(0.3, 1.2);
    m.energy_j = m.exec_time_s * m.avg_power_w;
  }

  clock_.advance(m.exec_time_s);
  rapl_.accrue(m.exec_time_s, m.avg_power_w);
  return m;
}

void KernelExecutor::idle(double seconds) {
  clock_.advance(seconds);
  rapl_.accrue(seconds, model_.machine().idle_power_w);
}

void KernelExecutor::set_disturbances(DisturbanceSchedule schedule) {
  disturbances_ = std::move(schedule);
}

void KernelExecutor::set_faults(FaultSchedule schedule) {
  faults_ = std::move(schedule);
}

void KernelExecutor::set_work_scale(double work_scale) {
  SOCRATES_REQUIRE(work_scale > 0.0);
  work_scale_ = work_scale;
}

}  // namespace socrates::platform
