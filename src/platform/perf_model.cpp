#include "platform/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace socrates::platform {

PerformanceModel::PerformanceModel(MachineTopology topology, MachinePowerModel machine,
                                   double time_noise_sigma, double power_noise_sigma)
    : topology_(topology),
      machine_(machine),
      time_noise_sigma_(time_noise_sigma),
      power_noise_sigma_(power_noise_sigma) {
  SOCRATES_REQUIRE(time_noise_sigma >= 0.0);
  SOCRATES_REQUIRE(power_noise_sigma >= 0.0);
}

PerformanceModel PerformanceModel::paper_platform() {
  return PerformanceModel(MachineTopology::xeon_e5_2630_v3(), MachinePowerModel{});
}

Measurement PerformanceModel::evaluate(const KernelModelParams& kernel,
                                       const Configuration& config, Rng* noise,
                                       double work_scale) const {
  SOCRATES_REQUIRE(work_scale > 0.0);
  SOCRATES_REQUIRE(config.threads >= 1);
  SOCRATES_REQUIRE(config.threads <= topology_.logical_cores());

  const auto placement = place_threads(topology_, config.threads, config.binding);

  // Per-socket active-core and two-thread-core counts.
  std::vector<std::vector<std::size_t>> per_core(
      topology_.sockets, std::vector<std::size_t>(topology_.cores_per_socket, 0));
  for (const auto& p : placement) ++per_core[p.socket][p.core];

  const double s_flag = compute_speedup(kernel, config.flags);
  const double p_flag = core_power_factor(kernel, config.flags);

  // Per-socket turbo frequency factor: full headroom with one active
  // core, decaying linearly to none with all cores active.
  const auto turbo_factor = [&](std::size_t active_cores) {
    if (active_cores == 0) return 1.0;
    const double span = static_cast<double>(topology_.cores_per_socket - 1);
    const double idle_share =
        span == 0.0 ? 0.0 : 1.0 - (static_cast<double>(active_cores) - 1.0) / span;
    return 1.0 + machine_.turbo_headroom * idle_share;
  };

  // Effective compute capability E (in single-core base-frequency
  // units) and bandwidth-pull capability (in core_bw units).
  double compute_capability = 0.0;
  double bw_pull_cores = 0.0;
  std::size_t sockets_used = 0;
  std::size_t cores_used = 0;
  std::size_t cores_with_two = 0;
  double aggregate_bw = 0.0;
  std::vector<double> socket_turbo(topology_.sockets, 1.0);
  for (std::size_t s = 0; s < topology_.sockets; ++s) {
    std::size_t active = 0;
    double socket_compute = 0.0;
    for (std::size_t c = 0; c < topology_.cores_per_socket; ++c) {
      const std::size_t n = per_core[s][c];
      if (n == 0) continue;
      ++active;
      socket_compute += n >= 2 ? 1.0 + machine_.ht_throughput_gain : 1.0;
      bw_pull_cores += n >= 2 ? 1.0 + machine_.ht_bw_gain : 1.0;
      if (n >= 2) ++cores_with_two;
    }
    if (active == 0) continue;
    ++sockets_used;
    cores_used += active;
    socket_turbo[s] = turbo_factor(active);
    compute_capability += socket_compute * socket_turbo[s];
    aggregate_bw += machine_.socket_bw_gbs;
  }
  SOCRATES_ENSURE(compute_capability > 0.0);

  // ---- execution time --------------------------------------------------
  // Dataset-size cache effect: scaled-down datasets become increasingly
  // cache resident, lowering the memory-stall share of the run (at the
  // reference size, locality == 1 and the calibrated mem_intensity
  // applies unchanged).  This is what makes per-input knowledge bases
  // (margot::MultiKnowledge) genuinely different across input sizes.
  const double locality = 0.45 + 0.55 * std::pow(std::min(work_scale, 1.0), 0.3);
  const double mem_intensity = kernel.mem_intensity * locality;
  const double work = kernel.seq_work_s * work_scale;
  const double compute_work = work * (1.0 - mem_intensity);
  const double memory_work = work * mem_intensity;
  const double fp = kernel.parallel_fraction;
  const double single_turbo = 1.0 + machine_.turbo_headroom;

  // Serial phase: one core at full turbo; flags only speed up compute.
  const double t_serial =
      (1.0 - fp) * (compute_work / (s_flag * single_turbo) + memory_work);

  // Parallel phase.
  const double t_comp_par = compute_work * fp / (s_flag * compute_capability);
  const double bw_scale =
      std::min(bw_pull_cores, aggregate_bw / machine_.core_bw_gbs);
  const double t_mem_par = memory_work * fp / bw_scale;
  const double t_par = t_comp_par + t_mem_par;

  double exec_time = t_serial + t_par;

  // ---- power ------------------------------------------------------------
  // Core "busy" share: fraction of the parallel phase spent computing
  // (stalled cores burn stall_power_share of dynamic power).
  const auto core_power = [&](double busy_share, double freq, bool two_threads) {
    const double dynamic = machine_.core_dynamic_w * p_flag *
                           std::pow(freq, machine_.turbo_power_exponent);
    const double duty =
        busy_share + machine_.stall_power_share * (1.0 - busy_share);
    return dynamic * duty * (two_threads ? 1.0 + machine_.ht_power_bonus : 1.0);
  };

  // Parallel-phase power.
  const double par_busy = t_par > 0.0 ? t_comp_par / t_par : 1.0;
  double p_parallel = machine_.idle_power_w +
                      machine_.socket_active_w * static_cast<double>(sockets_used);
  for (std::size_t s = 0; s < topology_.sockets; ++s) {
    for (std::size_t c = 0; c < topology_.cores_per_socket; ++c) {
      const std::size_t n = per_core[s][c];
      if (n == 0) continue;
      p_parallel += core_power(par_busy, socket_turbo[s], n >= 2);
    }
  }
  const double achieved_bw =
      t_par > 0.0 ? machine_.core_bw_gbs * bw_scale * (t_mem_par / t_par) : 0.0;
  p_parallel += machine_.dram_w_per_gbs * achieved_bw;

  // Serial-phase power: one core at single-core turbo.
  const double t_ser_compute = (1.0 - fp) * compute_work / (s_flag * single_turbo);
  const double ser_busy = t_serial > 0.0 ? t_ser_compute / t_serial : 1.0;
  double p_serial = machine_.idle_power_w + machine_.socket_active_w +
                    core_power(ser_busy, single_turbo, false);
  p_serial += machine_.dram_w_per_gbs * machine_.core_bw_gbs * (1.0 - ser_busy);

  double avg_power = exec_time > 0.0
                         ? (p_parallel * t_par + p_serial * t_serial) / exec_time
                         : p_serial;

  // ---- measurement noise --------------------------------------------------
  if (noise != nullptr) {
    exec_time *= noise->lognormal_factor(time_noise_sigma_);
    avg_power *= noise->lognormal_factor(power_noise_sigma_);
  }

  Measurement m;
  m.exec_time_s = exec_time;
  m.avg_power_w = avg_power;
  m.energy_j = exec_time * avg_power;
  return m;
}

}  // namespace socrates::platform
