#include "observability/trace.hpp"

#include <cstdlib>
#include <ostream>

#include "support/env.hpp"

namespace socrates {

namespace {

std::atomic<std::uint32_t> g_next_lane{0};
constexpr std::uint32_t kUnassignedLane = 0xffffffffu;
thread_local std::uint32_t tls_lane = kUnassignedLane;

/// name/category fields are string literals by contract, but escape
/// defensively so the export is valid JSON for any content.
void write_json_string(std::ostream& out, const char* text) {
  out << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        else
          out << c;
    }
  }
  out << '"';
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

bool Tracer::env_requests_tracing() { return env::flag("SOCRATES_TRACE"); }

Tracer& Tracer::global() {
  // Leaked on purpose: spans may still fire from worker threads during
  // static destruction, and Tracer is not movable (atomic + mutex).
  static Tracer* kTracer = [] {
    auto* tracer = new Tracer();
    tracer->set_enabled(env_requests_tracing());
    return tracer;
  }();
  return *kTracer;
}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t Tracer::current_lane() {
  if (tls_lane == kUnassignedLane)
    tls_lane = g_next_lane.fetch_add(1, std::memory_order_relaxed);
  return tls_lane;
}

void Tracer::record(const TraceEvent& event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
  ++count_;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  const std::size_t n = count_ < capacity_ ? count_ : capacity_;
  out.reserve(n);
  // When the ring wrapped, the oldest surviving event sits at head_.
  const std::size_t first = count_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(first + i) % capacity_]);
  return out;
}

std::size_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > capacity_ ? count_ - capacity_ : 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  count_ = 0;
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, TraceEvent{});
  head_ = 0;
  count_ = 0;
}

void Tracer::export_chrome_trace(std::ostream& out) const {
  const auto events = snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":";
    write_json_string(out, e.name != nullptr ? e.name : "?");
    out << ",\"cat\":";
    write_json_string(out, e.category != nullptr ? e.category : "?");
    out << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.lane << ",\"ts\":" << e.start_us
        << ",\"dur\":" << e.duration_us;
    if (e.arg_name != nullptr) {
      out << ",\"args\":{";
      write_json_string(out, e.arg_name);
      out << ':' << e.arg_value << '}';
    }
    out << '}';
  }
  out << "\n]}\n";
}

}  // namespace socrates
