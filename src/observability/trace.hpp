// Lock-cheap span tracer with Chrome trace_event export.
//
// Every expensive region of the pipeline and the runtime — pipeline
// stages, TaskPool tasks, DSE design-point evaluations, COBAYN
// train/fold boundaries, AS-RTM decisions — opens a RAII TraceSpan.
// When tracing is disabled (the default) a span costs exactly one
// relaxed atomic load; when enabled, completed spans land in a
// fixed-capacity ring buffer (oldest events are overwritten, never
// blocking the traced thread) and can be exported as Chrome
// `trace_event` JSON (open chrome://tracing or https://ui.perfetto.dev
// and load the file).  docs/OBSERVABILITY.md documents the span model.
//
// Tracing never perturbs results: spans only read the clock and append
// to the ring, so the determinism contract of docs/PIPELINE.md holds
// with tracing on or off (pinned by parallel_determinism_test).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace socrates {

/// One completed span.  `name`/`category`/`arg_name` must point to
/// storage that outlives the tracer — in practice, string literals.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint32_t lane = 0;          ///< per-thread lane (Chrome "tid")
  std::int64_t start_us = 0;       ///< microseconds since tracer epoch
  std::int64_t duration_us = 0;
  const char* arg_name = nullptr;  ///< optional numeric argument
  std::int64_t arg_value = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Process-wide tracer.  Enabled at startup when the SOCRATES_TRACE
  /// environment variable is set to anything but "0".
  static Tracer& global();

  /// True when SOCRATES_TRACE requests tracing (set and not "0").
  static bool env_requests_tracing();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// The single atomic load every disabled-path span pays.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this tracer was constructed (steady clock).
  std::int64_t now_us() const;

  /// Appends `event` to the ring (no-op when disabled).
  void record(const TraceEvent& event);

  /// Events currently in the ring, oldest first.
  std::vector<TraceEvent> snapshot() const;
  /// Total events recorded since construction / clear().
  std::size_t recorded() const;
  /// Events lost to ring overwrites.
  std::size_t dropped() const;
  std::size_t capacity() const { return capacity_; }
  void clear();
  /// Re-sizes the ring; drops all buffered events.
  void set_capacity(std::size_t capacity);

  /// Writes the buffered events as Chrome trace_event JSON.
  void export_chrome_trace(std::ostream& out) const;

  /// Lane of the calling thread (Chrome "tid"); auto-assigned, stable
  /// for the thread's lifetime, unique per thread — worker threads of a
  /// TaskPool therefore get one trace lane each.
  static std::uint32_t current_lane();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  ///< guarded by mu_
  std::size_t head_ = 0;          ///< next write slot, guarded by mu_
  std::size_t count_ = 0;         ///< total recorded, guarded by mu_
};

/// RAII scoped span: stamps the start on construction, records a
/// complete event on destruction.  Constructing against a disabled
/// tracer costs one atomic load and nothing else.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category,
                     Tracer& tracer = Tracer::global())
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) {
      event_.name = name;
      event_.category = category;
      event_.start_us = tracer_->now_us();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span will be recorded (tracing was enabled at
  /// construction).  Lets call sites skip computing argument values on
  /// the disabled path.
  bool active() const { return tracer_ != nullptr; }

  /// Attaches one numeric argument (e.g. a point index or a queue wait).
  void set_arg(const char* name, std::int64_t value) {
    if (tracer_ != nullptr) {
      event_.arg_name = name;
      event_.arg_value = value;
    }
  }

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      event_.lane = Tracer::current_lane();
      event_.duration_us = tracer_->now_us() - event_.start_us;
      tracer_->record(event_);
    }
  }

 private:
  Tracer* tracer_;  ///< nullptr when tracing was off at construction
  TraceEvent event_;
};

}  // namespace socrates
