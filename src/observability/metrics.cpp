#include "observability/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace socrates {

namespace {

std::size_t bucket_of(double value) {
  if (!(value > 0.0)) return 0;
  const double exponent = std::floor(std::log10(value));
  const double clamped = std::clamp(exponent, -9.0, 9.0);
  return static_cast<std::size_t>(clamped + 9.0);
}

}  // namespace

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (data_.count == 0) {
    data_.min = data_.max = value;
  } else {
    data_.min = std::min(data_.min, value);
    data_.max = std::max(data_.max, value);
  }
  ++data_.count;
  data_.sum += value;
  ++data_.buckets[bucket_of(value)];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  data_ = Snapshot{};
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry kRegistry;
  return kRegistry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

void MetricsRegistry::write_text(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_)
    out << "counter " << name << " = " << c.value() << '\n';
  for (const auto& [name, g] : gauges_)
    out << "gauge   " << name << " = " << g.value() << '\n';
  for (const auto& [name, h] : histograms_) {
    const auto s = h.snapshot();
    out << "hist    " << name << " count=" << s.count << " sum=" << s.sum
        << " min=" << s.min << " max=" << s.max << " mean=" << s.mean() << '\n';
  }
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "metric,value\n";
  for (const auto& [name, c] : counters_) out << name << ',' << c.value() << '\n';
  for (const auto& [name, g] : gauges_) out << name << ',' << g.value() << '\n';
  for (const auto& [name, h] : histograms_) {
    const auto s = h.snapshot();
    out << name << ".count," << s.count << '\n';
    out << name << ".sum," << s.sum << '\n';
    out << name << ".min," << s.min << '\n';
    out << name << ".max," << s.max << '\n';
    out << name << ".mean," << s.mean() << '\n';
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace socrates
