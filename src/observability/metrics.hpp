// Process-wide registry of named counters, gauges and histograms.
//
// Instrumented components (artifact cache, task pool, monitors, AS-RTM,
// pipeline stages) count what they do through the global registry;
// benches print the registry next to their existing output so a figure
// run always carries its own accounting (cache hits vs. misses,
// quarantine events, monitor rejections, operating-point switches).
// docs/OBSERVABILITY.md lists every metric name the library emits.
//
// Cost model: looking a metric up creates it once under a mutex; call
// sites keep the returned reference (references stay valid for the
// registry's lifetime, across reset()).  A Counter increment is one
// relaxed atomic add — cheap enough to stay always-on in hot paths.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace socrates {

/// Monotonic event count (relaxed atomic; safe from any thread).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution summary: count/sum/min/max plus decade buckets
/// (10^-9 .. 10^9; values outside clamp to the edge buckets,
/// non-positive values land in the lowest).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 19;

  void observe(double value);

  struct Snapshot {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::size_t buckets[kBuckets] = {};

    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  };
  Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  Snapshot data_;
};

class MetricsRegistry {
 public:
  /// Process-wide registry; the instrumented library code uses this one.
  static MetricsRegistry& global();

  /// Finds or creates the named metric.  The reference stays valid for
  /// the registry's lifetime; hot call sites should cache it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Human-readable dump, one metric per line, names sorted.
  void write_text(std::ostream& out) const;
  /// CSV dump: header `metric,value`; histograms expand to
  /// name.count / name.sum / name.min / name.max / name.mean rows.
  void write_csv(std::ostream& out) const;

  /// Zeroes every metric in place (references stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace socrates
