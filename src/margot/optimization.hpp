// Application requirements: constraints and rank.
//
// In mARGOt the application requirements are a constrained
// multi-objective optimization problem (Section II of the paper): an
// ordered list of constraints over EFP metrics, plus a *rank* — the
// objective used to order the operating points that satisfy every
// constraint.  Both may change at runtime (Figure 5 switches the rank
// from Throughput/Watt^2 to Throughput and back).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "margot/operating_point.hpp"

namespace socrates::margot {

enum class ComparisonOp { kLess, kLessEqual, kGreater, kGreaterEqual };

const char* to_string(ComparisonOp op);

/// True when `value <op> target`.
bool compare(double value, ComparisonOp op, double target);

/// True when violation `v` ties with the smallest violation seen, under
/// a combined absolute + relative tolerance.  A purely relative test
/// (`v <= min * (1 + 1e-12)`) collapses to exact equality once the
/// minimum is tiny or denormal — the product rounds back to `min` — and
/// drops ties that differ only by floating-point noise; the absolute
/// term keeps them.
bool violation_ties_minimum(double v, double min_violation);

/// A constraint on one metric.  `confidence` widens the test with the
/// point's standard deviation (value tested = mean +/- confidence *
/// stddev, in the pessimistic direction), mirroring mARGOt's
/// confidence-interval constraints.  Lower `priority` values are more
/// important and are relaxed last.
struct Constraint {
  std::size_t metric = 0;
  ComparisonOp op = ComparisonOp::kLess;
  double goal = 0.0;
  int priority = 0;
  double confidence = 0.0;
};

/// One term of a rank.  Geometric composition reads `weight` as the
/// exponent (metric^weight); linear composition reads it as the
/// coefficient (weight * metric).
struct RankTerm {
  std::size_t metric = 0;
  double weight = 1.0;
};

enum class RankDirection { kMaximize, kMinimize };

/// How the terms combine (both forms exist in mARGOt).
enum class RankComposition { kGeometric, kLinear };

/// The objective: maximize or minimize a combination of metrics.
/// Covers the paper's objectives directly:
///   Throughput            -> maximize throughput^1
///   Throughput per Watt^2 -> maximize throughput^1 * power^-2
///   Execution time        -> minimize exec_time^1
///   Energy per run        -> minimize power^1 * exec_time^1
///   Energy-delay product  -> minimize power^1 * exec_time^2
struct Rank {
  RankDirection direction = RankDirection::kMaximize;
  std::vector<RankTerm> terms;
  RankComposition composition = RankComposition::kGeometric;

  /// Evaluates the rank value of an operating point (uses metric means,
  /// rescaled by `correction[m]` when a feedback correction is given).
  double evaluate(const OperatingPoint& op,
                  const std::vector<double>& correction = {}) const;

  /// Column-addressed form of the above: identical arithmetic (term
  /// order, same multiply/pow sequence), but reads the means straight
  /// from the KB's SoA columns instead of materializing a point.  The
  /// decision hot path and its brute-force reference both use this, so
  /// the two stay bit-identical.
  double evaluate(const KnowledgeBase& kb, std::size_t index,
                  const std::vector<double>& correction = {}) const;

  static Rank maximize_throughput(std::size_t throughput_metric);
  static Rank maximize_throughput_per_watt2(std::size_t throughput_metric,
                                            std::size_t power_metric);
  static Rank minimize_exec_time(std::size_t time_metric);
  /// Energy per kernel run: power * time (Joules).
  static Rank minimize_energy(std::size_t time_metric, std::size_t power_metric);
  /// Energy-delay product: power * time^2.
  static Rank minimize_energy_delay(std::size_t time_metric, std::size_t power_metric);
  /// Weighted sum (linear composition), e.g. a billing-style objective.
  static Rank linear(RankDirection direction, std::vector<RankTerm> terms);
};

}  // namespace socrates::margot
