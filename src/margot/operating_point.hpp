// Operating points and the application knowledge base.
//
// mARGOt's design-time knowledge is a list of *operating points*: one
// entry per explored software-knob configuration, carrying the measured
// distribution (mean / standard deviation) of every extra-functional
// property (EFP) of interest.  The AS-RTM selects among these at
// runtime.  Knob values are stored as integers (indices into the knob's
// value list) so the knowledge base stays application-agnostic; the
// SOCRATES layer maps them back to FlagConfig / thread count / binding.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace socrates::margot {

/// Distribution of one metric over the profiling runs of one point.
struct MetricStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// One explored configuration with its measured EFPs.
struct OperatingPoint {
  std::vector<int> knobs;          ///< one value per knob, KB-defined order
  std::vector<MetricStats> metrics;///< one entry per metric, KB-defined order
};

/// Schema + data of the design-time knowledge.
class KnowledgeBase {
 public:
  KnowledgeBase(std::vector<std::string> knob_names,
                std::vector<std::string> metric_names);

  const std::vector<std::string>& knob_names() const { return knob_names_; }
  const std::vector<std::string>& metric_names() const { return metric_names_; }

  std::size_t knob_index(const std::string& name) const;
  std::size_t metric_index(const std::string& name) const;

  /// Adds a point; its vectors must match the schema sizes.  Duplicate
  /// knob configurations are rejected.
  void add(OperatingPoint op);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const OperatingPoint& operator[](std::size_t i) const;
  const std::vector<OperatingPoint>& points() const { return points_; }

  /// Index of the point with exactly these knob values, if any.
  std::optional<std::size_t> find(const std::vector<int>& knobs) const;

 private:
  std::vector<std::string> knob_names_;
  std::vector<std::string> metric_names_;
  std::vector<OperatingPoint> points_;
};

}  // namespace socrates::margot
