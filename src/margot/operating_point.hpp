// Operating points and the application knowledge base.
//
// mARGOt's design-time knowledge is a list of *operating points*: one
// entry per explored software-knob configuration, carrying the measured
// distribution (mean / standard deviation) of every extra-functional
// property (EFP) of interest.  The AS-RTM selects among these at
// runtime.  Knob values are stored as integers (indices into the knob's
// value list) so the knowledge base stays application-agnostic; the
// SOCRATES layer maps them back to FlagConfig / thread count / binding.
//
// Storage is structure-of-arrays in one arena block: each metric's
// means (and stddevs) form a contiguous, 64-byte-aligned column, and
// knob rows sit in one flat int block.  The AS-RTM's branchless
// decision sweeps stream over the columns via metric_means() /
// metric_stddevs(); everything else goes through the view types below,
// which preserve the original `kb[i].knobs` / `kb[i].metrics[m].mean`
// accessor surface.  OperatingPoint itself survives as the value type
// used to build and materialize points.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "support/arena.hpp"

namespace socrates::margot {

/// Distribution of one metric over the profiling runs of one point.
struct MetricStats {
  double mean = 0.0;
  double stddev = 0.0;
};

/// One explored configuration with its measured EFPs.  Used as the
/// input/value type for KnowledgeBase; the KB does not store these.
struct OperatingPoint {
  std::vector<int> knobs;          ///< one value per knob, KB-defined order
  std::vector<MetricStats> metrics;///< one entry per metric, KB-defined order
};

/// Schema + data of the design-time knowledge.
class KnowledgeBase {
 public:
  /// Read-only window onto one point's knob row (contiguous ints).
  /// Invalidated by any mutation of the owning KnowledgeBase.
  class KnobsView {
   public:
    KnobsView(const int* data, std::size_t count) : data_(data), count_(count) {}

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    int operator[](std::size_t k) const { return data_[k]; }
    const int* begin() const { return data_; }
    const int* end() const { return data_ + count_; }

    operator std::vector<int>() const { return {data_, data_ + count_}; }

    friend bool operator==(const KnobsView& a, const KnobsView& b) {
      return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }
    friend bool operator==(const KnobsView& a, const std::vector<int>& b) {
      return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }
    friend bool operator==(const std::vector<int>& a, const KnobsView& b) {
      return b == a;
    }

   private:
    const int* data_;
    std::size_t count_;
  };

  /// Read-only window onto one point's metric stats, gathered from the
  /// per-metric columns on access.  Invalidated by any KB mutation.
  class MetricsView {
   public:
    MetricsView(const KnowledgeBase* kb, std::size_t point)
        : kb_(kb), point_(point) {}

    std::size_t size() const { return kb_->metric_names_.size(); }
    MetricStats operator[](std::size_t m) const {
      return {kb_->means_[m * kb_->capacity_ + point_],
              kb_->stddevs_[m * kb_->capacity_ + point_]};
    }

    class iterator {
     public:
      iterator(const MetricsView* view, std::size_t m) : view_(view), m_(m) {}
      MetricStats operator*() const { return (*view_)[m_]; }
      iterator& operator++() { ++m_; return *this; }
      bool operator!=(const iterator& other) const { return m_ != other.m_; }
      bool operator==(const iterator& other) const { return m_ == other.m_; }

     private:
      const MetricsView* view_;
      std::size_t m_;
    };
    iterator begin() const { return {this, 0}; }
    iterator end() const { return {this, size()}; }

   private:
    const KnowledgeBase* kb_;
    std::size_t point_;
  };

  /// What kb[i] returns: a cheap value type whose .knobs / .metrics
  /// members keep the old AoS accessor syntax compiling.  Converts to
  /// OperatingPoint where a materialized copy is needed.
  struct PointView {
    KnobsView knobs;
    MetricsView metrics;

    operator OperatingPoint() const {
      OperatingPoint op;
      op.knobs = knobs;
      op.metrics.reserve(metrics.size());
      for (std::size_t m = 0; m < metrics.size(); ++m)
        op.metrics.push_back(metrics[m]);
      return op;
    }
  };

  /// Iterable view over all points (what points() returns).
  class PointRange {
   public:
    explicit PointRange(const KnowledgeBase* kb) : kb_(kb) {}
    std::size_t size() const { return kb_->size(); }
    bool empty() const { return kb_->empty(); }
    PointView operator[](std::size_t i) const { return (*kb_)[i]; }

    class iterator {
     public:
      iterator(const KnowledgeBase* kb, std::size_t i) : kb_(kb), i_(i) {}
      PointView operator*() const { return (*kb_)[i_]; }
      iterator& operator++() { ++i_; return *this; }
      bool operator!=(const iterator& other) const { return i_ != other.i_; }
      bool operator==(const iterator& other) const { return i_ == other.i_; }

     private:
      const KnowledgeBase* kb_;
      std::size_t i_;
    };
    iterator begin() const { return {kb_, 0}; }
    iterator end() const { return {kb_, kb_->size()}; }

   private:
    const KnowledgeBase* kb_;
  };

  KnowledgeBase(std::vector<std::string> knob_names,
                std::vector<std::string> metric_names);

  KnowledgeBase(const KnowledgeBase& other);
  KnowledgeBase& operator=(const KnowledgeBase& other);
  KnowledgeBase(KnowledgeBase&& other) noexcept = default;
  KnowledgeBase& operator=(KnowledgeBase&& other) noexcept = default;

  const std::vector<std::string>& knob_names() const { return knob_names_; }
  const std::vector<std::string>& metric_names() const { return metric_names_; }

  std::size_t knob_index(const std::string& name) const;
  std::size_t metric_index(const std::string& name) const;

  /// Adds a point; its vectors must match the schema sizes.  Duplicate
  /// knob configurations are rejected.
  void add(OperatingPoint op);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  PointView operator[](std::size_t i) const;
  PointRange points() const { return PointRange{this}; }

  /// Index of the point with exactly these knob values, if any.
  std::optional<std::size_t> find(const std::vector<int>& knobs) const;

  // --- SoA hot-path accessors -------------------------------------------
  // Contiguous columns of size() entries; the pointers stay valid until
  // the next add() (which may re-pack into a larger arena).

  const double* metric_means(std::size_t m) const {
    return means_ + m * capacity_;
  }
  const double* metric_stddevs(std::size_t m) const {
    return stddevs_ + m * capacity_;
  }
  /// Row of knob_names().size() ints for point i.
  const int* knob_row(std::size_t i) const {
    return knobs_ + i * knob_names_.size();
  }
  /// Bytes currently reserved by the backing arena (observability).
  std::size_t arena_bytes() const { return arena_.capacity(); }

 private:
  /// Re-packs all columns into a fresh arena holding >= min_capacity
  /// points (capacity stays a power of two so columns stay aligned).
  void grow(std::size_t min_capacity);
  void copy_from(const KnowledgeBase& other);

  std::vector<std::string> knob_names_;
  std::vector<std::string> metric_names_;
  support::Arena arena_;
  double* means_ = nullptr;    ///< metric-major: column m at means_ + m*capacity_
  double* stddevs_ = nullptr;  ///< metric-major, parallel to means_
  int* knobs_ = nullptr;       ///< point-major rows of knob_names_.size() ints
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace socrates::margot
