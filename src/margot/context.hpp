// The application-facing mARGOt interface.
//
// The paper stresses that mARGOt's intrusiveness "is limited to an
// initialization call in the application and to start/stop/update calls
// around the regions of interest".  This class is that generated
// interface: the weaver's Autotuner strategy inserts exactly the four
// calls below around the kernel wrapper (Figure 2c):
//
//   margot::init(...);                       // once, in main
//   if (ctx.update(cf, nt, bind)) { ... }    // before the region
//   ctx.start_monitors();
//   kernel_wrapper(...);
//   ctx.stop_monitors();                     // also pushes feedback
//
// update() runs the AS-RTM and writes the chosen knob values into the
// application's control variables; stop_monitors() feeds the observed
// EFPs back into the knowledge adaptation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "margot/asrtm.hpp"
#include "margot/monitor.hpp"
#include "margot/operating_point.hpp"
#include "platform/clock.hpp"
#include "platform/rapl.hpp"

namespace socrates::margot {

/// Names of the metrics a Context-managed knowledge base must provide,
/// in schema order: exec_time_s, power_w, throughput.
struct ContextMetrics {
  static constexpr std::size_t kExecTime = 0;
  static constexpr std::size_t kPower = 1;
  static constexpr std::size_t kThroughput = 2;
  static std::vector<std::string> names();
};

/// Switchboard for the fault-tolerance layers (docs/ROBUSTNESS.md).
/// Monitor hardening is on by default — it never changes behaviour on a
/// healthy sensor path.  The statistical and decision-level defenses
/// alter adaptation dynamics slightly even on clean runs, so they are
/// opt-in; AdaptiveApplication::harden() enables everything.
struct RobustnessOptions {
  /// Wraparound correction + rejection of non-finite / non-positive
  /// monitor samples (margot/monitor.hpp).
  bool harden_monitors = true;
  /// Hampel-style outlier filter on every monitor window.
  bool outlier_filter = false;
  /// Quarantine + exponential-backoff re-probe of operating points
  /// whose clone crashes or produces runaway observations.
  bool variant_quarantine = false;
  /// Hold-down on configuration thrashing.
  bool oscillation_watchdog = false;

  /// An observed exec time beyond `runaway_factor` x the corrected
  /// expectation counts as a variant failure (garbage clone).
  double runaway_factor = 8.0;

  /// Energy-register range used for wraparound correction; override
  /// when the platform's counter wraps at a different width than the
  /// canonical 32-bit RAPL register.
  double wrap_range_uj = platform::kRaplWrapRangeUj;

  CircularMonitor::OutlierFilter hampel{};
  Asrtm::QuarantineOptions quarantine{};
  OscillationWatchdog::Options watchdog{};

  /// Everything on (the hardened stack of the fault-tolerance bench).
  static RobustnessOptions hardened();
  /// Everything off (the unprotected baseline).
  static RobustnessOptions raw();
};

class Context {
 public:
  /// `knowledge` must use the ContextMetrics schema.
  Context(KnowledgeBase knowledge, const platform::Clock& clock,
          const platform::EnergyCounter& energy, std::size_t monitor_window = 5);

  Asrtm& asrtm() { return asrtm_; }
  const Asrtm& asrtm() const { return asrtm_; }

  /// Runs the AS-RTM; writes the selected knob values to `knobs`
  /// (which must have one entry per knob).  Returns true when the
  /// configuration changed since the previous call.
  bool update(std::vector<int>& knobs);

  void start_monitors();
  /// Stops the monitors and pushes exec-time / power / throughput
  /// feedback for the configuration chosen by the last update().
  /// Samples a hardened monitor rejected are not fed back, and with
  /// variant quarantine enabled a runaway exec time is reported as a
  /// variant failure instead of poisoning the corrections.
  void stop_monitors();
  /// Abandons an open monitoring region without recording anything —
  /// the kernel invocation crashed before completing.
  void cancel_monitors();

  /// Reconfigures the fault-tolerance layers (see RobustnessOptions).
  void set_robustness(const RobustnessOptions& options);
  const RobustnessOptions& robustness() const { return robustness_; }

  /// Tells the quarantine bookkeeping that the clone behind the current
  /// operating point crashed.
  void report_variant_crash();

  const OscillationWatchdog& watchdog() const { return watchdog_; }

  const TimeMonitor& time_monitor() const { return time_monitor_; }
  const PowerMonitor& power_monitor() const { return power_monitor_; }
  const EnergyMonitor& energy_monitor() const { return energy_monitor_; }

  /// Index of the operating point applied by the last update().
  std::size_t current_operating_point() const { return current_op_; }

  /// One-line status string (mARGOt's margot::log analogue): current
  /// operating point, last observed EFPs and the correction factors.
  std::string log() const;

 private:
  /// Guarded feedback: skips rejected / non-positive observations.
  void send_feedback_checked(std::size_t metric, double observed, bool rejected);

  Asrtm asrtm_;
  const platform::Clock* clock_;  ///< decision-journal timestamps
  TimeMonitor time_monitor_;
  PowerMonitor power_monitor_;
  EnergyMonitor energy_monitor_;
  std::size_t current_op_ = 0;
  bool has_selection_ = false;
  RobustnessOptions robustness_;
  OscillationWatchdog watchdog_;
};

}  // namespace socrates::margot
