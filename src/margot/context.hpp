// The application-facing mARGOt interface.
//
// The paper stresses that mARGOt's intrusiveness "is limited to an
// initialization call in the application and to start/stop/update calls
// around the regions of interest".  This class is that generated
// interface: the weaver's Autotuner strategy inserts exactly the four
// calls below around the kernel wrapper (Figure 2c):
//
//   margot::init(...);                       // once, in main
//   if (ctx.update(cf, nt, bind)) { ... }    // before the region
//   ctx.start_monitors();
//   kernel_wrapper(...);
//   ctx.stop_monitors();                     // also pushes feedback
//
// update() runs the AS-RTM and writes the chosen knob values into the
// application's control variables; stop_monitors() feeds the observed
// EFPs back into the knowledge adaptation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "margot/asrtm.hpp"
#include "margot/monitor.hpp"
#include "margot/operating_point.hpp"
#include "platform/clock.hpp"
#include "platform/rapl.hpp"

namespace socrates::margot {

/// Names of the metrics a Context-managed knowledge base must provide,
/// in schema order: exec_time_s, power_w, throughput.
struct ContextMetrics {
  static constexpr std::size_t kExecTime = 0;
  static constexpr std::size_t kPower = 1;
  static constexpr std::size_t kThroughput = 2;
  static std::vector<std::string> names();
};

class Context {
 public:
  /// `knowledge` must use the ContextMetrics schema.
  Context(KnowledgeBase knowledge, const platform::Clock& clock,
          const platform::EnergyCounter& energy, std::size_t monitor_window = 5);

  Asrtm& asrtm() { return asrtm_; }
  const Asrtm& asrtm() const { return asrtm_; }

  /// Runs the AS-RTM; writes the selected knob values to `knobs`
  /// (which must have one entry per knob).  Returns true when the
  /// configuration changed since the previous call.
  bool update(std::vector<int>& knobs);

  void start_monitors();
  /// Stops the monitors and pushes exec-time / power / throughput
  /// feedback for the configuration chosen by the last update().
  void stop_monitors();

  const TimeMonitor& time_monitor() const { return time_monitor_; }
  const PowerMonitor& power_monitor() const { return power_monitor_; }
  const EnergyMonitor& energy_monitor() const { return energy_monitor_; }

  /// Index of the operating point applied by the last update().
  std::size_t current_operating_point() const { return current_op_; }

  /// One-line status string (mARGOt's margot::log analogue): current
  /// operating point, last observed EFPs and the correction factors.
  std::string log() const;

 private:
  Asrtm asrtm_;
  TimeMonitor time_monitor_;
  PowerMonitor power_monitor_;
  EnergyMonitor energy_monitor_;
  std::size_t current_op_ = 0;
  bool has_selection_ = false;
};

}  // namespace socrates::margot
