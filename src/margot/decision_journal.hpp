// MAPE-K decision journal.
//
// The AS-RTM closes the MAPE-K loop silently: find_best_operating_point
// returns an index and nothing explains *why* the index changed.  The
// journal records every operating-point switch the decision engine
// makes — the timestamp (the caller's simulated or wall clock), the
// requirement change that triggered it, the runner-up candidates with
// their rank scores, and which points were quarantined at decision
// time — so a Figure 5 trace can be read back as a sequence of
// explained decisions instead of a bare knob timeline.
//
// Records are held in a bounded deque (oldest dropped first) and are
// fully deterministic for a deterministic caller: timestamps come from
// the caller-provided decision time, never from a real clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace socrates::margot {

/// A runner-up the decision engine considered and did not pick.
struct DecisionCandidate {
  std::size_t op_index = 0;
  double score = 0.0;  ///< rank value under the corrections at decision time
};

/// One operating-point switch.
struct DecisionRecord {
  std::size_t sequence = 0;   ///< 0-based, assigned by the journal
  double timestamp_s = 0.0;   ///< caller's decision time (simulated clock)
  std::string trigger;        ///< what changed since the previous decision
  std::size_t chosen = 0;     ///< selected operating point
  double chosen_score = 0.0;  ///< its rank value
  bool feasible = true;       ///< every constraint satisfied (no relaxation)
  std::uint64_t epoch = 0;    ///< decision epoch this record was made at
  std::vector<DecisionCandidate> rejected;     ///< best runners-up, score order
  std::vector<std::size_t> quarantined;        ///< points excluded at decision time
};

class DecisionJournal {
 public:
  explicit DecisionJournal(std::size_t max_records = 1024);

  /// Appends a record, assigning its sequence number; drops the oldest
  /// record when the journal is full.
  void append(DecisionRecord record);

  const std::deque<DecisionRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  /// Switches recorded since construction / clear(), including dropped.
  std::size_t total_decisions() const { return next_sequence_; }
  std::size_t dropped() const { return next_sequence_ - records_.size(); }
  const DecisionRecord& back() const;

  void clear();

  /// Human-readable dump, one block per record.
  void dump(std::ostream& out) const;

 private:
  std::size_t max_records_;
  std::size_t next_sequence_ = 0;
  std::deque<DecisionRecord> records_;
};

}  // namespace socrates::margot
