// Goals: runtime checks of application requirements against monitors.
//
// In mARGOt a *goal* pairs a monitor's statistical provider with a
// comparison and a target value; application code can ask "is the goal
// currently met?" and react (e.g. log, or trigger a state switch).
// Goals are observational — the AS-RTM enforces constraints on the
// knowledge, goals check what actually happened.
#pragma once

#include <cmath>

#include "margot/monitor.hpp"
#include "margot/optimization.hpp"

namespace socrates::margot {

/// Which statistic of the monitor the goal observes.
enum class StatisticalProvider { kAverage, kLast, kMin, kMax };

class Goal {
 public:
  /// The goal observes `monitor` (must outlive the goal).
  Goal(const CircularMonitor& monitor, StatisticalProvider provider, ComparisonOp op,
       double target)
      : monitor_(&monitor), provider_(provider), op_(op), target_(target) {}

  /// Current observed value; requires at least one observation.
  double observed_value() const {
    switch (provider_) {
      case StatisticalProvider::kAverage: return monitor_->average();
      case StatisticalProvider::kLast: return monitor_->last();
      case StatisticalProvider::kMin: return monitor_->min();
      case StatisticalProvider::kMax: return monitor_->max();
    }
    return 0.0;
  }

  /// True when the goal is met.  A goal with no observations yet is
  /// treated as met (nothing contradicts it).
  bool check() const {
    if (monitor_->empty()) return true;
    return compare(observed_value(), op_, target_);
  }

  /// Relative error towards the target: 0 when met, otherwise
  /// |observed - target| / |target| (absolute error for target == 0).
  double relative_error() const {
    if (check()) return 0.0;
    const double v = observed_value();
    return target_ == 0.0 ? v - target_
                          : std::abs(v - target_) / std::abs(target_);
  }

  double target() const { return target_; }
  /// Goals are dynamic: the target may change at runtime.
  void set_target(double target) { target_ = target; }

 private:
  const CircularMonitor* monitor_;
  StatisticalProvider provider_;
  ComparisonOp op_;
  double target_;
};

}  // namespace socrates::margot
