#include "margot/kb_io.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <locale>
#include <ostream>
#include <sstream>

#include "support/bench_json.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::margot {

namespace {

constexpr const char* kKnobsHeader = "# knobs: ";
constexpr const char* kMetricsHeader = "# metrics: ";

[[noreturn]] void format_fail(std::size_t line_no, const std::string& detail) {
  std::ostringstream os;
  os << "knowledge file: " << detail << " (line " << line_no << ")";
  throw KnowledgeFormatError(os.str());
}

double parse_double(const std::string& cell, std::size_t line_no,
                    const std::string& column) {
  // parse_strict_double, not std::stod: stod follows the global C
  // locale, so under a comma-decimal locale "0.5" parses as 0 and a
  // loaded knowledge base silently changes.  Strictness also rejects
  // hexfloat / "inf" / "nan" cells a CSV should never contain.
  const auto value = parse_strict_double(trim(cell));
  if (!value)
    format_fail(line_no, "non-numeric " + column + " cell '" + cell + "'");
  return *value;
}

int parse_int(const std::string& cell, std::size_t line_no, const std::string& column) {
  const double v = parse_double(cell, line_no, column);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v)
    format_fail(line_no, "knob cell '" + cell + "' in column " + column +
                             " is not an integer");
  return i;
}

}  // namespace

void save_knowledge(const KnowledgeBase& kb, std::ostream& out) {
  // A globally-imbued locale would spell the radix point as ',' (the
  // CSV separator!) and group knob digits; force the classic locale for
  // the duration of the write.
  const std::locale previous = out.imbue(std::locale::classic());
  out << kKnobsHeader << join(kb.knob_names(), ",") << '\n';
  out << kMetricsHeader << join(kb.metric_names(), ",") << '\n';

  // Column header row.
  std::vector<std::string> columns;
  for (const auto& k : kb.knob_names()) columns.push_back("knob:" + k);
  for (const auto& m : kb.metric_names()) {
    columns.push_back(m);
    columns.push_back(m + ":sd");
  }
  out << join(columns, ",") << '\n';

  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& op : kb.points()) {
    bool first = true;
    for (const int k : op.knobs) {
      if (!first) out << ',';
      out << k;
      first = false;
    }
    for (const auto& m : op.metrics) out << ',' << m.mean << ',' << m.stddev;
    out << '\n';
  }
  out.imbue(previous);
}

std::string knowledge_to_string(const KnowledgeBase& kb) {
  std::ostringstream os;
  save_knowledge(kb, os);
  return os.str();
}

KnowledgeBase load_knowledge(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;

  const auto next_line = [&](const char* expectation) {
    if (!std::getline(in, line))
      format_fail(line_no + 1, std::string("unexpected end of file, expected ") +
                                   expectation);
    ++line_no;
  };

  next_line("the knobs header");
  if (!starts_with(line, kKnobsHeader))
    format_fail(line_no, std::string("expected '") + kKnobsHeader + "' header, got '" +
                             line + "'");
  const auto knob_names = split(trim(line.substr(std::string(kKnobsHeader).size())), ',');

  next_line("the metrics header");
  if (!starts_with(line, kMetricsHeader))
    format_fail(line_no, std::string("expected '") + kMetricsHeader +
                             "' header, got '" + line + "'");
  const auto metric_names =
      split(trim(line.substr(std::string(kMetricsHeader).size())), ',');

  next_line("the column header row");
  const std::size_t expected_cells = knob_names.size() + 2 * metric_names.size();
  if (split(line, ',').size() != expected_cells)
    format_fail(line_no, "column header has " + std::to_string(split(line, ',').size()) +
                             " cells, expected " + std::to_string(expected_cells));

  // Column names, for error messages on data rows.
  std::vector<std::string> columns;
  for (const auto& k : knob_names) columns.push_back("knob:" + k);
  for (const auto& m : metric_names) {
    columns.push_back(m);
    columns.push_back(m + ":sd");
  }

  KnowledgeBase kb(knob_names, metric_names);
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    const auto cells = split(line, ',');
    if (cells.size() != expected_cells)
      format_fail(line_no, "row has " + std::to_string(cells.size()) +
                               " cells, expected " + std::to_string(expected_cells));
    OperatingPoint op;
    std::size_t c = 0;
    for (std::size_t k = 0; k < knob_names.size(); ++k, ++c)
      op.knobs.push_back(parse_int(cells[c], line_no, columns[c]));
    for (std::size_t m = 0; m < metric_names.size(); ++m) {
      MetricStats stats;
      stats.mean = parse_double(cells[c], line_no, columns[c]);
      ++c;
      stats.stddev = parse_double(cells[c], line_no, columns[c]);
      ++c;
      op.metrics.push_back(stats);
    }
    kb.add(std::move(op));
  }
  return kb;
}

KnowledgeBase knowledge_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_knowledge(is);
}

}  // namespace socrates::margot
