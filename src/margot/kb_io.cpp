#include "margot/kb_io.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::margot {

namespace {

constexpr const char* kKnobsHeader = "# knobs: ";
constexpr const char* kMetricsHeader = "# metrics: ";

double parse_double(const std::string& cell, std::size_t line_no) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(cell, &consumed);
    SOCRATES_REQUIRE_MSG(consumed == cell.size(),
                         "trailing characters in cell '" << cell << "' on line "
                                                         << line_no);
    return value;
  } catch (const std::invalid_argument&) {
    SOCRATES_REQUIRE_MSG(false, "non-numeric cell '" << cell << "' on line " << line_no);
  } catch (const std::out_of_range&) {
    SOCRATES_REQUIRE_MSG(false, "out-of-range cell '" << cell << "' on line " << line_no);
  }
  return 0.0;  // unreachable
}

int parse_int(const std::string& cell, std::size_t line_no) {
  const double v = parse_double(cell, line_no);
  const int i = static_cast<int>(v);
  SOCRATES_REQUIRE_MSG(static_cast<double>(i) == v,
                       "knob cell '" << cell << "' on line " << line_no
                                     << " is not an integer");
  return i;
}

}  // namespace

void save_knowledge(const KnowledgeBase& kb, std::ostream& out) {
  out << kKnobsHeader << join(kb.knob_names(), ",") << '\n';
  out << kMetricsHeader << join(kb.metric_names(), ",") << '\n';

  // Column header row.
  std::vector<std::string> columns;
  for (const auto& k : kb.knob_names()) columns.push_back("knob:" + k);
  for (const auto& m : kb.metric_names()) {
    columns.push_back(m);
    columns.push_back(m + ":sd");
  }
  out << join(columns, ",") << '\n';

  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& op : kb.points()) {
    bool first = true;
    for (const int k : op.knobs) {
      if (!first) out << ',';
      out << k;
      first = false;
    }
    for (const auto& m : op.metrics) out << ',' << m.mean << ',' << m.stddev;
    out << '\n';
  }
}

std::string knowledge_to_string(const KnowledgeBase& kb) {
  std::ostringstream os;
  save_knowledge(kb, os);
  return os.str();
}

KnowledgeBase load_knowledge(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;

  const auto next_line = [&]() {
    SOCRATES_REQUIRE_MSG(static_cast<bool>(std::getline(in, line)),
                         "unexpected end of knowledge file at line " << line_no);
    ++line_no;
  };

  next_line();
  SOCRATES_REQUIRE_MSG(starts_with(line, kKnobsHeader),
                       "expected '" << kKnobsHeader << "' header, got '" << line << "'");
  const auto knob_names = split(trim(line.substr(std::string(kKnobsHeader).size())), ',');

  next_line();
  SOCRATES_REQUIRE_MSG(starts_with(line, kMetricsHeader),
                       "expected '" << kMetricsHeader << "' header, got '" << line
                                    << "'");
  const auto metric_names =
      split(trim(line.substr(std::string(kMetricsHeader).size())), ',');

  next_line();  // column header row, validated by arity below
  const std::size_t expected_cells = knob_names.size() + 2 * metric_names.size();
  SOCRATES_REQUIRE_MSG(split(line, ',').size() == expected_cells,
                       "column header arity mismatch on line " << line_no);

  KnowledgeBase kb(knob_names, metric_names);
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    const auto cells = split(line, ',');
    SOCRATES_REQUIRE_MSG(cells.size() == expected_cells,
                         "row on line " << line_no << " has " << cells.size()
                                        << " cells, expected " << expected_cells);
    OperatingPoint op;
    std::size_t c = 0;
    for (std::size_t k = 0; k < knob_names.size(); ++k)
      op.knobs.push_back(parse_int(cells[c++], line_no));
    for (std::size_t m = 0; m < metric_names.size(); ++m) {
      MetricStats stats;
      stats.mean = parse_double(cells[c++], line_no);
      stats.stddev = parse_double(cells[c++], line_no);
      op.metrics.push_back(stats);
    }
    kb.add(std::move(op));
  }
  return kb;
}

KnowledgeBase knowledge_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_knowledge(is);
}

}  // namespace socrates::margot
