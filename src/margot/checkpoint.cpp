#include "margot/checkpoint.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "observability/metrics.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace socrates::margot {

namespace {

constexpr const char* kMagic = "socrates-checkpoint";
// v2: payload gained the "depoch" (decision epoch) line.  An old v1
// snapshot fails the version check and degrades to a clean fresh start,
// the same path any unrecognized checkpoint takes.
constexpr const char* kVersion = "v2";

std::string format_double(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

/// Serializes the learned state (plus the active state name) into the
/// checksummed snapshot payload.  Text on purpose: a human can inspect
/// what their run had learned before it died.
std::string serialize_payload(const Asrtm::Snapshot& snap,
                              const std::string& active_state) {
  std::ostringstream os;
  os << "alpha " << format_double(snap.feedback_alpha) << '\n';
  os << "quarantine " << snap.quarantine.failure_threshold << ' '
     << snap.quarantine.base_cooldown << ' ' << snap.quarantine.max_cooldown << '\n';
  os << "events " << snap.quarantine_events << '\n';
  os << "depoch " << snap.decision_epoch << '\n';
  os << "state " << active_state << '\n';
  os << "corrections " << snap.corrections.size();
  for (const double c : snap.corrections) os << ' ' << format_double(c);
  os << '\n';
  os << "health " << snap.health.size() << '\n';
  for (const auto& h : snap.health)
    os << h.consecutive_failures << ' ' << h.times_quarantined << ' ' << h.cooldown
       << ' ' << (h.probing ? 1 : 0) << '\n';
  return os.str();
}

bool expect_word(std::istream& in, const char* word) {
  std::string got;
  return static_cast<bool>(in >> got) && got == word;
}

/// Parses a payload produced by serialize_payload.  Returns false on
/// any malformation (the caller fresh-starts).
bool parse_payload(const std::string& payload, Asrtm::Snapshot& snap,
                   std::string& active_state) {
  std::istringstream in(payload);
  if (!expect_word(in, "alpha") || !(in >> snap.feedback_alpha)) return false;
  if (!expect_word(in, "quarantine") ||
      !(in >> snap.quarantine.failure_threshold >> snap.quarantine.base_cooldown >>
        snap.quarantine.max_cooldown))
    return false;
  if (!expect_word(in, "events") || !(in >> snap.quarantine_events)) return false;
  if (!expect_word(in, "depoch") || !(in >> snap.decision_epoch)) return false;
  if (!expect_word(in, "state")) return false;
  in.get();  // the separator space
  if (!std::getline(in, active_state)) return false;
  std::size_t n = 0;
  if (!expect_word(in, "corrections") || !(in >> n)) return false;
  snap.corrections.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!(in >> snap.corrections[i])) return false;
  if (!expect_word(in, "health") || !(in >> n)) return false;
  snap.health.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    int probing = 0;
    if (!(in >> snap.health[i].consecutive_failures >>
          snap.health[i].times_quarantined >> snap.health[i].cooldown >> probing))
      return false;
    snap.health[i].probing = probing != 0;
  }
  return true;
}

/// Journal line body: epoch, kind, op, metric, value, then the state
/// name as the rest of the line (it may contain spaces or be empty).
/// snprintf, not an ostringstream: at server feedback rates this path
/// runs a million times a second and stream construction dominates;
/// %.17g round-trips doubles exactly like the old max_digits10 format.
/// Returns the body length, or 0 when `buf` is too small (the caller
/// falls back to a heap string for oversized state names).
std::size_t serialize_event_fast(char* buf, std::size_t cap, std::uint64_t epoch,
                                 const RuntimeEvent& event) {
  const int head = std::snprintf(
      buf, cap, "%llu %d %llu %llu %.17g ",
      static_cast<unsigned long long>(epoch), static_cast<int>(event.kind),
      static_cast<unsigned long long>(event.op),
      static_cast<unsigned long long>(event.metric), event.value);
  if (head <= 0 || static_cast<std::size_t>(head) >= cap) return 0;
  const std::size_t total = static_cast<std::size_t>(head) + event.name.size();
  if (total >= cap) return 0;
  std::memcpy(buf + head, event.name.data(), event.name.size());
  return total;
}

/// Appends "<hex-hash> <body>\n" to `out`.
void append_journal_line(std::string& out, std::string_view body) {
  char hex[24];
  const int n = std::snprintf(hex, sizeof hex, "%llx",
                              static_cast<unsigned long long>(stable_hash64(body)));
  out.append(hex, static_cast<std::size_t>(n));
  out += ' ';
  out.append(body);
  out += '\n';
}

bool parse_event(const std::string& body, std::uint64_t& epoch, RuntimeEvent& event) {
  std::istringstream in(body);
  int kind = 0;
  if (!(in >> epoch >> kind >> event.op >> event.metric >> event.value)) return false;
  if (kind < 0 || kind > static_cast<int>(RuntimeEvent::Kind::kFeedbackRejected))
    return false;
  event.kind = static_cast<RuntimeEvent::Kind>(kind);
  in.get();  // the separator space
  std::getline(in, event.name);  // empty name -> eof, fine
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  SOCRATES_REQUIRE(!path_.empty());
  SOCRATES_REQUIRE(options_.journal_capacity >= 1);
  SOCRATES_REQUIRE(options_.group_commit >= 1);
}

CheckpointStore::~CheckpointStore() {
  // No final snapshot here: destruction without detach() behaves like a
  // crash, and the journal alone must carry the state — which is
  // exactly what the kill-and-resume tests verify.  The buffered
  // group-commit batch is dropped for the same reason: a crash loses
  // the uncommitted batch, so destruction must too.
  if (asrtm_ != nullptr) {
    asrtm_->set_event_sink(nullptr);
    asrtm_ = nullptr;
  }
  journal_.close();
}

CheckpointStore::RestoreResult CheckpointStore::attach(Asrtm& asrtm) {
  SOCRATES_REQUIRE_MSG(asrtm_ == nullptr, "CheckpointStore is already attached");
  RestoreResult result;
  bool fresh = false;        ///< corruption: discard snapshot AND journal
  bool have_snapshot = false;
  std::string fresh_reason;
  Asrtm::Snapshot snap;
  std::string snap_state;

  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    // Not corruption: a process killed before its first checkpoint()
    // has no snapshot, only the journal — epoch-0 lines replay onto the
    // freshly constructed AS-RTM below.
    epoch_ = 0;
  } else {
    // Header: magic version epoch payload-size payload-hash-hex
    std::string magic, version, hash_text;
    std::uint64_t epoch = 0;
    std::size_t size = 0;
    if (!(in >> magic >> version >> epoch >> size >> hash_text) || magic != kMagic ||
        version != kVersion) {
      fresh = true;
      fresh_reason = "unrecognized checkpoint header";
    } else {
      in.get();  // the separator newline
      std::string payload(size, '\0');
      in.read(payload.data(), static_cast<std::streamsize>(size));
      const std::uint64_t hash = std::strtoull(hash_text.c_str(), nullptr, 16);
      if (in.gcount() != static_cast<std::streamsize>(size) ||
          stable_hash64(payload) != hash) {
        fresh = true;
        fresh_reason = "checkpoint payload truncated or checksum mismatch";
      } else if (!parse_payload(payload, snap, snap_state)) {
        fresh = true;
        fresh_reason = "malformed checkpoint payload";
      } else {
        epoch_ = epoch;
        have_snapshot = true;
      }
    }
  }
  in.close();

  if (have_snapshot) {
    try {
      asrtm.restore(snap);
      result.restored = true;
      result.active_state = snap_state;
      active_state_ = snap_state;
    } catch (const std::exception& e) {
      // Shape mismatch: the knowledge base changed since the checkpoint
      // was taken.  The old learned state no longer applies.
      fresh = true;
      fresh_reason = std::string("checkpoint incompatible: ") + e.what();
    }
  }

  if (fresh) {
    // Clean fresh start: discard stale files so a later restore cannot
    // mix epochs, and report why.
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    epoch_ = 0;
    active_state_.clear();
    result.note = "fresh start: " + fresh_reason;
    log_info() << "checkpoint: " << result.note;
    MetricsRegistry::global().counter("checkpoint.fresh_starts").add(1);
    open_journal(/*truncate=*/true);
  } else {
    // Replay the journal on top of the snapshot.  Only lines of the
    // snapshot's epoch apply; anything else is stale or torn.
    std::ifstream jin(journal_path(), std::ios::binary);
    std::string line;
    while (jin && std::getline(jin, line)) {
      if (line.empty()) continue;
      const std::size_t space = line.find(' ');
      bool ok = space != std::string::npos;
      std::uint64_t line_epoch = 0;
      RuntimeEvent event;
      if (ok) {
        const std::string body = line.substr(space + 1);
        const std::uint64_t hash = std::strtoull(line.substr(0, space).c_str(), nullptr, 16);
        ok = stable_hash64(body) == hash && parse_event(body, line_epoch, event) &&
             line_epoch == epoch_;
      }
      if (!ok) {
        ++result.skipped;
        continue;
      }
      try {
        asrtm.replay(event);
        if (event.kind == RuntimeEvent::Kind::kStateActivation) {
          result.active_state = event.name;
          active_state_ = event.name;
        }
        ++result.replayed;
      } catch (const std::exception&) {
        // A checksum-valid line the AS-RTM rejects (e.g. op index out
        // of range after a shape-preserving KB edit): skip, don't die.
        ++result.skipped;
      }
    }
    jin.close();
    pending_ = result.replayed;
    std::ostringstream note;
    note << (result.restored ? "restored" : "no snapshot; replayed journal at")
         << " epoch " << epoch_ << ", replayed " << result.replayed << " event(s)";
    if (result.skipped > 0) note << ", skipped " << result.skipped;
    result.note = note.str();
    log_info() << "checkpoint: " << result.note;
    MetricsRegistry::global().counter("checkpoint.restores").add(1);
    MetricsRegistry::global()
        .counter("checkpoint.replayed_events")
        .add(result.replayed);
    if (result.skipped > 0)
      MetricsRegistry::global()
          .counter("checkpoint.skipped_records")
          .add(result.skipped);
    open_journal(/*truncate=*/false);
  }

  asrtm_ = &asrtm;
  asrtm.set_event_sink([this](const RuntimeEvent& event) { on_event(event); });
  return result;
}

void CheckpointStore::open_journal(bool truncate) {
  journal_.close();
  journal_.clear();
  const auto mode =
      std::ios::binary | (truncate ? std::ios::trunc : std::ios::app);
  journal_.open(journal_path(), mode);
  if (!journal_ && !journal_failed_) {
    journal_failed_ = true;
    log_warn() << "checkpoint: cannot open journal " << journal_path()
               << "; learned state will not survive a crash";
  }
}

bool CheckpointStore::write_snapshot(std::uint64_t epoch) {
  const std::string payload = serialize_payload(asrtm_->snapshot(), active_state_);
  const std::string tmp = path_ + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      log_warn() << "checkpoint: cannot write " << tmp;
      return false;
    }
    out << kMagic << ' ' << kVersion << ' ' << epoch << ' ' << payload.size() << ' '
        << std::hex << stable_hash64(payload) << std::dec << '\n';
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      log_warn() << "checkpoint: short write, keeping previous snapshot";
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    log_warn() << "checkpoint: cannot publish " << path_ << ": " << ec.message();
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

void CheckpointStore::checkpoint() {
  SOCRATES_REQUIRE_MSG(asrtm_ != nullptr, "checkpoint() requires a prior attach()");
  const std::uint64_t next_epoch = epoch_ + 1;
  if (!write_snapshot(next_epoch)) {
    // The snapshot failed; commit the buffered batch so the journal
    // keeps protecting us on disk.
    flush_batch();
    return;
  }
  epoch_ = next_epoch;
  ++snapshots_;
  // The snapshot captured the live state, so the buffered (and the
  // already-written) journal lines are superseded: discard both.
  batch_.clear();
  batch_lines_ = 0;
  // A crash exactly here leaves old-epoch journal lines behind; the
  // next restore ignores them (epoch tag mismatch).
  open_journal(/*truncate=*/true);
  pending_ = 0;
  MetricsRegistry::global().counter("checkpoint.snapshots").add(1);
}

void CheckpointStore::detach() {
  if (asrtm_ == nullptr) return;
  checkpoint();  // clean shutdown: next restore replays nothing
  asrtm_->set_event_sink(nullptr);
  asrtm_ = nullptr;
  journal_.close();
}

void CheckpointStore::on_event(const RuntimeEvent& event) {
  if (event.kind == RuntimeEvent::Kind::kStateActivation) active_state_ = event.name;
  char buf[160];
  if (const std::size_t len = serialize_event_fast(buf, sizeof buf, epoch_, event);
      len > 0) {
    append_journal_line(batch_, std::string_view(buf, len));
  } else {
    // Oversized state name: rebuild the body on the heap (cold path).
    std::ostringstream os;
    os << epoch_ << ' ' << static_cast<int>(event.kind) << ' ' << event.op << ' '
       << event.metric << ' ' << format_double(event.value) << ' ' << event.name;
    append_journal_line(batch_, os.str());
  }
  ++batch_lines_;
  ++journaled_;
  ++pending_;
  static Counter& journal_events =
      MetricsRegistry::global().counter("checkpoint.journal_events");
  journal_events.add(1);
  if (batch_lines_ >= options_.group_commit) flush_batch();
  if (pending_ >= options_.journal_capacity) checkpoint();
}

void CheckpointStore::flush_batch() {
  if (batch_lines_ == 0) return;
  auto& chaos = ChaosEngine::global();
  if (chaos.enabled() && chaos.fail_journal("checkpoint.journal")) {
    // Injected journal I/O failure: the batch is lost, exactly like a
    // crash between group commits.  Count it and keep running — the
    // next restore simply misses these events.
    static Counter& lost =
        MetricsRegistry::global().counter("checkpoint.journal_batches_lost");
    lost.add(1);
    batch_.clear();
    batch_lines_ = 0;
    return;
  }
  if (journal_) {
    journal_.write(batch_.data(), static_cast<std::streamsize>(batch_.size()));
    journal_.flush();
  }
  if (!journal_ && !journal_failed_) {
    journal_failed_ = true;
    log_warn() << "checkpoint: journal append failed on " << journal_path()
               << "; learned state may not survive a crash";
  }
  static Counter& batches =
      MetricsRegistry::global().counter("checkpoint.journal_batches");
  batches.add(1);
  batch_.clear();
  batch_lines_ = 0;
}

}  // namespace socrates::margot
