#include "margot/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "observability/metrics.hpp"
#include "support/chaos.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace socrates::margot {

namespace {

constexpr const char* kMagic = "socrates-checkpoint";
// v2: payload gained the "depoch" (decision epoch) line.  An old v1
// snapshot fails the version check and walks down the recovery ladder,
// the same path any unrecognized checkpoint takes.
constexpr const char* kVersion = "v2";

std::string format_double(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

/// Serializes the learned state (plus the active state name) into the
/// checksummed snapshot payload.  Text on purpose: a human can inspect
/// what their run had learned before it died.
std::string serialize_payload(const Asrtm::Snapshot& snap,
                              const std::string& active_state) {
  std::ostringstream os;
  os << "alpha " << format_double(snap.feedback_alpha) << '\n';
  os << "quarantine " << snap.quarantine.failure_threshold << ' '
     << snap.quarantine.base_cooldown << ' ' << snap.quarantine.max_cooldown << '\n';
  os << "events " << snap.quarantine_events << '\n';
  os << "depoch " << snap.decision_epoch << '\n';
  os << "state " << active_state << '\n';
  os << "corrections " << snap.corrections.size();
  for (const double c : snap.corrections) os << ' ' << format_double(c);
  os << '\n';
  os << "health " << snap.health.size() << '\n';
  for (const auto& h : snap.health)
    os << h.consecutive_failures << ' ' << h.times_quarantined << ' ' << h.cooldown
       << ' ' << (h.probing ? 1 : 0) << '\n';
  return os.str();
}

bool expect_word(std::istream& in, const char* word) {
  std::string got;
  return static_cast<bool>(in >> got) && got == word;
}

/// Parses a payload produced by serialize_payload.  Returns false on
/// any malformation (the caller moves down the ladder).
bool parse_payload(const std::string& payload, Asrtm::Snapshot& snap,
                   std::string& active_state) {
  std::istringstream in(payload);
  if (!expect_word(in, "alpha") || !(in >> snap.feedback_alpha)) return false;
  if (!expect_word(in, "quarantine") ||
      !(in >> snap.quarantine.failure_threshold >> snap.quarantine.base_cooldown >>
        snap.quarantine.max_cooldown))
    return false;
  if (!expect_word(in, "events") || !(in >> snap.quarantine_events)) return false;
  if (!expect_word(in, "depoch") || !(in >> snap.decision_epoch)) return false;
  if (!expect_word(in, "state")) return false;
  in.get();  // the separator space
  if (!std::getline(in, active_state)) return false;
  std::size_t n = 0;
  if (!expect_word(in, "corrections") || !(in >> n)) return false;
  snap.corrections.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!(in >> snap.corrections[i])) return false;
  if (!expect_word(in, "health") || !(in >> n)) return false;
  snap.health.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    int probing = 0;
    if (!(in >> snap.health[i].consecutive_failures >>
          snap.health[i].times_quarantined >> snap.health[i].cooldown >> probing))
      return false;
    snap.health[i].probing = probing != 0;
  }
  return true;
}

/// Outcome of reading one snapshot generation off the disk.
enum class SnapLoad { kMissing, kCorrupt, kOk };

/// Reads + verifies a snapshot file (header, checksum, payload shape)
/// WITHOUT applying it.  On kCorrupt `reason` names the defect.
SnapLoad load_snapshot(const std::string& file, Asrtm::Snapshot& snap,
                       std::string& active_state, std::uint64_t& epoch,
                       std::string& reason) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return SnapLoad::kMissing;
  // Header: magic version epoch payload-size payload-hash-hex
  std::string magic, version, hash_text;
  std::size_t size = 0;
  if (!(in >> magic >> version >> epoch >> size >> hash_text) || magic != kMagic ||
      version != kVersion) {
    reason = "unrecognized checkpoint header";
    return SnapLoad::kCorrupt;
  }
  in.get();  // the separator newline
  std::string payload(size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  const std::uint64_t hash = std::strtoull(hash_text.c_str(), nullptr, 16);
  if (in.gcount() != static_cast<std::streamsize>(size) ||
      stable_hash64(payload) != hash) {
    reason = "checkpoint payload truncated or checksum mismatch";
    return SnapLoad::kCorrupt;
  }
  if (!parse_payload(payload, snap, active_state)) {
    reason = "malformed checkpoint payload";
    return SnapLoad::kCorrupt;
  }
  return SnapLoad::kOk;
}

/// Journal line body: epoch, kind, op, metric, value, then the state
/// name as the rest of the line (it may contain spaces or be empty).
/// snprintf, not an ostringstream: at server feedback rates this path
/// runs a million times a second and stream construction dominates;
/// %.17g round-trips doubles exactly like the old max_digits10 format.
/// Returns the body length, or 0 when `buf` is too small (the caller
/// falls back to a heap string for oversized state names).
std::size_t serialize_event_fast(char* buf, std::size_t cap, std::uint64_t epoch,
                                 const RuntimeEvent& event) {
  const int head = std::snprintf(
      buf, cap, "%llu %d %llu %llu %.17g ",
      static_cast<unsigned long long>(epoch), static_cast<int>(event.kind),
      static_cast<unsigned long long>(event.op),
      static_cast<unsigned long long>(event.metric), event.value);
  if (head <= 0 || static_cast<std::size_t>(head) >= cap) return 0;
  const std::size_t total = static_cast<std::size_t>(head) + event.name.size();
  if (total >= cap) return 0;
  std::memcpy(buf + head, event.name.data(), event.name.size());
  return total;
}

/// Appends "<hex-hash> <body>\n" to `out`.
void append_journal_line(std::string& out, std::string_view body) {
  char hex[24];
  const int n = std::snprintf(hex, sizeof hex, "%llx",
                              static_cast<unsigned long long>(stable_hash64(body)));
  out.append(hex, static_cast<std::size_t>(n));
  out += ' ';
  out.append(body);
  out += '\n';
}

bool parse_event(const std::string& body, std::uint64_t& epoch, RuntimeEvent& event) {
  std::istringstream in(body);
  int kind = 0;
  if (!(in >> epoch >> kind >> event.op >> event.metric >> event.value)) return false;
  if (kind < 0 || kind > static_cast<int>(RuntimeEvent::Kind::kFeedbackRejected))
    return false;
  event.kind = static_cast<RuntimeEvent::Kind>(kind);
  in.get();  // the separator space
  std::getline(in, event.name);  // empty name -> eof, fine
  return true;
}

/// Replays one journal file onto the AS-RTM.  A line applies when its
/// checksum verifies, it parses, and its epoch passes the filter:
/// `exact` demands line_epoch == epoch_min (the healthy single-journal
/// restore), otherwise line_epoch >= epoch_min (the older-generation
/// chain replay, where each rotated journal carries the next epoch
/// up).  Everything else — a torn final line, a stale epoch, an event
/// the AS-RTM rejects — is skipped, never fatal.
void replay_journal_file(Asrtm& asrtm, const std::string& file,
                         std::uint64_t epoch_min, bool exact,
                         CheckpointStore::RestoreResult& result,
                         std::uint64_t& max_epoch) {
  std::ifstream jin(file, std::ios::binary);
  std::string line;
  while (jin && std::getline(jin, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    bool ok = space != std::string::npos;
    std::uint64_t line_epoch = 0;
    RuntimeEvent event;
    if (ok) {
      const std::string body = line.substr(space + 1);
      const std::uint64_t hash =
          std::strtoull(line.substr(0, space).c_str(), nullptr, 16);
      ok = stable_hash64(body) == hash && parse_event(body, line_epoch, event) &&
           (exact ? line_epoch == epoch_min : line_epoch >= epoch_min);
    }
    if (!ok) {
      ++result.skipped;
      continue;
    }
    try {
      asrtm.replay(event);
      if (event.kind == RuntimeEvent::Kind::kStateActivation)
        result.active_state = event.name;
      if (line_epoch > max_epoch) max_epoch = line_epoch;
      ++result.replayed;
    } catch (const std::exception&) {
      // A checksum-valid line the AS-RTM rejects (e.g. op index out
      // of range after a shape-preserving KB edit): skip, don't die.
      ++result.skipped;
    }
  }
}

/// fsync by path: reopens read-only and syncs — on Linux this flushes
/// the file's dirty pages no matter which descriptor wrote them.
/// Works for directories too (rename durability).  Best-effort: a
/// failure here cannot make the data *less* durable.
void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void fsync_parent_dir(const std::string& path) {
  const auto dir = std::filesystem::path(path).parent_path();
  fsync_path(dir.empty() ? "." : dir.string());
}

}  // namespace

const char* to_string(RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kNewestSnapshot: return "newest-snapshot";
    case RecoveryRung::kOlderGeneration: return "older-generation";
    case RecoveryRung::kJournalOnly: return "journal-only";
    case RecoveryRung::kFreshStart: return "fresh-start";
  }
  return "unknown";
}

CheckpointStore::Options CheckpointStore::Options::from_env(Options base) {
  base.generations =
      env::size_or("SOCRATES_CHECKPOINT_GENERATIONS", base.generations, 1, 8);
  base.fsync_on_commit =
      base.fsync_on_commit || env::flag("SOCRATES_CHECKPOINT_FSYNC");
  const double probe_ms = env::real_or("SOCRATES_CHECKPOINT_PROBE_MS",
                                       base.probe_base_s * 1000.0, 1.0, 60000.0);
  base.probe_base_s = probe_ms / 1000.0;
  if (base.probe_max_s < base.probe_base_s) base.probe_max_s = base.probe_base_s;
  return base;
}

CheckpointStore::CheckpointStore(std::string path, Options options)
    : path_(std::move(path)),
      options_(options),
      anchor_(std::chrono::steady_clock::now()) {
  SOCRATES_REQUIRE(!path_.empty());
  SOCRATES_REQUIRE(options_.journal_capacity >= 1);
  SOCRATES_REQUIRE(options_.group_commit >= 1);
  if (options_.generations < 1) options_.generations = 1;
  options_.fsync_on_commit =
      options_.fsync_on_commit || env::flag("SOCRATES_CHECKPOINT_FSYNC");
  if (options_.probe_base_s <= 0.0) options_.probe_base_s = 0.05;
  if (options_.probe_max_s < options_.probe_base_s)
    options_.probe_max_s = options_.probe_base_s;
  sweep_stale_tmps();
}

CheckpointStore::~CheckpointStore() {
  // No final snapshot here: destruction without detach() behaves like a
  // crash, and the journal alone must carry the state — which is
  // exactly what the kill-and-resume tests verify.  The buffered
  // group-commit batch is dropped for the same reason: a crash loses
  // the uncommitted batch, so destruction must too.
  if (asrtm_ != nullptr) {
    asrtm_->set_event_sink(nullptr);
    asrtm_ = nullptr;
  }
  journal_.close();
}

std::string CheckpointStore::snapshot_path(std::size_t generation) const {
  return generation == 0 ? path_ : path_ + "." + std::to_string(generation);
}

std::string CheckpointStore::journal_path(std::size_t generation) const {
  const std::string base = path_ + ".journal";
  return generation == 0 ? base : base + "." + std::to_string(generation);
}

void CheckpointStore::sweep_stale_tmps() {
  // A crash between "write tmp" and "rename into place" leaks
  // <path>.tmp.<pid>.  No live writer exists at construction time (the
  // store is single-owner and writes its own pid), so anything matching
  // is garbage from a dead process.
  namespace fs = std::filesystem;
  const fs::path snapshot(path_);
  fs::path dir = snapshot.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = snapshot.filename().string() + ".tmp.";
  std::error_code ec;
  fs::directory_iterator it(dir, ec), end;
  std::size_t swept = 0;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    std::error_code rec;
    if (fs::remove(it->path(), rec)) ++swept;
  }
  if (swept > 0) {
    log_info() << "checkpoint: swept " << swept
               << " stale tmp snapshot(s) next to " << path_;
    MetricsRegistry::global().counter("checkpoint.tmp_files_swept").add(swept);
  }
}

double CheckpointStore::now_s() const {
  if (now_) return now_();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - anchor_)
      .count();
}

void CheckpointStore::set_time_source(std::function<double()> now) {
  now_ = std::move(now);
}

CheckpointStore::DiskStatus CheckpointStore::disk_status() const {
  DiskStatus status;
  status.degraded = degraded_;
  status.io_errors = io_errors_;
  status.degraded_entries = degraded_entries_;
  status.recoveries = recoveries_;
  status.journal_reopens = journal_reopens_;
  status.events_dropped = events_dropped_;
  status.last_error = last_error_;
  return status;
}

CheckpointStore::IoError CheckpointStore::classify_errno(int err, IoError fallback) {
  if (err == ENOSPC || err == EDQUOT) return IoError::kNoSpace;
  if (err == EIO) return IoError::kIo;
  return fallback;
}

void CheckpointStore::enter_degraded(IoError kind, const std::string& what) {
  const char* kind_name = "io";
  switch (kind) {
    case IoError::kNoSpace: kind_name = "enospc"; break;
    case IoError::kIo: kind_name = "eio"; break;
    case IoError::kRename: kind_name = "rename"; break;
    case IoError::kShortWrite: kind_name = "short-write"; break;
    case IoError::kOpen: kind_name = "open"; break;
  }
  ++io_errors_;
  last_error_ = std::string(kind_name) + ": " + what;
  auto& metrics = MetricsRegistry::global();
  metrics.counter("checkpoint.io_errors").add(1);
  metrics.counter(std::string("checkpoint.io_errors.") + kind_name).add(1);
  // The whole device is suspect, not just the file that failed: close
  // the journal so recovery reopens it from a clean descriptor.
  journal_.close();
  journal_.clear();
  journal_open_failed_ = true;
  if (!degraded_) {
    degraded_ = true;
    ++degraded_entries_;
    backoff_s_ = options_.probe_base_s;
    next_probe_s_ = now_s() + backoff_s_;
    log_warn() << "checkpoint: disk unhealthy (" << last_error_
               << "); degraded in-memory mode on " << path_ << ", re-probe in "
               << backoff_s_ << "s";
    metrics.counter("checkpoint.degraded_entries").add(1);
    metrics.gauge("checkpoint.degraded").set(1.0);
  } else {
    // A failed probe: back off exponentially up to the cap.
    backoff_s_ = std::min(backoff_s_ * 2.0, options_.probe_max_s);
    next_probe_s_ = now_s() + backoff_s_;
  }
}

bool CheckpointStore::maybe_probe() {
  if (!degraded_ || crashed_) return false;
  if (now_s() < next_probe_s_) return false;
  return probe_now();
}

bool CheckpointStore::probe_now() {
  // The probe IS the recovery: a full snapshot captures everything
  // learned while degraded, so the events the journal missed are not
  // lost unless the process dies before the disk heals.
  if (!write_snapshot(epoch_ + 1)) return false;  // enter_degraded backed off
  ++epoch_;
  ++snapshots_;
  MetricsRegistry::global().counter("checkpoint.snapshots").add(1);
  degraded_ = false;
  // Anything buffered is inside the snapshot now (its lines carry the
  // pre-recovery epoch and would be skipped on restore regardless).
  batch_.clear();
  batch_lines_ = 0;
  rotate_journals();
  if (degraded_) return false;  // the journal reopen failed: still unhealthy
  pending_ = 0;
  ++recoveries_;
  auto& metrics = MetricsRegistry::global();
  metrics.counter("checkpoint.disk_recoveries").add(1);
  metrics.gauge("checkpoint.degraded").set(0.0);
  log_info() << "checkpoint: disk recovered; full snapshot written at epoch "
             << epoch_ << ", journaling resumed on " << path_;
  return true;
}

CheckpointStore::RestoreResult CheckpointStore::attach(Asrtm& asrtm) {
  SOCRATES_REQUIRE_MSG(asrtm_ == nullptr, "CheckpointStore is already attached");
  RestoreResult result;
  auto& metrics = MetricsRegistry::global();

  // Walk the generation ladder newest-first until a snapshot loads AND
  // applies.  Rejected generations are removed — they are unreadable,
  // and leaving them would resurrect garbage on a later restore.
  std::string snap_state;
  std::uint64_t snap_epoch = 0;
  std::size_t chosen_gen = 0;
  bool have_snapshot = false;
  bool any_snapshot_file = false;
  std::string first_reason;
  for (std::size_t g = 0; g < options_.generations && !have_snapshot; ++g) {
    const std::string file = snapshot_path(g);
    std::string reason;
    Asrtm::Snapshot cand;
    std::string cand_state;
    std::uint64_t cand_epoch = 0;
    const SnapLoad loaded = load_snapshot(file, cand, cand_state, cand_epoch, reason);
    if (loaded == SnapLoad::kMissing) continue;
    any_snapshot_file = true;
    if (loaded == SnapLoad::kOk) {
      try {
        asrtm.restore(cand);
        snap_state = cand_state;
        snap_epoch = cand_epoch;
        chosen_gen = g;
        have_snapshot = true;
        break;
      } catch (const std::exception& e) {
        // Shape mismatch: the knowledge base changed since this
        // checkpoint was taken.  The old learned state no longer
        // applies — and neither will any older generation of it, but
        // the ladder costs nothing and reports precisely.
        reason = std::string("checkpoint incompatible: ") + e.what();
      }
    }
    if (first_reason.empty()) first_reason = reason;
    log_warn() << "checkpoint: generation " << g << " rejected (" << reason
               << "), trying the next rung";
    metrics.counter("checkpoint.corrupt_snapshots").add(1);
    std::error_code ec;
    std::filesystem::remove(file, ec);
  }

  std::uint64_t max_epoch = 0;
  if (have_snapshot && chosen_gen == 0) {
    // Rung 0: the healthy path.  Replay the live journal on top; only
    // lines of the snapshot's epoch apply, anything else is stale or
    // torn.
    result.rung = RecoveryRung::kNewestSnapshot;
    result.restored = true;
    result.generation = 0;
    epoch_ = snap_epoch;
    result.active_state = snap_state;
    replay_journal_file(asrtm, journal_path(0), epoch_, /*exact=*/true, result,
                        max_epoch);
    active_state_ = result.active_state;
    pending_ = result.replayed;
    std::ostringstream note;
    note << "restored epoch " << epoch_ << ", replayed " << result.replayed
         << " event(s)";
    if (result.skipped > 0) note << ", skipped " << result.skipped;
    result.note = note.str();
    open_journal(/*truncate=*/false);
  } else if (have_snapshot) {
    // Rung 1: the newest snapshot was corrupt but an older generation
    // survived.  Chain-replay the journal generations oldest-first —
    // each rotated journal carries the epoch that produced the next
    // (lost) snapshot — so the knowledge climbs back as close to the
    // head as the surviving files allow.
    result.rung = RecoveryRung::kOlderGeneration;
    result.restored = true;
    result.generation = chosen_gen;
    epoch_ = snap_epoch;
    max_epoch = snap_epoch;
    result.active_state = snap_state;
    for (std::size_t k = chosen_gen + 1; k-- > 0;)
      replay_journal_file(asrtm, journal_path(k), snap_epoch, /*exact=*/false,
                          result, max_epoch);
    active_state_ = result.active_state;
    std::ostringstream note;
    note << "restored older generation " << chosen_gen << " at epoch "
         << snap_epoch << ", chain-replayed " << result.replayed << " event(s)";
    if (result.skipped > 0) note << ", skipped " << result.skipped;
    note << " (newest snapshot was " << (first_reason.empty() ? "missing" : first_reason)
         << ")";
    result.note = note.str();
  } else if (any_snapshot_file) {
    // Rung 3: every generation was rejected.  Clean fresh start —
    // discard the journal chain too so a later restore cannot mix
    // epochs, and report why.
    result.rung = RecoveryRung::kFreshStart;
    for (std::size_t g = 0; g < options_.generations; ++g) {
      std::error_code ec;
      std::filesystem::remove(snapshot_path(g), ec);
      if (g > 0) std::filesystem::remove(journal_path(g), ec);
    }
    epoch_ = 0;
    active_state_.clear();
    result.note = "fresh start: " + first_reason;
    metrics.counter("checkpoint.fresh_starts").add(1);
    open_journal(/*truncate=*/true);
  } else {
    // Rung 2: no snapshot was ever written — a process killed before
    // its first checkpoint() leaves only the journal; epoch-0 lines
    // replay onto the freshly constructed AS-RTM.
    result.rung = RecoveryRung::kJournalOnly;
    epoch_ = 0;
    replay_journal_file(asrtm, journal_path(0), 0, /*exact=*/true, result,
                        max_epoch);
    active_state_ = result.active_state;
    pending_ = result.replayed;
    std::ostringstream note;
    note << "no snapshot; replayed journal at epoch 0, replayed "
         << result.replayed << " event(s)";
    if (result.skipped > 0) note << ", skipped " << result.skipped;
    result.note = note.str();
    open_journal(/*truncate=*/false);
  }

  log_info() << "checkpoint: " << result.note << " [rung "
             << to_string(result.rung) << "]";
  metrics.counter(std::string("checkpoint.recovery_rung.") + to_string(result.rung))
      .add(1);
  metrics.gauge("checkpoint.recovery_rung").set(static_cast<double>(result.rung));
  if (result.rung != RecoveryRung::kFreshStart) {
    metrics.counter("checkpoint.restores").add(1);
    metrics.counter("checkpoint.replayed_events").add(result.replayed);
    if (result.skipped > 0)
      metrics.counter("checkpoint.skipped_records").add(result.skipped);
  }

  asrtm_ = &asrtm;
  asrtm.set_event_sink([this](const RuntimeEvent& event) { on_event(event); });

  if (result.rung == RecoveryRung::kOlderGeneration) {
    // Collapse immediately to a fresh known-good newest snapshot, with
    // an epoch past everything seen on disk — the journal chain
    // restarts coherent and the rung-1 state survives even if the next
    // crash comes soon.
    epoch_ = std::max(snap_epoch, max_epoch);
    if (write_snapshot(epoch_ + 1)) {
      ++epoch_;
      ++snapshots_;
      rotate_journals();
      pending_ = 0;
      metrics.counter("checkpoint.snapshots").add(1);
    }
    // On failure enter_degraded already took over: the state lives in
    // memory and the probe will write the collapse snapshot when the
    // disk heals.
  }
  return result;
}

void CheckpointStore::open_journal(bool truncate) {
  journal_.close();
  journal_.clear();
  if (crashed_) return;
  auto& chaos = ChaosEngine::global();
  if (chaos.enabled() && chaos.fail_disk("checkpoint.disk")) {
    enter_degraded(IoError::kNoSpace,
                   "injected disk-full opening " + journal_path());
    return;
  }
  errno = 0;
  const auto mode =
      std::ios::binary | (truncate ? std::ios::trunc : std::ios::app);
  journal_.open(journal_path(), mode);
  if (!journal_) {
    enter_degraded(classify_errno(errno, IoError::kOpen),
                   "cannot open journal " + journal_path());
    return;
  }
  if (journal_open_failed_) {
    // The bug this fixes: the old store latched a failed open forever.
    // A successful open after any failure is a reopen — durability is
    // back, count it.
    journal_open_failed_ = false;
    ++journal_reopens_;
    MetricsRegistry::global().counter("checkpoint.journal_reopens").add(1);
  }
  if (truncate) {
    journal_bytes_ = 0;
  } else {
    std::error_code ec;
    const auto size = std::filesystem::file_size(journal_path(), ec);
    journal_bytes_ = ec ? 0 : static_cast<std::size_t>(size);
  }
}

void CheckpointStore::rotate_generations() {
  // <path>.(K-2) -> .(K-1), ..., <path> -> .1.  A missing source just
  // means that generation does not exist yet; rename-over replaces the
  // oldest.
  for (std::size_t g = options_.generations; g-- > 1;) {
    std::error_code ec;
    std::filesystem::rename(snapshot_path(g - 1), snapshot_path(g), ec);
  }
}

void CheckpointStore::rotate_journals() {
  // The journal rotates WITH its snapshot: journal.<g> holds exactly
  // the events that carried snapshot generation <g> forward to
  // generation <g-1>, which is what an older-generation restore
  // chain-replays.
  journal_.close();
  journal_.clear();
  for (std::size_t g = options_.generations; g-- > 1;) {
    std::error_code ec;
    std::filesystem::rename(journal_path(g - 1), journal_path(g), ec);
  }
  open_journal(/*truncate=*/true);
}

bool CheckpointStore::write_snapshot(std::uint64_t epoch) {
  if (crashed_) return false;
  auto& chaos = ChaosEngine::global();
  const std::string payload = serialize_payload(asrtm_->snapshot(), active_state_);
  std::ostringstream header_os;
  header_os << kMagic << ' ' << kVersion << ' ' << epoch << ' ' << payload.size()
            << ' ' << std::hex << stable_hash64(payload) << std::dec << '\n';
  const std::string header = header_os.str();
  const std::string tmp = path_ + ".tmp." + std::to_string(::getpid());

  if (chaos.enabled() && chaos.fail_disk("checkpoint.disk")) {
    enter_degraded(IoError::kNoSpace, "injected disk-full writing " + tmp);
    return false;
  }
  errno = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      enter_degraded(classify_errno(errno, IoError::kOpen), "cannot write " + tmp);
      return false;
    }
    if (chaos.enabled() && chaos.crash_now("snapshot-header")) {
      // Death mid-header: the torn tmp is never published, the sweep
      // removes it on the next construction.
      out.write(header.data(),
                static_cast<std::streamsize>(header.size() / 2));
      out.flush();
      out.close();
      crashed_ = true;
      journal_.close();
      journal_.clear();
      log_warn() << "checkpoint: injected crash at snapshot-header on " << tmp;
      return false;
    }
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    if (chaos.enabled() && chaos.crash_now("snapshot-body")) {
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size() / 2));
      out.flush();
      out.close();
      crashed_ = true;
      journal_.close();
      journal_.clear();
      log_warn() << "checkpoint: injected crash at snapshot-body on " << tmp;
      return false;
    }
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      enter_degraded(classify_errno(errno, IoError::kShortWrite),
                     "short write on " + tmp + ", keeping previous snapshot");
      return false;
    }
  }
  if (options_.fsync_on_commit) fsync_path(tmp);
  if (chaos.enabled() && chaos.crash_now("snapshot-rename")) {
    // Death between write and publish: a complete, valid tmp exists but
    // the previous snapshot is still the newest — restore must land on
    // it, and the sweep collects the orphan.
    crashed_ = true;
    journal_.close();
    journal_.clear();
    log_warn() << "checkpoint: injected crash at snapshot-rename on " << tmp;
    return false;
  }
  rotate_generations();
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    std::error_code rec;
    std::filesystem::remove(tmp, rec);
    enter_degraded(IoError::kRename,
                   "cannot publish " + path_ + ": " + ec.message());
    return false;
  }
  if (options_.fsync_on_commit) fsync_parent_dir(path_);
  return true;
}

void CheckpointStore::checkpoint() {
  SOCRATES_REQUIRE_MSG(asrtm_ != nullptr, "checkpoint() requires a prior attach()");
  if (crashed_) return;
  if (degraded_) {
    // A checkpoint request in degraded mode is a re-probe opportunity;
    // probe_now() writes the full snapshot when the disk answers.
    maybe_probe();
    return;
  }
  auto& chaos = ChaosEngine::global();
  const std::uint64_t next_epoch = epoch_ + 1;
  if (!write_snapshot(next_epoch)) {
    // The failure was classified (degraded or injected crash); commit
    // or account for the buffered batch accordingly.
    flush_batch();
    return;
  }
  epoch_ = next_epoch;
  ++snapshots_;
  // The snapshot captured the live state, so the buffered (and the
  // already-written) journal lines are superseded: discard both.
  batch_.clear();
  batch_lines_ = 0;
  if (chaos.enabled() && chaos.crash_now("journal-truncate")) {
    // Death between publishing the new snapshot and rotating the
    // journal: the live journal still holds old-epoch lines.  The next
    // restore must skip every one of them (epoch tag mismatch).
    crashed_ = true;
    journal_.close();
    journal_.clear();
    log_warn() << "checkpoint: injected crash at journal-truncate on " << path_;
    return;
  }
  // A real crash exactly here leaves old-epoch journal lines behind;
  // the next restore ignores them (epoch tag mismatch).
  rotate_journals();
  pending_ = 0;
  MetricsRegistry::global().counter("checkpoint.snapshots").add(1);
}

void CheckpointStore::detach() {
  if (asrtm_ == nullptr) return;
  checkpoint();  // clean shutdown: next restore replays nothing
  asrtm_->set_event_sink(nullptr);
  asrtm_ = nullptr;
  journal_.close();
}

void CheckpointStore::on_event(const RuntimeEvent& event) {
  if (event.kind == RuntimeEvent::Kind::kStateActivation)
    active_state_ = event.name;
  if (crashed_) return;  // simulated dead process: the disk is frozen
  if (degraded_) {
    // The recovery probe piggybacks on event traffic.  Either way this
    // event does NOT go to the journal: the AS-RTM already applied it,
    // so a successful probe's full snapshot captures it (journaling it
    // too would double-apply on restore), and while still degraded it
    // lives in memory only.
    if (maybe_probe()) return;
    ++events_dropped_;
    static Counter& dropped =
        MetricsRegistry::global().counter("checkpoint.events_dropped");
    dropped.add(1);
    return;
  }
  char buf[160];
  if (const std::size_t len = serialize_event_fast(buf, sizeof buf, epoch_, event);
      len > 0) {
    append_journal_line(batch_, std::string_view(buf, len));
  } else {
    // Oversized state name: rebuild the body on the heap (cold path).
    std::ostringstream os;
    os << epoch_ << ' ' << static_cast<int>(event.kind) << ' ' << event.op << ' '
       << event.metric << ' ' << format_double(event.value) << ' ' << event.name;
    append_journal_line(batch_, os.str());
  }
  ++batch_lines_;
  ++journaled_;
  ++pending_;
  static Counter& journal_events =
      MetricsRegistry::global().counter("checkpoint.journal_events");
  journal_events.add(1);
  if (batch_lines_ >= options_.group_commit) flush_batch();
  const bool over_quota =
      options_.journal_max_bytes > 0 &&
      journal_bytes_ + batch_.size() > options_.journal_max_bytes;
  if (pending_ >= options_.journal_capacity || over_quota) checkpoint();
}

void CheckpointStore::flush_batch() {
  if (batch_lines_ == 0) return;
  if (crashed_) {
    batch_.clear();
    batch_lines_ = 0;
    return;
  }
  auto& chaos = ChaosEngine::global();
  if (chaos.enabled() && chaos.fail_journal("checkpoint.journal")) {
    // Injected journal I/O failure: the batch is lost, exactly like a
    // crash between group commits.  Count it and keep running — the
    // next restore simply misses these events.
    static Counter& lost =
        MetricsRegistry::global().counter("checkpoint.journal_batches_lost");
    lost.add(1);
    batch_.clear();
    batch_lines_ = 0;
    return;
  }
  if (degraded_) {
    // A successful probe's full snapshot already holds these events
    // (they were serialized with the pre-recovery epoch anyway); while
    // still degraded they are dropped and counted.  Either way the
    // batch never reaches the journal.
    if (!maybe_probe()) {
      events_dropped_ += batch_lines_;
      MetricsRegistry::global()
          .counter("checkpoint.events_dropped")
          .add(batch_lines_);
    }
    batch_.clear();
    batch_lines_ = 0;
    return;
  }
  if (chaos.enabled() && chaos.fail_disk("checkpoint.disk")) {
    enter_degraded(IoError::kNoSpace,
                   "injected disk-full appending to " + journal_path());
    events_dropped_ += batch_lines_;
    MetricsRegistry::global()
        .counter("checkpoint.events_dropped")
        .add(batch_lines_);
    batch_.clear();
    batch_lines_ = 0;
    return;
  }
  if (chaos.enabled() && chaos.crash_now("journal-append")) {
    // Torn append: half the batch reaches the disk — the final line is
    // cut mid-byte exactly as a power cut would cut it — then death.
    if (journal_) {
      journal_.write(batch_.data(),
                     static_cast<std::streamsize>(batch_.size() / 2));
      journal_.flush();
    }
    crashed_ = true;
    journal_.close();
    journal_.clear();
    log_warn() << "checkpoint: injected crash at journal-append on "
               << journal_path();
    batch_.clear();
    batch_lines_ = 0;
    return;
  }
  errno = 0;
  bool wrote = false;
  if (journal_) {
    journal_.write(batch_.data(), static_cast<std::streamsize>(batch_.size()));
    journal_.flush();
    wrote = static_cast<bool>(journal_);
  }
  if (wrote && options_.fsync_on_commit) fsync_path(journal_path());
  if (chaos.enabled() && chaos.crash_now("journal-flush")) {
    // Death just after the commit boundary: the whole batch is durable,
    // nothing after it is.
    crashed_ = true;
    journal_.close();
    journal_.clear();
    log_warn() << "checkpoint: injected crash at journal-flush on "
               << journal_path();
    batch_.clear();
    batch_lines_ = 0;
    return;
  }
  if (!wrote) {
    enter_degraded(classify_errno(errno, IoError::kIo),
                   "journal append failed on " + journal_path());
    events_dropped_ += batch_lines_;
    MetricsRegistry::global()
        .counter("checkpoint.events_dropped")
        .add(batch_lines_);
  } else {
    journal_bytes_ += batch_.size();
    static Counter& batches =
        MetricsRegistry::global().counter("checkpoint.journal_batches");
    batches.add(1);
  }
  batch_.clear();
  batch_lines_ = 0;
}

}  // namespace socrates::margot
