#include "margot/data_features.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace socrates::margot {

MultiKnowledge::MultiKnowledge(DataFeatureSchema schema) : schema_(std::move(schema)) {
  SOCRATES_REQUIRE(!schema_.names.empty());
  SOCRATES_REQUIRE(schema_.comparisons.size() == schema_.names.size());
}

void MultiKnowledge::add_cluster(std::vector<double> features, KnowledgeBase knowledge) {
  SOCRATES_REQUIRE_MSG(features.size() == schema_.size(),
                       "cluster has " << features.size() << " features, schema has "
                                      << schema_.size());
  SOCRATES_REQUIRE(!knowledge.empty());
  clusters_.push_back(FeatureCluster{std::move(features), std::move(knowledge)});
}

const FeatureCluster& MultiKnowledge::cluster(std::size_t i) const {
  SOCRATES_REQUIRE(i < clusters_.size());
  return clusters_[i];
}

bool MultiKnowledge::admissible(const std::vector<double>& cluster_features,
                                const std::vector<double>& observed) const {
  for (std::size_t d = 0; d < schema_.size(); ++d) {
    switch (schema_.comparisons[d]) {
      case FeatureComparison::kDontCare:
        break;
      case FeatureComparison::kLessOrEqual:
        if (!(cluster_features[d] <= observed[d])) return false;
        break;
      case FeatureComparison::kGreaterOrEqual:
        if (!(cluster_features[d] >= observed[d])) return false;
        break;
    }
  }
  return true;
}

double MultiKnowledge::distance(const std::vector<double>& a,
                                const std::vector<double>& b) const {
  // Normalized Euclidean: each dimension is scaled by the larger
  // magnitude so that features with different units compare fairly.
  double acc = 0.0;
  for (std::size_t d = 0; d < schema_.size(); ++d) {
    const double scale = std::max({std::abs(a[d]), std::abs(b[d]), 1e-12});
    const double delta = (a[d] - b[d]) / scale;
    acc += delta * delta;
  }
  return std::sqrt(acc);
}

std::size_t MultiKnowledge::select(const std::vector<double>& observed) const {
  SOCRATES_REQUIRE_MSG(!clusters_.empty(), "no knowledge clusters registered");
  SOCRATES_REQUIRE(observed.size() == schema_.size());

  // First pass: nearest among clusters satisfying every comparison.
  std::size_t best = clusters_.size();
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (!admissible(clusters_[i].features, observed)) continue;
    const double d = distance(clusters_[i].features, observed);
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  if (best != clusters_.size()) return best;

  // Fallback: nearest overall (mARGOt behaves the same when no cluster
  // is admissible — better approximate knowledge than none).
  best = 0;
  best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const double d = distance(clusters_[i].features, observed);
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return best;
}

}  // namespace socrates::margot
