#include "margot/optimization.hpp"

#include <cmath>

#include "support/error.hpp"

namespace socrates::margot {

const char* to_string(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kLess: return "<";
    case ComparisonOp::kLessEqual: return "<=";
    case ComparisonOp::kGreater: return ">";
    case ComparisonOp::kGreaterEqual: return ">=";
  }
  return "?";
}

bool compare(double value, ComparisonOp op, double target) {
  switch (op) {
    case ComparisonOp::kLess: return value < target;
    case ComparisonOp::kLessEqual: return value <= target;
    case ComparisonOp::kGreater: return value > target;
    case ComparisonOp::kGreaterEqual: return value >= target;
  }
  return false;
}

bool violation_ties_minimum(double v, double min_violation) {
  // 1e-12 relative covers accumulated rounding in mean * correction;
  // 1e-15 absolute keeps ties alive when the minimum itself is at or
  // below the noise floor (tiny or denormal violations).
  return v <= min_violation + (1e-12 * min_violation + 1e-15);
}

double Rank::evaluate(const OperatingPoint& op,
                      const std::vector<double>& correction) const {
  const auto corrected_metric = [&](const RankTerm& term) {
    SOCRATES_REQUIRE(term.metric < op.metrics.size());
    double metric = op.metrics[term.metric].mean;
    if (!correction.empty()) {
      SOCRATES_REQUIRE(term.metric < correction.size());
      metric *= correction[term.metric];
    }
    return metric;
  };

  if (composition == RankComposition::kLinear) {
    double value = 0.0;
    for (const RankTerm& term : terms) value += term.weight * corrected_metric(term);
    return value;
  }

  double value = 1.0;
  for (const RankTerm& term : terms) {
    const double metric = corrected_metric(term);
    SOCRATES_REQUIRE_MSG(metric > 0.0,
                         "geometric rank requires positive metrics, got " << metric);
    value *= std::pow(metric, term.weight);
  }
  return value;
}

double Rank::evaluate(const KnowledgeBase& kb, std::size_t index,
                      const std::vector<double>& correction) const {
  const std::size_t metric_count = kb.metric_names().size();
  const auto corrected_metric = [&](const RankTerm& term) {
    SOCRATES_REQUIRE(term.metric < metric_count);
    double metric = kb.metric_means(term.metric)[index];
    if (!correction.empty()) {
      SOCRATES_REQUIRE(term.metric < correction.size());
      metric *= correction[term.metric];
    }
    return metric;
  };

  if (composition == RankComposition::kLinear) {
    double value = 0.0;
    for (const RankTerm& term : terms) value += term.weight * corrected_metric(term);
    return value;
  }

  double value = 1.0;
  for (const RankTerm& term : terms) {
    const double metric = corrected_metric(term);
    SOCRATES_REQUIRE_MSG(metric > 0.0,
                         "geometric rank requires positive metrics, got " << metric);
    value *= std::pow(metric, term.weight);
  }
  return value;
}

Rank Rank::maximize_throughput(std::size_t throughput_metric) {
  return Rank{RankDirection::kMaximize, {{throughput_metric, 1.0}}};
}

Rank Rank::maximize_throughput_per_watt2(std::size_t throughput_metric,
                                         std::size_t power_metric) {
  return Rank{RankDirection::kMaximize,
              {{throughput_metric, 1.0}, {power_metric, -2.0}}};
}

Rank Rank::minimize_exec_time(std::size_t time_metric) {
  return Rank{RankDirection::kMinimize, {{time_metric, 1.0}}};
}

Rank Rank::minimize_energy(std::size_t time_metric, std::size_t power_metric) {
  return Rank{RankDirection::kMinimize, {{power_metric, 1.0}, {time_metric, 1.0}}};
}

Rank Rank::minimize_energy_delay(std::size_t time_metric, std::size_t power_metric) {
  return Rank{RankDirection::kMinimize, {{power_metric, 1.0}, {time_metric, 2.0}}};
}

Rank Rank::linear(RankDirection direction, std::vector<RankTerm> terms) {
  Rank rank;
  rank.direction = direction;
  rank.terms = std::move(terms);
  rank.composition = RankComposition::kLinear;
  return rank;
}

}  // namespace socrates::margot
