#include "margot/context.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::margot {

std::vector<std::string> ContextMetrics::names() {
  return {"exec_time_s", "power_w", "throughput"};
}

RobustnessOptions RobustnessOptions::hardened() {
  RobustnessOptions options;
  options.harden_monitors = true;
  options.outlier_filter = true;
  options.variant_quarantine = true;
  options.oscillation_watchdog = true;
  return options;
}

RobustnessOptions RobustnessOptions::raw() {
  RobustnessOptions options;
  options.harden_monitors = false;
  options.outlier_filter = false;
  options.variant_quarantine = false;
  options.oscillation_watchdog = false;
  return options;
}

Context::Context(KnowledgeBase knowledge, const platform::Clock& clock,
                 const platform::EnergyCounter& energy, std::size_t monitor_window)
    : asrtm_([&] {
        SOCRATES_REQUIRE_MSG(knowledge.metric_names() == ContextMetrics::names(),
                             "Context requires the (exec_time_s, power_w, throughput) "
                             "metric schema");
        return Asrtm(std::move(knowledge));
      }()),
      clock_(&clock),
      time_monitor_(clock, monitor_window),
      power_monitor_(clock, energy, monitor_window),
      energy_monitor_(energy, monitor_window) {}

void Context::set_robustness(const RobustnessOptions& options) {
  SOCRATES_REQUIRE(options.runaway_factor > 1.0);
  robustness_ = options;
  time_monitor_.set_hardened(options.harden_monitors);
  power_monitor_.set_hardened(options.harden_monitors);
  energy_monitor_.set_hardened(options.harden_monitors);
  power_monitor_.set_wrap_range_uj(options.wrap_range_uj);
  energy_monitor_.set_wrap_range_uj(options.wrap_range_uj);
  for (CircularMonitor* stats :
       {&time_monitor_.mutable_stats(), &power_monitor_.mutable_stats(),
        &energy_monitor_.mutable_stats()}) {
    if (options.outlier_filter)
      stats->enable_outlier_filter(options.hampel);
    else
      stats->disable_outlier_filter();
  }
  asrtm_.set_quarantine_options(options.quarantine);
  watchdog_ = OscillationWatchdog(options.watchdog);
}

bool Context::update(std::vector<int>& knobs) {
  TraceSpan span("asrtm-decision", "asrtm");
  if (asrtm_.decision_journal_enabled())
    asrtm_.set_decision_time(clock_->now_s());
  if (robustness_.variant_quarantine) asrtm_.advance_quarantine();
  std::size_t chosen = asrtm_.find_best_operating_point();
  if (robustness_.oscillation_watchdog) chosen = watchdog_.filter(chosen);
  const bool changed = !has_selection_ || chosen != current_op_;
  current_op_ = chosen;
  has_selection_ = true;
  span.set_arg("op", static_cast<std::int64_t>(chosen));
  static Counter& decisions = MetricsRegistry::global().counter("asrtm.decisions");
  decisions.add(1);
  if (changed) {
    static Counter& switches = MetricsRegistry::global().counter("asrtm.switches");
    switches.add(1);
  }
  const auto op = asrtm_.knowledge()[chosen];
  SOCRATES_REQUIRE_MSG(knobs.size() == op.knobs.size(),
                       "knob buffer has " << knobs.size() << " entries, expected "
                                          << op.knobs.size());
  // Elementwise copy from the SoA knob row: no per-update allocation.
  std::copy(op.knobs.begin(), op.knobs.end(), knobs.begin());
  return changed;
}

void Context::start_monitors() {
  time_monitor_.start();
  power_monitor_.start();
  energy_monitor_.start();
}

void Context::cancel_monitors() {
  time_monitor_.cancel();
  power_monitor_.cancel();
  energy_monitor_.cancel();
}

void Context::report_variant_crash() {
  SOCRATES_REQUIRE_MSG(has_selection_, "report_variant_crash() before any update()");
  if (robustness_.variant_quarantine) asrtm_.report_variant_failure(current_op_);
}

std::string Context::log() const {
  std::ostringstream os;
  os << "margot:";
  if (!has_selection_) {
    os << " no operating point selected yet";
    return os.str();
  }
  const auto op = asrtm_.knowledge()[current_op_];
  os << " op#" << current_op_ << " knobs=[";
  for (std::size_t k = 0; k < op.knobs.size(); ++k) {
    if (k > 0) os << ',';
    os << op.knobs[k];
  }
  os << ']';
  if (!time_monitor_.stats().empty()) {
    os << " time=" << format_double(time_monitor_.stats().last() * 1e3, 1) << "ms";
    os << " power=" << format_double(power_monitor_.stats().last(), 1) << "W";
  }
  os << " corr(t,P)=" << format_double(asrtm_.correction(ContextMetrics::kExecTime), 3)
     << "," << format_double(asrtm_.correction(ContextMetrics::kPower), 3);
  if (asrtm_.quarantined_count() > 0)
    os << " quarantined=" << asrtm_.quarantined_count();
  return os.str();
}

void Context::send_feedback_checked(std::size_t metric, double observed,
                                    bool rejected) {
  // send_feedback requires a positive, finite observation; anything
  // else (or a sample the hardened monitor rejected) is skipped.
  if (rejected || !std::isfinite(observed) || observed <= 0.0) return;
  asrtm_.send_feedback(current_op_, metric, observed);
}

void Context::stop_monitors() {
  SOCRATES_REQUIRE_MSG(has_selection_, "stop_monitors() before any update()");
  const double elapsed = time_monitor_.stop();
  const double watts = power_monitor_.stop();
  energy_monitor_.stop();

  if (robustness_.variant_quarantine && std::isfinite(elapsed) && elapsed > 0.0) {
    // Acceptance test against the (corrected) expectation: a runaway
    // run means the clone returned garbage, not that the platform
    // drifted eight-fold in one iteration.
    const double expected = asrtm_.knowledge()[current_op_].metrics[ContextMetrics::kExecTime].mean *
                            asrtm_.correction(ContextMetrics::kExecTime);
    if (expected > 0.0 && elapsed > robustness_.runaway_factor * expected) {
      asrtm_.report_variant_failure(current_op_);
      return;  // a garbage run must not steer the corrections
    }
    asrtm_.report_variant_success(current_op_);
  }

  send_feedback_checked(ContextMetrics::kExecTime, elapsed,
                        time_monitor_.last_rejected());
  send_feedback_checked(ContextMetrics::kPower, watts, power_monitor_.last_rejected());
  if (std::isfinite(elapsed) && elapsed > 0.0)
    send_feedback_checked(ContextMetrics::kThroughput, 1.0 / elapsed,
                          time_monitor_.last_rejected());
}

}  // namespace socrates::margot
