#include "margot/context.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::margot {

std::vector<std::string> ContextMetrics::names() {
  return {"exec_time_s", "power_w", "throughput"};
}

Context::Context(KnowledgeBase knowledge, const platform::Clock& clock,
                 const platform::EnergyCounter& energy, std::size_t monitor_window)
    : asrtm_([&] {
        SOCRATES_REQUIRE_MSG(knowledge.metric_names() == ContextMetrics::names(),
                             "Context requires the (exec_time_s, power_w, throughput) "
                             "metric schema");
        return Asrtm(std::move(knowledge));
      }()),
      time_monitor_(clock, monitor_window),
      power_monitor_(clock, energy, monitor_window),
      energy_monitor_(energy, monitor_window) {}

bool Context::update(std::vector<int>& knobs) {
  const std::size_t chosen = asrtm_.find_best_operating_point();
  const bool changed = !has_selection_ || chosen != current_op_;
  current_op_ = chosen;
  has_selection_ = true;
  const OperatingPoint& op = asrtm_.knowledge()[chosen];
  SOCRATES_REQUIRE_MSG(knobs.size() == op.knobs.size(),
                       "knob buffer has " << knobs.size() << " entries, expected "
                                          << op.knobs.size());
  knobs = op.knobs;
  return changed;
}

void Context::start_monitors() {
  time_monitor_.start();
  power_monitor_.start();
  energy_monitor_.start();
}

std::string Context::log() const {
  std::ostringstream os;
  os << "margot:";
  if (!has_selection_) {
    os << " no operating point selected yet";
    return os.str();
  }
  const OperatingPoint& op = asrtm_.knowledge()[current_op_];
  os << " op#" << current_op_ << " knobs=[";
  for (std::size_t k = 0; k < op.knobs.size(); ++k) {
    if (k > 0) os << ',';
    os << op.knobs[k];
  }
  os << ']';
  if (!time_monitor_.stats().empty()) {
    os << " time=" << format_double(time_monitor_.stats().last() * 1e3, 1) << "ms";
    os << " power=" << format_double(power_monitor_.stats().last(), 1) << "W";
  }
  os << " corr(t,P)=" << format_double(asrtm_.correction(ContextMetrics::kExecTime), 3)
     << "," << format_double(asrtm_.correction(ContextMetrics::kPower), 3);
  return os.str();
}

void Context::stop_monitors() {
  SOCRATES_REQUIRE_MSG(has_selection_, "stop_monitors() before any update()");
  const double elapsed = time_monitor_.stop();
  const double watts = power_monitor_.stop();
  energy_monitor_.stop();

  asrtm_.send_feedback(current_op_, ContextMetrics::kExecTime, elapsed);
  asrtm_.send_feedback(current_op_, ContextMetrics::kPower, watts);
  asrtm_.send_feedback(current_op_, ContextMetrics::kThroughput, 1.0 / elapsed);
}

}  // namespace socrates::margot
