#include "margot/state_manager.hpp"

#include "support/error.hpp"

namespace socrates::margot {

StateManager::StateManager(Asrtm& asrtm) : asrtm_(asrtm) {}

void StateManager::define_state(const std::string& name,
                                std::vector<Constraint> constraints, Rank rank) {
  SOCRATES_REQUIRE(!name.empty());
  for (const auto& s : states_)
    SOCRATES_REQUIRE_MSG(s.name != name, "state '" << name << "' already defined");
  states_.push_back(State{name, std::move(constraints), std::move(rank)});
  if (!has_active_) {
    active_ = 0;
    has_active_ = true;
    apply(states_.front());
  }
}

StateManager::State& StateManager::find(const std::string& name) {
  for (auto& s : states_)
    if (s.name == name) return s;
  SOCRATES_REQUIRE_MSG(false, "unknown state '" << name << "'");
  return states_.front();  // unreachable
}

void StateManager::apply(const State& state) {
  asrtm_.clear_constraints();
  for (const auto& c : state.constraints) asrtm_.add_constraint(c);
  asrtm_.set_rank(state.rank);
  // Override the per-mutation notes with the state switch that caused
  // them (the journal keeps the last note before the next decision).
  if (asrtm_.decision_journal_enabled())
    asrtm_.note_decision_trigger("state '" + state.name + "' activated");
  asrtm_.record_state_activation(state.name);
}

bool StateManager::switch_to(const std::string& name) {
  State& target = find(name);
  const auto index = static_cast<std::size_t>(&target - states_.data());
  if (has_active_ && index == active_) return false;
  active_ = index;
  has_active_ = true;
  apply(target);
  return true;
}

const std::string& StateManager::active_state() const {
  SOCRATES_REQUIRE_MSG(has_active_, "no state defined yet");
  return states_[active_].name;
}

std::vector<std::string> StateManager::state_names() const {
  std::vector<std::string> names;
  names.reserve(states_.size());
  for (const auto& s : states_) names.push_back(s.name);
  return names;
}

void StateManager::set_state_constraint_goal(const std::string& name, std::size_t index,
                                             double goal) {
  State& state = find(name);
  SOCRATES_REQUIRE(index < state.constraints.size());
  state.constraints[index].goal = goal;
  // On the active state, update just that goal in place: apply() would
  // rebuild every constraint and re-emit a spurious state activation.
  // Constraint handles equal positions because apply() adds them in
  // order starting from a cleared AS-RTM.
  if (has_active_ && &state == &states_[active_])
    asrtm_.set_constraint_goal(index, goal);
}

}  // namespace socrates::margot
