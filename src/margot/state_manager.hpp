// Named optimization states.
//
// In mARGOt an application defines several *states* at design time —
// each a complete requirement set (constraints + rank) — and switches
// between them at runtime ("the definition of application requirements
// might change at runtime", Section II).  Figure 5's policy switch is
// exactly a state switch: "energy" (maximize Thr/W^2) to "performance"
// (maximize Thr) and back.  The manager drives an existing AS-RTM:
// switching replaces its constraints and rank while the feedback
// corrections — knowledge about the *platform*, not the requirements —
// survive the switch.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "margot/asrtm.hpp"

namespace socrates::margot {

class StateManager {
 public:
  /// The manager drives (and must not outlive) `asrtm`.
  explicit StateManager(Asrtm& asrtm);

  /// Registers a state; names are unique.  The first defined state is
  /// activated immediately.
  void define_state(const std::string& name, std::vector<Constraint> constraints,
                    Rank rank);

  /// Activates a registered state (no-op when already active).
  /// Returns true when the active state actually changed.
  bool switch_to(const std::string& name);

  const std::string& active_state() const;
  std::size_t state_count() const { return states_.size(); }
  std::vector<std::string> state_names() const;

  /// Updates the goal of the `index`-th constraint of a (possibly
  /// inactive) state; applied immediately when the state is active.
  void set_state_constraint_goal(const std::string& name, std::size_t index,
                                 double goal);

 private:
  struct State {
    std::string name;
    std::vector<Constraint> constraints;
    Rank rank;
  };

  State& find(const std::string& name);
  void apply(const State& state);

  Asrtm& asrtm_;
  std::vector<State> states_;
  std::size_t active_ = 0;
  bool has_active_ = false;
};

}  // namespace socrates::margot
