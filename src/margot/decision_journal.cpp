#include "margot/decision_journal.hpp"

#include <ostream>

#include "support/error.hpp"

namespace socrates::margot {

DecisionJournal::DecisionJournal(std::size_t max_records)
    : max_records_(max_records) {
  SOCRATES_REQUIRE_MSG(max_records >= 1,
                       "DecisionJournal: max_records must be >= 1");
}

void DecisionJournal::append(DecisionRecord record) {
  record.sequence = next_sequence_++;
  records_.push_back(std::move(record));
  if (records_.size() > max_records_) records_.pop_front();
}

const DecisionRecord& DecisionJournal::back() const {
  SOCRATES_REQUIRE_MSG(!records_.empty(), "DecisionJournal: journal is empty");
  return records_.back();
}

void DecisionJournal::clear() {
  records_.clear();
  next_sequence_ = 0;
}

void DecisionJournal::dump(std::ostream& out) const {
  out << "decision journal: " << next_sequence_ << " switch(es), "
      << records_.size() << " retained, " << dropped() << " dropped\n";
  for (const auto& r : records_) {
    out << "[#" << r.sequence << " t=" << r.timestamp_s << "s] op " << r.chosen
        << " score=" << r.chosen_score << " epoch=" << r.epoch
        << (r.feasible ? "" : " (infeasible: constraints relaxed)")
        << "\n  trigger: " << r.trigger << '\n';
    if (!r.rejected.empty()) {
      out << "  rejected:";
      for (const auto& c : r.rejected)
        out << " op" << c.op_index << "(score=" << c.score << ')';
      out << '\n';
    }
    if (!r.quarantined.empty()) {
      out << "  quarantined:";
      for (const auto q : r.quarantined) out << " op" << q;
      out << '\n';
    }
  }
}

}  // namespace socrates::margot
