#include "margot/asrtm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "observability/metrics.hpp"
#include "support/error.hpp"

namespace socrates::margot {

Asrtm::Asrtm(KnowledgeBase knowledge) : knowledge_(std::move(knowledge)) {
  SOCRATES_REQUIRE_MSG(!knowledge_.empty(),
                       "AS-RTM needs at least one operating point");
  corrections_.assign(knowledge_.metric_names().size(), 1.0);
  health_.assign(knowledge_.size(), OpHealth{});
  // Default rank: minimize the first metric (callers normally override).
  rank_ = Rank{RankDirection::kMinimize, {{0, 1.0}}};
}

std::size_t Asrtm::add_constraint(Constraint constraint) {
  SOCRATES_REQUIRE(constraint.metric < knowledge_.metric_names().size());
  SOCRATES_REQUIRE(constraint.confidence >= 0.0);
  constraints_.push_back(constraint);
  if (journal_) {
    std::ostringstream note;
    note << "constraint " << constraints_.size() - 1 << " added on metric '"
         << knowledge_.metric_names()[constraint.metric] << "' goal "
         << constraint.goal;
    note_decision_trigger(note.str());
  }
  return constraints_.size() - 1;
}

void Asrtm::set_constraint_goal(std::size_t handle, double goal) {
  SOCRATES_REQUIRE(handle < constraints_.size());
  constraints_[handle].goal = goal;
  if (journal_) {
    std::ostringstream note;
    note << "constraint " << handle << " goal -> " << goal;
    note_decision_trigger(note.str());
  }
}

void Asrtm::clear_constraints() {
  constraints_.clear();
  if (journal_) note_decision_trigger("constraints cleared");
}

void Asrtm::set_rank(Rank rank) {
  for (const auto& term : rank.terms)
    SOCRATES_REQUIRE(term.metric < knowledge_.metric_names().size());
  rank_ = std::move(rank);
  if (journal_) note_decision_trigger("rank changed");
}

double Asrtm::expected(const OperatingPoint& op, std::size_t m) const {
  return op.metrics[m].mean * corrections_[m];
}

double Asrtm::constraint_value(const OperatingPoint& op, const Constraint& c) const {
  const double mean = expected(op, c.metric);
  const double margin = c.confidence * op.metrics[c.metric].stddev * corrections_[c.metric];
  // Pessimistic direction: upper bound for "<" goals, lower for ">".
  const bool upper =
      c.op == ComparisonOp::kLess || c.op == ComparisonOp::kLessEqual;
  return upper ? mean + margin : mean - margin;
}

double Asrtm::violation(const OperatingPoint& op, const Constraint& c) const {
  const double value = constraint_value(op, c);
  if (compare(value, c.op, c.goal)) return 0.0;
  return std::abs(value - c.goal);
}

std::size_t Asrtm::find_best_operating_point() const {
  // Work on indices; quarantined points are excluded up front, then
  // constraints apply from highest priority (lowest number) to lowest.
  std::vector<std::size_t> candidates;
  candidates.reserve(knowledge_.size());
  for (std::size_t i = 0; i < knowledge_.size(); ++i)
    if (!is_quarantined(i)) candidates.push_back(i);

  if (candidates.empty()) {
    // Every clone is quarantined: fall back to the historically safest
    // point (fewest quarantines, then shortest remaining cooldown) so
    // the application keeps making progress.
    std::size_t safest = 0;
    for (std::size_t i = 1; i < health_.size(); ++i) {
      const OpHealth& a = health_[i];
      const OpHealth& b = health_[safest];
      if (a.times_quarantined < b.times_quarantined ||
          (a.times_quarantined == b.times_quarantined && a.cooldown < b.cooldown))
        safest = i;
    }
    last_feasible_ = false;
    if (journal_)
      journal_switch(safest, rank_.evaluate(knowledge_[safest], corrections_), {});
    return safest;
  }

  std::vector<const Constraint*> ordered;
  ordered.reserve(constraints_.size());
  for (const auto& c : constraints_) ordered.push_back(&c);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Constraint* a, const Constraint* b) {
                     return a->priority < b->priority;
                   });

  last_feasible_ = true;
  for (const Constraint* c : ordered) {
    std::vector<std::size_t> satisfying;
    for (const std::size_t i : candidates)
      if (violation(knowledge_[i], *c) == 0.0) satisfying.push_back(i);

    if (!satisfying.empty()) {
      candidates = std::move(satisfying);
      continue;
    }

    // Infeasible under this constraint: keep the least-violating points
    // (mARGOt's graceful degradation) and continue with lower-priority
    // constraints among them.
    last_feasible_ = false;
    double min_violation = std::numeric_limits<double>::infinity();
    for (const std::size_t i : candidates)
      min_violation = std::min(min_violation, violation(knowledge_[i], *c));
    std::vector<std::size_t> least;
    for (const std::size_t i : candidates) {
      // Tolerate tiny FP differences when comparing violations.
      if (violation(knowledge_[i], *c) <= min_violation * (1.0 + 1e-12))
        least.push_back(i);
    }
    candidates = std::move(least);
  }
  SOCRATES_ENSURE(!candidates.empty());

  // Rank among the survivors.
  std::size_t best = candidates.front();
  double best_value = rank_.evaluate(knowledge_[best], corrections_);
  std::vector<DecisionCandidate> scored;
  if (journal_) {
    scored.reserve(candidates.size());
    scored.push_back({best, best_value});
  }
  for (std::size_t k = 1; k < candidates.size(); ++k) {
    const std::size_t i = candidates[k];
    const double value = rank_.evaluate(knowledge_[i], corrections_);
    if (journal_) scored.push_back({i, value});
    const bool better = rank_.direction == RankDirection::kMaximize
                            ? value > best_value
                            : value < best_value;
    if (better) {
      best = i;
      best_value = value;
    }
  }
  if (journal_) {
    scored.erase(std::remove_if(scored.begin(), scored.end(),
                                [best](const DecisionCandidate& c) {
                                  return c.op_index == best;
                                }),
                 scored.end());
    journal_switch(best, best_value, std::move(scored));
  }
  return best;
}

// ---- decision journal ------------------------------------------------------

void Asrtm::enable_decision_journal(std::size_t max_records) {
  journal_ = std::make_unique<DecisionJournal>(max_records);
  pending_trigger_.clear();
  journal_has_last_ = false;
}

void Asrtm::disable_decision_journal() { journal_.reset(); }

const DecisionJournal& Asrtm::decision_journal() const {
  SOCRATES_REQUIRE_MSG(journal_ != nullptr,
                       "decision journal is not enabled (call "
                       "enable_decision_journal first)");
  return *journal_;
}

void Asrtm::set_decision_time(double seconds) { journal_now_ = seconds; }

void Asrtm::note_decision_trigger(std::string trigger) {
  pending_trigger_ = std::move(trigger);
}

void Asrtm::journal_switch(std::size_t chosen, double chosen_score,
                           std::vector<DecisionCandidate> others) const {
  const bool switched = !journal_has_last_ || chosen != journal_last_op_;
  journal_last_op_ = chosen;
  journal_has_last_ = true;
  if (!switched) return;

  DecisionRecord record;
  record.timestamp_s = journal_now_;
  if (!pending_trigger_.empty())
    record.trigger = std::exchange(pending_trigger_, {});
  else if (journal_->total_decisions() == 0)
    record.trigger = "initial selection";
  else
    record.trigger = "feedback/quarantine drift";
  record.chosen = chosen;
  record.chosen_score = chosen_score;
  record.feasible = last_feasible_;

  // Keep the few best runners-up, ordered best-first under the rank.
  const bool maximize = rank_.direction == RankDirection::kMaximize;
  std::stable_sort(others.begin(), others.end(),
                   [maximize](const DecisionCandidate& a, const DecisionCandidate& b) {
                     return maximize ? a.score > b.score : a.score < b.score;
                   });
  constexpr std::size_t kMaxRejected = 3;
  if (others.size() > kMaxRejected) others.resize(kMaxRejected);
  record.rejected = std::move(others);

  for (std::size_t i = 0; i < health_.size(); ++i)
    if (health_[i].cooldown > 0) record.quarantined.push_back(i);

  journal_->append(std::move(record));
  MetricsRegistry::global().counter("asrtm.journal_records").add(1);
}

void Asrtm::send_feedback(std::size_t op_index, std::size_t metric, double observed) {
  SOCRATES_REQUIRE(op_index < knowledge_.size());
  SOCRATES_REQUIRE(metric < corrections_.size());
  SOCRATES_REQUIRE(observed > 0.0);
  const double predicted = knowledge_[op_index].metrics[metric].mean;
  SOCRATES_REQUIRE_MSG(predicted > 0.0, "cannot adapt a zero-mean metric");
  const double instant_ratio = observed / predicted;
  corrections_[metric] =
      (1.0 - feedback_alpha_) * corrections_[metric] + feedback_alpha_ * instant_ratio;
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kFeedback;
  event.op = op_index;
  event.metric = metric;
  event.value = observed;
  emit(event);
}

double Asrtm::correction(std::size_t metric) const {
  SOCRATES_REQUIRE(metric < corrections_.size());
  return corrections_[metric];
}

void Asrtm::reset_feedback() { corrections_.assign(corrections_.size(), 1.0); }

void Asrtm::set_feedback_inertia(double alpha) {
  SOCRATES_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  feedback_alpha_ = alpha;
}

// ---- variant-fault quarantine ----------------------------------------------

void Asrtm::set_quarantine_options(QuarantineOptions options) {
  SOCRATES_REQUIRE(options.failure_threshold >= 1);
  SOCRATES_REQUIRE(options.base_cooldown >= 1);
  SOCRATES_REQUIRE(options.max_cooldown >= options.base_cooldown);
  quarantine_ = options;
}

void Asrtm::quarantine_op(OpHealth& health) {
  // Exponential backoff: double the cooldown on every re-quarantine.
  const std::size_t shift = std::min<std::size_t>(health.times_quarantined, 32);
  const std::size_t cooldown = quarantine_.base_cooldown << shift;
  health.cooldown = std::min(cooldown, quarantine_.max_cooldown);
  ++health.times_quarantined;
  health.consecutive_failures = 0;
  health.probing = false;
  ++quarantine_events_;
  static Counter& quarantines =
      MetricsRegistry::global().counter("asrtm.quarantine_events");
  quarantines.add(1);
}

void Asrtm::report_variant_failure(std::size_t op_index) {
  SOCRATES_REQUIRE(op_index < health_.size());
  OpHealth& health = health_[op_index];
  ++health.consecutive_failures;
  // A failure during the post-cooldown probe re-quarantines at once.
  if (health.probing || health.consecutive_failures >= quarantine_.failure_threshold)
    quarantine_op(health);
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kVariantFailure;
  event.op = op_index;
  emit(event);
}

void Asrtm::report_variant_success(std::size_t op_index) {
  SOCRATES_REQUIRE(op_index < health_.size());
  OpHealth& health = health_[op_index];
  health.consecutive_failures = 0;
  health.probing = false;
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kVariantSuccess;
  event.op = op_index;
  emit(event);
}

void Asrtm::advance_quarantine() {
  for (OpHealth& health : health_) {
    if (health.cooldown == 0) continue;
    if (--health.cooldown == 0) health.probing = true;
  }
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kQuarantineAdvance;
  emit(event);
}

// ---- crash-safe knowledge (checkpoint/restore) -----------------------------

void Asrtm::emit(const RuntimeEvent& event) const {
  if (event_sink_ && !replaying_) event_sink_(event);
}

Asrtm::Snapshot Asrtm::snapshot() const {
  Snapshot snap;
  snap.corrections = corrections_;
  snap.feedback_alpha = feedback_alpha_;
  snap.quarantine = quarantine_;
  snap.health.reserve(health_.size());
  for (const OpHealth& h : health_) {
    Snapshot::OpHealthState s;
    s.consecutive_failures = h.consecutive_failures;
    s.times_quarantined = h.times_quarantined;
    s.cooldown = h.cooldown;
    s.probing = h.probing;
    snap.health.push_back(s);
  }
  snap.quarantine_events = quarantine_events_;
  return snap;
}

void Asrtm::restore(const Snapshot& snapshot) {
  SOCRATES_REQUIRE_MSG(snapshot.corrections.size() == corrections_.size(),
                       "snapshot metric count does not match the knowledge base");
  SOCRATES_REQUIRE_MSG(snapshot.health.size() == health_.size(),
                       "snapshot operating-point count does not match the "
                       "knowledge base");
  SOCRATES_REQUIRE(snapshot.feedback_alpha > 0.0 && snapshot.feedback_alpha <= 1.0);
  SOCRATES_REQUIRE(snapshot.quarantine.failure_threshold >= 1);
  SOCRATES_REQUIRE(snapshot.quarantine.base_cooldown >= 1);
  SOCRATES_REQUIRE(snapshot.quarantine.max_cooldown >=
                   snapshot.quarantine.base_cooldown);
  corrections_ = snapshot.corrections;
  feedback_alpha_ = snapshot.feedback_alpha;
  quarantine_ = snapshot.quarantine;
  for (std::size_t i = 0; i < health_.size(); ++i) {
    health_[i].consecutive_failures = snapshot.health[i].consecutive_failures;
    health_[i].times_quarantined = snapshot.health[i].times_quarantined;
    health_[i].cooldown = snapshot.health[i].cooldown;
    health_[i].probing = snapshot.health[i].probing;
  }
  quarantine_events_ = snapshot.quarantine_events;
}

void Asrtm::set_event_sink(std::function<void(const RuntimeEvent&)> sink) {
  event_sink_ = std::move(sink);
}

void Asrtm::replay(const RuntimeEvent& event) {
  replaying_ = true;
  // The mutators validate their arguments; a corrupted journal line that
  // slipped past the checksum must not crash, so the caller (checkpoint
  // layer) catches ContractViolation and skips the record.
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{replaying_};
  switch (event.kind) {
    case RuntimeEvent::Kind::kFeedback:
      send_feedback(event.op, event.metric, event.value);
      break;
    case RuntimeEvent::Kind::kVariantFailure:
      report_variant_failure(event.op);
      break;
    case RuntimeEvent::Kind::kVariantSuccess:
      report_variant_success(event.op);
      break;
    case RuntimeEvent::Kind::kQuarantineAdvance:
      advance_quarantine();
      break;
    case RuntimeEvent::Kind::kStateActivation:
      // Requirements live in the StateManager; the checkpoint layer
      // tracks the last activation and returns it to the application.
      break;
  }
}

void Asrtm::record_state_activation(const std::string& name) {
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kStateActivation;
  event.name = name;
  emit(event);
}

bool Asrtm::is_quarantined(std::size_t op_index) const {
  SOCRATES_REQUIRE(op_index < health_.size());
  return health_[op_index].cooldown > 0;
}

std::size_t Asrtm::quarantined_count() const {
  std::size_t n = 0;
  for (const OpHealth& health : health_)
    if (health.cooldown > 0) ++n;
  return n;
}

// ---- OscillationWatchdog ---------------------------------------------------

OscillationWatchdog::OscillationWatchdog() : OscillationWatchdog(Options()) {}

OscillationWatchdog::OscillationWatchdog(Options options) : options_(options) {
  SOCRATES_REQUIRE(options.window >= 1);
  SOCRATES_REQUIRE(options.max_switches >= 1);
  SOCRATES_REQUIRE(options.hold_iterations >= 1);
  switch_ring_.assign(options.window, false);
}

std::size_t OscillationWatchdog::filter(std::size_t chosen) {
  if (!has_applied_) {
    has_applied_ = true;
    applied_ = chosen;
    return chosen;
  }
  if (hold_remaining_ > 0) {
    --hold_remaining_;
    switch_ring_[ring_next_] = false;
    ring_next_ = (ring_next_ + 1) % options_.window;
    return applied_;
  }
  const bool switched = chosen != applied_;
  switch_ring_[ring_next_] = switched;
  ring_next_ = (ring_next_ + 1) % options_.window;
  if (switched) {
    std::size_t switches = 0;
    for (const bool s : switch_ring_)
      if (s) ++switches;
    if (switches > options_.max_switches) {
      // Thrashing: suppress this switch and hold the applied point.
      ++trips_;
      hold_remaining_ = options_.hold_iterations;
      return applied_;
    }
  }
  applied_ = chosen;
  return chosen;
}

void OscillationWatchdog::reset() {
  switch_ring_.assign(options_.window, false);
  ring_next_ = 0;
  has_applied_ = false;
  hold_remaining_ = 0;
}

}  // namespace socrates::margot
