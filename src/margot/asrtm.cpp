#include "margot/asrtm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "observability/metrics.hpp"
#include "support/error.hpp"

namespace socrates::margot {

#if SOCRATES_ASRTM_REENTRANCY_GUARD
namespace {
/// Debug-build detector for overlapping calls on one instance: the
/// first frame to enter wins the flag; a second, overlapping entry
/// (reentrant event sink, or a second thread sneaking past the owner's
/// lock) throws before it can corrupt the mutable scratch state.  The
/// throwing constructor never runs the destructor, so the owner frame
/// keeps the flag until it unwinds.
struct ReentrancyGuard {
  std::atomic<int>& flag;
  ReentrancyGuard(std::atomic<int>& f, const char* what) : flag(f) {
    SOCRATES_REQUIRE_MSG(flag.exchange(1, std::memory_order_acq_rel) == 0,
                         "AS-RTM reentrancy: " << what
                             << " called while another engine call is "
                                "in progress on this instance");
  }
  ~ReentrancyGuard() { flag.store(0, std::memory_order_release); }
};
}  // namespace
#define SOCRATES_ASRTM_GUARD(what) \
  ReentrancyGuard reentrancy_guard_(engine_busy_.flag, what)
#else
#define SOCRATES_ASRTM_GUARD(what) \
  do {                             \
  } while (false)
#endif

Asrtm::Asrtm(KnowledgeBase knowledge) : knowledge_(std::move(knowledge)) {
  SOCRATES_REQUIRE_MSG(!knowledge_.empty(),
                       "AS-RTM needs at least one operating point");
  corrections_.assign(knowledge_.metric_names().size(), 1.0);
  applied_corrections_ = corrections_;
  correction_versions_.assign(corrections_.size(), 0);
  health_.assign(knowledge_.size(), OpHealth{});
  scratch_alive_.assign(knowledge_.size(), 1);
  scratch_violations_.assign(knowledge_.size(), 0.0);
  // Default rank: minimize the first metric (callers normally override).
  rank_ = Rank{RankDirection::kMinimize, {{0, 1.0}}};
}

std::size_t Asrtm::add_constraint(Constraint constraint) {
  SOCRATES_ASRTM_GUARD("add_constraint");
  SOCRATES_REQUIRE(constraint.metric < knowledge_.metric_names().size());
  SOCRATES_REQUIRE(constraint.confidence >= 0.0);
  const std::size_t handle = constraints_.size();
  constraints_.push_back(constraint);
  columns_.emplace_back();
  // Keep the priority view sorted at mutation time (stable: a new
  // constraint goes after existing ones of the same priority), so a
  // decision never re-sorts.
  const auto pos = std::upper_bound(
      sorted_constraints_.begin(), sorted_constraints_.end(), constraint.priority,
      [this](int priority, std::size_t index) {
        return priority < constraints_[index].priority;
      });
  sorted_constraints_.insert(pos, handle);
  touch_decision();
  if (journal_) {
    std::ostringstream note;
    note << "constraint " << handle << " added on metric '"
         << knowledge_.metric_names()[constraint.metric] << "' goal "
         << constraint.goal;
    note_decision_trigger(note.str());
  }
  return handle;
}

void Asrtm::set_constraint_goal(std::size_t handle, double goal) {
  SOCRATES_ASRTM_GUARD("set_constraint_goal");
  SOCRATES_REQUIRE(handle < constraints_.size());
  constraints_[handle].goal = goal;
  // The cached column holds constraint_value (goal-independent): only
  // the epoch is dirtied, the column stays valid.
  touch_decision();
  if (journal_) {
    std::ostringstream note;
    note << "constraint " << handle << " goal -> " << goal;
    note_decision_trigger(note.str());
  }
}

void Asrtm::clear_constraints() {
  SOCRATES_ASRTM_GUARD("clear_constraints");
  constraints_.clear();
  columns_.clear();
  sorted_constraints_.clear();
  touch_decision();
  if (journal_) note_decision_trigger("constraints cleared");
}

void Asrtm::set_rank(Rank rank) {
  SOCRATES_ASRTM_GUARD("set_rank");
  for (const auto& term : rank.terms)
    SOCRATES_REQUIRE(term.metric < knowledge_.metric_names().size());
  rank_ = std::move(rank);
  rank_column_.valid = false;
  touch_decision();
  if (journal_) note_decision_trigger("rank changed");
}

double Asrtm::expected(std::size_t op, std::size_t m) const {
  return knowledge_.metric_means(m)[op] * corrections_[m];
}

double Asrtm::constraint_value(std::size_t op, const Constraint& c) const {
  const double mean = expected(op, c.metric);
  const double margin =
      c.confidence * knowledge_.metric_stddevs(c.metric)[op] * corrections_[c.metric];
  // Pessimistic direction: upper bound for "<" goals, lower for ">".
  const bool upper =
      c.op == ComparisonOp::kLess || c.op == ComparisonOp::kLessEqual;
  return upper ? mean + margin : mean - margin;
}

double Asrtm::violation(std::size_t op, const Constraint& c) const {
  const double value = constraint_value(op, c);
  if (compare(value, c.op, c.goal)) return 0.0;
  return std::abs(value - c.goal);
}

namespace {

/// Bounded best-first buffer for the journal's runners-up: the chosen
/// point plus up to kMaxRejected others, maintained by stable insertion
/// (equal scores keep arrival order) so its contents match what a
/// stable sort of all scored candidates would put first.
constexpr std::size_t kMaxRejected = 3;

struct TopCandidates {
  std::array<DecisionCandidate, kMaxRejected + 1> entries;
  std::size_t count = 0;

  void insert(DecisionCandidate candidate, bool maximize) {
    std::size_t pos = count;
    while (pos > 0) {
      const double prev = entries[pos - 1].score;
      const bool prev_not_worse =
          maximize ? prev >= candidate.score : prev <= candidate.score;
      if (prev_not_worse) break;
      --pos;
    }
    if (pos >= entries.size()) return;  // worse than every kept entry
    const std::size_t last = std::min(count, entries.size() - 1);
    for (std::size_t j = last; j > pos; --j) entries[j] = entries[j - 1];
    entries[pos] = candidate;
    if (count < entries.size()) ++count;
  }
};

}  // namespace

std::size_t Asrtm::find_best_operating_point() const {
  SOCRATES_ASRTM_GUARD("find_best_operating_point");
  if (cache_enabled_ && decided_epoch_ == decision_epoch_) {
    // Nothing that feeds the decision changed: O(1), allocation-free.
    last_decision_cached_ = true;
    last_feasible_ = cached_feasible_;
    // A trigger note explains exactly one decision; a cached decision
    // cannot switch, so the note is consumed (discarded) here too.
    if (journal_) pending_trigger_.clear();
    static Counter& cached =
        MetricsRegistry::global().counter("asrtm.decisions_cached");
    cached.add(1);
    return cached_best_;
  }
  last_decision_cached_ = false;
  const std::size_t best = cache_enabled_ ? decide_incremental() : decide_brute();
  decided_epoch_ = decision_epoch_;
  cached_best_ = best;
  cached_feasible_ = last_feasible_;
  return best;
}

std::size_t Asrtm::fallback_safest(const std::vector<double>& corrections) const {
  // Every clone is quarantined: fall back to the historically safest
  // point (fewest quarantines, then shortest remaining cooldown) so
  // the application keeps making progress.
  std::size_t safest = 0;
  for (std::size_t i = 1; i < health_.size(); ++i) {
    const OpHealth& a = health_[i];
    const OpHealth& b = health_[safest];
    if (a.times_quarantined < b.times_quarantined ||
        (a.times_quarantined == b.times_quarantined && a.cooldown < b.cooldown))
      safest = i;
  }
  last_feasible_ = false;
  if (journal_)
    journal_switch(safest, rank_.evaluate(knowledge_, safest, corrections), {});
  return safest;
}

const std::vector<double>& Asrtm::constraint_column(std::size_t handle) const {
  ConstraintColumn& column = columns_[handle];
  const Constraint& c = constraints_[handle];
  if (!column.valid || column.correction_version != correction_versions_[c.metric]) {
    const std::size_t n = knowledge_.size();
    column.values.resize(n);
    const double correction = applied_corrections_[c.metric];
    const bool upper =
        c.op == ComparisonOp::kLess || c.op == ComparisonOp::kLessEqual;
    const double confidence = c.confidence;
    // Straight-line streaming over the SoA metric columns: both inputs
    // and the output are contiguous doubles, no per-point indirection.
    const double* means = knowledge_.metric_means(c.metric);
    const double* stddevs = knowledge_.metric_stddevs(c.metric);
    double* out = column.values.data();
    if (upper) {
      for (std::size_t i = 0; i < n; ++i) {
        const double mean = means[i] * correction;
        const double margin = confidence * stddevs[i] * correction;
        out[i] = mean + margin;
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const double mean = means[i] * correction;
        const double margin = confidence * stddevs[i] * correction;
        out[i] = mean - margin;
      }
    }
    column.valid = true;
    column.correction_version = correction_versions_[c.metric];
    static Counter& recomputed =
        MetricsRegistry::global().counter("asrtm.columns_recomputed");
    recomputed.add(1);
    static Counter& rows =
        MetricsRegistry::global().counter("asrtm.simd_rows_evaluated");
    rows.add(n);
  }
  return column.values;
}

const std::vector<double>& Asrtm::rank_column() const {
  RankColumn& column = rank_column_;
  bool fresh = column.valid && column.versions.size() == rank_.terms.size();
  if (fresh) {
    for (std::size_t t = 0; t < rank_.terms.size(); ++t)
      if (column.versions[t] != correction_versions_[rank_.terms[t].metric]) {
        fresh = false;
        break;
      }
  }
  if (!fresh) {
    const std::size_t n = knowledge_.size();
    column.values.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      column.values[i] = rank_.evaluate(knowledge_, i, applied_corrections_);
    column.versions.resize(rank_.terms.size());
    for (std::size_t t = 0; t < rank_.terms.size(); ++t)
      column.versions[t] = correction_versions_[rank_.terms[t].metric];
    column.valid = true;
    static Counter& recomputed =
        MetricsRegistry::global().counter("asrtm.rank_columns_recomputed");
    recomputed.add(1);
    static Counter& rows =
        MetricsRegistry::global().counter("asrtm.simd_rows_evaluated");
    rows.add(n);
  }
  return column.values;
}

std::size_t Asrtm::decide_incremental() const {
  // Dense, branchless sweep: instead of compacting surviving candidate
  // indices per constraint, every pass streams all n points and folds
  // the result into an alive mask.  The per-element work is a handful
  // of arithmetic ops and compares over contiguous doubles, which the
  // compiler can vectorize; semantics are proven bit-identical to
  // decide_brute() by the differential fuzz in asrtm_incremental_test.
  const std::size_t n = knowledge_.size();
  std::vector<unsigned char>& alive = scratch_alive_;
  std::vector<double>& violations = scratch_violations_;
  alive.resize(n);
  violations.resize(n);

  std::size_t alive_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ok = health_[i].cooldown == 0;
    alive[i] = ok;
    alive_count += ok;
  }
  if (alive_count == 0) return fallback_safest(applied_corrections_);

  std::uint64_t rows_swept = n;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  last_feasible_ = true;
  for (const std::size_t handle : sorted_constraints_) {
    const Constraint& c = constraints_[handle];
    const double* column = constraint_column(handle).data();
    const double goal = c.goal;
    // v = max(sign * (value - goal), 0): identical to the reference's
    // `compare(value, op, goal) ? 0 : abs(value - goal)` for all four
    // ComparisonOps — at value == goal both give exactly 0, and the
    // strict/non-strict distinction only moves points between "v == 0"
    // and "v == 0", never changes v.
    const bool upper =
        c.op == ComparisonOp::kLess || c.op == ComparisonOp::kLessEqual;
    const double sign = upper ? 1.0 : -1.0;
    for (std::size_t i = 0; i < n; ++i)
      violations[i] = std::max(sign * (column[i] - goal), 0.0);
    rows_swept += n;

    std::size_t satisfied = 0;
    for (std::size_t i = 0; i < n; ++i)
      satisfied += static_cast<std::size_t>(
          alive[i] & static_cast<unsigned char>(violations[i] == 0.0));
    if (satisfied != 0) {
      for (std::size_t i = 0; i < n; ++i)
        alive[i] = alive[i] & static_cast<unsigned char>(violations[i] == 0.0);
      alive_count = satisfied;
      continue;
    }
    // Infeasible under this constraint: keep the least-violating points
    // (mARGOt's graceful degradation) and continue with lower-priority
    // constraints among them.
    last_feasible_ = false;
    double min_violation = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = alive[i] ? violations[i] : kInf;
      min_violation = std::min(min_violation, v);
    }
    // Same arithmetic as violation_ties_minimum(), hoisted out of the
    // loop so the survivors pass is a single compare per point.
    const double tie_limit = min_violation + (1e-12 * min_violation + 1e-15);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char keep =
          alive[i] & static_cast<unsigned char>(violations[i] <= tie_limit);
      alive[i] = keep;
      kept += keep;
    }
    alive_count = kept;
  }
  SOCRATES_ENSURE(alive_count != 0);

  // Rank among the survivors, read from the cached rank column; the
  // journal's runners-up come from a bounded top-k pass.  The first
  // alive index seeds the scan and strictly-better comparison keeps the
  // lowest index on ties, matching the reference exactly.
  const std::vector<double>& ranks = rank_column();
  const bool maximize = rank_.direction == RankDirection::kMaximize;
  std::size_t best = 0;
  while (alive[best] == 0) ++best;
  double best_value = ranks[best];
  TopCandidates top;
  if (journal_) top.insert({best, best_value}, maximize);
  for (std::size_t i = best + 1; i < n; ++i) {
    if (alive[i] == 0) continue;
    const double value = ranks[i];
    if (journal_) top.insert({i, value}, maximize);
    const bool better = maximize ? value > best_value : value < best_value;
    if (better) {
      best = i;
      best_value = value;
    }
  }
  static Counter& rows =
      MetricsRegistry::global().counter("asrtm.simd_rows_evaluated");
  rows.add(rows_swept);
  if (journal_) {
    std::vector<DecisionCandidate> runners;
    runners.reserve(kMaxRejected);
    for (std::size_t j = 0; j < top.count; ++j)
      if (top.entries[j].op_index != best && runners.size() < kMaxRejected)
        runners.push_back(top.entries[j]);
    journal_switch(best, best_value, std::move(runners));
  }
  return best;
}

std::size_t Asrtm::decide_brute() const {
  // The retained reference implementation: identical semantics to
  // decide_incremental with none of the caching — per-call constraint
  // sort, violations recomputed from the exact corrections, runners-up
  // by full score + stable sort.  Differential tests drive both.
  std::vector<std::size_t> candidates;
  candidates.reserve(knowledge_.size());
  for (std::size_t i = 0; i < knowledge_.size(); ++i)
    if (!is_quarantined(i)) candidates.push_back(i);
  if (candidates.empty()) return fallback_safest(corrections_);

  std::vector<const Constraint*> ordered;
  ordered.reserve(constraints_.size());
  for (const auto& c : constraints_) ordered.push_back(&c);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Constraint* a, const Constraint* b) {
                     return a->priority < b->priority;
                   });

  last_feasible_ = true;
  for (const Constraint* c : ordered) {
    std::vector<std::size_t> satisfying;
    std::vector<double> violations;
    violations.reserve(candidates.size());
    double min_violation = std::numeric_limits<double>::infinity();
    for (const std::size_t i : candidates) {
      const double v = violation(i, *c);
      violations.push_back(v);
      if (v == 0.0)
        satisfying.push_back(i);
      else
        min_violation = std::min(min_violation, v);
    }
    if (!satisfying.empty()) {
      candidates = std::move(satisfying);
      continue;
    }
    last_feasible_ = false;
    std::vector<std::size_t> least;
    for (std::size_t k = 0; k < candidates.size(); ++k)
      if (violation_ties_minimum(violations[k], min_violation))
        least.push_back(candidates[k]);
    candidates = std::move(least);
  }
  SOCRATES_ENSURE(!candidates.empty());

  std::size_t best = candidates.front();
  double best_value = rank_.evaluate(knowledge_, best, corrections_);
  std::vector<DecisionCandidate> scored;
  if (journal_) {
    scored.reserve(candidates.size());
    scored.push_back({best, best_value});
  }
  for (std::size_t k = 1; k < candidates.size(); ++k) {
    const std::size_t i = candidates[k];
    const double value = rank_.evaluate(knowledge_, i, corrections_);
    if (journal_) scored.push_back({i, value});
    const bool better = rank_.direction == RankDirection::kMaximize
                            ? value > best_value
                            : value < best_value;
    if (better) {
      best = i;
      best_value = value;
    }
  }
  if (journal_) {
    scored.erase(std::remove_if(scored.begin(), scored.end(),
                                [best](const DecisionCandidate& c) {
                                  return c.op_index == best;
                                }),
                 scored.end());
    const bool maximize = rank_.direction == RankDirection::kMaximize;
    std::stable_sort(scored.begin(), scored.end(),
                     [maximize](const DecisionCandidate& a, const DecisionCandidate& b) {
                       return maximize ? a.score > b.score : a.score < b.score;
                     });
    if (scored.size() > kMaxRejected) scored.resize(kMaxRejected);
    journal_switch(best, best_value, std::move(scored));
  }
  return best;
}

void Asrtm::set_decision_epsilon(double epsilon) {
  SOCRATES_ASRTM_GUARD("set_decision_epsilon");
  SOCRATES_REQUIRE(epsilon >= 0.0 && std::isfinite(epsilon));
  decision_epsilon_ = epsilon;
  // Re-sync so the new threshold measures drift from here, not from a
  // value accepted under the old threshold.  Deliberately applies *any*
  // nonzero drift (its own boundary is 0): this is a re-baseline, not a
  // threshold test — see the boundary contract in the header.
  for (std::size_t m = 0; m < corrections_.size(); ++m) {
    if (applied_corrections_[m] != corrections_[m]) {
      applied_corrections_[m] = corrections_[m];
      ++correction_versions_[m];
    }
  }
  touch_decision();
}

void Asrtm::set_decision_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  touch_decision();
}

void Asrtm::invalidate_decision_cache() {
  for (std::size_t m = 0; m < correction_versions_.size(); ++m)
    ++correction_versions_[m];
  touch_decision();
}

void Asrtm::accept_correction(std::size_t metric) {
  // Boundary contract (documented at set_decision_epsilon): a drift of
  // exactly decision_epsilon_ IS applied, mirroring the re-sync there,
  // which re-baselines any nonzero drift.  The `drift != 0` term keeps
  // the epsilon == 0 default meaning "any change invalidates".
  const double drift =
      std::abs(corrections_[metric] - applied_corrections_[metric]);
  if (drift != 0.0 && drift >= decision_epsilon_) {
    applied_corrections_[metric] = corrections_[metric];
    ++correction_versions_[metric];
    touch_decision();
  }
}

// ---- decision journal ------------------------------------------------------

void Asrtm::enable_decision_journal(std::size_t max_records) {
  journal_ = std::make_unique<DecisionJournal>(max_records);
  pending_trigger_.clear();
  journal_has_last_ = false;
  // The next decision must run the full path so the "initial selection"
  // record is written even if the cache was already warm.
  touch_decision();
}

void Asrtm::disable_decision_journal() { journal_.reset(); }

const DecisionJournal& Asrtm::decision_journal() const {
  SOCRATES_REQUIRE_MSG(journal_ != nullptr,
                       "decision journal is not enabled (call "
                       "enable_decision_journal first)");
  return *journal_;
}

void Asrtm::set_decision_time(double seconds) { journal_now_ = seconds; }

void Asrtm::note_decision_trigger(std::string trigger) {
  pending_trigger_ = std::move(trigger);
}

void Asrtm::journal_switch(std::size_t chosen, double chosen_score,
                           std::vector<DecisionCandidate> others) const {
  // A trigger note explains exactly the decision that follows it.  It is
  // consumed here whether or not that decision switched — otherwise a
  // stale note would be attached to a later, unrelated switch record.
  std::string trigger = std::exchange(pending_trigger_, {});
  const bool switched = !journal_has_last_ || chosen != journal_last_op_;
  journal_last_op_ = chosen;
  journal_has_last_ = true;
  if (!switched) return;

  DecisionRecord record;
  record.timestamp_s = journal_now_;
  if (!trigger.empty())
    record.trigger = std::move(trigger);
  else if (journal_->total_decisions() == 0)
    record.trigger = "initial selection";
  else
    record.trigger = "feedback/quarantine drift";
  record.chosen = chosen;
  record.chosen_score = chosen_score;
  record.feasible = last_feasible_;
  record.epoch = decision_epoch_;

  // Runners-up arrive best-first (bounded top-k or pre-sorted), already
  // trimmed to the journal's limit.
  record.rejected = std::move(others);

  for (std::size_t i = 0; i < health_.size(); ++i)
    if (health_[i].cooldown > 0) record.quarantined.push_back(i);

  journal_->append(std::move(record));
  MetricsRegistry::global().counter("asrtm.journal_records").add(1);
}

void Asrtm::send_feedback(std::size_t op_index, std::size_t metric, double observed) {
  SOCRATES_ASRTM_GUARD("send_feedback");
  SOCRATES_REQUIRE(op_index < knowledge_.size());
  SOCRATES_REQUIRE(metric < corrections_.size());
  if (!std::isfinite(observed) || observed <= 0.0) {
    // A stalled kernel legitimately observes zero throughput; reject the
    // sample like the monitors reject invalid samples instead of
    // aborting the process, and leave the correction untouched.
    ++feedback_rejected_;
    static Counter& rejected =
        MetricsRegistry::global().counter("asrtm.feedback_rejected");
    rejected.add(1);
    RuntimeEvent event;
    event.kind = RuntimeEvent::Kind::kFeedbackRejected;
    event.op = op_index;
    event.metric = metric;
    event.value = observed;
    emit(event);
    return;
  }
  const double predicted = knowledge_.metric_means(metric)[op_index];
  SOCRATES_REQUIRE_MSG(predicted > 0.0, "cannot adapt a zero-mean metric");
  const double instant_ratio = observed / predicted;
  corrections_[metric] =
      (1.0 - feedback_alpha_) * corrections_[metric] + feedback_alpha_ * instant_ratio;
  accept_correction(metric);
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kFeedback;
  event.op = op_index;
  event.metric = metric;
  event.value = observed;
  emit(event);
}

double Asrtm::correction(std::size_t metric) const {
  SOCRATES_REQUIRE(metric < corrections_.size());
  return corrections_[metric];
}

void Asrtm::reset_feedback() {
  SOCRATES_ASRTM_GUARD("reset_feedback");
  corrections_.assign(corrections_.size(), 1.0);
  bool moved = false;
  for (std::size_t m = 0; m < applied_corrections_.size(); ++m) {
    if (applied_corrections_[m] != 1.0) {
      applied_corrections_[m] = 1.0;
      ++correction_versions_[m];
      moved = true;
    }
  }
  if (moved) touch_decision();
}

void Asrtm::set_feedback_inertia(double alpha) {
  SOCRATES_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  feedback_alpha_ = alpha;
}

// ---- variant-fault quarantine ----------------------------------------------

void Asrtm::set_quarantine_options(QuarantineOptions options) {
  SOCRATES_REQUIRE(options.failure_threshold >= 1);
  SOCRATES_REQUIRE(options.base_cooldown >= 1);
  SOCRATES_REQUIRE(options.max_cooldown >= options.base_cooldown);
  quarantine_ = options;
}

void Asrtm::quarantine_op(OpHealth& health) {
  // Exponential backoff: double the cooldown on every re-quarantine.
  const std::size_t shift = std::min<std::size_t>(health.times_quarantined, 32);
  const std::size_t cooldown = quarantine_.base_cooldown << shift;
  health.cooldown = std::min(cooldown, quarantine_.max_cooldown);
  ++health.times_quarantined;
  health.consecutive_failures = 0;
  health.probing = false;
  ++quarantine_events_;
  touch_decision();
  static Counter& quarantines =
      MetricsRegistry::global().counter("asrtm.quarantine_events");
  quarantines.add(1);
}

void Asrtm::report_variant_failure(std::size_t op_index) {
  SOCRATES_ASRTM_GUARD("report_variant_failure");
  SOCRATES_REQUIRE(op_index < health_.size());
  OpHealth& health = health_[op_index];
  ++health.consecutive_failures;
  // A failure during the post-cooldown probe re-quarantines at once.
  if (health.probing || health.consecutive_failures >= quarantine_.failure_threshold)
    quarantine_op(health);
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kVariantFailure;
  event.op = op_index;
  emit(event);
}

void Asrtm::report_variant_success(std::size_t op_index) {
  SOCRATES_ASRTM_GUARD("report_variant_success");
  SOCRATES_REQUIRE(op_index < health_.size());
  OpHealth& health = health_[op_index];
  health.consecutive_failures = 0;
  health.probing = false;
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kVariantSuccess;
  event.op = op_index;
  emit(event);
}

void Asrtm::advance_quarantine() {
  SOCRATES_ASRTM_GUARD("advance_quarantine");
  bool any_cooling = false;
  for (OpHealth& health : health_) {
    if (health.cooldown == 0) continue;
    any_cooling = true;
    if (--health.cooldown == 0) health.probing = true;
  }
  // With no active cooldowns the tick changes nothing the decision
  // reads, so the epoch stays clean and Context::update stays O(1).
  if (any_cooling) touch_decision();
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kQuarantineAdvance;
  emit(event);
}

// ---- crash-safe knowledge (checkpoint/restore) -----------------------------

void Asrtm::emit(const RuntimeEvent& event) const {
  if (event_sink_ && !replaying_) event_sink_(event);
}

Asrtm::Snapshot Asrtm::snapshot() const {
  Snapshot snap;
  snap.corrections = corrections_;
  snap.feedback_alpha = feedback_alpha_;
  snap.quarantine = quarantine_;
  snap.health.reserve(health_.size());
  for (const OpHealth& h : health_) {
    Snapshot::OpHealthState s;
    s.consecutive_failures = h.consecutive_failures;
    s.times_quarantined = h.times_quarantined;
    s.cooldown = h.cooldown;
    s.probing = h.probing;
    snap.health.push_back(s);
  }
  snap.quarantine_events = quarantine_events_;
  snap.decision_epoch = decision_epoch_;
  return snap;
}

void Asrtm::restore(const Snapshot& snapshot) {
  SOCRATES_ASRTM_GUARD("restore");
  SOCRATES_REQUIRE_MSG(snapshot.corrections.size() == corrections_.size(),
                       "snapshot metric count does not match the knowledge base");
  SOCRATES_REQUIRE_MSG(snapshot.health.size() == health_.size(),
                       "snapshot operating-point count does not match the "
                       "knowledge base");
  SOCRATES_REQUIRE(snapshot.feedback_alpha > 0.0 && snapshot.feedback_alpha <= 1.0);
  SOCRATES_REQUIRE(snapshot.quarantine.failure_threshold >= 1);
  SOCRATES_REQUIRE(snapshot.quarantine.base_cooldown >= 1);
  SOCRATES_REQUIRE(snapshot.quarantine.max_cooldown >=
                   snapshot.quarantine.base_cooldown);
  corrections_ = snapshot.corrections;
  feedback_alpha_ = snapshot.feedback_alpha;
  quarantine_ = snapshot.quarantine;
  for (std::size_t i = 0; i < health_.size(); ++i) {
    health_[i].consecutive_failures = snapshot.health[i].consecutive_failures;
    health_[i].times_quarantined = snapshot.health[i].times_quarantined;
    health_[i].cooldown = snapshot.health[i].cooldown;
    health_[i].probing = snapshot.health[i].probing;
  }
  quarantine_events_ = snapshot.quarantine_events;
  // Resume past both histories so the epoch stays monotonic, and land
  // dirty: the restored corrections/health must feed the next decision.
  decision_epoch_ = std::max(decision_epoch_, snapshot.decision_epoch) + 1;
  applied_corrections_ = corrections_;
  for (std::size_t m = 0; m < correction_versions_.size(); ++m)
    ++correction_versions_[m];
}

void Asrtm::set_event_sink(std::function<void(const RuntimeEvent&)> sink) {
  event_sink_ = std::move(sink);
}

void Asrtm::replay(const RuntimeEvent& event) {
  replaying_ = true;
  // The mutators validate their arguments; a corrupted journal line that
  // slipped past the checksum must not crash, so the caller (checkpoint
  // layer) catches ContractViolation and skips the record.
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{replaying_};
  switch (event.kind) {
    case RuntimeEvent::Kind::kFeedback:
      send_feedback(event.op, event.metric, event.value);
      break;
    case RuntimeEvent::Kind::kVariantFailure:
      report_variant_failure(event.op);
      break;
    case RuntimeEvent::Kind::kVariantSuccess:
      report_variant_success(event.op);
      break;
    case RuntimeEvent::Kind::kQuarantineAdvance:
      advance_quarantine();
      break;
    case RuntimeEvent::Kind::kStateActivation:
      // Requirements live in the StateManager; the checkpoint layer
      // tracks the last activation and returns it to the application.
      break;
    case RuntimeEvent::Kind::kFeedbackRejected:
      // The sample was rejected when recorded; replaying it changes
      // nothing (the rejection counter is process-local, not state).
      break;
  }
}

void Asrtm::record_state_activation(const std::string& name) {
  RuntimeEvent event;
  event.kind = RuntimeEvent::Kind::kStateActivation;
  event.name = name;
  emit(event);
}

bool Asrtm::is_quarantined(std::size_t op_index) const {
  SOCRATES_REQUIRE(op_index < health_.size());
  return health_[op_index].cooldown > 0;
}

std::size_t Asrtm::quarantined_count() const {
  std::size_t n = 0;
  for (const OpHealth& health : health_)
    if (health.cooldown > 0) ++n;
  return n;
}

// ---- OscillationWatchdog ---------------------------------------------------

OscillationWatchdog::OscillationWatchdog() : OscillationWatchdog(Options()) {}

OscillationWatchdog::OscillationWatchdog(Options options) : options_(options) {
  SOCRATES_REQUIRE(options.window >= 1);
  SOCRATES_REQUIRE(options.max_switches >= 1);
  SOCRATES_REQUIRE(options.hold_iterations >= 1);
  switch_ring_.assign(options.window, false);
}

std::size_t OscillationWatchdog::filter(std::size_t chosen) {
  if (!has_applied_) {
    has_applied_ = true;
    applied_ = chosen;
    return chosen;
  }
  if (hold_remaining_ > 0) {
    --hold_remaining_;
    switch_ring_[ring_next_] = false;
    ring_next_ = (ring_next_ + 1) % options_.window;
    return applied_;
  }
  const bool switched = chosen != applied_;
  switch_ring_[ring_next_] = switched;
  ring_next_ = (ring_next_ + 1) % options_.window;
  if (switched) {
    std::size_t switches = 0;
    for (const bool s : switch_ring_)
      if (s) ++switches;
    if (switches > options_.max_switches) {
      // Thrashing: suppress this switch and hold the applied point.
      ++trips_;
      hold_remaining_ = options_.hold_iterations;
      return applied_;
    }
  }
  applied_ = chosen;
  return chosen;
}

void OscillationWatchdog::reset() {
  switch_ring_.assign(options_.window, false);
  ring_next_ = 0;
  has_applied_ = false;
  hold_remaining_ = 0;
}

}  // namespace socrates::margot
