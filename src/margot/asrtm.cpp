#include "margot/asrtm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace socrates::margot {

Asrtm::Asrtm(KnowledgeBase knowledge) : knowledge_(std::move(knowledge)) {
  SOCRATES_REQUIRE_MSG(!knowledge_.empty(),
                       "AS-RTM needs at least one operating point");
  corrections_.assign(knowledge_.metric_names().size(), 1.0);
  // Default rank: minimize the first metric (callers normally override).
  rank_ = Rank{RankDirection::kMinimize, {{0, 1.0}}};
}

std::size_t Asrtm::add_constraint(Constraint constraint) {
  SOCRATES_REQUIRE(constraint.metric < knowledge_.metric_names().size());
  SOCRATES_REQUIRE(constraint.confidence >= 0.0);
  constraints_.push_back(constraint);
  return constraints_.size() - 1;
}

void Asrtm::set_constraint_goal(std::size_t handle, double goal) {
  SOCRATES_REQUIRE(handle < constraints_.size());
  constraints_[handle].goal = goal;
}

void Asrtm::clear_constraints() { constraints_.clear(); }

void Asrtm::set_rank(Rank rank) {
  for (const auto& term : rank.terms)
    SOCRATES_REQUIRE(term.metric < knowledge_.metric_names().size());
  rank_ = std::move(rank);
}

double Asrtm::expected(const OperatingPoint& op, std::size_t m) const {
  return op.metrics[m].mean * corrections_[m];
}

double Asrtm::constraint_value(const OperatingPoint& op, const Constraint& c) const {
  const double mean = expected(op, c.metric);
  const double margin = c.confidence * op.metrics[c.metric].stddev * corrections_[c.metric];
  // Pessimistic direction: upper bound for "<" goals, lower for ">".
  const bool upper =
      c.op == ComparisonOp::kLess || c.op == ComparisonOp::kLessEqual;
  return upper ? mean + margin : mean - margin;
}

double Asrtm::violation(const OperatingPoint& op, const Constraint& c) const {
  const double value = constraint_value(op, c);
  if (compare(value, c.op, c.goal)) return 0.0;
  return std::abs(value - c.goal);
}

std::size_t Asrtm::find_best_operating_point() const {
  // Work on indices; apply constraints from highest priority (lowest
  // number) to lowest.
  std::vector<std::size_t> candidates(knowledge_.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;

  std::vector<const Constraint*> ordered;
  ordered.reserve(constraints_.size());
  for (const auto& c : constraints_) ordered.push_back(&c);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Constraint* a, const Constraint* b) {
                     return a->priority < b->priority;
                   });

  last_feasible_ = true;
  for (const Constraint* c : ordered) {
    std::vector<std::size_t> satisfying;
    for (const std::size_t i : candidates)
      if (violation(knowledge_[i], *c) == 0.0) satisfying.push_back(i);

    if (!satisfying.empty()) {
      candidates = std::move(satisfying);
      continue;
    }

    // Infeasible under this constraint: keep the least-violating points
    // (mARGOt's graceful degradation) and continue with lower-priority
    // constraints among them.
    last_feasible_ = false;
    double min_violation = std::numeric_limits<double>::infinity();
    for (const std::size_t i : candidates)
      min_violation = std::min(min_violation, violation(knowledge_[i], *c));
    std::vector<std::size_t> least;
    for (const std::size_t i : candidates) {
      // Tolerate tiny FP differences when comparing violations.
      if (violation(knowledge_[i], *c) <= min_violation * (1.0 + 1e-12))
        least.push_back(i);
    }
    candidates = std::move(least);
  }
  SOCRATES_ENSURE(!candidates.empty());

  // Rank among the survivors.
  std::size_t best = candidates.front();
  double best_value = rank_.evaluate(knowledge_[best], corrections_);
  for (std::size_t k = 1; k < candidates.size(); ++k) {
    const std::size_t i = candidates[k];
    const double value = rank_.evaluate(knowledge_[i], corrections_);
    const bool better = rank_.direction == RankDirection::kMaximize
                            ? value > best_value
                            : value < best_value;
    if (better) {
      best = i;
      best_value = value;
    }
  }
  return best;
}

void Asrtm::send_feedback(std::size_t op_index, std::size_t metric, double observed) {
  SOCRATES_REQUIRE(op_index < knowledge_.size());
  SOCRATES_REQUIRE(metric < corrections_.size());
  SOCRATES_REQUIRE(observed > 0.0);
  const double predicted = knowledge_[op_index].metrics[metric].mean;
  SOCRATES_REQUIRE_MSG(predicted > 0.0, "cannot adapt a zero-mean metric");
  const double instant_ratio = observed / predicted;
  corrections_[metric] =
      (1.0 - feedback_alpha_) * corrections_[metric] + feedback_alpha_ * instant_ratio;
}

double Asrtm::correction(std::size_t metric) const {
  SOCRATES_REQUIRE(metric < corrections_.size());
  return corrections_[metric];
}

void Asrtm::reset_feedback() { corrections_.assign(corrections_.size(), 1.0); }

void Asrtm::set_feedback_inertia(double alpha) {
  SOCRATES_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  feedback_alpha_ = alpha;
}

}  // namespace socrates::margot
