// Crash-safe persistence of the AS-RTM's learned state.
//
// The design-time knowledge base is a file the application can always
// reload, but everything the AS-RTM *learns* at runtime — feedback
// corrections, quarantine health, the active optimization state — dies
// with the process.  SOCRATES targets long-running HPC applications
// (Section IV runs span hours), where a node reboot otherwise means
// re-learning the platform from scratch and re-discovering every
// faulty clone the hard way.
//
// CheckpointStore persists that state with a classic snapshot+journal
// scheme, hardened against real storage failures:
//
//   <path>            newest versioned, checksummed snapshot, written
//                     to a temp file and atomically renamed — readers
//                     never see a torn snapshot;
//   <path>.<g>        older snapshot *generations* (g = 1..K-1),
//                     rotated at every publish so one corrupted
//                     snapshot never costs all learned knowledge;
//   <path>.journal    append-only log of RuntimeEvents since the last
//                     snapshot, one self-checksummed line each; a
//                     partial trailing line (the crash happened
//                     mid-append) is simply skipped;
//   <path>.journal.<g> the journal generations matching snapshot
//                     generation g, kept so an older-generation
//                     restore can replay forward.
//
// Every journal line carries the snapshot *epoch* it applies to, so a
// crash between "write new snapshot" and "rotate journal" cannot
// double-apply events: stale-epoch lines are ignored on restore.  The
// journal is bounded — after `journal_capacity` events (or
// `journal_max_bytes` bytes) the store snapshots automatically and
// rotates it.
//
// Restore walks a **recovery ladder**, newest rung first, and reports
// which rung it landed on (RestoreResult::rung, named reason in
// `note`, `checkpoint.recovery_rung` metric):
//
//   kNewestSnapshot   newest snapshot valid → replay the live journal;
//   kOlderGeneration  newest corrupt, an older generation is valid →
//                     restore it and replay the journal chain forward
//                     (knowledge retained, the corrupted tail lost);
//   kJournalOnly      no snapshot was ever written → replay the
//                     epoch-0 journal onto the fresh AS-RTM;
//   kFreshStart       every snapshot generation is corrupt → discard
//                     everything, start clean (never a crash, never a
//                     partially-applied restore).
//
// Disk-health supervision: an I/O failure anywhere on the write path
// (ENOSPC, EIO, a failed rename, a short write, a journal that will
// not open) is classified and drops the store into a breaker-style
// **degraded in-memory mode** — the AS-RTM keeps learning and serving
// decisions, nothing touches the disk, and the store re-probes the
// device with exponential backoff.  The probe that succeeds writes a
// *full* snapshot (so nothing learned while degraded is lost) and
// resumes journaling.  Set SOCRATES_CHECKPOINT_FSYNC=1 to fsync the
// journal on every commit and the snapshot + directory on publish.
//
// Group commit: with `group_commit` > 1 journal lines are batched in
// memory and written + flushed once per batch instead of once per
// event.  This is what lets crash-safety survive the server's feedback
// rates (docs/SERVER.md): the per-event cost drops to formatting one
// line, and the durability contract weakens only to "a crash loses at
// most the one uncommitted batch" — the bound the crash-point torture
// harness (tests/checkpoint_crash_test.cpp) pins at *every* write
// boundary.  The default of 1 keeps the original flush-per-event
// behaviour.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "margot/asrtm.hpp"

namespace socrates::margot {

/// Which rung of the recovery ladder a restore landed on.
enum class RecoveryRung {
  kNewestSnapshot = 0,  ///< newest snapshot valid
  kOlderGeneration = 1, ///< fell back to an older snapshot generation
  kJournalOnly = 2,     ///< no snapshot ever existed; journal replay only
  kFreshStart = 3,      ///< every generation corrupt; clean slate
};

const char* to_string(RecoveryRung rung);

class CheckpointStore {
 public:
  struct Options {
    /// Journal events between automatic snapshots (bounds both journal
    /// size and replay time after a crash).
    std::size_t journal_capacity = 256;
    /// Journal lines per write+flush (group commit).  1 = flush every
    /// event (the strongest durability, the original behaviour); N > 1
    /// trades "a crash loses at most N-1 buffered events" for an N-fold
    /// reduction in journal I/O — required at server feedback rates.
    std::size_t group_commit = 1;
    /// Snapshot generations kept on disk (newest + generations-1 older,
    /// with their matching journal generations).  1 = the pre-PR-9
    /// single-snapshot layout; >= 2 survives a corrupted newest
    /// snapshot with knowledge retained.
    std::size_t generations = 2;
    /// Disk quota for the live journal file: when it grows past this
    /// many bytes the store snapshots and rotates, independent of the
    /// event count.  0 = unbounded (journal_capacity still applies).
    std::size_t journal_max_bytes = 0;
    /// fsync the journal after every group commit and the snapshot +
    /// containing directory on publish.  Defaults from the
    /// SOCRATES_CHECKPOINT_FSYNC environment flag.
    bool fsync_on_commit = false;
    /// Degraded-mode re-probe backoff: first probe after
    /// `probe_base_s`, doubling up to `probe_max_s`.  Probes piggyback
    /// on event traffic and explicit checkpoint() calls.
    double probe_base_s = 0.05;
    double probe_max_s = 2.0;

    /// `base` with the SOCRATES_CHECKPOINT_* environment knobs applied
    /// (clamped, warn-once via support/env):
    ///   SOCRATES_CHECKPOINT_GENERATIONS  in [1, 8]
    ///   SOCRATES_CHECKPOINT_PROBE_MS     in [1, 60000]
    ///   SOCRATES_CHECKPOINT_FSYNC        flag
    static Options from_env(Options base);
    static Options from_env() { return from_env(Options{}); }
  };

  /// `path` is the newest snapshot file; older generations live at
  /// `path`.<g> and the journal chain at `path`.journal[.<g>].  Stale
  /// `path`.tmp.<pid> files left by dead processes are swept here.
  explicit CheckpointStore(std::string path) : CheckpointStore(std::move(path), Options{}) {}
  CheckpointStore(std::string path, Options options);
  /// Uninstalls the sink WITHOUT a final snapshot: destruction is
  /// crash-equivalent, the journal carries the state.  Call detach()
  /// for a clean shutdown.
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  struct RestoreResult {
    bool restored = false;        ///< a valid snapshot was applied
    std::size_t replayed = 0;     ///< journal events replayed on top
    std::size_t skipped = 0;      ///< corrupt / stale-epoch lines skipped
    RecoveryRung rung = RecoveryRung::kJournalOnly;  ///< ladder rung taken
    std::size_t generation = 0;   ///< snapshot generation restored (rungs 0/1)
    std::string active_state;     ///< last activated state name ("" = none)
    std::string note;             ///< human-readable outcome summary
  };

  /// Restores `asrtm` from disk down the recovery ladder (snapshot
  /// generations + journal replay), then installs this store as the
  /// AS-RTM's event sink so every later mutation is journaled.  A
  /// missing checkpoint yields a journal-only (or empty) start; a fully
  /// corrupted one a clean fresh start: the AS-RTM is left untouched,
  /// stale files are discarded, and journaling begins from a clean
  /// slate.  The caller re-activates `active_state` through its
  /// StateManager (requirements are application-owned, see
  /// Asrtm::replay).
  RestoreResult attach(Asrtm& asrtm);

  /// Writes a snapshot now (atomically, rotating generations) and
  /// rotates the journal.  Requires a prior attach().  In degraded
  /// mode this doubles as a disk re-probe; it never throws on I/O
  /// failure.
  void checkpoint();

  /// Uninstalls the event sink (a final snapshot is written first, so
  /// a clean shutdown restores instantly with an empty journal).
  void detach();

  const std::string& path() const { return path_; }
  /// Snapshot file of generation g (0 = newest = path()).
  std::string snapshot_path(std::size_t generation) const;
  /// Journal file of generation g (0 = the live journal).
  std::string journal_path(std::size_t generation = 0) const;
  std::size_t journaled_events() const { return journaled_; }
  std::size_t snapshots_written() const { return snapshots_; }
  /// Events formatted but not yet committed to disk — the amount a
  /// crash right now would lose (always < Options::group_commit).
  std::size_t buffered_events() const { return batch_lines_; }
  /// Epoch of the newest published snapshot (0 = none yet).
  std::uint64_t epoch() const { return epoch_; }

  /// True once an injected crash-at chaos site fired: the store
  /// simulates a dead process and never touches the disk again.
  bool crashed() const { return crashed_; }

  // ---- disk health ------------------------------------------------------
  struct DiskStatus {
    bool degraded = false;            ///< in-memory mode, no disk writes
    std::uint64_t io_errors = 0;      ///< classified write-path failures
    std::uint64_t degraded_entries = 0;  ///< healthy→degraded transitions
    std::uint64_t recoveries = 0;     ///< degraded→healthy (full snapshot)
    std::uint64_t journal_reopens = 0;   ///< journal reopened after a failure
    std::uint64_t events_dropped = 0; ///< events not journaled while degraded
    std::string last_error;           ///< classification of the last failure
  };
  DiskStatus disk_status() const;
  bool degraded() const { return degraded_; }

  /// Replaces the clock the degraded-mode probe backoff runs on
  /// (seconds, monotone).  Tests only; default is the steady clock.
  void set_time_source(std::function<double()> now);

 private:
  enum class IoError { kNoSpace, kIo, kRename, kShortWrite, kOpen };

  void on_event(const RuntimeEvent& event);
  void open_journal(bool truncate);
  /// Writes + flushes the buffered group-commit batch.  An injected
  /// journal-fail chaos fault (or a real I/O failure) drops the batch —
  /// exactly the events a crash between commits would have lost.
  void flush_batch();
  /// Writes the snapshot for `epoch` via tmp+rename with generation
  /// rotation; returns success.  Failure classifies the error and
  /// enters (or stays in) degraded mode.
  bool write_snapshot(std::uint64_t epoch);
  /// Shifts <path> -> <path>.1 -> ... before a new snapshot is renamed
  /// into place (a no-op for generations == 1).
  void rotate_generations();
  /// Shifts <path>.journal -> .journal.1 -> ... (generations deep) and
  /// opens a fresh truncated live journal.
  void rotate_journals();
  static IoError classify_errno(int err, IoError fallback);
  /// Classified I/O failure: log once, count, enter degraded mode.
  void enter_degraded(IoError kind, const std::string& what);
  /// In degraded mode: if the backoff elapsed, try to re-establish
  /// durability (full snapshot + fresh journal).  True on recovery.
  bool maybe_probe();
  bool probe_now();
  double now_s() const;
  void sweep_stale_tmps();

  std::string path_;
  Options options_;
  Asrtm* asrtm_ = nullptr;
  std::ofstream journal_;
  std::uint64_t epoch_ = 0;        ///< epoch of the on-disk snapshot
  std::size_t pending_ = 0;        ///< journal lines since last snapshot
  std::size_t journaled_ = 0;      ///< lifetime journaled events
  std::size_t snapshots_ = 0;
  std::size_t journal_bytes_ = 0;  ///< live journal size (quota tracking)
  std::string batch_;              ///< buffered group-commit lines
  std::size_t batch_lines_ = 0;    ///< lines currently in batch_
  std::string active_state_;       ///< last activation seen (for snapshots)
  bool crashed_ = false;           ///< injected crash: disk is frozen

  // Disk-health supervision (breaker-style degraded mode).
  bool degraded_ = false;
  bool journal_open_failed_ = false;  ///< last open failed (reopen counting)
  double backoff_s_ = 0.0;
  double next_probe_s_ = 0.0;
  std::uint64_t io_errors_ = 0;
  std::uint64_t degraded_entries_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t journal_reopens_ = 0;
  std::uint64_t events_dropped_ = 0;
  std::string last_error_;
  std::function<double()> now_;    ///< test-overridable probe clock
  std::chrono::steady_clock::time_point anchor_;
};

}  // namespace socrates::margot
