// Crash-safe persistence of the AS-RTM's learned state.
//
// The design-time knowledge base is a file the application can always
// reload, but everything the AS-RTM *learns* at runtime — feedback
// corrections, quarantine health, the active optimization state — dies
// with the process.  SOCRATES targets long-running HPC applications
// (Section IV runs span hours), where a node reboot otherwise means
// re-learning the platform from scratch and re-discovering every
// faulty clone the hard way.
//
// CheckpointStore persists that state with a classic snapshot+journal
// scheme:
//
//   <path>            versioned, checksummed snapshot, written to a
//                     temp file and atomically renamed — readers never
//                     see a torn snapshot;
//   <path>.journal    append-only log of RuntimeEvents since the last
//                     snapshot, one self-checksummed line each; a
//                     partial trailing line (the crash happened
//                     mid-append) is simply skipped.
//
// Every journal line carries the snapshot *epoch* it applies to, so a
// crash between "write new snapshot" and "truncate journal" cannot
// double-apply events: stale-epoch lines are ignored on restore.  The
// journal is bounded — after `journal_capacity` events the store
// snapshots automatically and truncates it.
//
// Group commit: with `group_commit` > 1 journal lines are batched in
// memory and written + flushed once per batch instead of once per
// event.  This is what lets crash-safety survive the server's feedback
// rates (docs/SERVER.md): the per-event cost drops to formatting one
// line, and the durability contract weakens only to "a crash loses at
// most the one uncommitted batch" — the bound the kill-and-resume
// regression test pins.  The default of 1 keeps the original
// flush-per-event behaviour.
//
// Corruption of any kind (bad magic, checksum mismatch, truncation, a
// knowledge base whose shape changed since the checkpoint) degrades to
// a clean fresh start — never a crash, never a partially-applied
// restore.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>

#include "margot/asrtm.hpp"

namespace socrates::margot {

class CheckpointStore {
 public:
  struct Options {
    /// Journal events between automatic snapshots (bounds both journal
    /// size and replay time after a crash).
    std::size_t journal_capacity = 256;
    /// Journal lines per write+flush (group commit).  1 = flush every
    /// event (the strongest durability, the original behaviour); N > 1
    /// trades "a crash loses at most N-1 buffered events" for an N-fold
    /// reduction in journal I/O — required at server feedback rates.
    std::size_t group_commit = 1;
  };

  /// `path` is the snapshot file; the journal lives at `path`.journal.
  explicit CheckpointStore(std::string path) : CheckpointStore(std::move(path), Options{}) {}
  CheckpointStore(std::string path, Options options);
  /// Uninstalls the sink WITHOUT a final snapshot: destruction is
  /// crash-equivalent, the journal carries the state.  Call detach()
  /// for a clean shutdown.
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  struct RestoreResult {
    bool restored = false;        ///< a valid snapshot was applied
    std::size_t replayed = 0;     ///< journal events replayed on top
    std::size_t skipped = 0;      ///< corrupt / stale-epoch lines skipped
    std::string active_state;     ///< last activated state name ("" = none)
    std::string note;             ///< human-readable outcome summary
  };

  /// Restores `asrtm` from disk (snapshot + journal replay), then
  /// installs this store as the AS-RTM's event sink so every later
  /// mutation is journaled.  A missing or corrupted checkpoint yields a
  /// fresh start: the AS-RTM is left untouched, stale files are
  /// discarded, and journaling begins from a clean slate.  The caller
  /// re-activates `active_state` through its StateManager (requirements
  /// are application-owned, see Asrtm::replay).
  RestoreResult attach(Asrtm& asrtm);

  /// Writes a snapshot now (atomically) and truncates the journal.
  /// Requires a prior attach().
  void checkpoint();

  /// Uninstalls the event sink (a final snapshot is written first, so
  /// a clean shutdown restores instantly with an empty journal).
  void detach();

  const std::string& path() const { return path_; }
  std::string journal_path() const { return path_ + ".journal"; }
  std::size_t journaled_events() const { return journaled_; }
  std::size_t snapshots_written() const { return snapshots_; }
  /// Events formatted but not yet committed to disk — the amount a
  /// crash right now would lose (always < Options::group_commit).
  std::size_t buffered_events() const { return batch_lines_; }

 private:
  void on_event(const RuntimeEvent& event);
  void open_journal(bool truncate);
  /// Writes + flushes the buffered group-commit batch.  An injected
  /// journal-fail chaos fault (or a real I/O failure) drops the batch —
  /// exactly the events a crash between commits would have lost.
  void flush_batch();
  /// Writes the snapshot for `epoch` via tmp+rename; returns success.
  bool write_snapshot(std::uint64_t epoch);

  std::string path_;
  Options options_;
  Asrtm* asrtm_ = nullptr;
  std::ofstream journal_;
  std::uint64_t epoch_ = 0;        ///< epoch of the on-disk snapshot
  std::size_t pending_ = 0;        ///< journal lines since last snapshot
  std::size_t journaled_ = 0;      ///< lifetime journaled events
  std::size_t snapshots_ = 0;
  std::string batch_;              ///< buffered group-commit lines
  std::size_t batch_lines_ = 0;    ///< lines currently in batch_
  std::string active_state_;       ///< last activation seen (for snapshots)
  bool journal_failed_ = false;    ///< warn-once latch on append failures
};

}  // namespace socrates::margot
