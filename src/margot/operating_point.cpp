#include "margot/operating_point.hpp"

#include "support/error.hpp"

namespace socrates::margot {

KnowledgeBase::KnowledgeBase(std::vector<std::string> knob_names,
                             std::vector<std::string> metric_names)
    : knob_names_(std::move(knob_names)), metric_names_(std::move(metric_names)) {
  SOCRATES_REQUIRE(!knob_names_.empty());
  SOCRATES_REQUIRE(!metric_names_.empty());
}

std::size_t KnowledgeBase::knob_index(const std::string& name) const {
  for (std::size_t i = 0; i < knob_names_.size(); ++i)
    if (knob_names_[i] == name) return i;
  SOCRATES_REQUIRE_MSG(false, "unknown knob '" << name << "'");
  return 0;  // unreachable
}

std::size_t KnowledgeBase::metric_index(const std::string& name) const {
  for (std::size_t i = 0; i < metric_names_.size(); ++i)
    if (metric_names_[i] == name) return i;
  SOCRATES_REQUIRE_MSG(false, "unknown metric '" << name << "'");
  return 0;  // unreachable
}

void KnowledgeBase::add(OperatingPoint op) {
  SOCRATES_REQUIRE_MSG(op.knobs.size() == knob_names_.size(),
                       "operating point has " << op.knobs.size() << " knobs, schema has "
                                              << knob_names_.size());
  SOCRATES_REQUIRE_MSG(op.metrics.size() == metric_names_.size(),
                       "operating point has " << op.metrics.size()
                                              << " metrics, schema has "
                                              << metric_names_.size());
  for (const auto& m : op.metrics) SOCRATES_REQUIRE(m.stddev >= 0.0);
  SOCRATES_REQUIRE_MSG(!find(op.knobs).has_value(), "duplicate operating point");
  points_.push_back(std::move(op));
}

const OperatingPoint& KnowledgeBase::operator[](std::size_t i) const {
  SOCRATES_REQUIRE(i < points_.size());
  return points_[i];
}

std::optional<std::size_t> KnowledgeBase::find(const std::vector<int>& knobs) const {
  for (std::size_t i = 0; i < points_.size(); ++i)
    if (points_[i].knobs == knobs) return i;
  return std::nullopt;
}

}  // namespace socrates::margot
