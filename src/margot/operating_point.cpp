#include "margot/operating_point.hpp"

#include <cstring>

#include "support/error.hpp"

namespace socrates::margot {

KnowledgeBase::KnowledgeBase(std::vector<std::string> knob_names,
                             std::vector<std::string> metric_names)
    : knob_names_(std::move(knob_names)), metric_names_(std::move(metric_names)) {
  SOCRATES_REQUIRE(!knob_names_.empty());
  SOCRATES_REQUIRE(!metric_names_.empty());
}

KnowledgeBase::KnowledgeBase(const KnowledgeBase& other)
    : knob_names_(other.knob_names_), metric_names_(other.metric_names_) {
  copy_from(other);
}

KnowledgeBase& KnowledgeBase::operator=(const KnowledgeBase& other) {
  if (this != &other) {
    knob_names_ = other.knob_names_;
    metric_names_ = other.metric_names_;
    arena_ = support::Arena{};
    means_ = nullptr;
    stddevs_ = nullptr;
    knobs_ = nullptr;
    size_ = 0;
    capacity_ = 0;
    copy_from(other);
  }
  return *this;
}

void KnowledgeBase::copy_from(const KnowledgeBase& other) {
  if (other.size_ == 0) return;
  grow(other.size_);
  const std::size_t metrics = metric_names_.size();
  const std::size_t knobs = knob_names_.size();
  for (std::size_t m = 0; m < metrics; ++m) {
    std::memcpy(means_ + m * capacity_, other.means_ + m * other.capacity_,
                other.size_ * sizeof(double));
    std::memcpy(stddevs_ + m * capacity_, other.stddevs_ + m * other.capacity_,
                other.size_ * sizeof(double));
  }
  std::memcpy(knobs_, other.knobs_, other.size_ * knobs * sizeof(int));
  size_ = other.size_;
}

void KnowledgeBase::grow(std::size_t min_capacity) {
  std::size_t capacity = capacity_ == 0 ? 16 : capacity_ * 2;
  while (capacity < min_capacity) capacity *= 2;

  const std::size_t metrics = metric_names_.size();
  const std::size_t knobs = knob_names_.size();
  const std::size_t column_bytes = capacity * sizeof(double);
  support::Arena arena(support::Arena::bytes_for(
      metrics * column_bytes, metrics * column_bytes,
      capacity * knobs * sizeof(int)));
  double* means = arena.allocate<double>(metrics * capacity);
  double* stddevs = arena.allocate<double>(metrics * capacity);
  int* knob_block = arena.allocate<int>(capacity * knobs);

  for (std::size_t m = 0; m < metrics && size_ > 0; ++m) {
    std::memcpy(means + m * capacity, means_ + m * capacity_,
                size_ * sizeof(double));
    std::memcpy(stddevs + m * capacity, stddevs_ + m * capacity_,
                size_ * sizeof(double));
  }
  if (size_ > 0)
    std::memcpy(knob_block, knobs_, size_ * knobs * sizeof(int));

  arena_ = std::move(arena);
  means_ = means;
  stddevs_ = stddevs;
  knobs_ = knob_block;
  capacity_ = capacity;
}

std::size_t KnowledgeBase::knob_index(const std::string& name) const {
  for (std::size_t i = 0; i < knob_names_.size(); ++i)
    if (knob_names_[i] == name) return i;
  SOCRATES_REQUIRE_MSG(false, "unknown knob '" << name << "'");
  return 0;  // unreachable
}

std::size_t KnowledgeBase::metric_index(const std::string& name) const {
  for (std::size_t i = 0; i < metric_names_.size(); ++i)
    if (metric_names_[i] == name) return i;
  SOCRATES_REQUIRE_MSG(false, "unknown metric '" << name << "'");
  return 0;  // unreachable
}

void KnowledgeBase::add(OperatingPoint op) {
  SOCRATES_REQUIRE_MSG(op.knobs.size() == knob_names_.size(),
                       "operating point has " << op.knobs.size() << " knobs, schema has "
                                              << knob_names_.size());
  SOCRATES_REQUIRE_MSG(op.metrics.size() == metric_names_.size(),
                       "operating point has " << op.metrics.size()
                                              << " metrics, schema has "
                                              << metric_names_.size());
  for (const auto& m : op.metrics) SOCRATES_REQUIRE(m.stddev >= 0.0);
  SOCRATES_REQUIRE_MSG(!find(op.knobs).has_value(), "duplicate operating point");

  if (size_ == capacity_) grow(size_ + 1);
  const std::size_t i = size_;
  std::memcpy(knobs_ + i * knob_names_.size(), op.knobs.data(),
              op.knobs.size() * sizeof(int));
  for (std::size_t m = 0; m < op.metrics.size(); ++m) {
    means_[m * capacity_ + i] = op.metrics[m].mean;
    stddevs_[m * capacity_ + i] = op.metrics[m].stddev;
  }
  ++size_;
}

KnowledgeBase::PointView KnowledgeBase::operator[](std::size_t i) const {
  SOCRATES_REQUIRE(i < size_);
  return {KnobsView{knob_row(i), knob_names_.size()}, MetricsView{this, i}};
}

std::optional<std::size_t> KnowledgeBase::find(const std::vector<int>& knobs) const {
  const std::size_t count = knob_names_.size();
  if (knobs.size() != count) return std::nullopt;
  for (std::size_t i = 0; i < size_; ++i)
    if (std::memcmp(knob_row(i), knobs.data(), count * sizeof(int)) == 0)
      return i;
  return std::nullopt;
}

}  // namespace socrates::margot
