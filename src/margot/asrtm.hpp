// Application-Specific Run-Time Manager (AS-RTM).
//
// The decision engine of mARGOt (Section II of the paper): selects the
// most suitable operating point from the design-time knowledge base,
// given
//   i)   the application requirements (prioritized constraints + rank),
//   ii)  the design-time knowledge (profiled operating points), and
//   iii) feedback information from the monitors.
// Constraint handling follows mARGOt's semantics: constraints are
// applied in priority order; when a constraint filters out every
// remaining point, the points violating it the least survive (so an
// infeasible power budget degrades gracefully to the most power-frugal
// configurations, the behaviour visible at the left edge of Figure 4).
// Monitor feedback adapts the knowledge online: per-metric correction
// factors (EWMA of observed/expected) rescale every stored mean, which
// closes the MAPE-K loop when the platform drifts from its profile.
//
// Two graceful-degradation mechanisms defend the decision loop against
// the faults of platform/fault_injection.hpp:
//   - operating points whose compiled clone repeatedly fails are
//     *quarantined* (excluded from selection) and re-probed after an
//     exponentially growing cooldown; when every point is quarantined,
//     selection falls back to the historically safest one;
//   - an OscillationWatchdog (used by margot::Context) holds the
//     current configuration when noisy feedback makes the selection
//     thrash between points.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "margot/operating_point.hpp"
#include "margot/optimization.hpp"

namespace socrates::margot {

class Asrtm {
 public:
  explicit Asrtm(KnowledgeBase knowledge);

  const KnowledgeBase& knowledge() const { return knowledge_; }

  // ---- requirements management (may be called at any time) ------------
  /// Adds a constraint; returns its handle for later goal updates.
  std::size_t add_constraint(Constraint constraint);
  /// Changes the goal value of an existing constraint.
  void set_constraint_goal(std::size_t handle, double goal);
  /// Removes every constraint.
  void clear_constraints();
  std::size_t constraint_count() const { return constraints_.size(); }

  void set_rank(Rank rank);
  const Rank& rank() const { return rank_; }

  // ---- decision --------------------------------------------------------
  /// Index (into the knowledge base) of the best operating point under
  /// the current requirements and feedback corrections.
  std::size_t find_best_operating_point() const;

  const OperatingPoint& best_operating_point() const {
    return knowledge_[find_best_operating_point()];
  }

  /// True when the returned point satisfies every constraint (false
  /// when some constraint had to be relaxed).
  bool last_selection_feasible() const { return last_feasible_; }

  // ---- feedback (knowledge adaptation) ---------------------------------
  /// Reports an observation of `metric` while `op_index` was applied.
  /// Updates the correction factor with an EWMA of observed/expected.
  void send_feedback(std::size_t op_index, std::size_t metric, double observed);

  /// Current correction factor of a metric (1.0 = knowledge matches).
  double correction(std::size_t metric) const;

  /// Forgets all feedback (e.g. after an input-feature change).
  void reset_feedback();

  /// EWMA smoothing factor for feedback, in (0, 1]; default 0.3.
  void set_feedback_inertia(double alpha);

  // ---- variant-fault quarantine ----------------------------------------
  struct QuarantineOptions {
    std::size_t failure_threshold = 2;  ///< consecutive failures to quarantine
    std::size_t base_cooldown = 8;      ///< iterations before the first re-probe
    std::size_t max_cooldown = 512;     ///< backoff ceiling
  };

  void set_quarantine_options(QuarantineOptions options);

  /// Reports that the clone behind `op_index` crashed or produced a
  /// runaway result.  After `failure_threshold` consecutive failures
  /// (immediately when the point was re-probing) the point is
  /// quarantined for base_cooldown * 2^(times quarantined) iterations.
  void report_variant_failure(std::size_t op_index);
  /// Reports a healthy run of `op_index`; resets its failure streak.
  void report_variant_success(std::size_t op_index);
  /// Advances quarantine cooldowns by one iteration; points whose
  /// cooldown expires become eligible again, on probation: one more
  /// failure re-quarantines them immediately with a doubled cooldown.
  void advance_quarantine();

  bool is_quarantined(std::size_t op_index) const;
  std::size_t quarantined_count() const;
  /// Total quarantine events since construction.
  std::size_t quarantine_events() const { return quarantine_events_; }

 private:
  struct OpHealth {
    std::size_t consecutive_failures = 0;
    std::size_t times_quarantined = 0;
    std::size_t cooldown = 0;   ///< > 0: quarantined for this many iterations
    bool probing = false;       ///< cooldown expired, not yet proven healthy
  };

  void quarantine_op(OpHealth& health);
  /// Expected (corrected) value of metric `m` for point `op`.
  double expected(const OperatingPoint& op, std::size_t m) const;
  /// Pessimistic test value for a constraint (mean +/- conf * stddev).
  double constraint_value(const OperatingPoint& op, const Constraint& c) const;
  /// How far `op` is from satisfying `c` (0 when satisfied).
  double violation(const OperatingPoint& op, const Constraint& c) const;

  KnowledgeBase knowledge_;
  std::vector<Constraint> constraints_;  ///< insertion order; sorted view built per query
  Rank rank_;
  std::vector<double> corrections_;      ///< per metric, multiplicative
  double feedback_alpha_ = 0.3;
  mutable bool last_feasible_ = true;
  QuarantineOptions quarantine_;
  std::vector<OpHealth> health_;         ///< one entry per operating point
  std::size_t quarantine_events_ = 0;
};

/// Dampens configuration thrashing: feeds on the point chosen each
/// iteration and, when more than `max_switches` switches land inside
/// the trailing `window` iterations, holds the previously applied point
/// for `hold_iterations` before listening to the AS-RTM again.  Noisy
/// feedback (spiked sensors, heavy-tailed timing) otherwise makes the
/// selection oscillate between near-equivalent points, and every switch
/// pays the paper's reconfiguration overhead.
class OscillationWatchdog {
 public:
  struct Options {
    std::size_t window = 12;
    std::size_t max_switches = 4;
    std::size_t hold_iterations = 10;
  };

  OscillationWatchdog();
  explicit OscillationWatchdog(Options options);

  /// Returns the point to actually apply: `chosen`, or the held point
  /// while a hold-down is active.
  std::size_t filter(std::size_t chosen);

  bool holding() const { return hold_remaining_ > 0; }
  /// Times the watchdog tripped into a hold-down.
  std::size_t trips() const { return trips_; }
  void reset();

 private:
  Options options_;
  std::vector<bool> switch_ring_;   ///< trailing window of "changed" flags
  std::size_t ring_next_ = 0;
  std::size_t applied_ = 0;
  bool has_applied_ = false;
  std::size_t hold_remaining_ = 0;
  std::size_t trips_ = 0;
};

}  // namespace socrates::margot
