// Application-Specific Run-Time Manager (AS-RTM).
//
// The decision engine of mARGOt (Section II of the paper): selects the
// most suitable operating point from the design-time knowledge base,
// given
//   i)   the application requirements (prioritized constraints + rank),
//   ii)  the design-time knowledge (profiled operating points), and
//   iii) feedback information from the monitors.
// Constraint handling follows mARGOt's semantics: constraints are
// applied in priority order; when a constraint filters out every
// remaining point, the points violating it the least survive (so an
// infeasible power budget degrades gracefully to the most power-frugal
// configurations, the behaviour visible at the left edge of Figure 4).
// Monitor feedback adapts the knowledge online: per-metric correction
// factors (EWMA of observed/expected) rescale every stored mean, which
// closes the MAPE-K loop when the platform drifts from its profile.
//
// Two graceful-degradation mechanisms defend the decision loop against
// the faults of platform/fault_injection.hpp:
//   - operating points whose compiled clone repeatedly fails are
//     *quarantined* (excluded from selection) and re-probed after an
//     exponentially growing cooldown; when every point is quarantined,
//     selection falls back to the historically safest one;
//   - an OscillationWatchdog (used by margot::Context) holds the
//     current configuration when noisy feedback makes the selection
//     thrash between points.
//
// The decision path is *incremental* (docs/OBSERVABILITY.md, "Decision
// engine epochs"): every mutation of the decision inputs bumps an
// epoch, a clean epoch returns the cached best index in O(1), and a
// dirty decision recomputes only the per-constraint value columns whose
// correction actually moved.  The dirty path itself is *branchless*:
// the knowledge base stores metric columns structure-of-arrays (see
// operating_point.hpp) and each constraint is applied as dense
// mask/select passes over a contiguous double column — no per-point
// indirection, autovectorizable — with a cached rank column feeding the
// final selection scan.  A brute-force reference implementation of the
// same semantics is retained behind set_decision_cache_enabled(false)
// and differential tests assert the two are bit-identical.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

// The AS-RTM is single-threaded by contract (the server serializes all
// access behind a per-tenant mutex); the mutable decision scratch
// buffers would corrupt silently under concurrent use.  In debug and
// sanitizer builds a reentrancy guard turns such misuse into a loud
// ContractViolation instead of a race (see SOCRATES_DEBUG_GUARDS in
// CMakeLists.txt, which turns it on for the asan/tsan presets).
#if !defined(NDEBUG) || defined(SOCRATES_DEBUG_GUARDS)
#define SOCRATES_ASRTM_REENTRANCY_GUARD 1
#else
#define SOCRATES_ASRTM_REENTRANCY_GUARD 0
#endif

#include "margot/decision_journal.hpp"
#include "margot/operating_point.hpp"
#include "margot/optimization.hpp"

namespace socrates::margot {

/// One mutation of the AS-RTM's learned state.  The checkpoint layer
/// (margot/checkpoint.hpp) appends these to an on-disk journal so a
/// restarted process can replay itself back to its pre-crash knowledge.
struct RuntimeEvent {
  enum class Kind {
    kFeedback,          ///< send_feedback(op, metric, value)
    kVariantFailure,    ///< report_variant_failure(op)
    kVariantSuccess,    ///< report_variant_success(op)
    kQuarantineAdvance, ///< advance_quarantine()
    kStateActivation,   ///< StateManager switched to state `name`
    kFeedbackRejected,  ///< send_feedback rejected an invalid observation
  };
  Kind kind = Kind::kFeedback;
  std::size_t op = 0;
  std::size_t metric = 0;
  double value = 0.0;
  std::string name;  ///< state name (kStateActivation only)
};

class Asrtm {
 public:
  explicit Asrtm(KnowledgeBase knowledge);

  const KnowledgeBase& knowledge() const { return knowledge_; }

  // ---- requirements management (may be called at any time) ------------
  /// Adds a constraint; returns its handle for later goal updates.
  std::size_t add_constraint(Constraint constraint);
  /// Changes the goal value of an existing constraint.
  void set_constraint_goal(std::size_t handle, double goal);
  /// Removes every constraint.
  void clear_constraints();
  std::size_t constraint_count() const { return constraints_.size(); }

  void set_rank(Rank rank);
  const Rank& rank() const { return rank_; }

  // ---- decision --------------------------------------------------------
  /// Index (into the knowledge base) of the best operating point under
  /// the current requirements and feedback corrections.
  std::size_t find_best_operating_point() const;

  KnowledgeBase::PointView best_operating_point() const {
    return knowledge_[find_best_operating_point()];
  }

  /// True when the returned point satisfies every constraint (false
  /// when some constraint had to be relaxed).
  bool last_selection_feasible() const { return last_feasible_; }

  // ---- incremental decision engine -------------------------------------
  /// Monotonic epoch of the decision inputs.  Every mutation that can
  /// change the outcome of find_best_operating_point (constraint
  /// add/remove/goal change, rank change, accepted correction drift,
  /// quarantine transition, restore) bumps it; while it stands still
  /// the decision is served from an O(1) cache.
  std::uint64_t decision_epoch() const { return decision_epoch_; }

  /// True when the last find_best_operating_point() returned the
  /// clean-epoch cached index without recomputing anything.
  bool last_decision_was_cached() const { return last_decision_cached_; }

  /// Correction-drift threshold: a send_feedback update that moves a
  /// correction *less than* `epsilon` away from the value the decision
  /// engine last applied does NOT invalidate the cached decision (the
  /// exact EWMA is still tracked and returned by correction()).  The
  /// default 0.0 keeps decisions bit-identical to the brute-force
  /// reference; a positive epsilon trades staleness for fewer
  /// recomputations under noisy feedback.
  ///
  /// Boundary contract: a drift of *exactly* epsilon counts as beyond
  /// the threshold and IS applied.  set_decision_epsilon itself
  /// re-syncs any nonzero pending drift unconditionally — changing the
  /// threshold re-baselines it, so the new epsilon measures drift from
  /// the current EWMA rather than from a value accepted under the old
  /// threshold.  Both sides therefore agree that drift at the boundary
  /// is actionable (regression-tested in asrtm_incremental_test).
  void set_decision_epsilon(double epsilon);
  double decision_epsilon() const { return decision_epsilon_; }

  /// Disables the incremental engine: every decision then runs the
  /// retained brute-force reference algorithm (per-call constraint
  /// sort, no cached columns, no epoch cache).  Differential tests
  /// drive one instance per mode and assert identical behaviour.
  void set_decision_cache_enabled(bool enabled);
  bool decision_cache_enabled() const { return cache_enabled_; }

  /// Drops every cached decision artifact (epoch cache and all
  /// constraint-value columns): the next decision pays the full cold
  /// cost.  Used by benches and tests to pin the cold/steady gap.
  void invalidate_decision_cache();

  // ---- feedback (knowledge adaptation) ---------------------------------
  /// Reports an observation of `metric` while `op_index` was applied.
  /// Updates the correction factor with an EWMA of observed/expected.
  /// A non-finite or non-positive observation (e.g. a stalled kernel
  /// with zero throughput) is rejected gracefully — counted in
  /// feedback_rejected() and journaled as a kFeedbackRejected runtime
  /// event — instead of aborting the process.
  void send_feedback(std::size_t op_index, std::size_t metric, double observed);

  /// Observations rejected by send_feedback since construction.
  std::size_t feedback_rejected() const { return feedback_rejected_; }

  /// Current correction factor of a metric (1.0 = knowledge matches).
  double correction(std::size_t metric) const;

  /// Forgets all feedback (e.g. after an input-feature change).
  void reset_feedback();

  /// EWMA smoothing factor for feedback, in (0, 1]; default 0.3.
  void set_feedback_inertia(double alpha);

  // ---- variant-fault quarantine ----------------------------------------
  struct QuarantineOptions {
    std::size_t failure_threshold = 2;  ///< consecutive failures to quarantine
    std::size_t base_cooldown = 8;      ///< iterations before the first re-probe
    std::size_t max_cooldown = 512;     ///< backoff ceiling
  };

  void set_quarantine_options(QuarantineOptions options);

  /// Reports that the clone behind `op_index` crashed or produced a
  /// runaway result.  After `failure_threshold` consecutive failures
  /// (immediately when the point was re-probing) the point is
  /// quarantined for base_cooldown * 2^(times quarantined) iterations.
  void report_variant_failure(std::size_t op_index);
  /// Reports a healthy run of `op_index`; resets its failure streak.
  void report_variant_success(std::size_t op_index);
  /// Advances quarantine cooldowns by one iteration; points whose
  /// cooldown expires become eligible again, on probation: one more
  /// failure re-quarantines them immediately with a doubled cooldown.
  void advance_quarantine();

  bool is_quarantined(std::size_t op_index) const;
  std::size_t quarantined_count() const;
  /// Total quarantine events since construction.
  std::size_t quarantine_events() const { return quarantine_events_; }

  // ---- crash-safe knowledge (checkpoint/restore) -----------------------
  /// Everything the AS-RTM *learned* at runtime (feedback corrections,
  /// per-point health, quarantine bookkeeping) — the state a restarted
  /// process cannot rebuild from the design-time knowledge base alone.
  struct Snapshot {
    std::vector<double> corrections;
    double feedback_alpha = 0.3;
    QuarantineOptions quarantine;
    struct OpHealthState {
      std::size_t consecutive_failures = 0;
      std::size_t times_quarantined = 0;
      std::size_t cooldown = 0;
      bool probing = false;
    };
    std::vector<OpHealthState> health;
    std::size_t quarantine_events = 0;
    /// Decision epoch at snapshot time.  restore() resumes strictly
    /// after max(current, snapshot) so epochs stay monotonic across a
    /// kill-and-resume and the restored state never serves a stale
    /// cached decision.
    std::uint64_t decision_epoch = 0;
  };

  Snapshot snapshot() const;
  /// Replaces the learned state with `snapshot`.  Throws
  /// ContractViolation when the snapshot's shape does not match this
  /// knowledge base (wrong metric or operating-point count) — the
  /// checkpoint layer converts that into a clean fresh start.
  void restore(const Snapshot& snapshot);

  /// Observer of every learned-state mutation, called *after* the
  /// mutation is applied (see RuntimeEvent).  The checkpoint layer
  /// installs its journal appender here; nullptr uninstalls.  The sink
  /// is never invoked during restore()/replay(), so replaying a journal
  /// cannot re-journal itself.
  void set_event_sink(std::function<void(const RuntimeEvent&)> sink);

  /// Applies one journaled event (used by checkpoint replay).  A
  /// kStateActivation event is a no-op here — requirements are owned by
  /// the application / StateManager; the checkpoint layer reports the
  /// last active state back to the caller instead.
  void replay(const RuntimeEvent& event);

  /// StateManager calls this on every activation so the event reaches
  /// the journal (and the decision journal's trigger note).
  void record_state_activation(const std::string& name);

  // ---- MAPE-K decision journal -----------------------------------------
  /// Starts recording every operating-point *switch* (not every query)
  /// made by find_best_operating_point, bounded to `max_records`.
  void enable_decision_journal(std::size_t max_records = 1024);
  void disable_decision_journal();
  bool decision_journal_enabled() const { return journal_ != nullptr; }
  /// The journal; throws ContractViolation when journaling is disabled.
  const DecisionJournal& decision_journal() const;

  /// Timestamp (caller's clock, e.g. the simulated platform clock)
  /// stamped onto the next journal records.  No-op when disabled.
  void set_decision_time(double seconds);
  /// Explains the next decision ("constraint 0 goal -> 2.5", "state
  /// 'energy' activated", ...).  Replace semantics: the last note
  /// before the decision wins; requirement mutators call this
  /// internally, so callers like StateManager can override with a more
  /// meaningful note afterwards.  Consumed by the next decision whether
  /// or not it switches — a note whose mutation did not change the
  /// selection is discarded, never attached to a later unrelated
  /// switch.
  void note_decision_trigger(std::string trigger);

 private:
  struct OpHealth {
    std::size_t consecutive_failures = 0;
    std::size_t times_quarantined = 0;
    std::size_t cooldown = 0;   ///< > 0: quarantined for this many iterations
    bool probing = false;       ///< cooldown expired, not yet proven healthy
  };

  /// Cached column of constraint_value() over the whole knowledge base
  /// for one constraint, tagged with the accepted-correction version of
  /// its metric so a correction move invalidates exactly the columns
  /// whose inputs changed.
  struct ConstraintColumn {
    std::vector<double> values;          ///< one entry per operating point
    std::uint64_t correction_version = 0;
    bool valid = false;
  };

  /// Cached rank value of every operating point under the applied
  /// corrections, invalidated by set_rank() or by a correction move of
  /// any metric the rank reads (per-term version tags, like the
  /// constraint columns).  Lets the selection scan read one contiguous
  /// double column instead of re-evaluating pow/multiply per candidate
  /// per decision.
  struct RankColumn {
    std::vector<double> values;            ///< one entry per operating point
    std::vector<std::uint64_t> versions;   ///< one entry per rank term
    bool valid = false;
  };

  void quarantine_op(OpHealth& health);
  /// Any decision input changed: the next decision must recompute.
  void touch_decision() { ++decision_epoch_; }
  /// Accepts corrections_[metric] as the value decisions use when it
  /// drifted beyond decision_epsilon_ from the last accepted value.
  void accept_correction(std::size_t metric);
  /// The incremental hot path: pre-sorted constraints, cached columns,
  /// reusable scratch buffers, bounded top-k for the journal.
  std::size_t decide_incremental() const;
  /// The retained brute-force reference: the original O(constraints*n)
  /// algorithm with per-call sorting and no caching.  Kept for
  /// differential testing (set_decision_cache_enabled(false)).
  std::size_t decide_brute() const;
  /// Every point is quarantined: pick the historically safest one.
  std::size_t fallback_safest(const std::vector<double>& corrections) const;
  /// The (lazily recomputed) constraint-value column for a constraint.
  const std::vector<double>& constraint_column(std::size_t handle) const;
  /// The (lazily recomputed) rank-value column over all points.
  const std::vector<double>& rank_column() const;
  /// Records a journal entry when `chosen` differs from the previously
  /// journaled point.  `runners` holds the best non-chosen survivors,
  /// already ordered best-first and trimmed.  Always consumes the
  /// pending trigger note: a note explains exactly one decision, so a
  /// mutation that does not cause a switch cannot mislabel a later one.
  void journal_switch(std::size_t chosen, double chosen_score,
                      std::vector<DecisionCandidate> runners) const;
  /// Expected (corrected) value of metric `m` for point `op`.
  double expected(std::size_t op, std::size_t m) const;
  /// Pessimistic test value for a constraint (mean +/- conf * stddev).
  double constraint_value(std::size_t op, const Constraint& c) const;
  /// How far `op` is from satisfying `c` (0 when satisfied).
  double violation(std::size_t op, const Constraint& c) const;

  /// Emits to the event sink unless a replay/restore is in progress.
  void emit(const RuntimeEvent& event) const;

  KnowledgeBase knowledge_;
  std::vector<Constraint> constraints_;  ///< insertion order (handles are indices)
  std::vector<std::size_t> sorted_constraints_;  ///< by priority, stable, kept at mutation time
  Rank rank_;
  std::vector<double> corrections_;      ///< per metric, multiplicative (exact EWMA)
  std::vector<double> applied_corrections_;  ///< values decisions use (eps-gated)
  std::vector<std::uint64_t> correction_versions_;  ///< bumped when applied moves
  double feedback_alpha_ = 0.3;
  double decision_epsilon_ = 0.0;
  std::size_t feedback_rejected_ = 0;
  bool cache_enabled_ = true;
  std::uint64_t decision_epoch_ = 1;     ///< bumped by touch_decision()
  mutable std::uint64_t decided_epoch_ = 0;  ///< epoch of cached_best_
  mutable std::size_t cached_best_ = 0;
  mutable bool cached_feasible_ = true;
  mutable bool last_decision_cached_ = false;
  mutable std::vector<ConstraintColumn> columns_;  ///< parallel to constraints_
  mutable RankColumn rank_column_;
  // Scratch buffers reused across decisions so the dirty path allocates
  // nothing once warm (the clean path allocates nothing at all).  The
  // branchless sweep works on a dense alive mask + violation column
  // instead of compacted index vectors: every pass streams all n
  // entries, which is what lets the compiler vectorize it.
  mutable std::vector<unsigned char> scratch_alive_;
  mutable std::vector<double> scratch_violations_;
  mutable bool last_feasible_ = true;
#if SOCRATES_ASRTM_REENTRANCY_GUARD
  // Trips a ContractViolation when two calls overlap on one instance
  // (see the header comment); mutable because decisions are const.
  // The wrapper keeps Asrtm movable: a move is only legal while no
  // engine call is in flight, so both sides restart with a clear flag.
  struct BusyFlag {
    std::atomic<int> flag{0};
    BusyFlag() = default;
    BusyFlag(BusyFlag&&) noexcept {}
    BusyFlag& operator=(BusyFlag&&) noexcept {
      flag.store(0, std::memory_order_relaxed);
      return *this;
    }
  };
  mutable BusyFlag engine_busy_;
#endif
  QuarantineOptions quarantine_;
  std::vector<OpHealth> health_;         ///< one entry per operating point
  std::size_t quarantine_events_ = 0;
  std::function<void(const RuntimeEvent&)> event_sink_;
  bool replaying_ = false;               ///< true inside replay()/restore()

  // Journal state is mutable because find_best_operating_point() is
  // const: recording why a decision was made does not change what is
  // decided.
  mutable std::unique_ptr<DecisionJournal> journal_;
  mutable std::string pending_trigger_;
  mutable double journal_now_ = 0.0;
  mutable std::size_t journal_last_op_ = 0;
  mutable bool journal_has_last_ = false;
};

/// Dampens configuration thrashing: feeds on the point chosen each
/// iteration and, when more than `max_switches` switches land inside
/// the trailing `window` iterations, holds the previously applied point
/// for `hold_iterations` before listening to the AS-RTM again.  Noisy
/// feedback (spiked sensors, heavy-tailed timing) otherwise makes the
/// selection oscillate between near-equivalent points, and every switch
/// pays the paper's reconfiguration overhead.
class OscillationWatchdog {
 public:
  struct Options {
    std::size_t window = 12;
    std::size_t max_switches = 4;
    std::size_t hold_iterations = 10;
  };

  OscillationWatchdog();
  explicit OscillationWatchdog(Options options);

  /// Returns the point to actually apply: `chosen`, or the held point
  /// while a hold-down is active.
  std::size_t filter(std::size_t chosen);

  bool holding() const { return hold_remaining_ > 0; }
  /// Times the watchdog tripped into a hold-down.
  std::size_t trips() const { return trips_; }
  void reset();

 private:
  Options options_;
  std::vector<bool> switch_ring_;   ///< trailing window of "changed" flags
  std::size_t ring_next_ = 0;
  std::size_t applied_ = 0;
  bool has_applied_ = false;
  std::size_t hold_remaining_ = 0;
  std::size_t trips_ = 0;
};

}  // namespace socrates::margot
