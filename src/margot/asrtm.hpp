// Application-Specific Run-Time Manager (AS-RTM).
//
// The decision engine of mARGOt (Section II of the paper): selects the
// most suitable operating point from the design-time knowledge base,
// given
//   i)   the application requirements (prioritized constraints + rank),
//   ii)  the design-time knowledge (profiled operating points), and
//   iii) feedback information from the monitors.
// Constraint handling follows mARGOt's semantics: constraints are
// applied in priority order; when a constraint filters out every
// remaining point, the points violating it the least survive (so an
// infeasible power budget degrades gracefully to the most power-frugal
// configurations, the behaviour visible at the left edge of Figure 4).
// Monitor feedback adapts the knowledge online: per-metric correction
// factors (EWMA of observed/expected) rescale every stored mean, which
// closes the MAPE-K loop when the platform drifts from its profile.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "margot/operating_point.hpp"
#include "margot/optimization.hpp"

namespace socrates::margot {

class Asrtm {
 public:
  explicit Asrtm(KnowledgeBase knowledge);

  const KnowledgeBase& knowledge() const { return knowledge_; }

  // ---- requirements management (may be called at any time) ------------
  /// Adds a constraint; returns its handle for later goal updates.
  std::size_t add_constraint(Constraint constraint);
  /// Changes the goal value of an existing constraint.
  void set_constraint_goal(std::size_t handle, double goal);
  /// Removes every constraint.
  void clear_constraints();
  std::size_t constraint_count() const { return constraints_.size(); }

  void set_rank(Rank rank);
  const Rank& rank() const { return rank_; }

  // ---- decision --------------------------------------------------------
  /// Index (into the knowledge base) of the best operating point under
  /// the current requirements and feedback corrections.
  std::size_t find_best_operating_point() const;

  const OperatingPoint& best_operating_point() const {
    return knowledge_[find_best_operating_point()];
  }

  /// True when the returned point satisfies every constraint (false
  /// when some constraint had to be relaxed).
  bool last_selection_feasible() const { return last_feasible_; }

  // ---- feedback (knowledge adaptation) ---------------------------------
  /// Reports an observation of `metric` while `op_index` was applied.
  /// Updates the correction factor with an EWMA of observed/expected.
  void send_feedback(std::size_t op_index, std::size_t metric, double observed);

  /// Current correction factor of a metric (1.0 = knowledge matches).
  double correction(std::size_t metric) const;

  /// Forgets all feedback (e.g. after an input-feature change).
  void reset_feedback();

  /// EWMA smoothing factor for feedback, in (0, 1]; default 0.3.
  void set_feedback_inertia(double alpha);

 private:
  /// Expected (corrected) value of metric `m` for point `op`.
  double expected(const OperatingPoint& op, std::size_t m) const;
  /// Pessimistic test value for a constraint (mean +/- conf * stddev).
  double constraint_value(const OperatingPoint& op, const Constraint& c) const;
  /// How far `op` is from satisfying `c` (0 when satisfied).
  double violation(const OperatingPoint& op, const Constraint& c) const;

  KnowledgeBase knowledge_;
  std::vector<Constraint> constraints_;  ///< insertion order; sorted view built per query
  Rank rank_;
  std::vector<double> corrections_;      ///< per metric, multiplicative
  double feedback_alpha_ = 0.3;
  mutable bool last_feasible_ = true;
};

}  // namespace socrates::margot
