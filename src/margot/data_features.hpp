// Input-aware application knowledge (mARGOt data features).
//
// A kernel's extra-functional behaviour depends on its input: 2mm on a
// 100x100 matrix has a different time/power surface than on 2000x2000.
// mARGOt handles this with *data features*: the design-time knowledge
// is partitioned per input-feature cluster, and at runtime the AS-RTM
// works on the knowledge whose features are closest to the current
// input.  SOCRATES inherits the mechanism: one DSE per representative
// input, one FeatureCluster each, nearest-cluster selection on every
// input change.  (In the paper's experiments the input is fixed; this
// module implements the extension the mARGOt line of work describes.)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "margot/operating_point.hpp"

namespace socrates::margot {

/// How a feature dimension participates in the distance computation.
enum class FeatureComparison {
  kDontCare,      ///< excluded from the distance
  kLessOrEqual,   ///< candidate clusters must have feature <= observed
  kGreaterOrEqual,///< candidate clusters must have feature >= observed
};

/// Declares the data-feature schema of an application.
struct DataFeatureSchema {
  std::vector<std::string> names;
  std::vector<FeatureComparison> comparisons;  ///< same length as names

  std::size_t size() const { return names.size(); }
};

/// One knowledge base tagged with the input features it was profiled on.
struct FeatureCluster {
  std::vector<double> features;
  KnowledgeBase knowledge;
};

/// Container of per-input-cluster knowledge with nearest selection.
class MultiKnowledge {
 public:
  explicit MultiKnowledge(DataFeatureSchema schema);

  const DataFeatureSchema& schema() const { return schema_; }

  /// Adds a cluster; `features` must match the schema arity.
  void add_cluster(std::vector<double> features, KnowledgeBase knowledge);

  std::size_t cluster_count() const { return clusters_.size(); }
  const FeatureCluster& cluster(std::size_t i) const;

  /// Index of the cluster closest to `observed` under normalized
  /// Euclidean distance, honouring the per-dimension comparison
  /// constraints (clusters violating a kLessOrEqual/kGreaterOrEqual
  /// dimension are only used when no cluster satisfies all of them).
  std::size_t select(const std::vector<double>& observed) const;

 private:
  double distance(const std::vector<double>& a, const std::vector<double>& b) const;
  bool admissible(const std::vector<double>& cluster_features,
                  const std::vector<double>& observed) const;

  DataFeatureSchema schema_;
  std::vector<FeatureCluster> clusters_;
};

}  // namespace socrates::margot
