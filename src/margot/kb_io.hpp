// Knowledge-base (de)serialization.
//
// mARGOt ships the design-time knowledge as files generated at the end
// of the DSE and loaded by the adaptive binary at start-up; SOCRATES
// does the same so a profile computed once can be reused across runs
// (and inspected by humans).  The format is a small CSV dialect:
//
//   # knobs: config,threads,binding
//   # metrics: exec_time_s,power_w,throughput
//   knob:config,knob:threads,knob:binding,exec_time_s,exec_time_s:sd,...
//   0,1,0,11.86,0.21,55.4,0.4,0.0843,0.0015
//
// Numbers round-trip exactly (printed with max_digits10).
#pragma once

#include <iosfwd>
#include <string>

#include "margot/operating_point.hpp"
#include "support/error.hpp"

namespace socrates::margot {

/// Thrown by load_knowledge / knowledge_from_string on malformed input.
/// A *runtime* error (socrates::Error), not a contract violation: a
/// truncated or hand-edited knowledge file is an expected production
/// hazard, and the message always names the offending line (and cell)
/// so the file can be repaired.
class KnowledgeFormatError : public Error {
 public:
  explicit KnowledgeFormatError(const std::string& what) : Error(what) {}
};

/// Writes the knowledge base to a stream (see format above).
void save_knowledge(const KnowledgeBase& kb, std::ostream& out);

/// Serializes to a string.
std::string knowledge_to_string(const KnowledgeBase& kb);

/// Parses a knowledge base from a stream.  Throws KnowledgeFormatError
/// on malformed input (missing headers, wrong column counts,
/// non-numeric cells), naming the offending line and field.
KnowledgeBase load_knowledge(std::istream& in);

/// Parses from a string.
KnowledgeBase knowledge_from_string(const std::string& text);

}  // namespace socrates::margot
