#include "margot/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "observability/metrics.hpp"
#include "support/error.hpp"

namespace socrates::margot {

namespace {

/// Consistency constant of the MAD estimator for normal data.
constexpr double kMadToSigma = 1.4826;

double median_of(std::vector<double> v) {
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double hi = v[mid];
  if (n % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace

CircularMonitor::CircularMonitor(std::size_t window) : window_(window) {
  SOCRATES_REQUIRE_MSG(window >= 1,
                       "CircularMonitor: window must be >= 1 (a zero-sized "
                       "window can never hold an observation)");
  values_.reserve(window);
}

bool CircularMonitor::push(double value) {
  if (filter_enabled_ && is_outlier(value)) {
    ++consecutive_rejections_;
    if (consecutive_rejections_ <= filter_.max_consecutive) {
      ++outliers_rejected_;
      return false;
    }
    // Enough consecutive flags: this is a level shift, not a spike.
  }
  consecutive_rejections_ = 0;
  if (values_.size() < window_) {
    values_.push_back(value);
    return true;
  }
  values_[next_] = value;
  next_ = (next_ + 1) % window_;
  return true;
}

bool CircularMonitor::is_outlier(double value) const {
  if (values_.size() < filter_.min_samples) return false;
  const double med = median();
  const double spread = kMadToSigma * mad();
  if (spread <= 0.0) return false;  // no dispersion information
  return std::abs(value - med) > filter_.threshold * spread;
}

void CircularMonitor::clear() {
  values_.clear();
  next_ = 0;
  consecutive_rejections_ = 0;
  outliers_rejected_ = 0;
}

void CircularMonitor::enable_outlier_filter() { enable_outlier_filter(OutlierFilter()); }

void CircularMonitor::enable_outlier_filter(OutlierFilter filter) {
  SOCRATES_REQUIRE(filter.threshold > 0.0);
  SOCRATES_REQUIRE(filter.min_samples >= 1);
  SOCRATES_REQUIRE(filter.max_consecutive >= 1);
  filter_enabled_ = true;
  filter_ = filter;
}

void CircularMonitor::disable_outlier_filter() {
  filter_enabled_ = false;
  consecutive_rejections_ = 0;
}

double CircularMonitor::last() const {
  SOCRATES_REQUIRE(!values_.empty());
  if (values_.size() < window_) return values_.back();
  // The slot just before the insertion cursor holds the newest value.
  return values_[(next_ + window_ - 1) % window_];
}

double CircularMonitor::average() const {
  SOCRATES_REQUIRE(!values_.empty());
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double CircularMonitor::stddev() const {
  SOCRATES_REQUIRE(!values_.empty());
  if (values_.size() < 2) return 0.0;
  const double avg = average();
  double acc = 0.0;
  for (const double v : values_) acc += (v - avg) * (v - avg);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double CircularMonitor::min() const {
  SOCRATES_REQUIRE(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double CircularMonitor::max() const {
  SOCRATES_REQUIRE(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double CircularMonitor::median() const {
  SOCRATES_REQUIRE(!values_.empty());
  return median_of(values_);
}

double CircularMonitor::mad() const {
  SOCRATES_REQUIRE(!values_.empty());
  const double med = median_of(values_);
  std::vector<double> deviations;
  deviations.reserve(values_.size());
  for (const double v : values_) deviations.push_back(std::abs(v - med));
  return median_of(std::move(deviations));
}

// ---- RegionMonitorBase -----------------------------------------------------

void RegionMonitorBase::begin(const char* who) {
  SOCRATES_REQUIRE_MSG(!running_, who << "::start() while already running");
  running_ = true;
}

void RegionMonitorBase::end(const char* who) {
  SOCRATES_REQUIRE_MSG(running_, who << "::stop() without start()");
  running_ = false;
}

double RegionMonitorBase::record(double value, bool valid) {
  last_observation_ = value;
  if (hardened_ && !valid) {
    last_rejected_ = true;
    ++rejected_;
  } else {
    last_rejected_ = !stats_.push(value);
    if (last_rejected_) ++rejected_;
  }
  if (last_rejected_) {
    static Counter& rejections =
        MetricsRegistry::global().counter("monitor.rejections");
    rejections.add(1);
  }
  return value;
}

// ---- TimeMonitor -----------------------------------------------------------

TimeMonitor::TimeMonitor(const platform::Clock& clock, std::size_t window)
    : RegionMonitorBase(window), clock_(clock) {}

void TimeMonitor::start() {
  begin("TimeMonitor");
  start_time_ = clock_.now_s();
}

double TimeMonitor::stop() {
  end("TimeMonitor");
  const double elapsed = clock_.now_s() - start_time_;
  return record(elapsed, std::isfinite(elapsed) && elapsed >= 0.0);
}

void TimeMonitor::cancel() {
  SOCRATES_REQUIRE_MSG(running_, "TimeMonitor::cancel() without start()");
  running_ = false;
}

// ---- ThroughputMonitor -----------------------------------------------------

ThroughputMonitor::ThroughputMonitor(const platform::Clock& clock, std::size_t window)
    : RegionMonitorBase(window), clock_(clock) {}

void ThroughputMonitor::start() {
  begin("ThroughputMonitor");
  start_time_ = clock_.now_s();
}

double ThroughputMonitor::stop(double units) {
  end("ThroughputMonitor");
  SOCRATES_REQUIRE(units > 0.0);
  const double elapsed = clock_.now_s() - start_time_;
  SOCRATES_REQUIRE_MSG(elapsed != 0.0, "zero-length throughput region");
  const double thr = units / elapsed;
  return record(thr, std::isfinite(thr) && thr > 0.0);
}

void ThroughputMonitor::cancel() {
  SOCRATES_REQUIRE_MSG(running_, "ThroughputMonitor::cancel() without start()");
  running_ = false;
}

// ---- EnergyMonitor ---------------------------------------------------------

namespace {

/// Wrap-corrects `delta_uj` when it is negative but lands inside the
/// register range after adding one wrap; returns whether it did.
bool correct_wrap(double& delta_uj, double wrap_range_uj) {
  if (!(delta_uj < 0.0) || !std::isfinite(delta_uj)) return false;
  const double corrected = delta_uj + wrap_range_uj;
  if (corrected < 0.0 || corrected > wrap_range_uj) return false;
  delta_uj = corrected;
  return true;
}

}  // namespace

EnergyMonitor::EnergyMonitor(const platform::EnergyCounter& counter, std::size_t window)
    : RegionMonitorBase(window), counter_(counter) {}

void EnergyMonitor::start() {
  begin("EnergyMonitor");
  start_energy_uj_ = counter_.energy_uj();
}

double EnergyMonitor::stop() {
  end("EnergyMonitor");
  double delta_uj = counter_.energy_uj() - start_energy_uj_;
  if (hardened() && correct_wrap(delta_uj, wrap_range_uj_)) ++wraps_corrected_;
  const double joules = delta_uj * 1e-6;
  return record(joules, std::isfinite(joules) && joules > 0.0);
}

void EnergyMonitor::cancel() {
  SOCRATES_REQUIRE_MSG(running_, "EnergyMonitor::cancel() without start()");
  running_ = false;
}

void EnergyMonitor::set_wrap_range_uj(double range_uj) {
  SOCRATES_REQUIRE(range_uj > 0.0);
  wrap_range_uj_ = range_uj;
}

// ---- PowerMonitor ----------------------------------------------------------

PowerMonitor::PowerMonitor(const platform::Clock& clock,
                           const platform::EnergyCounter& counter, std::size_t window)
    : RegionMonitorBase(window), clock_(clock), counter_(counter) {}

void PowerMonitor::start() {
  begin("PowerMonitor");
  start_time_ = clock_.now_s();
  start_energy_uj_ = counter_.energy_uj();
}

double PowerMonitor::stop() {
  end("PowerMonitor");
  const double elapsed = clock_.now_s() - start_time_;
  SOCRATES_REQUIRE_MSG(elapsed != 0.0, "zero-length power region");
  double delta_uj = counter_.energy_uj() - start_energy_uj_;
  if (hardened() && correct_wrap(delta_uj, wrap_range_uj_)) ++wraps_corrected_;
  const double watts = delta_uj * 1e-6 / elapsed;
  const bool valid = std::isfinite(watts) && watts > 0.0 && elapsed > 0.0;
  return record(watts, valid);
}

void PowerMonitor::cancel() {
  SOCRATES_REQUIRE_MSG(running_, "PowerMonitor::cancel() without start()");
  running_ = false;
}

void PowerMonitor::set_wrap_range_uj(double range_uj) {
  SOCRATES_REQUIRE(range_uj > 0.0);
  wrap_range_uj_ = range_uj;
}

}  // namespace socrates::margot
