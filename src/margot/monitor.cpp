#include "margot/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace socrates::margot {

CircularMonitor::CircularMonitor(std::size_t window) : window_(window) {
  SOCRATES_REQUIRE(window >= 1);
  values_.reserve(window);
}

void CircularMonitor::push(double value) {
  if (values_.size() < window_) {
    values_.push_back(value);
    return;
  }
  values_[next_] = value;
  next_ = (next_ + 1) % window_;
}

void CircularMonitor::clear() {
  values_.clear();
  next_ = 0;
}

double CircularMonitor::last() const {
  SOCRATES_REQUIRE(!values_.empty());
  if (values_.size() < window_) return values_.back();
  // The slot just before the insertion cursor holds the newest value.
  return values_[(next_ + window_ - 1) % window_];
}

double CircularMonitor::average() const {
  SOCRATES_REQUIRE(!values_.empty());
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double CircularMonitor::stddev() const {
  SOCRATES_REQUIRE(!values_.empty());
  if (values_.size() < 2) return 0.0;
  const double avg = average();
  double acc = 0.0;
  for (const double v : values_) acc += (v - avg) * (v - avg);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double CircularMonitor::min() const {
  SOCRATES_REQUIRE(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double CircularMonitor::max() const {
  SOCRATES_REQUIRE(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

// ---- TimeMonitor -----------------------------------------------------------

TimeMonitor::TimeMonitor(const platform::Clock& clock, std::size_t window)
    : clock_(clock), stats_(window) {}

void TimeMonitor::start() {
  SOCRATES_REQUIRE_MSG(!running_, "TimeMonitor::start() while already running");
  start_time_ = clock_.now_s();
  running_ = true;
}

double TimeMonitor::stop() {
  SOCRATES_REQUIRE_MSG(running_, "TimeMonitor::stop() without start()");
  running_ = false;
  const double elapsed = clock_.now_s() - start_time_;
  stats_.push(elapsed);
  return elapsed;
}

// ---- ThroughputMonitor -----------------------------------------------------

ThroughputMonitor::ThroughputMonitor(const platform::Clock& clock, std::size_t window)
    : clock_(clock), stats_(window) {}

void ThroughputMonitor::start() {
  SOCRATES_REQUIRE_MSG(!running_, "ThroughputMonitor::start() while already running");
  start_time_ = clock_.now_s();
  running_ = true;
}

double ThroughputMonitor::stop(double units) {
  SOCRATES_REQUIRE_MSG(running_, "ThroughputMonitor::stop() without start()");
  SOCRATES_REQUIRE(units > 0.0);
  running_ = false;
  const double elapsed = clock_.now_s() - start_time_;
  SOCRATES_REQUIRE_MSG(elapsed > 0.0, "zero-length throughput region");
  const double thr = units / elapsed;
  stats_.push(thr);
  return thr;
}

// ---- EnergyMonitor ---------------------------------------------------------

EnergyMonitor::EnergyMonitor(const platform::EnergyCounter& counter, std::size_t window)
    : counter_(counter), stats_(window) {}

void EnergyMonitor::start() {
  SOCRATES_REQUIRE_MSG(!running_, "EnergyMonitor::start() while already running");
  start_energy_uj_ = counter_.energy_uj();
  running_ = true;
}

double EnergyMonitor::stop() {
  SOCRATES_REQUIRE_MSG(running_, "EnergyMonitor::stop() without start()");
  running_ = false;
  const double joules = (counter_.energy_uj() - start_energy_uj_) * 1e-6;
  stats_.push(joules);
  return joules;
}

// ---- PowerMonitor ----------------------------------------------------------

PowerMonitor::PowerMonitor(const platform::Clock& clock,
                           const platform::EnergyCounter& counter, std::size_t window)
    : clock_(clock), counter_(counter), stats_(window) {}

void PowerMonitor::start() {
  SOCRATES_REQUIRE_MSG(!running_, "PowerMonitor::start() while already running");
  start_time_ = clock_.now_s();
  start_energy_uj_ = counter_.energy_uj();
  running_ = true;
}

double PowerMonitor::stop() {
  SOCRATES_REQUIRE_MSG(running_, "PowerMonitor::stop() without start()");
  running_ = false;
  const double elapsed = clock_.now_s() - start_time_;
  SOCRATES_REQUIRE_MSG(elapsed > 0.0, "zero-length power region");
  const double joules = (counter_.energy_uj() - start_energy_uj_) * 1e-6;
  const double watts = joules / elapsed;
  stats_.push(watts);
  return watts;
}

}  // namespace socrates::margot
