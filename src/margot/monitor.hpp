// The mARGOt monitoring infrastructure.
//
// Monitors gather insight on the actual behaviour of the target kernel
// and of the execution environment (Section II of the paper).  Each
// monitor keeps a circular buffer of the last `window` observations and
// exposes statistical providers (average, standard deviation, min, max,
// last).  Concrete monitors wrap the platform time base and the RAPL
// energy counter:
//   TimeMonitor       — wall time of a start()/stop() region
//   ThroughputMonitor — completed units per second of a region
//   EnergyMonitor     — Joules consumed by a region (RAPL delta)
//   PowerMonitor      — average Watts over a region (energy / time)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "platform/clock.hpp"
#include "platform/rapl.hpp"

namespace socrates::margot {

/// Fixed-capacity circular buffer of observations with statistics.
class CircularMonitor {
 public:
  explicit CircularMonitor(std::size_t window = 1);

  void push(double value);
  void clear();

  std::size_t window() const { return window_; }
  std::size_t count() const { return values_.size(); }  ///< <= window
  bool empty() const { return values_.empty(); }

  double last() const;
  double average() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t window_;
  std::size_t next_ = 0;       ///< insertion cursor once the buffer is full
  std::vector<double> values_; ///< grows to `window_` then wraps
};

/// Measures the wall-clock time of a region in seconds.
class TimeMonitor {
 public:
  TimeMonitor(const platform::Clock& clock, std::size_t window = 1);

  void start();
  /// Records the elapsed time; requires a prior start().
  double stop();

  const CircularMonitor& stats() const { return stats_; }

 private:
  const platform::Clock& clock_;
  CircularMonitor stats_;
  double start_time_ = 0.0;
  bool running_ = false;
};

/// Units of work completed per second over a region.
class ThroughputMonitor {
 public:
  ThroughputMonitor(const platform::Clock& clock, std::size_t window = 1);

  void start();
  /// Records `units / elapsed`; requires a prior start().
  double stop(double units = 1.0);

  const CircularMonitor& stats() const { return stats_; }

 private:
  const platform::Clock& clock_;
  CircularMonitor stats_;
  double start_time_ = 0.0;
  bool running_ = false;
};

/// Joules consumed over a region (RAPL counter delta).
class EnergyMonitor {
 public:
  EnergyMonitor(const platform::EnergyCounter& counter, std::size_t window = 1);

  void start();
  double stop();

  const CircularMonitor& stats() const { return stats_; }

 private:
  const platform::EnergyCounter& counter_;
  CircularMonitor stats_;
  double start_energy_uj_ = 0.0;
  bool running_ = false;
};

/// Average power over a region: RAPL energy delta / clock delta.
class PowerMonitor {
 public:
  PowerMonitor(const platform::Clock& clock, const platform::EnergyCounter& counter,
               std::size_t window = 1);

  void start();
  double stop();

  const CircularMonitor& stats() const { return stats_; }

 private:
  const platform::Clock& clock_;
  const platform::EnergyCounter& counter_;
  CircularMonitor stats_;
  double start_time_ = 0.0;
  double start_energy_uj_ = 0.0;
  bool running_ = false;
};

}  // namespace socrates::margot
