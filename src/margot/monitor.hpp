// The mARGOt monitoring infrastructure.
//
// Monitors gather insight on the actual behaviour of the target kernel
// and of the execution environment (Section II of the paper).  Each
// monitor keeps a circular buffer of the last `window` observations and
// exposes statistical providers (average, standard deviation, min, max,
// last, plus the robust median / MAD pair).  Concrete monitors wrap the
// platform time base and the RAPL energy counter:
//   TimeMonitor       — wall time of a start()/stop() region
//   ThroughputMonitor — completed units per second of a region
//   EnergyMonitor     — Joules consumed by a region (RAPL delta)
//   PowerMonitor      — average Watts over a region (energy / time)
//
// Real sensors misbehave (platform/fault_injection.hpp models how), so
// the monitors are *hardened by default*: energy deltas that straddle a
// RAPL register wrap are corrected, and samples that remain negative or
// non-finite are rejected (tallied, not recorded) instead of steering
// the AS-RTM.  Hardening is observable through last_rejected() /
// rejected() and can be disabled (set_hardened(false)) to measure the
// unprotected baseline — bench/ablation_fault_tolerance does exactly
// that.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "platform/clock.hpp"
#include "platform/rapl.hpp"

namespace socrates::margot {

/// Fixed-capacity circular buffer of observations with statistics.
class CircularMonitor {
 public:
  /// Hampel-style outlier filter: a pushed value farther than
  /// `threshold` robust sigmas (1.4826 * MAD) from the window median is
  /// rejected.  A genuine level shift (the co-runner of Figure 5)
  /// produces *consecutive* flags, so after `max_consecutive` rejected
  /// pushes the filter concedes it is looking at a shift and accepts.
  /// Windows with MAD == 0 (all-identical samples, or count below
  /// `min_samples`) carry no dispersion information and never reject.
  struct OutlierFilter {
    double threshold = 6.0;
    std::size_t min_samples = 3;
    std::size_t max_consecutive = 3;
  };

  explicit CircularMonitor(std::size_t window = 1);

  /// Records `value` unless the enabled outlier filter flags it.
  /// Returns true when the value was recorded.
  bool push(double value);
  void clear();

  std::size_t window() const { return window_; }
  std::size_t count() const { return values_.size(); }  ///< <= window
  bool empty() const { return values_.empty(); }

  double last() const;
  double average() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Median of the current window (linear interpolation on even counts).
  double median() const;
  /// Median absolute deviation from the median (robust spread).
  double mad() const;

  void enable_outlier_filter();  ///< with default OutlierFilter settings
  void enable_outlier_filter(OutlierFilter filter);
  void disable_outlier_filter();
  bool outlier_filter_enabled() const { return filter_enabled_; }
  /// Pushes the filter rejected since construction / clear().
  std::size_t outliers_rejected() const { return outliers_rejected_; }

 private:
  bool is_outlier(double value) const;

  std::size_t window_;
  std::size_t next_ = 0;       ///< insertion cursor once the buffer is full
  std::vector<double> values_; ///< grows to `window_` then wraps
  bool filter_enabled_ = false;
  OutlierFilter filter_;
  std::size_t consecutive_rejections_ = 0;
  std::size_t outliers_rejected_ = 0;
};

/// State and bookkeeping shared by the concrete region monitors: the
/// start()/stop() protocol (misuse throws ContractViolation via
/// support/error.hpp), sample-rejection accounting and the hardening
/// switch.
class RegionMonitorBase {
 public:
  const CircularMonitor& stats() const { return stats_; }
  CircularMonitor& mutable_stats() { return stats_; }

  /// Hardened (default): invalid samples are rejected, wrap deltas
  /// corrected.  Raw: every observation is recorded verbatim.
  void set_hardened(bool hardened) { hardened_ = hardened; }
  bool hardened() const { return hardened_; }

  /// True while a region is open (start() without stop()).
  bool running() const { return running_; }

  /// The raw value observed by the last stop(), before any rejection.
  double last_observation() const { return last_observation_; }
  /// True when the last stop() rejected its sample (hardening or the
  /// outlier filter).
  bool last_rejected() const { return last_rejected_; }
  /// Samples rejected since construction.
  std::size_t rejected() const { return rejected_; }

 protected:
  explicit RegionMonitorBase(std::size_t window) : stats_(window) {}

  void begin(const char* who);
  void end(const char* who);
  /// Records or rejects `value`; returns it either way.
  double record(double value, bool valid);

  CircularMonitor stats_;
  bool running_ = false;

 private:
  bool hardened_ = true;
  double last_observation_ = 0.0;
  bool last_rejected_ = false;
  std::size_t rejected_ = 0;
};

/// Measures the wall-clock time of a region in seconds.
class TimeMonitor : public RegionMonitorBase {
 public:
  TimeMonitor(const platform::Clock& clock, std::size_t window = 1);

  void start();
  /// Records the elapsed time; requires a prior start().  Hardened
  /// monitors reject non-finite or negative elapsed times (jittery
  /// clocks can produce both).
  double stop();
  /// Abandons the open region without recording (e.g. the kernel
  /// invocation crashed).  Requires a prior start().
  void cancel();

 private:
  const platform::Clock& clock_;
  double start_time_ = 0.0;
};

/// Units of work completed per second over a region.
class ThroughputMonitor : public RegionMonitorBase {
 public:
  ThroughputMonitor(const platform::Clock& clock, std::size_t window = 1);

  void start();
  /// Records `units / elapsed`; requires a prior start().  A region of
  /// exactly zero length is a caller bug and throws; a *negative*
  /// elapsed (faulty clock) is rejected when hardened.
  double stop(double units = 1.0);
  void cancel();

 private:
  const platform::Clock& clock_;
  double start_time_ = 0.0;
};

/// Joules consumed over a region (RAPL counter delta).
class EnergyMonitor : public RegionMonitorBase {
 public:
  EnergyMonitor(const platform::EnergyCounter& counter, std::size_t window = 1);

  void start();
  /// Records the counter delta in Joules.  Hardened monitors correct a
  /// delta that straddled a register wrap (end < start with the
  /// corrected value inside wrap_range) and reject samples that remain
  /// non-finite or non-positive (stuck counter, failed read).
  double stop();
  void cancel();

  /// Register range used for wraparound correction (uJ); defaults to
  /// the 32-bit RAPL energy register.
  void set_wrap_range_uj(double range_uj);
  double wrap_range_uj() const { return wrap_range_uj_; }
  /// Wrapped deltas successfully corrected so far.
  std::size_t wraps_corrected() const { return wraps_corrected_; }

 private:
  const platform::EnergyCounter& counter_;
  double start_energy_uj_ = 0.0;
  double wrap_range_uj_ = platform::kRaplWrapRangeUj;
  std::size_t wraps_corrected_ = 0;
};

/// Average power over a region: RAPL energy delta / clock delta.
class PowerMonitor : public RegionMonitorBase {
 public:
  PowerMonitor(const platform::Clock& clock, const platform::EnergyCounter& counter,
               std::size_t window = 1);

  void start();
  /// Records joules/elapsed.  Same wraparound correction and rejection
  /// rules as EnergyMonitor, plus rejection of non-positive elapsed
  /// times when hardened.  A region of exactly zero length throws.
  double stop();
  void cancel();

  void set_wrap_range_uj(double range_uj);
  double wrap_range_uj() const { return wrap_range_uj_; }
  std::size_t wraps_corrected() const { return wraps_corrected_; }

 private:
  const platform::Clock& clock_;
  const platform::EnergyCounter& counter_;
  double start_time_ = 0.0;
  double start_energy_uj_ = 0.0;
  double wrap_range_uj_ = platform::kRaplWrapRangeUj;
  std::size_t wraps_corrected_ = 0;
};

}  // namespace socrates::margot
