// Design Space Exploration.
//
// SOCRATES profiles the woven application over the full factorial
// autotuning space — compiler configuration (CO) x OpenMP threads (TN)
// x binding policy (BP) — to build the design-time knowledge mARGOt
// needs (Section III: "we used a full-factorial analysis over the
// design space, however our approach is agnostic with respect to the
// used DSE strategy").  Each point is measured `repetitions` times with
// measurement noise; the mean/stddev land in the knowledge base.
// The Pareto filter over (throughput up, power down) feeds Figure 3.
//
// Every design point is independent, so the sweep fans out over a
// TaskPool.  Each point draws its measurement noise from an RNG stream
// derived from (seed, flat point index): the profile is bit-identical
// to a serial sweep at any job count (the determinism contract of
// docs/PIPELINE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "margot/operating_point.hpp"
#include "platform/flags.hpp"
#include "platform/kernel_model.hpp"
#include "platform/perf_model.hpp"
#include "platform/topology.hpp"
#include "support/task_pool.hpp"

namespace socrates::dse {

/// The factorial knob space.
struct DesignSpace {
  std::vector<platform::NamedConfig> configs;
  std::vector<std::size_t> thread_counts;
  std::vector<platform::BindingPolicy> bindings;

  std::size_t size() const {
    return configs.size() * thread_counts.size() * bindings.size();
  }

  /// The paper's space: 8 configs (Os,O1,O2,O3,CF1-4) x threads
  /// 1..logical cores x {close, spread}.
  static DesignSpace paper_space(const platform::MachineTopology& topology);
};

/// One profiled configuration.
struct ProfiledPoint {
  std::size_t config_index = 0;  ///< into DesignSpace::configs
  std::string config_name;
  platform::Configuration configuration;
  double exec_time_mean_s = 0.0;
  double exec_time_stddev_s = 0.0;
  double power_mean_w = 0.0;
  double power_stddev_w = 0.0;

  double throughput() const { return 1.0 / exec_time_mean_s; }
};

/// Profiles one design point: `repetitions` noisy runs, mean/stddev in
/// the returned ProfiledPoint.  Callers derive `noise` per point
/// (derive_stream) so results do not depend on profiling order.
ProfiledPoint profile_point(const platform::PerformanceModel& model,
                            const platform::KernelModelParams& kernel,
                            const DesignSpace& space, std::size_t config_index,
                            std::size_t threads, platform::BindingPolicy binding,
                            std::size_t repetitions, Rng& noise, double work_scale);

/// Profiles every point of the space (`repetitions` noisy runs each).
/// Runs on `pool` (TaskPool::shared() when null); output is identical
/// at any job count for a fixed seed.
std::vector<ProfiledPoint> full_factorial_dse(const platform::PerformanceModel& model,
                                              const platform::KernelModelParams& kernel,
                                              const DesignSpace& space,
                                              std::size_t repetitions,
                                              std::uint64_t seed,
                                              double work_scale = 1.0,
                                              TaskPool* pool = nullptr);

/// full_factorial_dse with per-point fault tolerance: each design
/// point gets `point_attempts` tries (an injected chaos fault or a
/// transient exception consumes one); a point that exhausts them is
/// *dropped* — the sweep finishes with reduced coverage instead of
/// aborting a whole campaign for one flaky measurement.  Logic errors
/// (caller bugs) still propagate.  Surviving points keep the flat
/// order and are byte-identical to a chaos-free run: every attempt
/// re-derives the point's own noise stream from (seed, index).
struct SupervisedDseResult {
  std::vector<ProfiledPoint> points;  ///< survivors, original order
  std::size_t dropped = 0;            ///< points lost after all attempts
  std::size_t retries = 0;            ///< extra attempts that were needed
};

SupervisedDseResult supervised_dse(const platform::PerformanceModel& model,
                                   const platform::KernelModelParams& kernel,
                                   const DesignSpace& space, std::size_t repetitions,
                                   std::uint64_t seed, double work_scale = 1.0,
                                   TaskPool* pool = nullptr,
                                   std::size_t point_attempts = 2);

/// Writes a profile in the artifact-cache text format (hexfloat
/// doubles, exact round trip).
void save_profile(std::ostream& out, const std::vector<ProfiledPoint>& points);

/// Parses a profile written by save_profile().  Throws
/// ContractViolation on malformed input.
std::vector<ProfiledPoint> load_profile(std::istream& in);

/// Indices of the Pareto-optimal points (ascending): maximize
/// throughput, minimize power.  A point is dominated when another point
/// is at least as good on both axes and strictly better on one;
/// duplicate points never dominate each other, so exact ties all
/// survive.  Sort-based sweep, O(n log n).
std::vector<std::size_t> pareto_filter(const std::vector<ProfiledPoint>& points);

/// Exports profiled points to a mARGOt knowledge base with knobs
/// (config, threads, binding) and metrics (exec_time_s, power_w,
/// throughput) — the ContextMetrics schema.
margot::KnowledgeBase to_knowledge_base(const std::vector<ProfiledPoint>& points);

/// Exports only the selected points (indices into `points`, e.g. the
/// representative set of representative.hpp) — the pruned knowledge
/// base the AS-RTM searches when SOCRATES_DSE_PRUNE is active.
margot::KnowledgeBase to_knowledge_base(const std::vector<ProfiledPoint>& points,
                                        const std::vector<std::size_t>& indices);

/// Decodes a knowledge-base knob vector back into a platform
/// configuration, given the space it was built from.
platform::Configuration decode_knobs(const DesignSpace& space,
                                     const std::vector<int>& knobs);

}  // namespace socrates::dse
