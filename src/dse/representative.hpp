// Representative-set pruning of an explored design space.
//
// Luo et al. (arXiv 1407.4075) observe that a multiversioned binary
// does not need one clone per Pareto-optimal configuration: a small
// *representative set* that spreads across the front preserves almost
// all of the achievable quality while shrinking the clone set the
// weaver must emit and the knowledge base the AS-RTM must search.
// This layer implements that reduction for SOCRATES: cluster the
// explored Pareto front in normalized objective space (throughput up,
// power down) and keep at most K representatives, chosen by a
// deterministic hypervolume-greedy sweep that always retains both front
// extremes (the corners graceful degradation falls back to) and then
// the knees — each representative stands in for the front segment whose
// dominated area it preserves.
//
// socrates::Pipeline applies it between the Dse and Weave stages when
// SOCRATES_DSE_PRUNE > 0: the weaver then emits only the pruned clone
// pairs and to_knowledge_base exports only the representatives.
#pragma once

#include <cstddef>
#include <vector>

#include "dse/dse.hpp"

namespace socrates::dse {

/// The pruning outcome over one explored profile.
struct RepresentativeSet {
  /// Indices (into the profiled points) of the kept representatives —
  /// always a subset of `front`, in selection order: the two extremes
  /// first, then descending marginal dominated area, so a caller that
  /// truncates or spends budget in order keeps the most valuable
  /// points.  (When the whole front fits under the cap it is returned
  /// ascending.)
  std::vector<std::size_t> representatives;
  /// Indices of the full explored Pareto front, ascending.
  std::vector<std::size_t> front;
};

/// Prunes the Pareto front of `points` to at most `max_representatives`
/// entries (0 = keep the whole front).  Deterministic: the two front
/// extremes (cheapest and fastest) are always kept, then a
/// hypervolume-greedy sweep in normalized objective space fills the
/// remaining slots — each round keeps the point adding the most
/// dominated area, ties broken by the lower point index — and stops
/// early once only duplicates remain.
RepresentativeSet select_representatives(const std::vector<ProfiledPoint>& points,
                                         std::size_t max_representatives);

/// 2D hypervolume of the Pareto front of `points` against the reference
/// point (throughput 0, power `ref_power`): the area dominated by the
/// front in (throughput up, power down) space.  Front points with power
/// above the reference contribute nothing.  The bench compares fronts
/// via the ratio of their hypervolumes at a shared reference.
double pareto_hypervolume(const std::vector<ProfiledPoint>& points, double ref_power);

/// One clone the weaver must emit for a pruned profile.
struct ClonePair {
  std::size_t config_index = 0;  ///< into DesignSpace::configs
  platform::BindingPolicy binding = platform::BindingPolicy::kClose;
};

/// The unique (config, binding) pairs behind `indices` (into `points`),
/// in config-major-then-binding order — the version-id order
/// weaver::apply_multiversioning assigns.
std::vector<ClonePair> clone_pairs(const std::vector<ProfiledPoint>& points,
                                   const std::vector<std::size_t>& indices);

}  // namespace socrates::dse
