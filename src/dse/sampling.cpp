#include "dse/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"

namespace socrates::dse {

namespace {

/// Profiles the given flat indices of the full factorial space in
/// parallel, each point on its own (seed, flat index) noise stream —
/// the same streams full_factorial_dse uses, so a sampled point equals
/// the corresponding full-sweep point bit for bit.
std::vector<ProfiledPoint> profile_flat_indices(
    const platform::PerformanceModel& model, const platform::KernelModelParams& kernel,
    const DesignSpace& space, const std::vector<std::size_t>& flat_indices,
    std::size_t repetitions, std::uint64_t seed, double work_scale, TaskPool* pool) {
  const std::size_t n_threads = space.thread_counts.size();
  const std::size_t n_bindings = space.bindings.size();
  std::vector<ProfiledPoint> out(flat_indices.size());
  TaskPool& executor = pool != nullptr ? *pool : TaskPool::shared();
  executor.parallel_for(flat_indices.size(), [&](std::size_t k) {
    const std::size_t flat = flat_indices[k];
    const std::size_t ci = flat / (n_threads * n_bindings);
    const std::size_t ti = (flat / n_bindings) % n_threads;
    const std::size_t bi = flat % n_bindings;
    Rng noise(derive_stream(seed, flat));
    out[k] = profile_point(model, kernel, space, ci, space.thread_counts[ti],
                           space.bindings[bi], repetitions, noise, work_scale);
  });
  return out;
}

}  // namespace

std::vector<ProfiledPoint> random_subset_dse(const platform::PerformanceModel& model,
                                             const platform::KernelModelParams& kernel,
                                             const DesignSpace& space, double fraction,
                                             std::size_t repetitions, std::uint64_t seed,
                                             double work_scale, TaskPool* pool) {
  SOCRATES_REQUIRE(fraction > 0.0 && fraction <= 1.0);
  SOCRATES_REQUIRE(repetitions >= 1);
  const std::size_t total = space.size();
  SOCRATES_REQUIRE(total > 0);
  const auto budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(total))));

  // Draw distinct flat indices via a partial Fisher-Yates over [0, total).
  Rng rng(seed);
  std::vector<std::size_t> indices(total);
  for (std::size_t i = 0; i < total; ++i) indices[i] = i;
  rng.shuffle(indices);
  indices.resize(budget);
  std::sort(indices.begin(), indices.end());  // deterministic profiling order

  return profile_flat_indices(model, kernel, space, indices, repetitions, seed,
                              work_scale, pool);
}

std::vector<ProfiledPoint> stratified_dse(const platform::PerformanceModel& model,
                                          const platform::KernelModelParams& kernel,
                                          const DesignSpace& space,
                                          std::size_t threads_per_stratum,
                                          std::size_t repetitions, std::uint64_t seed,
                                          double work_scale, TaskPool* pool) {
  SOCRATES_REQUIRE(threads_per_stratum >= 2);
  SOCRATES_REQUIRE(repetitions >= 1);
  SOCRATES_REQUIRE(!space.thread_counts.empty());

  // Geometric ladder over the available thread counts, always anchored
  // at the smallest and largest (the corners the AS-RTM falls back to).
  const std::size_t n_threads = space.thread_counts.size();
  std::set<std::size_t> picked_indices = {0, n_threads - 1};
  const double steps = static_cast<double>(threads_per_stratum - 1);
  for (std::size_t s = 1; s + 1 < threads_per_stratum; ++s) {
    const double t = static_cast<double>(s) / steps;
    const double geo = std::pow(static_cast<double>(n_threads), t);
    const auto idx = std::min(n_threads - 1, static_cast<std::size_t>(std::lround(geo)) - 1);
    picked_indices.insert(idx);
  }

  // Stratum order mirrors the historical serial loop: config-major,
  // then binding, then the thread ladder.
  const std::size_t n_bindings = space.bindings.size();
  std::vector<std::size_t> flat_indices;
  flat_indices.reserve(space.configs.size() * n_bindings * picked_indices.size());
  for (std::size_t ci = 0; ci < space.configs.size(); ++ci) {
    for (std::size_t bi = 0; bi < n_bindings; ++bi) {
      for (const std::size_t ti : picked_indices)
        flat_indices.push_back((ci * n_threads + ti) * n_bindings + bi);
    }
  }
  return profile_flat_indices(model, kernel, space, flat_indices, repetitions, seed,
                              work_scale, pool);
}

}  // namespace socrates::dse
