#include "dse/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"

namespace socrates::dse {

namespace {

ProfiledPoint profile_one(const platform::PerformanceModel& model,
                          const platform::KernelModelParams& kernel,
                          const DesignSpace& space, std::size_t config_index,
                          std::size_t threads, platform::BindingPolicy binding,
                          std::size_t repetitions, Rng& noise, double work_scale) {
  ProfiledPoint p;
  p.config_index = config_index;
  p.config_name = space.configs[config_index].name;
  p.configuration =
      platform::Configuration{space.configs[config_index].config, threads, binding};
  RunningStats time_stats;
  RunningStats power_stats;
  for (std::size_t r = 0; r < repetitions; ++r) {
    const auto m = model.evaluate(kernel, p.configuration, &noise, work_scale);
    time_stats.add(m.exec_time_s);
    power_stats.add(m.avg_power_w);
  }
  p.exec_time_mean_s = time_stats.mean();
  p.exec_time_stddev_s = time_stats.stddev();
  p.power_mean_w = power_stats.mean();
  p.power_stddev_w = power_stats.stddev();
  return p;
}

}  // namespace

std::vector<ProfiledPoint> random_subset_dse(const platform::PerformanceModel& model,
                                             const platform::KernelModelParams& kernel,
                                             const DesignSpace& space, double fraction,
                                             std::size_t repetitions, std::uint64_t seed,
                                             double work_scale) {
  SOCRATES_REQUIRE(fraction > 0.0 && fraction <= 1.0);
  SOCRATES_REQUIRE(repetitions >= 1);
  const std::size_t total = space.size();
  SOCRATES_REQUIRE(total > 0);
  const auto budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(total))));

  // Draw distinct flat indices via a partial Fisher-Yates over [0, total).
  Rng rng(seed);
  std::vector<std::size_t> indices(total);
  for (std::size_t i = 0; i < total; ++i) indices[i] = i;
  rng.shuffle(indices);
  indices.resize(budget);
  std::sort(indices.begin(), indices.end());  // deterministic profiling order

  const std::size_t per_config = space.thread_counts.size() * space.bindings.size();
  std::vector<ProfiledPoint> out;
  out.reserve(budget);
  for (const std::size_t flat : indices) {
    const std::size_t ci = flat / per_config;
    const std::size_t rem = flat % per_config;
    const std::size_t ti = rem / space.bindings.size();
    const std::size_t bi = rem % space.bindings.size();
    out.push_back(profile_one(model, kernel, space, ci, space.thread_counts[ti],
                              space.bindings[bi], repetitions, rng, work_scale));
  }
  return out;
}

std::vector<ProfiledPoint> stratified_dse(const platform::PerformanceModel& model,
                                          const platform::KernelModelParams& kernel,
                                          const DesignSpace& space,
                                          std::size_t threads_per_stratum,
                                          std::size_t repetitions, std::uint64_t seed,
                                          double work_scale) {
  SOCRATES_REQUIRE(threads_per_stratum >= 2);
  SOCRATES_REQUIRE(repetitions >= 1);
  SOCRATES_REQUIRE(!space.thread_counts.empty());

  // Geometric ladder over the available thread counts, always anchored
  // at the smallest and largest (the corners the AS-RTM falls back to).
  const std::size_t n_threads = space.thread_counts.size();
  std::set<std::size_t> picked_indices = {0, n_threads - 1};
  const double steps = static_cast<double>(threads_per_stratum - 1);
  for (std::size_t s = 1; s + 1 < threads_per_stratum; ++s) {
    const double t = static_cast<double>(s) / steps;
    const double geo = std::pow(static_cast<double>(n_threads), t);
    const auto idx = std::min(n_threads - 1, static_cast<std::size_t>(std::lround(geo)) - 1);
    picked_indices.insert(idx);
  }

  Rng rng(seed);
  std::vector<ProfiledPoint> out;
  out.reserve(space.configs.size() * space.bindings.size() * picked_indices.size());
  for (std::size_t ci = 0; ci < space.configs.size(); ++ci) {
    for (std::size_t bi = 0; bi < space.bindings.size(); ++bi) {
      for (const std::size_t ti : picked_indices) {
        out.push_back(profile_one(model, kernel, space, ci, space.thread_counts[ti],
                                  space.bindings[bi], repetitions, rng, work_scale));
      }
    }
  }
  return out;
}

}  // namespace socrates::dse
