// Alternative DSE strategies.
//
// The paper uses a full-factorial DSE but notes the approach "is
// agnostic with respect to the used DSE strategy".  These strategies
// make that claim testable: they produce the same ProfiledPoint rows
// from a subset of the space, and bench/ablation_dse_strategies
// measures how much AS-RTM decision quality degrades as the profiling
// budget shrinks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dse/dse.hpp"

namespace socrates::dse {

/// Profiles a uniformly random subset of the space (without
/// replacement).  `fraction` in (0, 1]; at least one point per run.
/// Like full_factorial_dse, each selected point draws noise from the
/// stream (seed, flat index in the full space), so a sampled point's
/// measurements are identical to the same point profiled by the full
/// sweep — and independent of the job count.
std::vector<ProfiledPoint> random_subset_dse(const platform::PerformanceModel& model,
                                             const platform::KernelModelParams& kernel,
                                             const DesignSpace& space, double fraction,
                                             std::size_t repetitions, std::uint64_t seed,
                                             double work_scale = 1.0,
                                             TaskPool* pool = nullptr);

/// Stratified sampling: every (config, binding) stratum is profiled at
/// `threads_per_stratum` thread counts — the extremes (1 and max) plus
/// geometrically spaced interior points.  Guarantees the knob-space
/// corners the AS-RTM needs for graceful degradation are present.
std::vector<ProfiledPoint> stratified_dse(const platform::PerformanceModel& model,
                                          const platform::KernelModelParams& kernel,
                                          const DesignSpace& space,
                                          std::size_t threads_per_stratum,
                                          std::size_t repetitions, std::uint64_t seed,
                                          double work_scale = 1.0,
                                          TaskPool* pool = nullptr);

}  // namespace socrates::dse
