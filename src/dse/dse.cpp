#include "dse/dse.hpp"

#include "support/error.hpp"
#include "support/statistics.hpp"

namespace socrates::dse {

DesignSpace DesignSpace::paper_space(const platform::MachineTopology& topology) {
  DesignSpace space;
  space.configs = platform::reduced_design_space();
  for (std::size_t t = 1; t <= topology.logical_cores(); ++t)
    space.thread_counts.push_back(t);
  space.bindings = {platform::BindingPolicy::kClose, platform::BindingPolicy::kSpread};
  return space;
}

std::vector<ProfiledPoint> full_factorial_dse(const platform::PerformanceModel& model,
                                              const platform::KernelModelParams& kernel,
                                              const DesignSpace& space,
                                              std::size_t repetitions,
                                              std::uint64_t seed, double work_scale) {
  SOCRATES_REQUIRE(repetitions >= 1);
  SOCRATES_REQUIRE(space.size() > 0);

  Rng noise(seed);
  std::vector<ProfiledPoint> out;
  out.reserve(space.size());

  for (std::size_t ci = 0; ci < space.configs.size(); ++ci) {
    for (const std::size_t threads : space.thread_counts) {
      for (const auto binding : space.bindings) {
        ProfiledPoint p;
        p.config_index = ci;
        p.config_name = space.configs[ci].name;
        p.configuration =
            platform::Configuration{space.configs[ci].config, threads, binding};

        RunningStats time_stats;
        RunningStats power_stats;
        for (std::size_t r = 0; r < repetitions; ++r) {
          const auto m = model.evaluate(kernel, p.configuration, &noise, work_scale);
          time_stats.add(m.exec_time_s);
          power_stats.add(m.avg_power_w);
        }
        p.exec_time_mean_s = time_stats.mean();
        p.exec_time_stddev_s = time_stats.stddev();
        p.power_mean_w = power_stats.mean();
        p.power_stddev_w = power_stats.stddev();
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

std::vector<std::size_t> pareto_filter(const std::vector<ProfiledPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool at_least_as_good = points[j].throughput() >= points[i].throughput() &&
                                    points[j].power_mean_w <= points[i].power_mean_w;
      const bool strictly_better = points[j].throughput() > points[i].throughput() ||
                                   points[j].power_mean_w < points[i].power_mean_w;
      dominated = at_least_as_good && strictly_better;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

margot::KnowledgeBase to_knowledge_base(const std::vector<ProfiledPoint>& points) {
  SOCRATES_REQUIRE(!points.empty());
  margot::KnowledgeBase kb({"config", "threads", "binding"},
                           {"exec_time_s", "power_w", "throughput"});
  for (const auto& p : points) {
    margot::OperatingPoint op;
    op.knobs = {static_cast<int>(p.config_index),
                static_cast<int>(p.configuration.threads),
                p.configuration.binding == platform::BindingPolicy::kClose ? 0 : 1};
    // Throughput stddev via first-order error propagation: d(1/t) = dt/t^2.
    const double thr_stddev =
        p.exec_time_stddev_s / (p.exec_time_mean_s * p.exec_time_mean_s);
    op.metrics = {{p.exec_time_mean_s, p.exec_time_stddev_s},
                  {p.power_mean_w, p.power_stddev_w},
                  {p.throughput(), thr_stddev}};
    kb.add(std::move(op));
  }
  return kb;
}

platform::Configuration decode_knobs(const DesignSpace& space,
                                     const std::vector<int>& knobs) {
  SOCRATES_REQUIRE(knobs.size() == 3);
  const auto ci = static_cast<std::size_t>(knobs[0]);
  SOCRATES_REQUIRE(ci < space.configs.size());
  SOCRATES_REQUIRE(knobs[1] >= 1);
  SOCRATES_REQUIRE(knobs[2] == 0 || knobs[2] == 1);
  platform::Configuration config;
  config.flags = space.configs[ci].config;
  config.threads = static_cast<std::size_t>(knobs[1]);
  config.binding =
      knobs[2] == 0 ? platform::BindingPolicy::kClose : platform::BindingPolicy::kSpread;
  return config;
}

}  // namespace socrates::dse
