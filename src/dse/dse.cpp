#include "dse/dse.hpp"

#include <algorithm>
#include <atomic>
#include <istream>
#include <limits>
#include <ostream>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/serialize.hpp"
#include "support/statistics.hpp"

namespace socrates::dse {

DesignSpace DesignSpace::paper_space(const platform::MachineTopology& topology) {
  DesignSpace space;
  space.configs = platform::reduced_design_space();
  for (std::size_t t = 1; t <= topology.logical_cores(); ++t)
    space.thread_counts.push_back(t);
  space.bindings = {platform::BindingPolicy::kClose, platform::BindingPolicy::kSpread};
  return space;
}

ProfiledPoint profile_point(const platform::PerformanceModel& model,
                            const platform::KernelModelParams& kernel,
                            const DesignSpace& space, std::size_t config_index,
                            std::size_t threads, platform::BindingPolicy binding,
                            std::size_t repetitions, Rng& noise, double work_scale) {
  SOCRATES_REQUIRE(config_index < space.configs.size());
  ProfiledPoint p;
  p.config_index = config_index;
  p.config_name = space.configs[config_index].name;
  p.configuration =
      platform::Configuration{space.configs[config_index].config, threads, binding};

  RunningStats time_stats;
  RunningStats power_stats;
  for (std::size_t r = 0; r < repetitions; ++r) {
    const auto m = model.evaluate(kernel, p.configuration, &noise, work_scale);
    time_stats.add(m.exec_time_s);
    power_stats.add(m.avg_power_w);
  }
  p.exec_time_mean_s = time_stats.mean();
  p.exec_time_stddev_s = time_stats.stddev();
  p.power_mean_w = power_stats.mean();
  p.power_stddev_w = power_stats.stddev();
  return p;
}

std::vector<ProfiledPoint> full_factorial_dse(const platform::PerformanceModel& model,
                                              const platform::KernelModelParams& kernel,
                                              const DesignSpace& space,
                                              std::size_t repetitions,
                                              std::uint64_t seed, double work_scale,
                                              TaskPool* pool) {
  SOCRATES_REQUIRE(repetitions >= 1);
  SOCRATES_REQUIRE(space.size() > 0);

  // Flat point order: config-major, then threads, then binding — the
  // historical serial order.  Each point owns RNG stream (seed, index),
  // so the task schedule cannot leak into the numbers.
  const std::size_t n_threads = space.thread_counts.size();
  const std::size_t n_bindings = space.bindings.size();
  std::vector<ProfiledPoint> out(space.size());
  TaskPool& executor = pool != nullptr ? *pool : TaskPool::shared();
  static Counter& points_profiled =
      MetricsRegistry::global().counter("dse.points_profiled");
  executor.parallel_for(space.size(), [&](std::size_t pi) {
    TraceSpan span("dse-point", "dse");
    span.set_arg("point", static_cast<std::int64_t>(pi));
    const std::size_t ci = pi / (n_threads * n_bindings);
    const std::size_t ti = (pi / n_bindings) % n_threads;
    const std::size_t bi = pi % n_bindings;
    Rng noise(derive_stream(seed, pi));
    out[pi] = profile_point(model, kernel, space, ci, space.thread_counts[ti],
                            space.bindings[bi], repetitions, noise, work_scale);
    points_profiled.add(1);
  });
  return out;
}

SupervisedDseResult supervised_dse(const platform::PerformanceModel& model,
                                   const platform::KernelModelParams& kernel,
                                   const DesignSpace& space, std::size_t repetitions,
                                   std::uint64_t seed, double work_scale,
                                   TaskPool* pool, std::size_t point_attempts) {
  SOCRATES_REQUIRE(point_attempts >= 1);
  SOCRATES_REQUIRE(repetitions >= 1);
  SOCRATES_REQUIRE(space.size() > 0);

  const std::size_t n_threads = space.thread_counts.size();
  const std::size_t n_bindings = space.bindings.size();
  std::vector<ProfiledPoint> points(space.size());
  std::vector<char> dropped(space.size(), 0);
  std::atomic<std::size_t> retries{0};
  TaskPool& executor = pool != nullptr ? *pool : TaskPool::shared();
  ChaosEngine& chaos = ChaosEngine::global();
  static Counter& points_profiled =
      MetricsRegistry::global().counter("dse.points_profiled");

  executor.parallel_for(space.size(), [&](std::size_t pi) {
    TraceSpan span("dse-point", "dse");
    span.set_arg("point", static_cast<std::int64_t>(pi));
    const std::size_t ci = pi / (n_threads * n_bindings);
    const std::size_t ti = (pi / n_bindings) % n_threads;
    const std::size_t bi = pi % n_bindings;
    for (std::size_t attempt = 0; attempt < point_attempts; ++attempt) {
      try {
        // Indexed (not counter-based) chaos draw: the decision for
        // (point, attempt) is independent of thread interleaving.
        if (chaos.enabled() &&
            chaos.fire_indexed("dse.point", hash_combine(pi, attempt)))
          throw ChaosFault("injected DSE point fault");
        // A fresh stream every attempt: the surviving measurement is
        // byte-identical to a chaos-free run.
        Rng noise(derive_stream(seed, pi));
        points[pi] = profile_point(model, kernel, space, ci, space.thread_counts[ti],
                                   space.bindings[bi], repetitions, noise, work_scale);
        points_profiled.add(1);
        return;
      } catch (const std::logic_error&) {
        throw;  // a caller bug, not a flaky measurement
      } catch (const std::exception&) {
        if (attempt + 1 < point_attempts)
          retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
    dropped[pi] = 1;
  });

  SupervisedDseResult result;
  result.retries = retries.load();
  result.points.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (dropped[i] != 0) {
      ++result.dropped;
      continue;
    }
    result.points.push_back(std::move(points[i]));
  }
  if (result.dropped > 0)
    MetricsRegistry::global().counter("dse.points_dropped").add(result.dropped);
  if (result.retries > 0)
    MetricsRegistry::global().counter("dse.point_retries").add(result.retries);
  return result;
}

void save_profile(std::ostream& out, const std::vector<ProfiledPoint>& points) {
  out << "profile v1 " << points.size() << '\n';
  for (const auto& p : points) {
    // Config names ("O3", "CF1", ...) never contain whitespace.
    out << p.config_index << ' ' << p.config_name << ' '
        << static_cast<int>(p.configuration.flags.level()) << ' '
        << p.configuration.flags.flag_bits() << ' ' << p.configuration.threads << ' '
        << (p.configuration.binding == platform::BindingPolicy::kClose ? 0 : 1) << ' '
        << format_exact(p.exec_time_mean_s) << ' ' << format_exact(p.exec_time_stddev_s)
        << ' ' << format_exact(p.power_mean_w) << ' ' << format_exact(p.power_stddev_w)
        << '\n';
  }
}

std::vector<ProfiledPoint> load_profile(std::istream& in) {
  std::string magic, version;
  std::size_t count = 0;
  in >> magic >> version >> count;
  SOCRATES_REQUIRE_MSG(in && magic == "profile" && version == "v1",
                       "not a profile artifact");
  std::vector<ProfiledPoint> points(count);
  for (auto& p : points) {
    int level = 0, binding = 0;
    unsigned bits = 0;
    in >> p.config_index >> p.config_name >> level >> bits >> p.configuration.threads >>
        binding;
    SOCRATES_REQUIRE_MSG(in && level >= 0 && level <= 3 && bits < 64 &&
                             (binding == 0 || binding == 1),
                         "malformed profile point");
    p.configuration.flags =
        platform::FlagConfig(static_cast<platform::OptLevel>(level), bits);
    p.configuration.binding = binding == 0 ? platform::BindingPolicy::kClose
                                           : platform::BindingPolicy::kSpread;
    p.exec_time_mean_s = parse_exact(in);
    p.exec_time_stddev_s = parse_exact(in);
    p.power_mean_w = parse_exact(in);
    p.power_stddev_w = parse_exact(in);
  }
  return points;
}

std::vector<std::size_t> pareto_filter(const std::vector<ProfiledPoint>& points) {
  const std::size_t n = points.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  // Power ascending, throughput descending within a power tie.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].power_mean_w != points[b].power_mean_w)
      return points[a].power_mean_w < points[b].power_mean_w;
    if (points[a].throughput() != points[b].throughput())
      return points[a].throughput() > points[b].throughput();
    return a < b;
  });

  // Sweep power groups left to right.  A point survives iff it has the
  // best throughput of its equal-power group AND beats every strictly
  // cheaper point's throughput; exact duplicates tie on both axes and
  // therefore all survive (nobody strictly dominates them).
  std::vector<std::size_t> front;
  double best_cheaper_thr = -std::numeric_limits<double>::infinity();
  std::size_t g = 0;
  while (g < n) {
    std::size_t h = g;
    while (h < n && points[order[h]].power_mean_w == points[order[g]].power_mean_w) ++h;
    const double group_best_thr = points[order[g]].throughput();
    if (group_best_thr > best_cheaper_thr) {
      for (std::size_t k = g; k < h; ++k) {
        if (points[order[k]].throughput() == group_best_thr) front.push_back(order[k]);
      }
      best_cheaper_thr = group_best_thr;
    }
    g = h;
  }
  std::sort(front.begin(), front.end());
  return front;
}

margot::KnowledgeBase to_knowledge_base(const std::vector<ProfiledPoint>& points) {
  SOCRATES_REQUIRE(!points.empty());
  margot::KnowledgeBase kb({"config", "threads", "binding"},
                           {"exec_time_s", "power_w", "throughput"});
  for (const auto& p : points) {
    margot::OperatingPoint op;
    op.knobs = {static_cast<int>(p.config_index),
                static_cast<int>(p.configuration.threads),
                p.configuration.binding == platform::BindingPolicy::kClose ? 0 : 1};
    // Throughput stddev via first-order error propagation: d(1/t) = dt/t^2.
    const double thr_stddev =
        p.exec_time_stddev_s / (p.exec_time_mean_s * p.exec_time_mean_s);
    op.metrics = {{p.exec_time_mean_s, p.exec_time_stddev_s},
                  {p.power_mean_w, p.power_stddev_w},
                  {p.throughput(), thr_stddev}};
    kb.add(std::move(op));
  }
  return kb;
}

margot::KnowledgeBase to_knowledge_base(const std::vector<ProfiledPoint>& points,
                                        const std::vector<std::size_t>& indices) {
  SOCRATES_REQUIRE(!indices.empty());
  std::vector<ProfiledPoint> selected;
  selected.reserve(indices.size());
  for (const std::size_t i : indices) {
    SOCRATES_REQUIRE(i < points.size());
    selected.push_back(points[i]);
  }
  return to_knowledge_base(selected);
}

platform::Configuration decode_knobs(const DesignSpace& space,
                                     const std::vector<int>& knobs) {
  SOCRATES_REQUIRE(knobs.size() == 3);
  const auto ci = static_cast<std::size_t>(knobs[0]);
  SOCRATES_REQUIRE(ci < space.configs.size());
  SOCRATES_REQUIRE(knobs[1] >= 1);
  SOCRATES_REQUIRE(knobs[2] == 0 || knobs[2] == 1);
  platform::Configuration config;
  config.flags = space.configs[ci].config;
  config.threads = static_cast<std::size_t>(knobs[1]);
  config.binding =
      knobs[2] == 0 ? platform::BindingPolicy::kClose : platform::BindingPolicy::kSpread;
  return config;
}

}  // namespace socrates::dse
