// Pluggable DSE strategies (the Explorer interface).
//
// The paper profiles the full factorial space but stresses that the
// approach "is agnostic with respect to the used DSE strategy".  This
// layer makes that agnosticism structural: every way of exploring a
// DesignSpace — the full sweep, random subsets, stratified ladders and
// the model-guided two-stage search of two_stage.hpp — implements the
// same Explorer interface, and socrates::Pipeline selects one through
// the SOCRATES_DSE environment knob (see DseStrategyOptions::from_env).
//
// The determinism contract every strategy honours (docs/DSE.md): a
// design point is identified by its *flat index* in the full factorial
// space, and its measurement noise always comes from the RNG stream
// (seed, flat index).  Any point profiled by any strategy is therefore
// bit-identical to the same point profiled by the full sweep — at any
// SOCRATES_JOBS, in any profiling order.  Strategy-internal decisions
// (subset draws, genetic operators) run on their own serial streams, so
// the *choice* of points is deterministic too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "dse/dse.hpp"
#include "support/hash.hpp"

namespace socrates::dse {

/// Everything an Explorer needs to profile points of one design space.
struct ExploreContext {
  const platform::PerformanceModel& model;
  const platform::KernelModelParams& kernel;
  const DesignSpace& space;
  std::size_t repetitions = 1;  ///< noisy runs per profiled point
  std::uint64_t seed = 0;       ///< master seed of the per-point streams
  double work_scale = 1.0;
  TaskPool* pool = nullptr;          ///< nullptr = TaskPool::shared()
  std::size_t point_attempts = 1;    ///< tries per point before it is dropped
};

/// What a strategy explored.  `points` come back in ascending flat-index
/// order unless the strategy documents another deterministic order.
struct ExploreResult {
  std::vector<ProfiledPoint> points;
  std::size_t evaluated = 0;    ///< unique design points profiled (incl. dropped)
  std::size_t dropped = 0;      ///< points lost after all attempts (chaos/faults)
  std::size_t retries = 0;      ///< extra per-point attempts that were needed
  std::size_t generations = 0;  ///< two-stage only: GA generations run
};

/// One DSE strategy.  Implementations are immutable after construction
/// (explore() is const and thread-compatible) and must honour the
/// determinism contract above.
class Explorer {
 public:
  virtual ~Explorer();

  /// Stable strategy name ("full", "subset", "stratified", "two-stage")
  /// — used in logs, stage notes and metrics labels.
  virtual std::string_view name() const = 0;

  /// Explores the space.  Per-point faults are absorbed with
  /// ctx.point_attempts tries (an exhausted point is dropped, reported
  /// in ExploreResult::dropped); logic errors propagate.
  virtual ExploreResult explore(const ExploreContext& ctx) const = 0;

  /// Feeds every knob that changes what explore() would profile into an
  /// artifact-cache key: strategy identity plus its budget parameters.
  /// Two explorers with the same fingerprint produce the same points.
  virtual void add_to_key(Hasher& h) const = 0;
};

/// The paper's exhaustive sweep (supervised_dse under the hood).
class FullFactorialExplorer final : public Explorer {
 public:
  std::string_view name() const override { return "full"; }
  ExploreResult explore(const ExploreContext& ctx) const override;
  void add_to_key(Hasher& h) const override;
};

/// Uniformly random subset of the space, without replacement.
/// `fraction` must lie in (0, 1]; at least one point is profiled.
class RandomSubsetExplorer final : public Explorer {
 public:
  explicit RandomSubsetExplorer(double fraction);

  std::string_view name() const override { return "subset"; }
  ExploreResult explore(const ExploreContext& ctx) const override;
  void add_to_key(Hasher& h) const override;

  double fraction() const { return fraction_; }

 private:
  double fraction_;
};

/// Every (config, binding) stratum profiled at `threads_per_stratum`
/// thread counts: the extremes plus geometrically spaced interior
/// points (anchors the AS-RTM falls back to are always present).
class StratifiedExplorer final : public Explorer {
 public:
  explicit StratifiedExplorer(std::size_t threads_per_stratum);

  std::string_view name() const override { return "stratified"; }
  ExploreResult explore(const ExploreContext& ctx) const override;
  void add_to_key(Hasher& h) const override;

  std::size_t threads_per_stratum() const { return threads_per_stratum_; }

 private:
  std::size_t threads_per_stratum_;
};

/// Which strategy the Pipeline runs, plus every budget knob.  Defaults
/// reproduce the paper (full factorial, no pruning); from_env() reads
/// the SOCRATES_DSE* family documented in docs/DSE.md.
struct DseStrategyOptions {
  enum class Kind { kFull, kSubset, kStratified, kTwoStage };

  Kind kind = Kind::kFull;
  double subset_fraction = 0.25;       ///< subset: share of the space
  std::size_t stratified_threads = 6;  ///< stratified: ladder size
  std::size_t budget = 0;              ///< two-stage: max profiled points (0 = auto)
  std::size_t population = 12;         ///< two-stage: GA children per generation
  std::size_t generations = 24;        ///< two-stage: GA generation cap
  /// Prune the knowledge base / clone set to at most this many
  /// representative configurations (0 = keep everything).
  std::size_t max_representatives = 0;

  /// SOCRATES_DSE (full|subset|stratified|two-stage) and the
  /// SOCRATES_DSE_{FRACTION,STRATA,BUDGET,POP,GENS,PRUNE} knobs, each
  /// hardened through support/env (clamp + warn once).
  static DseStrategyOptions from_env();

  const char* kind_name() const;
};

/// Builds the configured strategy.  `seed_configs` (config indices of
/// the space, e.g. the COBAYN-predicted CFs) bias the two-stage seeding
/// stage; other strategies ignore them.
std::unique_ptr<Explorer> make_explorer(const DseStrategyOptions& options,
                                        std::vector<std::size_t> seed_configs = {});

// ---- free-function strategies (historical interface) -----------------------

/// Profiles a uniformly random subset of the space (without
/// replacement).  `fraction` in (0, 1]; at least one point per run.
/// Rejects fraction outside (0, 1] (NaN included) and repetitions == 0
/// with a ContractViolation naming the bad argument.
std::vector<ProfiledPoint> random_subset_dse(const platform::PerformanceModel& model,
                                             const platform::KernelModelParams& kernel,
                                             const DesignSpace& space, double fraction,
                                             std::size_t repetitions, std::uint64_t seed,
                                             double work_scale = 1.0,
                                             TaskPool* pool = nullptr);

/// Stratified sampling: every (config, binding) stratum is profiled at
/// `threads_per_stratum` thread counts (>= 2) — the extremes plus
/// geometrically spaced interior points.
std::vector<ProfiledPoint> stratified_dse(const platform::PerformanceModel& model,
                                          const platform::KernelModelParams& kernel,
                                          const DesignSpace& space,
                                          std::size_t threads_per_stratum,
                                          std::size_t repetitions, std::uint64_t seed,
                                          double work_scale = 1.0,
                                          TaskPool* pool = nullptr);

namespace detail {

/// Profiles the given flat indices of the full factorial space in
/// parallel with supervised per-point retry: each point draws noise
/// from the stream (seed, flat index) — the streams full_factorial_dse
/// uses — and gets ctx.point_attempts tries (chaos site "dse.point",
/// indexed by flat index, exactly like supervised_dse).  Survivors keep
/// the order of `flat_indices`; `surviving_flat` names them.
struct FlatProfile {
  std::vector<ProfiledPoint> points;
  std::vector<std::size_t> surviving_flat;
  std::size_t dropped = 0;
  std::size_t retries = 0;
};

FlatProfile profile_flat_supervised(const ExploreContext& ctx,
                                    const std::vector<std::size_t>& flat_indices);

/// (config, threads, binding) indices of a flat point.
struct FlatPoint {
  std::size_t config = 0;
  std::size_t thread = 0;   ///< index into space.thread_counts
  std::size_t binding = 0;  ///< index into space.bindings
};

FlatPoint decompose_flat(const DesignSpace& space, std::size_t flat);
std::size_t compose_flat(const DesignSpace& space, const FlatPoint& p);

}  // namespace detail

}  // namespace socrates::dse
