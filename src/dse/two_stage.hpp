// Two-stage model-guided design-space exploration.
//
// Ports the Odyssey idea (SNIPPETS #2/#3) to the SOCRATES toolchain: a
// *cheap* first stage queries the analytical platform::PerformanceModel
// (noise-free, no profiling budget spent) to seed the search with the
// model-predicted Pareto front plus the COBAYN-predicted compiler
// configurations, and an *expensive* second stage refines those seeds
// with deterministic generational genetic search — tournament
// selection over the profiled archive, per-knob crossover and mutation
// — followed by a neighbourhood polish around the profiled front.
// Only the second stage consumes the profiling budget, so the explorer
// reaches the full-factorial front at a fraction of the evaluations
// (bench/ablation_dse_strategies pins the ratio).
//
// Determinism: every profiled point draws its noise from the stream
// (seed, flat index) — bit-identical to the full sweep at any
// SOCRATES_JOBS (explorer.hpp's contract) — and every GA decision runs
// on one serial RNG stream derived from the seed, so the *set* of
// explored points is reproducible too.  The chaos site "dse.explore"
// (probability `dse-explore` of SOCRATES_CHAOS) can void a generation's
// proposals: the explorer degrades to fewer search rounds instead of
// aborting, and per-point faults are absorbed by the "dse.point" site.
#pragma once

#include <cstddef>
#include <vector>

#include "dse/explorer.hpp"

namespace socrates::dse {

/// Seeded + genetic search over a DesignSpace.
class TwoStageExplorer final : public Explorer {
 public:
  struct Params {
    /// Max design points profiled, dropped points included.  0 = auto:
    /// max(2 * population, space / 11), never more than the space.
    std::size_t budget = 0;
    std::size_t population = 12;   ///< GA children proposed per generation
    std::size_t generations = 24;  ///< GA generation cap
    /// Config indices (into DesignSpace::configs) favoured by the
    /// model-seeding stage — the COBAYN-predicted CFs in the pipeline.
    std::vector<std::size_t> seed_configs;
    /// Warm-start hook: *flat* design-point indices profiled first,
    /// before any analytically-derived seed.  Fed by the server's
    /// cross-tenant knowledge pool (a donor kernel's best measured
    /// points mapped into this space — docs/SERVER.md); empty for a
    /// cold start.  Participates in the artifact-cache key.
    std::vector<std::size_t> warm_flat_seeds;
  };

  explicit TwoStageExplorer(Params params);

  std::string_view name() const override { return "two-stage"; }
  ExploreResult explore(const ExploreContext& ctx) const override;
  void add_to_key(Hasher& h) const override;

  const Params& params() const { return params_; }
  /// The budget explore() will actually use for `space_size` points.
  std::size_t resolved_budget(std::size_t space_size) const;

 private:
  Params params_;
};

}  // namespace socrates::dse
