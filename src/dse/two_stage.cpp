#include "dse/two_stage.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "dse/representative.hpp"
#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace socrates::dse {

namespace {

/// Domain separator of the GA decision stream — keeps it disjoint from
/// the per-point noise streams (seed, flat) and the chaos schedules.
constexpr std::uint64_t kGaStreamTag = 0x9a5eedU;

bool dominates(const ProfiledPoint& a, const ProfiledPoint& b) {
  const bool ge = a.throughput() >= b.throughput() && a.power_mean_w <= b.power_mean_w;
  const bool gt = a.throughput() > b.throughput() || a.power_mean_w < b.power_mean_w;
  return ge && gt;
}

/// Scalar tie-break fitness when neither tournament entrant dominates:
/// energy efficiency (throughput per watt), the paper's figure of merit.
double efficiency(const ProfiledPoint& p) {
  return p.power_mean_w > 0.0 ? p.throughput() / p.power_mean_w : p.throughput();
}

}  // namespace

TwoStageExplorer::TwoStageExplorer(Params params) : params_(std::move(params)) {
  SOCRATES_REQUIRE_MSG(params_.population >= 2,
                       "two-stage population must be >= 2 (got "
                           << params_.population << ") — crossover needs two parents");
  SOCRATES_REQUIRE_MSG(params_.generations >= 1,
                       "two-stage generation cap must be >= 1");
}

std::size_t TwoStageExplorer::resolved_budget(std::size_t space_size) const {
  const std::size_t wanted =
      params_.budget != 0 ? params_.budget
                          : std::max(2 * params_.population, space_size / 11);
  return std::max<std::size_t>(1, std::min(wanted, space_size));
}

ExploreResult TwoStageExplorer::explore(const ExploreContext& ctx) const {
  SOCRATES_REQUIRE_MSG(ctx.repetitions >= 1, "DSE repetitions must be >= 1");
  SOCRATES_REQUIRE_MSG(ctx.space.size() > 0, "DSE design space is empty");
  for (const std::size_t ci : params_.seed_configs)
    SOCRATES_REQUIRE_MSG(ci < ctx.space.configs.size(),
                         "two-stage seed config index " << ci << " outside the space");
  for (const std::size_t flat : params_.warm_flat_seeds)
    SOCRATES_REQUIRE_MSG(flat < ctx.space.size(),
                         "two-stage warm seed flat index " << flat
                                                           << " outside the space");

  TraceSpan span("dse-explore", "dse");
  const DesignSpace& space = ctx.space;
  const std::size_t total = space.size();
  const std::size_t n_threads = space.thread_counts.size();
  const std::size_t budget = resolved_budget(total);
  ChaosEngine& chaos = ChaosEngine::global();

  // The profiled archive, keyed by flat index (ordered: the final
  // profile comes out in ascending flat order, like the full sweep).
  std::map<std::size_t, ProfiledPoint> archive;
  std::set<std::size_t> attempted;  ///< profiled or dropped — budget spent
  ExploreResult result;

  const auto remaining = [&] { return budget - attempted.size(); };

  // Profiles a candidate batch under the budget: dedups against every
  // earlier attempt (first occurrence wins, so callers order candidates
  // by priority) and truncates to the remaining budget minus `reserve`
  // (budget held back for a later stage).  The candidate list is a
  // deterministic function of the archive, so the truncation point is
  // identical at any job count.  Returns how many candidates actually
  // went to the profiler.
  const auto profile_batch = [&](std::vector<std::size_t> flats,
                                 std::size_t reserve = 0) -> std::size_t {
    const std::size_t cap = remaining() > reserve ? remaining() - reserve : 0;
    std::vector<std::size_t> fresh;
    fresh.reserve(flats.size());
    std::set<std::size_t> in_batch;
    for (const std::size_t flat : flats) {
      if (fresh.size() >= cap) break;
      if (attempted.count(flat) == 0 && in_batch.insert(flat).second)
        fresh.push_back(flat);
    }
    if (fresh.empty()) return 0;
    auto profile = detail::profile_flat_supervised(ctx, fresh);
    for (std::size_t k = 0; k < profile.surviving_flat.size(); ++k)
      archive.emplace(profile.surviving_flat[k], std::move(profile.points[k]));
    attempted.insert(fresh.begin(), fresh.end());
    result.dropped += profile.dropped;
    result.retries += profile.retries;
    return fresh.size();
  };

  // Flat indices of the archive's current Pareto front, most valuable
  // first: the hypervolume-greedy representative order (extremes, then
  // descending marginal area), with the rest of the front appended
  // ascending.  Budget spent in this order refines the points a pruned
  // deployment would actually keep.
  constexpr std::size_t kPolishFrontCap = 12;
  const auto archive_front = [&] {
    std::vector<std::size_t> flats;
    std::vector<ProfiledPoint> pts;
    flats.reserve(archive.size());
    pts.reserve(archive.size());
    for (const auto& [flat, point] : archive) {
      flats.push_back(flat);
      pts.push_back(point);
    }
    const auto rs = select_representatives(pts, kPolishFrontCap);
    std::vector<std::size_t> front;
    std::set<std::size_t> seen;
    for (const std::size_t i : rs.representatives)
      if (seen.insert(i).second) front.push_back(flats[i]);
    for (const std::size_t i : rs.front)
      if (seen.insert(i).second) front.push_back(flats[i]);
    return front;
  };

  // ---- Stage 1: analytical seeding (model queries, no budget) -------------
  //
  // The noise-free surrogate predicts where the measured front will be.
  // Its Pareto front is far too large to profile whole (most thread
  // counts of the best configs are model-optimal), so the profiled
  // population is, in priority order: the extremal candidates (the
  // measured global-fastest / global-cheapest point is, up to noise,
  // among the surrogate's top few), a farthest-point spread of the
  // surrogate front (select_representatives, the same clustering the
  // Prune stage uses), and the per-seed-config champions.
  std::vector<ProfiledPoint> surrogate(total);
  for (std::size_t flat = 0; flat < total; ++flat) {
    const auto fp = detail::decompose_flat(space, flat);
    const platform::Configuration config{space.configs[fp.config].config,
                                         space.thread_counts[fp.thread],
                                         space.bindings[fp.binding]};
    const auto m = ctx.model.evaluate(ctx.kernel, config, nullptr, ctx.work_scale);
    surrogate[flat].config_index = fp.config;
    surrogate[flat].configuration = config;
    surrogate[flat].exec_time_mean_s = m.exec_time_s;
    surrogate[flat].power_mean_w = m.avg_power_w;
  }

  std::vector<std::size_t> seeds;
  // Warm seeds first: points a donor kernel already *measured* as good
  // outrank every analytical guess, and profile_batch's
  // first-occurrence-wins dedup keeps them ahead of the slices below
  // even when they coincide.
  if (!params_.warm_flat_seeds.empty()) {
    static Counter& warm_seeds = MetricsRegistry::global().counter("dse.warm_seeds");
    warm_seeds.add(params_.warm_flat_seeds.size());
    seeds.insert(seeds.end(), params_.warm_flat_seeds.begin(),
                 params_.warm_flat_seeds.end());
  }
  // Extremal candidates: noise can promote any near-optimal point to
  // the measured extreme, so profile the top slice of each objective
  // (ties broken by flat index — deterministic at any job count).
  constexpr std::size_t kExtremeSlice = 6;
  std::vector<std::size_t> by_thr(total), by_pow(total);
  for (std::size_t f = 0; f < total; ++f) by_thr[f] = by_pow[f] = f;
  std::stable_sort(by_thr.begin(), by_thr.end(), [&](std::size_t a, std::size_t b) {
    return surrogate[a].throughput() > surrogate[b].throughput();
  });
  std::stable_sort(by_pow.begin(), by_pow.end(), [&](std::size_t a, std::size_t b) {
    return surrogate[a].power_mean_w < surrogate[b].power_mean_w;
  });
  for (std::size_t i = 0; i < std::min(kExtremeSlice, total); ++i) {
    seeds.push_back(by_thr[i]);
    seeds.push_back(by_pow[i]);
  }
  // A spread of the surrogate front, pruned exactly like the Prune
  // stage prunes the measured front.
  const std::vector<std::size_t> sur_front = pareto_filter(surrogate);
  std::vector<ProfiledPoint> sur_front_pts;
  sur_front_pts.reserve(sur_front.size());
  for (const std::size_t f : sur_front) sur_front_pts.push_back(surrogate[f]);
  for (const std::size_t i :
       select_representatives(sur_front_pts, params_.population).representatives)
    seeds.push_back(sur_front[i]);
  for (const std::size_t ci : params_.seed_configs) {
    // Champions of the COBAYN-predicted config: best throughput and
    // best efficiency across its (threads x binding) slice.
    std::size_t best_thr = ci * n_threads * space.bindings.size();
    std::size_t best_eff = best_thr;
    for (std::size_t k = 0; k < n_threads * space.bindings.size(); ++k) {
      const std::size_t flat = ci * n_threads * space.bindings.size() + k;
      if (surrogate[flat].throughput() > surrogate[best_thr].throughput())
        best_thr = flat;
      if (efficiency(surrogate[flat]) > efficiency(surrogate[best_eff]))
        best_eff = flat;
    }
    seeds.push_back(best_thr);
    seeds.push_back(best_eff);
  }
  profile_batch(std::move(seeds));

  // Half of what is left after seeding is reserved for the polish
  // stage: refining the measured front's neighbourhood recovers more
  // front than another genetic round does.
  const std::size_t polish_reserve = remaining() / 2;

  // ---- Stage 2: generational genetic refinement ---------------------------
  Rng ga(derive_stream(hash_combine(ctx.seed, kGaStreamTag), 0));
  static Counter& ga_generations =
      MetricsRegistry::global().counter("dse.ga_generations");
  static Counter& explore_faults =
      MetricsRegistry::global().counter("dse.explore_faults");

  // Tournament of two over the archive: dominance first, efficiency as
  // the tie-break.  The archive is iterated as a vector so uniform_int
  // indexes it deterministically.
  std::vector<std::size_t> pool_flats;
  const auto tournament = [&]() -> std::size_t {
    const auto pick = [&] {
      return pool_flats[static_cast<std::size_t>(
          ga.uniform_int(0, static_cast<std::int64_t>(pool_flats.size()) - 1))];
    };
    const std::size_t a = pick();
    const std::size_t b = pick();
    const ProfiledPoint& pa = archive.at(a);
    const ProfiledPoint& pb = archive.at(b);
    if (dominates(pa, pb)) return a;
    if (dominates(pb, pa)) return b;
    return efficiency(pa) >= efficiency(pb) ? a : b;
  };

  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    if (remaining() <= polish_reserve || archive.empty()) break;
    if (chaos.enabled() &&
        chaos.fire_indexed("dse.explore", gen, chaos.spec().dse_explore,
                           "chaos.explore_faults")) {
      // A voided generation: the round's proposals are lost and the
      // search degrades to fewer refinement rounds — never a corrupted
      // archive (profiled points are immutable once measured).
      explore_faults.add(1);
      ++result.generations;
      continue;
    }

    pool_flats.clear();
    for (const auto& [flat, point] : archive) pool_flats.push_back(flat);

    std::set<std::size_t> children;
    const std::size_t max_draws = 20 * params_.population;
    for (std::size_t draw = 0;
         draw < max_draws && children.size() < params_.population; ++draw) {
      auto a = detail::decompose_flat(space, tournament());
      const auto b = detail::decompose_flat(space, tournament());
      // Uniform per-knob crossover, then mutation per knob.
      detail::FlatPoint child;
      child.config = ga.uniform() < 0.5 ? a.config : b.config;
      child.thread = ga.uniform() < 0.5 ? a.thread : b.thread;
      child.binding = ga.uniform() < 0.5 ? a.binding : b.binding;
      if (ga.uniform() < 0.5) {
        const auto step = ga.uniform_int(-2, 2);
        const auto t = static_cast<std::int64_t>(child.thread) + step;
        child.thread = static_cast<std::size_t>(
            std::clamp<std::int64_t>(t, 0, static_cast<std::int64_t>(n_threads) - 1));
      }
      if (ga.uniform() < 0.15)
        child.config = static_cast<std::size_t>(
            ga.uniform_int(0, static_cast<std::int64_t>(space.configs.size()) - 1));
      if (ga.uniform() < 0.15 && space.bindings.size() > 1)
        child.binding = child.binding == 0 ? 1 : 0;
      const std::size_t flat = detail::compose_flat(space, child);
      if (attempted.count(flat) == 0) children.insert(flat);
    }
    if (children.empty()) break;  // the front's neighbourhood is exhausted
    profile_batch({children.begin(), children.end()}, polish_reserve);
    ++result.generations;
    ga_generations.add(1);
  }

  // ---- Stage 3: neighbourhood polish --------------------------------------
  //
  // Measurement noise wobbles front membership around the surrogate's
  // prediction; profiling every unexplored knob-space neighbour of the
  // *measured* front until a fixpoint (or the budget runs out) chases
  // those wobbles down deterministically.
  while (remaining() > 0 && !archive.empty()) {
    std::vector<std::size_t> neighbours;
    for (const std::size_t flat : archive_front()) {
      const auto fp = detail::decompose_flat(space, flat);
      const auto push = [&](detail::FlatPoint p) {
        const std::size_t f = detail::compose_flat(space, p);
        if (attempted.count(f) == 0) neighbours.push_back(f);
      };
      if (fp.thread > 0) push({fp.config, fp.thread - 1, fp.binding});
      if (fp.thread + 1 < n_threads) push({fp.config, fp.thread + 1, fp.binding});
      if (space.bindings.size() > 1)
        push({fp.config, fp.thread, fp.binding == 0 ? std::size_t{1} : std::size_t{0}});
      if (fp.config > 0) push({fp.config - 1, fp.thread, fp.binding});
      if (fp.config + 1 < space.configs.size())
        push({fp.config + 1, fp.thread, fp.binding});
    }
    if (profile_batch(std::move(neighbours)) == 0) break;  // fixpoint
  }

  result.evaluated = attempted.size();
  span.set_arg("evaluated", static_cast<std::int64_t>(result.evaluated));
  result.points.reserve(archive.size());
  for (auto& [flat, point] : archive) result.points.push_back(std::move(point));
  return result;
}

void TwoStageExplorer::add_to_key(Hasher& h) const {
  h.add("dse-two-stage");
  h.add(static_cast<std::uint64_t>(params_.budget));
  h.add(static_cast<std::uint64_t>(params_.population));
  h.add(static_cast<std::uint64_t>(params_.generations));
  h.add(static_cast<std::uint64_t>(params_.seed_configs.size()));
  for (const std::size_t ci : params_.seed_configs)
    h.add(static_cast<std::uint64_t>(ci));
  h.add("warm-seeds");
  h.add(static_cast<std::uint64_t>(params_.warm_flat_seeds.size()));
  for (const std::size_t flat : params_.warm_flat_seeds)
    h.add(static_cast<std::uint64_t>(flat));
}

// make_explorer lives here (not explorer.cpp) because it is the one
// place that must know every concrete strategy.
std::unique_ptr<Explorer> make_explorer(const DseStrategyOptions& options,
                                        std::vector<std::size_t> seed_configs) {
  switch (options.kind) {
    case DseStrategyOptions::Kind::kSubset:
      return std::make_unique<RandomSubsetExplorer>(options.subset_fraction);
    case DseStrategyOptions::Kind::kStratified:
      return std::make_unique<StratifiedExplorer>(options.stratified_threads);
    case DseStrategyOptions::Kind::kTwoStage: {
      TwoStageExplorer::Params params;
      params.budget = options.budget;
      params.population = options.population;
      params.generations = options.generations;
      params.seed_configs = std::move(seed_configs);
      return std::make_unique<TwoStageExplorer>(std::move(params));
    }
    case DseStrategyOptions::Kind::kFull:
      break;
  }
  return std::make_unique<FullFactorialExplorer>();
}

}  // namespace socrates::dse
