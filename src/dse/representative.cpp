#include "dse/representative.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace socrates::dse {

namespace {

/// Normalized (throughput, power) coordinates of the front, so a
/// distance mixes both objectives regardless of their units.
struct Normalized {
  double thr = 0.0;
  double pw = 0.0;
};

std::vector<Normalized> normalize(const std::vector<ProfiledPoint>& points,
                                  const std::vector<std::size_t>& front) {
  double thr_lo = std::numeric_limits<double>::infinity(), thr_hi = -thr_lo;
  double pw_lo = thr_lo, pw_hi = -thr_lo;
  for (const std::size_t i : front) {
    thr_lo = std::min(thr_lo, points[i].throughput());
    thr_hi = std::max(thr_hi, points[i].throughput());
    pw_lo = std::min(pw_lo, points[i].power_mean_w);
    pw_hi = std::max(pw_hi, points[i].power_mean_w);
  }
  const double thr_span = thr_hi > thr_lo ? thr_hi - thr_lo : 1.0;
  const double pw_span = pw_hi > pw_lo ? pw_hi - pw_lo : 1.0;
  std::vector<Normalized> out(front.size());
  for (std::size_t k = 0; k < front.size(); ++k) {
    out[k].thr = (points[front[k]].throughput() - thr_lo) / thr_span;
    out[k].pw = (points[front[k]].power_mean_w - pw_lo) / pw_span;
  }
  return out;
}

/// Staircase hypervolume of a set of normalized front points against
/// the reference (thr 0, power kRefPower): the area the selection
/// dominates.  kRefPower sits above the normalized power range so the
/// cheapest point keeps a positive depth.
constexpr double kRefPower = 1.1;

double normalized_hypervolume(const std::vector<Normalized>& norm,
                              const std::vector<std::size_t>& selected) {
  std::vector<std::size_t> order = selected;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (norm[a].pw != norm[b].pw) return norm[a].pw < norm[b].pw;
    return norm[a].thr < norm[b].thr;
  });
  double volume = 0.0;
  double prev_thr = 0.0;
  for (const std::size_t k : order) {
    const double slab = norm[k].thr - prev_thr;
    const double depth = kRefPower - norm[k].pw;
    if (slab > 0.0 && depth > 0.0) {
      volume += slab * depth;
      prev_thr = norm[k].thr;
    }
  }
  return volume;
}

}  // namespace

RepresentativeSet select_representatives(const std::vector<ProfiledPoint>& points,
                                         std::size_t max_representatives) {
  SOCRATES_REQUIRE_MSG(!points.empty(),
                       "representative selection needs a non-empty profile");
  RepresentativeSet out;
  out.front = pareto_filter(points);

  if (max_representatives == 0 || out.front.size() <= max_representatives) {
    out.representatives = out.front;
    return out;
  }

  const auto norm = normalize(points, out.front);

  // Anchor the extremes: the cheapest point (min power) and the fastest
  // (max throughput).  On a front sorted ascending both live at the
  // ends, but duplicates make argmin/argmax the robust choice.
  std::size_t cheapest = 0, fastest = 0;
  for (std::size_t k = 1; k < out.front.size(); ++k) {
    if (points[out.front[k]].power_mean_w < points[out.front[cheapest]].power_mean_w)
      cheapest = k;
    if (points[out.front[k]].throughput() > points[out.front[fastest]].throughput())
      fastest = k;
  }

  std::vector<char> chosen(out.front.size(), 0);
  std::vector<std::size_t> picks;
  const auto take = [&](std::size_t k) {
    if (chosen[k] == 0) {
      chosen[k] = 1;
      picks.push_back(k);
    }
  };
  take(cheapest);
  take(fastest);

  // Hypervolume-greedy sweep: each round keeps the front point whose
  // addition grows the dominated area the most (ties to the lower
  // index).  Each representative thus stands in for the front segment
  // whose quality it preserves — the extremes and the knees come first,
  // and the selection maximizes what a K-clone deployment can still
  // achieve.  Deterministic; stops early once the remaining points add
  // nothing (exact duplicates of kept points).
  while (picks.size() < max_representatives) {
    const double base = normalized_hypervolume(norm, picks);
    std::size_t best = out.front.size();
    double best_gain = 0.0;
    for (std::size_t k = 0; k < out.front.size(); ++k) {
      if (chosen[k] != 0) continue;
      auto trial = picks;
      trial.push_back(k);
      const double gain = normalized_hypervolume(norm, trial) - base;
      if (gain > best_gain) {
        best_gain = gain;
        best = k;
      }
    }
    if (best == out.front.size()) break;  // nothing left that adds area
    take(best);
  }

  // Selection order — extremes, then descending marginal area — so a
  // caller that truncates (or spends budget in order, like the
  // two-stage polish) keeps the most valuable representatives first.
  out.representatives.reserve(picks.size());
  for (const std::size_t k : picks) out.representatives.push_back(out.front[k]);
  return out;
}

double pareto_hypervolume(const std::vector<ProfiledPoint>& points, double ref_power) {
  SOCRATES_REQUIRE_MSG(std::isfinite(ref_power) && ref_power > 0.0,
                       "hypervolume reference power must be positive and finite");
  if (points.empty()) return 0.0;
  const auto front = pareto_filter(points);

  // Along a (throughput up, power down) front sorted by ascending
  // power, throughput ascends too; the dominated area is the staircase
  //   sum_i (thr_i - thr_{i-1}) * (ref_power - power_i).
  std::vector<std::size_t> order = front;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].power_mean_w != points[b].power_mean_w)
      return points[a].power_mean_w < points[b].power_mean_w;
    return points[a].throughput() < points[b].throughput();
  });

  double volume = 0.0;
  double prev_thr = 0.0;
  for (const std::size_t i : order) {
    const double slab = points[i].throughput() - prev_thr;
    const double depth = ref_power - points[i].power_mean_w;
    if (slab > 0.0 && depth > 0.0) {
      volume += slab * depth;
      prev_thr = points[i].throughput();
    }
  }
  return volume;
}

std::vector<ClonePair> clone_pairs(const std::vector<ProfiledPoint>& points,
                                   const std::vector<std::size_t>& indices) {
  std::vector<ClonePair> pairs;
  for (const std::size_t i : indices) {
    SOCRATES_REQUIRE(i < points.size());
    pairs.push_back({points[i].config_index, points[i].configuration.binding});
  }
  std::sort(pairs.begin(), pairs.end(), [](const ClonePair& a, const ClonePair& b) {
    if (a.config_index != b.config_index) return a.config_index < b.config_index;
    return static_cast<int>(a.binding) < static_cast<int>(b.binding);
  });
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const ClonePair& a, const ClonePair& b) {
                            return a.config_index == b.config_index &&
                                   a.binding == b.binding;
                          }),
              pairs.end());
  return pairs;
}

}  // namespace socrates::dse
