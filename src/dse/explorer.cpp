#include "dse/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/chaos.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace socrates::dse {

Explorer::~Explorer() = default;

namespace detail {

FlatPoint decompose_flat(const DesignSpace& space, std::size_t flat) {
  const std::size_t n_threads = space.thread_counts.size();
  const std::size_t n_bindings = space.bindings.size();
  FlatPoint p;
  p.config = flat / (n_threads * n_bindings);
  p.thread = (flat / n_bindings) % n_threads;
  p.binding = flat % n_bindings;
  return p;
}

std::size_t compose_flat(const DesignSpace& space, const FlatPoint& p) {
  const std::size_t n_threads = space.thread_counts.size();
  const std::size_t n_bindings = space.bindings.size();
  return (p.config * n_threads + p.thread) * n_bindings + p.binding;
}

FlatProfile profile_flat_supervised(const ExploreContext& ctx,
                                    const std::vector<std::size_t>& flat_indices) {
  SOCRATES_REQUIRE(ctx.repetitions >= 1);
  SOCRATES_REQUIRE(ctx.point_attempts >= 1);
  const DesignSpace& space = ctx.space;

  std::vector<ProfiledPoint> slots(flat_indices.size());
  std::vector<char> dropped(flat_indices.size(), 0);
  std::atomic<std::size_t> retries{0};
  TaskPool& executor = ctx.pool != nullptr ? *ctx.pool : TaskPool::shared();
  ChaosEngine& chaos = ChaosEngine::global();
  static Counter& points_profiled =
      MetricsRegistry::global().counter("dse.points_profiled");

  executor.parallel_for(flat_indices.size(), [&](std::size_t k) {
    TraceSpan span("dse-point", "dse");
    const std::size_t flat = flat_indices[k];
    span.set_arg("point", static_cast<std::int64_t>(flat));
    const FlatPoint fp = decompose_flat(space, flat);
    for (std::size_t attempt = 0; attempt < ctx.point_attempts; ++attempt) {
      try {
        // Same indexed chaos draw as supervised_dse: the decision for
        // (flat point, attempt) is independent of which strategy asked
        // and of thread interleaving.
        if (chaos.enabled() &&
            chaos.fire_indexed("dse.point", hash_combine(flat, attempt)))
          throw ChaosFault("injected DSE point fault");
        // Fresh stream every attempt, keyed by the *flat* index: the
        // surviving measurement is bit-identical to the full sweep.
        Rng noise(derive_stream(ctx.seed, flat));
        slots[k] = profile_point(ctx.model, ctx.kernel, space, fp.config,
                                 space.thread_counts[fp.thread],
                                 space.bindings[fp.binding], ctx.repetitions, noise,
                                 ctx.work_scale);
        points_profiled.add(1);
        return;
      } catch (const std::logic_error&) {
        throw;  // a caller bug, not a flaky measurement
      } catch (const std::exception&) {
        if (attempt + 1 < ctx.point_attempts)
          retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
    dropped[k] = 1;
  });

  FlatProfile out;
  out.retries = retries.load();
  out.points.reserve(flat_indices.size());
  out.surviving_flat.reserve(flat_indices.size());
  for (std::size_t k = 0; k < flat_indices.size(); ++k) {
    if (dropped[k] != 0) {
      ++out.dropped;
      continue;
    }
    out.points.push_back(std::move(slots[k]));
    out.surviving_flat.push_back(flat_indices[k]);
  }
  if (out.dropped > 0)
    MetricsRegistry::global().counter("dse.points_dropped").add(out.dropped);
  if (out.retries > 0)
    MetricsRegistry::global().counter("dse.point_retries").add(out.retries);
  return out;
}

}  // namespace detail

namespace {

void require_context(const ExploreContext& ctx) {
  SOCRATES_REQUIRE_MSG(ctx.repetitions >= 1,
                       "DSE repetitions must be >= 1 (got " << ctx.repetitions
                                                            << ")");
  SOCRATES_REQUIRE_MSG(ctx.space.size() > 0, "DSE design space is empty");
  SOCRATES_REQUIRE(ctx.point_attempts >= 1);
}

ExploreResult result_from(detail::FlatProfile&& profile, std::size_t evaluated) {
  ExploreResult out;
  out.points = std::move(profile.points);
  out.evaluated = evaluated;
  out.dropped = profile.dropped;
  out.retries = profile.retries;
  return out;
}

/// The flat indices of a random subset, sorted ascending (deterministic
/// profiling order, independent of the job count).
std::vector<std::size_t> subset_indices(const DesignSpace& space, double fraction,
                                        std::uint64_t seed) {
  const std::size_t total = space.size();
  const auto budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(total))));
  Rng rng(seed);
  std::vector<std::size_t> indices(total);
  for (std::size_t i = 0; i < total; ++i) indices[i] = i;
  rng.shuffle(indices);
  indices.resize(budget);
  std::sort(indices.begin(), indices.end());
  return indices;
}

/// Stratum order mirrors the historical serial loop: config-major, then
/// binding, then a geometric thread ladder anchored at both extremes.
std::vector<std::size_t> stratified_indices(const DesignSpace& space,
                                            std::size_t threads_per_stratum) {
  const std::size_t n_threads = space.thread_counts.size();
  std::set<std::size_t> picked_indices = {0, n_threads - 1};
  const double steps = static_cast<double>(threads_per_stratum - 1);
  for (std::size_t s = 1; s + 1 < threads_per_stratum; ++s) {
    const double t = static_cast<double>(s) / steps;
    const double geo = std::pow(static_cast<double>(n_threads), t);
    const auto idx =
        std::min(n_threads - 1, static_cast<std::size_t>(std::lround(geo)) - 1);
    picked_indices.insert(idx);
  }

  const std::size_t n_bindings = space.bindings.size();
  std::vector<std::size_t> flat_indices;
  flat_indices.reserve(space.configs.size() * n_bindings * picked_indices.size());
  for (std::size_t ci = 0; ci < space.configs.size(); ++ci) {
    for (std::size_t bi = 0; bi < n_bindings; ++bi) {
      for (const std::size_t ti : picked_indices)
        flat_indices.push_back((ci * n_threads + ti) * n_bindings + bi);
    }
  }
  return flat_indices;
}

}  // namespace

// ---- FullFactorialExplorer -------------------------------------------------

ExploreResult FullFactorialExplorer::explore(const ExploreContext& ctx) const {
  require_context(ctx);
  auto run = supervised_dse(ctx.model, ctx.kernel, ctx.space, ctx.repetitions,
                            ctx.seed, ctx.work_scale, ctx.pool, ctx.point_attempts);
  ExploreResult out;
  out.points = std::move(run.points);
  out.evaluated = ctx.space.size();
  out.dropped = run.dropped;
  out.retries = run.retries;
  return out;
}

void FullFactorialExplorer::add_to_key(Hasher& h) const { h.add("dse-full"); }

// ---- RandomSubsetExplorer --------------------------------------------------

RandomSubsetExplorer::RandomSubsetExplorer(double fraction) : fraction_(fraction) {
  SOCRATES_REQUIRE_MSG(std::isfinite(fraction) && fraction > 0.0 && fraction <= 1.0,
                       "random-subset fraction must lie in (0, 1], got "
                           << fraction
                           << " — a zero/negative fraction profiles nothing and "
                              "> 1 cannot draw without replacement");
}

ExploreResult RandomSubsetExplorer::explore(const ExploreContext& ctx) const {
  require_context(ctx);
  const auto indices = subset_indices(ctx.space, fraction_, ctx.seed);
  const std::size_t evaluated = indices.size();
  return result_from(detail::profile_flat_supervised(ctx, indices), evaluated);
}

void RandomSubsetExplorer::add_to_key(Hasher& h) const {
  h.add("dse-subset");
  h.add(fraction_);
}

// ---- StratifiedExplorer ----------------------------------------------------

StratifiedExplorer::StratifiedExplorer(std::size_t threads_per_stratum)
    : threads_per_stratum_(threads_per_stratum) {
  SOCRATES_REQUIRE_MSG(threads_per_stratum >= 2,
                       "stratified ladder needs >= 2 thread counts (got "
                           << threads_per_stratum
                           << ") — both extremes must be anchored");
}

ExploreResult StratifiedExplorer::explore(const ExploreContext& ctx) const {
  require_context(ctx);
  SOCRATES_REQUIRE(!ctx.space.thread_counts.empty());
  const auto indices = stratified_indices(ctx.space, threads_per_stratum_);
  const std::size_t evaluated = indices.size();
  return result_from(detail::profile_flat_supervised(ctx, indices), evaluated);
}

void StratifiedExplorer::add_to_key(Hasher& h) const {
  h.add("dse-stratified");
  h.add(static_cast<std::uint64_t>(threads_per_stratum_));
}

// ---- strategy selection ----------------------------------------------------

DseStrategyOptions DseStrategyOptions::from_env() {
  DseStrategyOptions o;
  const std::string kind = env::choice_or(
      "SOCRATES_DSE", "full", {"full", "subset", "stratified", "two-stage"});
  if (kind == "subset") {
    o.kind = Kind::kSubset;
  } else if (kind == "stratified") {
    o.kind = Kind::kStratified;
  } else if (kind == "two-stage") {
    o.kind = Kind::kTwoStage;
  }
  o.subset_fraction = env::real_or("SOCRATES_DSE_FRACTION", 0.25, 1e-6, 1.0);
  o.stratified_threads = env::size_or("SOCRATES_DSE_STRATA", 6, 2, 1024);
  o.budget = env::size_or("SOCRATES_DSE_BUDGET", 0, 0, 1u << 20);
  o.population = env::size_or("SOCRATES_DSE_POP", 12, 2, 4096);
  o.generations = env::size_or("SOCRATES_DSE_GENS", 24, 1, 4096);
  o.max_representatives = env::size_or("SOCRATES_DSE_PRUNE", 0, 0, 4096);
  return o;
}

const char* DseStrategyOptions::kind_name() const {
  switch (kind) {
    case Kind::kFull: return "full";
    case Kind::kSubset: return "subset";
    case Kind::kStratified: return "stratified";
    case Kind::kTwoStage: return "two-stage";
  }
  return "full";
}

// ---- free functions --------------------------------------------------------

std::vector<ProfiledPoint> random_subset_dse(const platform::PerformanceModel& model,
                                             const platform::KernelModelParams& kernel,
                                             const DesignSpace& space, double fraction,
                                             std::size_t repetitions, std::uint64_t seed,
                                             double work_scale, TaskPool* pool) {
  SOCRATES_REQUIRE_MSG(repetitions >= 1,
                       "random-subset repetitions must be >= 1 (got 0) — zero "
                       "repetitions would produce empty statistics, not a "
                       "cheaper sweep");
  SOCRATES_REQUIRE(space.size() > 0);
  const RandomSubsetExplorer explorer(fraction);  // validates the fraction
  ExploreContext ctx{model, kernel, space, repetitions, seed, work_scale, pool, 1};
  return explorer.explore(ctx).points;
}

std::vector<ProfiledPoint> stratified_dse(const platform::PerformanceModel& model,
                                          const platform::KernelModelParams& kernel,
                                          const DesignSpace& space,
                                          std::size_t threads_per_stratum,
                                          std::size_t repetitions, std::uint64_t seed,
                                          double work_scale, TaskPool* pool) {
  SOCRATES_REQUIRE_MSG(repetitions >= 1,
                       "stratified repetitions must be >= 1 (got 0)");
  const StratifiedExplorer explorer(threads_per_stratum);
  ExploreContext ctx{model, kernel, space, repetitions, seed, work_scale, pool, 1};
  return explorer.explore(ctx).points;
}

}  // namespace socrates::dse
