// Discrete Bayesian networks: representation, parameter fitting and
// inference.
//
// The network is a DAG over discrete variables; each node carries a
// conditional probability table P(X | parents(X)) estimated from data
// with Laplace smoothing.  Inference needs of COBAYN are modest — the
// evidence always covers all feature nodes and the query enumerates
// flag assignments — so exact evaluation of the joint plus enumeration
// over query variables is both simple and fast.  Ancestral sampling is
// provided for tests and for posterior sampling with partial evidence.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace socrates::bayes {

/// A discrete random variable.
struct Variable {
  std::string name;
  std::size_t cardinality = 2;
};

/// A full or partial assignment: value per variable index, nullopt = unobserved.
using Assignment = std::vector<std::optional<std::size_t>>;

/// A complete assignment (every variable set).
using FullAssignment = std::vector<std::size_t>;

/// Training data: each row assigns a value to every variable.
using Dataset = std::vector<FullAssignment>;

class BayesNet {
 public:
  /// Builds a network with the given variables and no edges.
  explicit BayesNet(std::vector<Variable> variables);

  std::size_t variable_count() const { return vars_.size(); }
  const Variable& variable(std::size_t i) const;
  /// Index of the variable with this name; throws if absent.
  std::size_t index_of(const std::string& name) const;

  /// Adds edge parent -> child.  Rejects duplicate edges and cycles.
  void add_edge(std::size_t parent, std::size_t child);

  const std::vector<std::size_t>& parents(std::size_t child) const;

  /// True when adding parent -> child would create a cycle.
  bool would_create_cycle(std::size_t parent, std::size_t child) const;

  /// Estimates every CPT from `data` with Laplace smoothing `alpha`.
  void fit(const Dataset& data, double alpha = 1.0);

  /// True once fit() has run.
  bool is_fitted() const { return fitted_; }

  /// log P(assignment) under the fitted model.
  double log_joint(const FullAssignment& assignment) const;

  /// P(X_var = value | parent values taken from `assignment`).
  double conditional(std::size_t var, const FullAssignment& assignment) const;

  /// Enumerates all completions of `evidence` over the variables listed
  /// in `query` (which must be exactly the unobserved ones) and returns
  /// normalized posterior probabilities in mixed-radix order (first
  /// query variable is the most significant digit).
  std::vector<double> posterior_over(const std::vector<std::size_t>& query,
                                     const Assignment& evidence) const;

  /// Draws a complete sample by ancestral sampling; variables fixed in
  /// `evidence` keep their values (forward sampling, not conditioning).
  FullAssignment sample(Rng& rng, const Assignment& evidence = {}) const;

  /// Topological order of the DAG (parents before children).
  std::vector<std::size_t> topological_order() const;

  /// Number of free parameters across all CPTs.
  std::size_t parameter_count() const;

  /// Writes variables, edges and CPTs in a stable text format
  /// (hexfloat doubles, exact round trip) — the artifact-cache
  /// representation of a trained model.
  void save(std::ostream& out) const;

  /// Parses a network written by save().  Throws ContractViolation on
  /// malformed input.
  static BayesNet load(std::istream& in);

 private:
  std::size_t cpt_row_index(std::size_t var, const FullAssignment& assignment) const;

  std::vector<Variable> vars_;
  std::vector<std::vector<std::size_t>> parents_;
  /// cpts_[v][row * card(v) + value] = P(v = value | parent row).
  std::vector<std::vector<double>> cpts_;
  bool fitted_ = false;
};

}  // namespace socrates::bayes
