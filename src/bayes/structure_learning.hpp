// Greedy structure learning for discrete Bayesian networks.
//
// COBAYN learns the dependency structure between application features
// and good compiler-flag settings from iterative-compilation data.  We
// implement the classic K2 greedy search: given a topological variable
// ordering, each node greedily acquires the parent (among its
// predecessors) that most improves a decomposable score, until no
// parent helps or the per-node parent limit is reached.  The score is
// BIC (log-likelihood minus a complexity penalty), which keeps the
// network sparse on the small datasets iterative compilation yields.
#pragma once

#include <cstddef>
#include <vector>

#include "bayes/network.hpp"

namespace socrates::bayes {

struct K2Options {
  std::size_t max_parents = 3;
  double laplace_alpha = 1.0;
};

/// BIC score of a single family (variable + its parent set) on `data`:
/// sum over rows of log P(x_v | parents) with MLE+Laplace parameters,
/// minus 0.5 * log(N) * #free-parameters of the family.
double family_bic_score(const Dataset& data, const std::vector<Variable>& vars,
                        std::size_t var, const std::vector<std::size_t>& parents,
                        double alpha = 1.0);

/// Runs K2 search over `order` (earlier variables may only be parents
/// of later ones) and returns a *fitted* network.
BayesNet k2_search(const std::vector<Variable>& vars, const Dataset& data,
                   const std::vector<std::size_t>& order, const K2Options& options = {});

/// Total BIC score of a fitted network structure on `data`.
double network_bic_score(const BayesNet& net, const Dataset& data, double alpha = 1.0);

}  // namespace socrates::bayes
