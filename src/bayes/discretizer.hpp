// Equal-frequency discretization of continuous feature columns.
//
// COBAYN's Bayesian network is discrete: each Milepost feature column
// is binned before structure learning.  Equal-frequency binning keeps
// every bin populated even for heavily skewed count features (most
// static features are power-law-ish across kernels), which keeps the
// CPTs well-conditioned.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace socrates::bayes {

/// Per-column equal-frequency binning learned from training data.
class Discretizer {
 public:
  /// Learns cut points for every column of `rows` (row-major, all rows
  /// the same width).  `bins` >= 2.  Duplicate cut points (constant or
  /// near-constant columns) are collapsed, so a column's effective
  /// cardinality may be smaller than `bins` but is always >= 1.
  void fit(const std::vector<std::vector<double>>& rows, std::size_t bins);

  /// Number of columns the discretizer was fitted on.
  std::size_t columns() const { return cuts_.size(); }

  /// Effective number of bins for a column (>= 1).
  std::size_t cardinality(std::size_t column) const;

  /// Maps a raw value to its bin in [0, cardinality(column)).
  std::size_t transform(std::size_t column, double value) const;

  /// Transforms a full row; `row.size()` must equal columns().
  std::vector<std::size_t> transform_row(const std::vector<double>& row) const;

  /// Writes the cut points in a stable text format (hexfloat doubles,
  /// exact round trip) — the artifact-cache representation.
  void save(std::ostream& out) const;

  /// Parses a discretizer written by save().  Throws ContractViolation
  /// on malformed input.
  static Discretizer load(std::istream& in);

 private:
  /// cuts_[c] holds ascending inner cut points; value v falls in the
  /// first bin whose cut is > v.
  std::vector<std::vector<double>> cuts_;
};

}  // namespace socrates::bayes
