#include "bayes/network.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "support/serialize.hpp"
#include "support/error.hpp"

namespace socrates::bayes {

BayesNet::BayesNet(std::vector<Variable> variables) : vars_(std::move(variables)) {
  SOCRATES_REQUIRE(!vars_.empty());
  for (const auto& v : vars_) SOCRATES_REQUIRE_MSG(v.cardinality >= 1, "variable " << v.name);
  parents_.assign(vars_.size(), {});
}

const Variable& BayesNet::variable(std::size_t i) const {
  SOCRATES_REQUIRE(i < vars_.size());
  return vars_[i];
}

std::size_t BayesNet::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < vars_.size(); ++i)
    if (vars_[i].name == name) return i;
  SOCRATES_REQUIRE_MSG(false, "unknown variable '" << name << "'");
  return 0;  // unreachable
}

bool BayesNet::would_create_cycle(std::size_t parent, std::size_t child) const {
  if (parent == child) return true;
  // DFS from `parent` through its ancestors: a cycle appears iff child
  // is already an ancestor of parent.
  std::vector<std::size_t> stack = {parent};
  std::vector<bool> seen(vars_.size(), false);
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    if (v == child) return true;
    if (seen[v]) continue;
    seen[v] = true;
    for (const std::size_t p : parents_[v]) stack.push_back(p);
  }
  return false;
}

void BayesNet::add_edge(std::size_t parent, std::size_t child) {
  SOCRATES_REQUIRE(parent < vars_.size() && child < vars_.size());
  SOCRATES_REQUIRE_MSG(!would_create_cycle(parent, child),
                       "edge " << vars_[parent].name << " -> " << vars_[child].name
                               << " would create a cycle");
  auto& ps = parents_[child];
  SOCRATES_REQUIRE_MSG(std::find(ps.begin(), ps.end(), parent) == ps.end(),
                       "duplicate edge");
  ps.push_back(parent);
  fitted_ = false;
}

const std::vector<std::size_t>& BayesNet::parents(std::size_t child) const {
  SOCRATES_REQUIRE(child < vars_.size());
  return parents_[child];
}

std::size_t BayesNet::cpt_row_index(std::size_t var, const FullAssignment& a) const {
  std::size_t row = 0;
  for (const std::size_t p : parents_[var]) {
    SOCRATES_ENSURE(a[p] < vars_[p].cardinality);
    row = row * vars_[p].cardinality + a[p];
  }
  return row;
}

void BayesNet::fit(const Dataset& data, double alpha) {
  SOCRATES_REQUIRE(!data.empty());
  SOCRATES_REQUIRE(alpha > 0.0);
  for (const auto& row : data) {
    SOCRATES_REQUIRE(row.size() == vars_.size());
    for (std::size_t v = 0; v < vars_.size(); ++v)
      SOCRATES_REQUIRE_MSG(row[v] < vars_[v].cardinality,
                           "value " << row[v] << " out of range for " << vars_[v].name);
  }

  cpts_.assign(vars_.size(), {});
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    std::size_t rows = 1;
    for (const std::size_t p : parents_[v]) rows *= vars_[p].cardinality;
    const std::size_t card = vars_[v].cardinality;

    std::vector<double> counts(rows * card, alpha);
    for (const auto& sample : data) {
      const std::size_t row = cpt_row_index(v, sample);
      counts[row * card + sample[v]] += 1.0;
    }
    // Normalize each row.
    for (std::size_t r = 0; r < rows; ++r) {
      double total = 0.0;
      for (std::size_t k = 0; k < card; ++k) total += counts[r * card + k];
      for (std::size_t k = 0; k < card; ++k) counts[r * card + k] /= total;
    }
    cpts_[v] = std::move(counts);
  }
  fitted_ = true;
}

double BayesNet::conditional(std::size_t var, const FullAssignment& a) const {
  SOCRATES_REQUIRE(fitted_);
  SOCRATES_REQUIRE(var < vars_.size());
  SOCRATES_REQUIRE(a.size() == vars_.size());
  const std::size_t row = cpt_row_index(var, a);
  return cpts_[var][row * vars_[var].cardinality + a[var]];
}

double BayesNet::log_joint(const FullAssignment& a) const {
  SOCRATES_REQUIRE(fitted_);
  SOCRATES_REQUIRE(a.size() == vars_.size());
  double log_p = 0.0;
  for (std::size_t v = 0; v < vars_.size(); ++v) log_p += std::log(conditional(v, a));
  return log_p;
}

std::vector<double> BayesNet::posterior_over(const std::vector<std::size_t>& query,
                                             const Assignment& evidence) const {
  SOCRATES_REQUIRE(fitted_);
  SOCRATES_REQUIRE(evidence.size() == vars_.size());
  // Sanity: query variables are exactly the unobserved ones.
  std::vector<bool> in_query(vars_.size(), false);
  for (const std::size_t q : query) {
    SOCRATES_REQUIRE(q < vars_.size());
    in_query[q] = true;
  }
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    SOCRATES_REQUIRE_MSG(evidence[v].has_value() != in_query[v],
                         "variable " << vars_[v].name
                                     << " must be either evidence or query");
  }

  std::size_t combos = 1;
  for (const std::size_t q : query) combos *= vars_[q].cardinality;
  SOCRATES_REQUIRE_MSG(combos <= (1u << 20), "query space too large: " << combos);

  FullAssignment a(vars_.size(), 0);
  for (std::size_t v = 0; v < vars_.size(); ++v)
    if (evidence[v]) a[v] = *evidence[v];

  std::vector<double> log_probs(combos);
  for (std::size_t idx = 0; idx < combos; ++idx) {
    std::size_t rest = idx;
    // Mixed radix: first query variable is the most significant digit.
    for (std::size_t qi = query.size(); qi-- > 0;) {
      const std::size_t q = query[qi];
      a[q] = rest % vars_[q].cardinality;
      rest /= vars_[q].cardinality;
    }
    log_probs[idx] = log_joint(a);
  }

  // Log-sum-exp normalization.
  const double max_log = *std::max_element(log_probs.begin(), log_probs.end());
  double total = 0.0;
  for (const double lp : log_probs) total += std::exp(lp - max_log);
  std::vector<double> out(combos);
  for (std::size_t i = 0; i < combos; ++i)
    out[i] = std::exp(log_probs[i] - max_log) / total;
  return out;
}

FullAssignment BayesNet::sample(Rng& rng, const Assignment& evidence) const {
  SOCRATES_REQUIRE(fitted_);
  SOCRATES_REQUIRE(evidence.empty() || evidence.size() == vars_.size());
  FullAssignment a(vars_.size(), 0);
  for (const std::size_t v : topological_order()) {
    if (!evidence.empty() && evidence[v]) {
      a[v] = *evidence[v];
      continue;
    }
    const std::size_t card = vars_[v].cardinality;
    const std::size_t row = cpt_row_index(v, a);
    std::vector<double> weights(card);
    for (std::size_t k = 0; k < card; ++k) weights[k] = cpts_[v][row * card + k];
    a[v] = rng.weighted_pick(weights);
  }
  return a;
}

std::vector<std::size_t> BayesNet::topological_order() const {
  std::vector<std::size_t> order;
  std::vector<int> state(vars_.size(), 0);  // 0=unseen 1=visiting 2=done
  // Iterative DFS with explicit finish actions.
  for (std::size_t root = 0; root < vars_.size(); ++root) {
    if (state[root] != 0) continue;
    std::vector<std::pair<std::size_t, bool>> stack = {{root, false}};
    while (!stack.empty()) {
      const auto [v, finished] = stack.back();
      stack.pop_back();
      if (finished) {
        state[v] = 2;
        order.push_back(v);
        continue;
      }
      if (state[v] != 0) continue;  // already visiting (entry pending) or done
      state[v] = 1;
      stack.emplace_back(v, true);
      for (const std::size_t p : parents_[v]) {
        SOCRATES_ENSURE(state[p] != 1);  // DAG invariant
        if (state[p] == 0) stack.emplace_back(p, false);
      }
    }
  }
  return order;
}

void BayesNet::save(std::ostream& out) const {
  out << "bayesnet v1 " << vars_.size() << ' ' << (fitted_ ? 1 : 0) << '\n';
  for (const auto& v : vars_) out << v.name << ' ' << v.cardinality << '\n';
  for (const auto& ps : parents_) {
    out << ps.size();
    for (const std::size_t p : ps) out << ' ' << p;
    out << '\n';
  }
  if (!fitted_) return;
  for (const auto& cpt : cpts_) {
    out << cpt.size();
    for (const double p : cpt) out << ' ' << format_exact(p);
    out << '\n';
  }
}

BayesNet BayesNet::load(std::istream& in) {
  std::string magic, version;
  std::size_t n_vars = 0;
  int fitted = 0;
  in >> magic >> version >> n_vars >> fitted;
  SOCRATES_REQUIRE_MSG(in && magic == "bayesnet" && version == "v1" && n_vars > 0,
                       "not a bayesnet artifact");
  std::vector<Variable> vars(n_vars);
  for (auto& v : vars) {
    in >> v.name >> v.cardinality;
    SOCRATES_REQUIRE_MSG(in && v.cardinality >= 1, "malformed bayesnet variable");
  }
  BayesNet net(std::move(vars));
  for (std::size_t v = 0; v < n_vars; ++v) {
    std::size_t count = 0;
    in >> count;
    SOCRATES_REQUIRE_MSG(in && count < n_vars, "malformed bayesnet parent list");
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t p = 0;
      in >> p;
      SOCRATES_REQUIRE_MSG(in, "truncated bayesnet parent list");
      net.add_edge(p, v);  // validates range, duplicates and acyclicity
    }
  }
  if (fitted != 0) {
    net.cpts_.resize(n_vars);
    for (std::size_t v = 0; v < n_vars; ++v) {
      std::size_t len = 0;
      in >> len;
      std::size_t rows = 1;
      for (const std::size_t p : net.parents_[v]) rows *= net.vars_[p].cardinality;
      SOCRATES_REQUIRE_MSG(in && len == rows * net.vars_[v].cardinality,
                           "bayesnet CPT size mismatch for " << net.vars_[v].name);
      net.cpts_[v].resize(len);
      for (double& p : net.cpts_[v]) p = parse_exact(in);
    }
    net.fitted_ = true;
  }
  return net;
}

std::size_t BayesNet::parameter_count() const {
  std::size_t total = 0;
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    std::size_t rows = 1;
    for (const std::size_t p : parents_[v]) rows *= vars_[p].cardinality;
    total += rows * (vars_[v].cardinality - 1);
  }
  return total;
}

}  // namespace socrates::bayes
