#include "bayes/discretizer.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/statistics.hpp"

namespace socrates::bayes {

void Discretizer::fit(const std::vector<std::vector<double>>& rows, std::size_t bins) {
  SOCRATES_REQUIRE(!rows.empty());
  SOCRATES_REQUIRE(bins >= 2);
  const std::size_t width = rows.front().size();
  for (const auto& r : rows) SOCRATES_REQUIRE(r.size() == width);

  cuts_.assign(width, {});
  for (std::size_t c = 0; c < width; ++c) {
    std::vector<double> column;
    column.reserve(rows.size());
    for (const auto& r : rows) column.push_back(r[c]);
    std::sort(column.begin(), column.end());

    std::vector<double>& cuts = cuts_[c];
    for (std::size_t b = 1; b < bins; ++b) {
      const double q = static_cast<double>(b) / static_cast<double>(bins);
      const double cut = quantile_sorted(column, q);
      // Collapse duplicate cuts so every bin is distinguishable.
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
    // Drop cuts at or below the minimum: they would create empty bins.
    while (!cuts.empty() && cuts.front() <= column.front()) cuts.erase(cuts.begin());
  }
}

std::size_t Discretizer::cardinality(std::size_t column) const {
  SOCRATES_REQUIRE(column < cuts_.size());
  return cuts_[column].size() + 1;
}

std::size_t Discretizer::transform(std::size_t column, double value) const {
  SOCRATES_REQUIRE(column < cuts_.size());
  const auto& cuts = cuts_[column];
  std::size_t bin = 0;
  while (bin < cuts.size() && value >= cuts[bin]) ++bin;
  return bin;
}

std::vector<std::size_t> Discretizer::transform_row(const std::vector<double>& row) const {
  SOCRATES_REQUIRE(row.size() == cuts_.size());
  std::vector<std::size_t> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) out[c] = transform(c, row[c]);
  return out;
}

}  // namespace socrates::bayes
