#include "bayes/discretizer.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "support/serialize.hpp"
#include "support/error.hpp"
#include "support/statistics.hpp"

namespace socrates::bayes {

void Discretizer::fit(const std::vector<std::vector<double>>& rows, std::size_t bins) {
  SOCRATES_REQUIRE(!rows.empty());
  SOCRATES_REQUIRE(bins >= 2);
  const std::size_t width = rows.front().size();
  for (const auto& r : rows) SOCRATES_REQUIRE(r.size() == width);

  cuts_.assign(width, {});
  for (std::size_t c = 0; c < width; ++c) {
    std::vector<double> column;
    column.reserve(rows.size());
    for (const auto& r : rows) column.push_back(r[c]);
    std::sort(column.begin(), column.end());

    std::vector<double>& cuts = cuts_[c];
    for (std::size_t b = 1; b < bins; ++b) {
      const double q = static_cast<double>(b) / static_cast<double>(bins);
      const double cut = quantile_sorted(column, q);
      // Collapse duplicate cuts so every bin is distinguishable.
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
    // Drop cuts at or below the minimum: they would create empty bins.
    while (!cuts.empty() && cuts.front() <= column.front()) cuts.erase(cuts.begin());
  }
}

std::size_t Discretizer::cardinality(std::size_t column) const {
  SOCRATES_REQUIRE(column < cuts_.size());
  return cuts_[column].size() + 1;
}

std::size_t Discretizer::transform(std::size_t column, double value) const {
  SOCRATES_REQUIRE(column < cuts_.size());
  const auto& cuts = cuts_[column];
  std::size_t bin = 0;
  while (bin < cuts.size() && value >= cuts[bin]) ++bin;
  return bin;
}

std::vector<std::size_t> Discretizer::transform_row(const std::vector<double>& row) const {
  SOCRATES_REQUIRE(row.size() == cuts_.size());
  std::vector<std::size_t> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) out[c] = transform(c, row[c]);
  return out;
}

void Discretizer::save(std::ostream& out) const {
  out << "discretizer v1 " << cuts_.size() << '\n';
  for (const auto& cuts : cuts_) {
    out << cuts.size();
    for (const double c : cuts) out << ' ' << format_exact(c);
    out << '\n';
  }
}

Discretizer Discretizer::load(std::istream& in) {
  std::string magic, version;
  std::size_t columns = 0;
  in >> magic >> version >> columns;
  SOCRATES_REQUIRE_MSG(in && magic == "discretizer" && version == "v1",
                       "not a discretizer artifact");
  Discretizer d;
  d.cuts_.resize(columns);
  for (auto& cuts : d.cuts_) {
    std::size_t count = 0;
    in >> count;
    SOCRATES_REQUIRE_MSG(in, "truncated discretizer artifact");
    cuts.resize(count);
    for (double& c : cuts) c = parse_exact(in);
  }
  return d;
}

}  // namespace socrates::bayes
