#include "bayes/structure_learning.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace socrates::bayes {

namespace {

/// Counts-based family log-likelihood with Laplace smoothing.
double family_log_likelihood(const Dataset& data, const std::vector<Variable>& vars,
                             std::size_t var, const std::vector<std::size_t>& parents,
                             double alpha) {
  std::size_t rows = 1;
  for (const std::size_t p : parents) rows *= vars[p].cardinality;
  const std::size_t card = vars[var].cardinality;

  std::vector<double> counts(rows * card, 0.0);
  std::vector<double> row_totals(rows, 0.0);
  for (const auto& sample : data) {
    std::size_t row = 0;
    for (const std::size_t p : parents) row = row * vars[p].cardinality + sample[p];
    counts[row * card + sample[var]] += 1.0;
    row_totals[row] += 1.0;
  }

  double log_lik = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double denom = row_totals[r] + alpha * static_cast<double>(card);
    for (std::size_t k = 0; k < card; ++k) {
      const double c = counts[r * card + k];
      if (c == 0.0) continue;
      log_lik += c * std::log((c + alpha) / denom);
    }
  }
  return log_lik;
}

}  // namespace

double family_bic_score(const Dataset& data, const std::vector<Variable>& vars,
                        std::size_t var, const std::vector<std::size_t>& parents,
                        double alpha) {
  SOCRATES_REQUIRE(!data.empty());
  SOCRATES_REQUIRE(var < vars.size());
  std::size_t rows = 1;
  for (const std::size_t p : parents) {
    SOCRATES_REQUIRE(p < vars.size());
    rows *= vars[p].cardinality;
  }
  const double free_params =
      static_cast<double>(rows) * static_cast<double>(vars[var].cardinality - 1);
  const double penalty = 0.5 * std::log(static_cast<double>(data.size())) * free_params;
  return family_log_likelihood(data, vars, var, parents, alpha) - penalty;
}

BayesNet k2_search(const std::vector<Variable>& vars, const Dataset& data,
                   const std::vector<std::size_t>& order, const K2Options& options) {
  SOCRATES_REQUIRE(order.size() == vars.size());
  SOCRATES_REQUIRE(!data.empty());

  BayesNet net(vars);

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const std::size_t var = order[pos];
    std::vector<std::size_t> parents;
    double best = family_bic_score(data, vars, var, parents, options.laplace_alpha);

    while (parents.size() < options.max_parents) {
      double best_gain = 0.0;
      std::size_t best_candidate = vars.size();
      for (std::size_t prev = 0; prev < pos; ++prev) {
        const std::size_t candidate = order[prev];
        if (std::find(parents.begin(), parents.end(), candidate) != parents.end())
          continue;
        std::vector<std::size_t> trial = parents;
        trial.push_back(candidate);
        const double score =
            family_bic_score(data, vars, var, trial, options.laplace_alpha);
        if (score - best > best_gain) {
          best_gain = score - best;
          best_candidate = candidate;
        }
      }
      if (best_candidate == vars.size()) break;  // no parent improves the score
      parents.push_back(best_candidate);
      best += best_gain;
    }

    for (const std::size_t p : parents) net.add_edge(p, var);
  }

  net.fit(data, options.laplace_alpha);
  return net;
}

double network_bic_score(const BayesNet& net, const Dataset& data, double alpha) {
  SOCRATES_REQUIRE(!data.empty());
  std::vector<Variable> vars;
  vars.reserve(net.variable_count());
  for (std::size_t v = 0; v < net.variable_count(); ++v) vars.push_back(net.variable(v));
  double total = 0.0;
  for (std::size_t v = 0; v < net.variable_count(); ++v)
    total += family_bic_score(data, vars, v, net.parents(v), alpha);
  return total;
}

}  // namespace socrates::bayes
