// Pretty printer: AST -> compilable C text.
//
// The output of the weaver is produced through this printer, so the
// woven sources in Table I are real C code, not templates.  Printing is
// deterministic and idempotent: parse(print(ast)) yields a tree that
// prints to the same text (the round-trip property tested in
// tests/ir_roundtrip_test.cpp).
#pragma once

#include <string>

#include "ir/ast.hpp"

namespace socrates::ir {

/// Renders a whole translation unit.
std::string print(const TranslationUnit& tu);

/// Renders a single statement at the given indent level (2 spaces per level).
std::string print_stmt(const Stmt& stmt, int indent = 0);

/// Renders an expression.
std::string print_expr(const Expr& expr);

/// Renders a declaration ("double A[n][m]" or "int i = 0").
std::string print_var_decl(const VarDecl& decl);

/// Renders a function signature without the body or trailing ';'.
std::string print_signature(const FunctionDecl& fn);

}  // namespace socrates::ir
