#include "ir/parser.hpp"

#include <sstream>
#include <unordered_set>

#include "ir/lexer.hpp"
#include "support/strings.hpp"

namespace socrates::ir {

ParseError::ParseError(const std::string& message, int line, int column)
    : std::runtime_error([&] {
        std::ostringstream os;
        os << "parse error at " << line << ':' << column << ": " << message;
        return os.str();
      }()),
      line_(line),
      column_(column) {}

namespace {

bool is_type_keyword(const std::string& w) {
  static const std::unordered_set<std::string> kTypes = {
      "void", "char", "short", "int",   "long",     "float",
      "double", "signed", "unsigned", "const", "struct", "volatile",
  };
  return kTypes.count(w) > 0;
}

bool is_decl_start_keyword(const std::string& w) {
  return is_type_keyword(w) || w == "static" || w == "extern" || w == "inline" ||
         w == "register" || w == "restrict";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  TranslationUnit parse_translation_unit() {
    TranslationUnit tu;
    while (!peek().is(TokenKind::kEnd)) {
      tu.items.push_back(parse_top_level());
    }
    return tu;
  }

  ExprPtr parse_single_expression() {
    auto expr = parse_assignment();
    expect_end();
    return expr;
  }

  StmtPtr parse_single_statement() {
    auto stmt = parse_statement();
    expect_end();
    return stmt;
  }

 private:
  // ---- token plumbing -------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool accept_punct(const char* spelling) {
    if (peek().is_punct(spelling)) {
      advance();
      return true;
    }
    return false;
  }

  bool accept_keyword(const char* spelling) {
    if (peek().is_keyword(spelling)) {
      advance();
      return true;
    }
    return false;
  }

  const Token& expect_punct(const char* spelling) {
    if (!peek().is_punct(spelling)) fail(std::string("expected '") + spelling + "'");
    return advance();
  }

  std::string expect_identifier() {
    if (!peek().is(TokenKind::kIdentifier)) fail("expected identifier");
    return advance().text;
  }

  void expect_end() {
    if (!peek().is(TokenKind::kEnd)) fail("trailing tokens after construct");
  }

  [[noreturn]] void fail(const std::string& message) const {
    const Token& t = peek();
    std::ostringstream os;
    os << message << " (got ";
    if (t.is(TokenKind::kEnd))
      os << "end of input";
    else
      os << '\'' << t.text << '\'';
    os << ')';
    throw ParseError(os.str(), t.line, t.column);
  }

  // ---- top level -------------------------------------------------------

  TopLevelPtr parse_top_level() {
    if (peek().is(TokenKind::kDirective)) return parse_directive();
    if (peek().is_keyword("typedef") || peek().is_keyword("enum") ||
        peek().is_keyword("union"))
      return parse_raw_until_semicolon();
    return parse_declaration_top_level();
  }

  TopLevelPtr parse_directive() {
    const std::string body = trim(advance().text);
    if (starts_with(body, "include")) {
      return std::make_unique<IncludeDirective>(trim(body.substr(7)));
    }
    if (starts_with(body, "define")) {
      return std::make_unique<DefineDirective>(trim(body.substr(6)));
    }
    if (starts_with(body, "pragma")) {
      return std::make_unique<TopLevelPragma>(Pragma{trim(body.substr(6))});
    }
    if (starts_with(body, "ifdef") || starts_with(body, "ifndef") ||
        starts_with(body, "endif") || starts_with(body, "if") ||
        starts_with(body, "else") || starts_with(body, "undef")) {
      // Conditional-compilation lines pass through verbatim.
      return std::make_unique<RawTopLevel>("#" + body);
    }
    fail("unsupported preprocessor directive '#" + body + "'");
  }

  TopLevelPtr parse_raw_until_semicolon() {
    // Capture tokens verbatim (with single spaces) until the matching ';'
    // at brace depth zero.  Handles typedef struct { ... } name;
    std::string text;
    int depth = 0;
    while (!peek().is(TokenKind::kEnd)) {
      const Token& t = advance();
      if (!text.empty()) text += ' ';
      text += t.text;
      if (t.is_punct("{")) ++depth;
      if (t.is_punct("}")) --depth;
      if (t.is_punct(";") && depth == 0) break;
    }
    return std::make_unique<RawTopLevel>(text);
  }

  /// Specifier keywords ("static const unsigned int"), returned joined.
  /// `is_static` reports whether 'static' appeared.
  std::string parse_specifiers(bool& is_static) {
    std::vector<std::string> parts;
    is_static = false;
    while (peek().is(TokenKind::kKeyword) && is_decl_start_keyword(peek().text)) {
      const std::string w = advance().text;
      if (w == "static") {
        is_static = true;
        continue;  // storage class tracked separately, not in the type text
      }
      if (w == "extern" || w == "inline" || w == "register" || w == "restrict") continue;
      parts.push_back(w);
      if (w == "struct") parts.push_back(expect_identifier());
    }
    if (parts.empty()) fail("expected type specifier");
    return join(parts, " ");
  }

  TopLevelPtr parse_declaration_top_level() {
    bool is_static = false;
    const std::string type_text = parse_specifiers(is_static);
    int pointer_depth = 0;
    while (accept_punct("*")) ++pointer_depth;
    const std::string name = expect_identifier();

    if (peek().is_punct("(")) {
      auto fn = std::make_unique<FunctionDecl>();
      fn->return_type = type_text;
      fn->return_pointer_depth = pointer_depth;
      fn->is_static = is_static;
      fn->name = name;
      fn->params = parse_parameter_list();
      if (accept_punct(";")) return fn;  // prototype
      fn->body = parse_compound();
      return fn;
    }

    // Global variable(s).
    std::vector<VarDecl> decls;
    decls.push_back(parse_declarator_rest(type_text, pointer_depth, name));
    while (accept_punct(",")) {
      int pd = 0;
      while (accept_punct("*")) ++pd;
      decls.push_back(parse_declarator_rest(type_text, pd, expect_identifier()));
    }
    expect_punct(";");
    return std::make_unique<GlobalVarDecl>(std::move(decls));
  }

  VarDecl parse_declarator_rest(const std::string& type_text, int pointer_depth,
                                std::string name) {
    VarDecl d;
    d.type_text = type_text;
    d.pointer_depth = pointer_depth;
    d.name = std::move(name);
    while (accept_punct("[")) {
      if (accept_punct("]")) {
        d.array_dims.push_back(nullptr);
      } else {
        d.array_dims.push_back(parse_assignment());
        expect_punct("]");
      }
    }
    if (accept_punct("=")) d.init = parse_assignment();
    return d;
  }

  std::vector<VarDecl> parse_parameter_list() {
    expect_punct("(");
    std::vector<VarDecl> params;
    if (accept_punct(")")) return params;
    if (peek().is_keyword("void") && peek(1).is_punct(")")) {
      advance();
      advance();
      return params;
    }
    while (true) {
      bool dummy_static = false;
      const std::string type_text = parse_specifiers(dummy_static);
      int pd = 0;
      while (accept_punct("*")) ++pd;
      std::string pname;
      if (peek().is(TokenKind::kIdentifier)) pname = advance().text;
      VarDecl p;
      p.type_text = type_text;
      p.pointer_depth = pd;
      p.name = std::move(pname);
      while (accept_punct("[")) {
        if (accept_punct("]")) {
          p.array_dims.push_back(nullptr);
        } else {
          p.array_dims.push_back(parse_assignment());
          expect_punct("]");
        }
      }
      params.push_back(std::move(p));
      if (accept_punct(")")) return params;
      expect_punct(",");
    }
  }

  // ---- statements -------------------------------------------------------

  std::unique_ptr<CompoundStmt> parse_compound() {
    expect_punct("{");
    auto block = std::make_unique<CompoundStmt>();
    while (!peek().is_punct("}")) {
      if (peek().is(TokenKind::kEnd)) fail("unterminated block");
      block->stmts.push_back(parse_statement());
    }
    expect_punct("}");
    return block;
  }

  StmtPtr parse_statement() {
    if (peek().is(TokenKind::kDirective)) {
      const std::string body = trim(advance().text);
      if (!starts_with(body, "pragma"))
        fail("only #pragma directives may appear inside a function");
      return std::make_unique<PragmaStmt>(Pragma{trim(body.substr(6))});
    }
    if (peek().is_punct("{")) return parse_compound();
    if (accept_punct(";")) return std::make_unique<EmptyStmt>();
    if (peek().is_keyword("if")) return parse_if();
    if (peek().is_keyword("for")) return parse_for();
    if (peek().is_keyword("while")) return parse_while();
    if (peek().is_keyword("do")) return parse_do_while();
    if (peek().is_keyword("switch")) return parse_switch();
    if (accept_keyword("case")) {
      auto value = parse_conditional();  // no assignment in a case label
      expect_punct(":");
      return std::make_unique<CaseLabelStmt>(std::move(value));
    }
    if (accept_keyword("default")) {
      expect_punct(":");
      return std::make_unique<CaseLabelStmt>(nullptr);
    }
    if (accept_keyword("return")) {
      ExprPtr value;
      if (!peek().is_punct(";")) value = parse_assignment();
      expect_punct(";");
      return std::make_unique<ReturnStmt>(std::move(value));
    }
    if (accept_keyword("break")) {
      expect_punct(";");
      return std::make_unique<BreakStmt>();
    }
    if (accept_keyword("continue")) {
      expect_punct(";");
      return std::make_unique<ContinueStmt>();
    }
    if (peek().is(TokenKind::kKeyword) && is_decl_start_keyword(peek().text))
      return parse_decl_statement();
    auto expr = parse_assignment();
    expect_punct(";");
    return std::make_unique<ExprStmt>(std::move(expr));
  }

  StmtPtr parse_decl_statement() {
    bool is_static = false;
    const std::string type_text = parse_specifiers(is_static);
    std::vector<VarDecl> decls;
    while (true) {
      int pd = 0;
      while (accept_punct("*")) ++pd;
      decls.push_back(parse_declarator_rest(type_text, pd, expect_identifier()));
      if (!accept_punct(",")) break;
    }
    expect_punct(";");
    return std::make_unique<DeclStmt>(std::move(decls));
  }

  StmtPtr parse_if() {
    advance();  // 'if'
    expect_punct("(");
    auto cond = parse_assignment();
    expect_punct(")");
    auto then_branch = parse_statement();
    StmtPtr else_branch;
    if (accept_keyword("else")) else_branch = parse_statement();
    return std::make_unique<IfStmt>(std::move(cond), std::move(then_branch),
                                    std::move(else_branch));
  }

  StmtPtr parse_for() {
    advance();  // 'for'
    expect_punct("(");
    auto loop = std::make_unique<ForStmt>();
    if (!accept_punct(";")) {
      if (peek().is(TokenKind::kKeyword) && is_decl_start_keyword(peek().text)) {
        loop->init = parse_decl_statement();  // consumes trailing ';'
      } else {
        auto expr = parse_assignment();
        expect_punct(";");
        loop->init = std::make_unique<ExprStmt>(std::move(expr));
      }
    }
    if (!peek().is_punct(";")) loop->cond = parse_assignment();
    expect_punct(";");
    if (!peek().is_punct(")")) loop->inc = parse_assignment();
    expect_punct(")");
    loop->body = parse_statement();
    return loop;
  }

  StmtPtr parse_while() {
    advance();  // 'while'
    expect_punct("(");
    auto cond = parse_assignment();
    expect_punct(")");
    auto body = parse_statement();
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body));
  }

  StmtPtr parse_switch() {
    advance();  // 'switch'
    expect_punct("(");
    auto cond = parse_assignment();
    expect_punct(")");
    if (!peek().is_punct("{")) fail("switch body must be a compound statement");
    auto body = parse_compound();
    return std::make_unique<SwitchStmt>(std::move(cond), std::move(body));
  }

  StmtPtr parse_do_while() {
    advance();  // 'do'
    auto body = parse_statement();
    if (!accept_keyword("while")) fail("expected 'while' after do-body");
    expect_punct("(");
    auto cond = parse_assignment();
    expect_punct(")");
    expect_punct(";");
    return std::make_unique<DoWhileStmt>(std::move(body), std::move(cond));
  }

  // ---- expressions --------------------------------------------------------

  ExprPtr parse_assignment() {
    auto lhs = parse_conditional();
    static const std::unordered_set<std::string> kAssignOps = {
        "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="};
    if (peek().is(TokenKind::kPunct) && kAssignOps.count(peek().text) > 0) {
      const std::string op = advance().text;
      auto rhs = parse_assignment();  // right-associative
      return std::make_unique<AssignExpr>(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr parse_conditional() {
    auto cond = parse_binary(0);
    if (accept_punct("?")) {
      auto then_expr = parse_assignment();
      expect_punct(":");
      auto else_expr = parse_conditional();
      return std::make_unique<ConditionalExpr>(std::move(cond), std::move(then_expr),
                                               std::move(else_expr));
    }
    return cond;
  }

  /// Binary operator precedence: higher binds tighter. -1 = not binary.
  static int binary_precedence(const Token& t) {
    if (!t.is(TokenKind::kPunct)) return -1;
    const std::string& op = t.text;
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return -1;
  }

  ExprPtr parse_binary(int min_prec) {
    auto lhs = parse_unary();
    while (true) {
      const int prec = binary_precedence(peek());
      if (prec < 0 || prec < min_prec) return lhs;
      const std::string op = advance().text;
      auto rhs = parse_binary(prec + 1);  // left-associative
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
    }
  }

  bool looks_like_cast() const {
    // '(' followed by a type keyword, then tokens until ')' that are
    // only specifiers / '*', then something that can start a unary expr.
    if (!peek().is_punct("(")) return false;
    if (!peek(1).is(TokenKind::kKeyword) || !is_type_keyword(peek(1).text)) return false;
    std::size_t i = 1;
    while (!peek(i).is(TokenKind::kEnd)) {
      const Token& t = peek(i);
      if (t.is_punct(")")) return true;
      const bool ok = (t.is(TokenKind::kKeyword) && is_type_keyword(t.text)) ||
                      t.is_punct("*") ||
                      (t.is(TokenKind::kKeyword) && t.text == "struct") ||
                      t.is(TokenKind::kIdentifier);
      if (!ok) return false;
      ++i;
    }
    return false;
  }

  ExprPtr parse_unary() {
    const Token& t = peek();
    if (t.is_punct("+") || t.is_punct("-") || t.is_punct("!") || t.is_punct("~") ||
        t.is_punct("*") || t.is_punct("&") || t.is_punct("++") || t.is_punct("--")) {
      const std::string op = advance().text;
      return std::make_unique<UnaryExpr>(op, parse_unary(), /*pre=*/true);
    }
    if (t.is_keyword("sizeof")) {
      advance();
      if (looks_like_cast()) {
        expect_punct("(");
        std::string type_text = parse_cast_type();
        expect_punct(")");
        return std::make_unique<UnaryExpr>("sizeof",
                                           std::make_unique<Ident>(type_text),
                                           /*pre=*/true);
      }
      return std::make_unique<UnaryExpr>("sizeof", parse_unary(), /*pre=*/true);
    }
    if (looks_like_cast()) {
      expect_punct("(");
      std::string type_text = parse_cast_type();
      expect_punct(")");
      return std::make_unique<CastExpr>(std::move(type_text), parse_unary());
    }
    return parse_postfix();
  }

  std::string parse_cast_type() {
    std::vector<std::string> parts;
    while (!peek().is_punct(")")) {
      if (peek().is(TokenKind::kEnd)) fail("unterminated cast");
      parts.push_back(advance().text);
    }
    return join(parts, " ");
  }

  ExprPtr parse_postfix() {
    auto expr = parse_primary();
    while (true) {
      if (peek().is_punct("(")) {
        // Only identifier callees are supported (C function calls).
        if (expr->kind != ExprKind::kIdent) fail("call of non-identifier expression");
        const std::string callee = static_cast<Ident&>(*expr).name;
        advance();  // '('
        std::vector<ExprPtr> args;
        if (!accept_punct(")")) {
          while (true) {
            args.push_back(parse_assignment());
            if (accept_punct(")")) break;
            expect_punct(",");
          }
        }
        expr = std::make_unique<CallExpr>(callee, std::move(args));
        continue;
      }
      if (accept_punct("[")) {
        auto index = parse_assignment();
        expect_punct("]");
        expr = std::make_unique<IndexExpr>(std::move(expr), std::move(index));
        continue;
      }
      if (peek().is_punct(".") || peek().is_punct("->")) {
        const bool arrow = advance().text == "->";
        expr = std::make_unique<MemberExpr>(std::move(expr), expect_identifier(), arrow);
        continue;
      }
      if (peek().is_punct("++") || peek().is_punct("--")) {
        const std::string op = advance().text;
        expr = std::make_unique<UnaryExpr>(op, std::move(expr), /*pre=*/false);
        continue;
      }
      return expr;
    }
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        return std::make_unique<IntLit>(advance().text);
      case TokenKind::kFloatLiteral:
        return std::make_unique<FloatLit>(advance().text);
      case TokenKind::kStringLiteral:
        return std::make_unique<StringLit>(advance().text);
      case TokenKind::kCharLiteral:
        return std::make_unique<CharLit>(advance().text);
      case TokenKind::kIdentifier:
        return std::make_unique<Ident>(advance().text);
      default:
        break;
    }
    if (accept_punct("(")) {
      auto expr = parse_assignment();
      expect_punct(")");
      return expr;
    }
    fail("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit parse(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_translation_unit();
}

ExprPtr parse_expression(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_single_expression();
}

StmtPtr parse_statement(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_single_statement();
}

}  // namespace socrates::ir
