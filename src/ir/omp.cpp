#include "ir/omp.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::ir {

namespace {

const char* kDirectiveWords[] = {
    "parallel", "for", "sections", "section", "single", "master",
    "critical", "barrier", "atomic", "task", "simd", "teams",
};

bool is_directive_word(const std::string& w) {
  for (const char* d : kDirectiveWords)
    if (w == d) return true;
  return false;
}

/// Splits "omp parallel for num_threads(4) proc_bind(close) nowait"
/// into word / word(arg) chunks, respecting nested parentheses.
std::vector<std::string> chunk_pragma(const std::string& text) {
  std::vector<std::string> chunks;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i >= text.size()) break;
    std::string chunk;
    int depth = 0;
    while (i < text.size()) {
      const char c = text[i];
      if (depth == 0 && std::isspace(static_cast<unsigned char>(c))) break;
      if (c == '(') ++depth;
      if (c == ')') --depth;
      chunk += c;
      ++i;
    }
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

}  // namespace

bool OmpPragma::has_clause(const std::string& name) const {
  for (const auto& c : clauses)
    if (c.name == name) return true;
  return false;
}

std::optional<std::string> OmpPragma::clause_argument(const std::string& name) const {
  for (const auto& c : clauses)
    if (c.name == name) return c.argument;
  return std::nullopt;
}

void OmpPragma::set_clause(const std::string& name, std::optional<std::string> argument) {
  for (auto& c : clauses) {
    if (c.name == name) {
      c.argument = std::move(argument);
      return;
    }
  }
  clauses.push_back(OmpClause{name, std::move(argument)});
}

void OmpPragma::remove_clause(const std::string& name) {
  std::erase_if(clauses, [&](const OmpClause& c) { return c.name == name; });
}

std::string OmpPragma::render() const {
  std::string out = "omp " + directive;
  for (const auto& c : clauses) {
    out += " " + c.name;
    if (c.argument) out += "(" + *c.argument + ")";
  }
  return out;
}

std::optional<OmpPragma> parse_omp(const Pragma& pragma) {
  const std::string text = trim(pragma.raw);
  if (!starts_with(text, "omp")) return std::nullopt;
  const auto chunks = chunk_pragma(text.substr(3));

  OmpPragma out;
  std::size_t i = 0;
  // Leading chunks that are bare directive words form the directive.
  while (i < chunks.size() && is_directive_word(chunks[i]) &&
         chunks[i].find('(') == std::string::npos) {
    if (!out.directive.empty()) out.directive += " ";
    out.directive += chunks[i];
    ++i;
  }
  for (; i < chunks.size(); ++i) {
    const std::string& chunk = chunks[i];
    const std::size_t open = chunk.find('(');
    if (open == std::string::npos) {
      out.clauses.push_back(OmpClause{chunk, std::nullopt});
      continue;
    }
    SOCRATES_REQUIRE_MSG(chunk.back() == ')', "malformed OpenMP clause: " << chunk);
    out.clauses.push_back(OmpClause{chunk.substr(0, open),
                                    chunk.substr(open + 1, chunk.size() - open - 2)});
  }
  return out;
}

Pragma gcc_optimize_pragma(const std::string& options) {
  return Pragma{"GCC optimize(\"" + options + "\")"};
}

std::optional<std::string> gcc_optimize_options(const Pragma& pragma) {
  const std::string text = trim(pragma.raw);
  if (!starts_with(text, "GCC optimize")) return std::nullopt;
  const std::size_t open = text.find('"');
  const std::size_t close = text.rfind('"');
  if (open == std::string::npos || close <= open) return std::nullopt;
  return text.substr(open + 1, close - open - 1);
}

}  // namespace socrates::ir
