// Hand-written lexer for the C subset used by the Polybench kernels.
//
// Supported: identifiers, keywords, integer / floating literals
// (including hex and exponents), string and character literals, all
// multi-character operators of C, line and block comments, and
// preprocessor directives (captured whole, with backslash-newline
// continuation).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ir/token.hpp"

namespace socrates::ir {

/// Thrown on malformed input (unterminated string, stray byte, ...).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenizes `source`; the result always ends with a kEnd token.
std::vector<Token> lex(std::string_view source);

}  // namespace socrates::ir
