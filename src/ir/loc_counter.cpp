#include "ir/loc_counter.hpp"

namespace socrates::ir {

std::size_t logical_loc(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kExpr:
    case StmtKind::kDecl:
    case StmtKind::kReturn:
    case StmtKind::kBreak:
    case StmtKind::kContinue:
    case StmtKind::kPragma:
    case StmtKind::kCaseLabel:
    case StmtKind::kEmpty:
      return 1;
    case StmtKind::kCompound: {
      std::size_t total = 0;
      for (const auto& s : static_cast<const CompoundStmt&>(stmt).stmts)
        total += logical_loc(*s);
      return total;
    }
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      std::size_t total = 1 + logical_loc(*s.then_branch);
      if (s.else_branch) total += logical_loc(*s.else_branch);
      return total;
    }
    case StmtKind::kFor: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      return 1 + (s.body ? logical_loc(*s.body) : 0);
    }
    case StmtKind::kWhile:
      return 1 + logical_loc(*static_cast<const WhileStmt&>(stmt).body);
    case StmtKind::kDoWhile:
      return 2 + logical_loc(*static_cast<const DoWhileStmt&>(stmt).body);
    case StmtKind::kSwitch:
      return 1 + logical_loc(*static_cast<const SwitchStmt&>(stmt).body);
  }
  return 0;
}

std::size_t logical_loc(const FunctionDecl& fn) {
  return 1 + (fn.body ? logical_loc(*fn.body) : 0);
}

std::size_t logical_loc(const TranslationUnit& tu) {
  std::size_t total = 0;
  for (const auto& item : tu.items) {
    switch (item->kind) {
      case TopLevelKind::kInclude:
      case TopLevelKind::kDefine:
      case TopLevelKind::kPragma:
      case TopLevelKind::kRaw:
        total += 1;
        break;
      case TopLevelKind::kGlobalVar:
        total += static_cast<const GlobalVarDecl&>(*item).decls.size();
        break;
      case TopLevelKind::kFunction:
        total += logical_loc(static_cast<const FunctionDecl&>(*item));
        break;
    }
  }
  return total;
}

}  // namespace socrates::ir
