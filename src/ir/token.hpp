// Token definitions for the C-subset front end.
//
// The lexer produces a flat token stream; preprocessor directives are
// captured as single line-tokens (kDirective) because the weaver treats
// #include / #define / #pragma lines as first-class join points rather
// than expanding them.
#pragma once

#include <cstddef>
#include <string>

namespace socrates::ir {

enum class TokenKind {
  kEnd,
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kCharLiteral,
  kPunct,      ///< operators and punctuation, text holds the spelling
  kDirective,  ///< a whole preprocessor line, text holds it without '#'
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  ///< spelling (for kDirective: the line after '#')
  int line = 0;      ///< 1-based source line
  int column = 0;    ///< 1-based source column

  bool is(TokenKind k) const { return kind == k; }
  bool is_punct(const char* spelling) const {
    return kind == TokenKind::kPunct && text == spelling;
  }
  bool is_keyword(const char* spelling) const {
    return kind == TokenKind::kKeyword && text == spelling;
  }
};

/// Returns true for the C keywords the subset understands.
bool is_c_keyword(const std::string& word);

}  // namespace socrates::ir
