// Logical lines-of-code metric.
//
// Table I of the paper reports "logical lines of code" for the original
// and the weaved benchmarks (O-LOC / W-LOC columns).  We reproduce the
// metric deterministically from the AST: each statement, declaration,
// directive and function signature counts as one logical line; braces
// and blank lines count as zero.  The exact rules are documented on
// each counting function.
#pragma once

#include <cstddef>

#include "ir/ast.hpp"

namespace socrates::ir {

/// Logical LOC of one statement subtree.
/// - expression / declaration / return / break / continue / pragma /
///   empty statements: 1
/// - if: 1 + branches (else does not add a line of its own)
/// - for / while: 1 + body;  do-while: 2 + body ("do" and "while" lines)
/// - compound: sum of children (braces are free)
std::size_t logical_loc(const Stmt& stmt);

/// Logical LOC of a function: 1 for the signature + body.
std::size_t logical_loc(const FunctionDecl& fn);

/// Logical LOC of a whole translation unit: directives and global
/// declarations count 1 each, raw passthrough blocks count 1, functions
/// as above.
std::size_t logical_loc(const TranslationUnit& tu);

}  // namespace socrates::ir
