// Recursive-descent parser for the C subset.
//
// The grammar covers what the Polybench/C kernels (and the glue code
// SOCRATES weaves into them) need: functions, (multi-)variable
// declarations with array/pointer declarators, the full C expression
// grammar minus the comma operator, control flow (if/for/while/do),
// preprocessor directives as first-class nodes, and OpenMP / GCC
// pragmas at both file and statement scope.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "ir/ast.hpp"

namespace socrates::ir {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Parses a full source file.  Throws ParseError / LexError on bad input.
TranslationUnit parse(std::string_view source);

/// Parses a single expression (used by tests and by the weaver when it
/// synthesizes glue expressions from text).
ExprPtr parse_expression(std::string_view source);

/// Parses a single statement.
StmtPtr parse_statement(std::string_view source);

}  // namespace socrates::ir
