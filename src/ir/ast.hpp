// Abstract syntax tree for the C subset.
//
// The tree is an owning unique_ptr hierarchy.  Every node supports
// deep-clone() because the weaver's Multiversioning strategy clones
// whole kernel functions, and supports structural walking through the
// free functions in this header (used by the Milepost-style feature
// extractor and by the logical-LOC counter).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace socrates::ir {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kIntLit,
  kFloatLit,
  kStringLit,
  kCharLit,
  kIdent,
  kUnary,
  kBinary,
  kAssign,
  kConditional,
  kCall,
  kIndex,
  kMember,
  kCast,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;

  virtual ExprPtr clone() const = 0;
};

/// Integer literal; keeps the original spelling (suffixes, hex).
struct IntLit : Expr {
  explicit IntLit(std::string s) : Expr(ExprKind::kIntLit), spelling(std::move(s)) {}
  std::string spelling;
  ExprPtr clone() const override;
};

struct FloatLit : Expr {
  explicit FloatLit(std::string s) : Expr(ExprKind::kFloatLit), spelling(std::move(s)) {}
  std::string spelling;
  ExprPtr clone() const override;
};

struct StringLit : Expr {
  explicit StringLit(std::string s) : Expr(ExprKind::kStringLit), spelling(std::move(s)) {}
  std::string spelling;  ///< includes the quotes
  ExprPtr clone() const override;
};

struct CharLit : Expr {
  explicit CharLit(std::string s) : Expr(ExprKind::kCharLit), spelling(std::move(s)) {}
  std::string spelling;  ///< includes the quotes
  ExprPtr clone() const override;
};

struct Ident : Expr {
  explicit Ident(std::string n) : Expr(ExprKind::kIdent), name(std::move(n)) {}
  std::string name;
  ExprPtr clone() const override;
};

/// Prefix or postfix unary expression ("-x", "!x", "x++", "*p", "&v").
struct UnaryExpr : Expr {
  UnaryExpr(std::string o, ExprPtr e, bool pre)
      : Expr(ExprKind::kUnary), op(std::move(o)), operand(std::move(e)), is_prefix(pre) {}
  std::string op;
  ExprPtr operand;
  bool is_prefix;
  ExprPtr clone() const override;
};

struct BinaryExpr : Expr {
  BinaryExpr(std::string o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(std::move(o)), lhs(std::move(l)), rhs(std::move(r)) {}
  std::string op;
  ExprPtr lhs;
  ExprPtr rhs;
  ExprPtr clone() const override;
};

/// Assignment, including compound forms ("=", "+=", "<<=", ...).
struct AssignExpr : Expr {
  AssignExpr(std::string o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kAssign), op(std::move(o)), lhs(std::move(l)), rhs(std::move(r)) {}
  std::string op;
  ExprPtr lhs;
  ExprPtr rhs;
  ExprPtr clone() const override;
};

struct ConditionalExpr : Expr {
  ConditionalExpr(ExprPtr c, ExprPtr t, ExprPtr f)
      : Expr(ExprKind::kConditional),
        cond(std::move(c)),
        then_expr(std::move(t)),
        else_expr(std::move(f)) {}
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
  ExprPtr clone() const override;
};

struct CallExpr : Expr {
  CallExpr(std::string c, std::vector<ExprPtr> a)
      : Expr(ExprKind::kCall), callee(std::move(c)), args(std::move(a)) {}
  std::string callee;
  std::vector<ExprPtr> args;
  ExprPtr clone() const override;
};

struct IndexExpr : Expr {
  IndexExpr(ExprPtr b, ExprPtr i)
      : Expr(ExprKind::kIndex), base(std::move(b)), index(std::move(i)) {}
  ExprPtr base;
  ExprPtr index;
  ExprPtr clone() const override;
};

struct MemberExpr : Expr {
  MemberExpr(ExprPtr b, std::string m, bool arr)
      : Expr(ExprKind::kMember), base(std::move(b)), member(std::move(m)), is_arrow(arr) {}
  ExprPtr base;
  std::string member;
  bool is_arrow;
  ExprPtr clone() const override;
};

struct CastExpr : Expr {
  CastExpr(std::string t, ExprPtr e)
      : Expr(ExprKind::kCast), type_text(std::move(t)), operand(std::move(e)) {}
  std::string type_text;
  ExprPtr operand;
  ExprPtr clone() const override;
};

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

/// A '#pragma' line; `raw` is everything after the '#pragma' keyword,
/// e.g. "omp parallel for num_threads(4)" or "GCC optimize(\"O2\")".
struct Pragma {
  std::string raw;
  bool is_omp() const;
  bool is_gcc_optimize() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kExpr,
  kDecl,
  kCompound,
  kIf,
  kFor,
  kWhile,
  kDoWhile,
  kSwitch,
  kCaseLabel,
  kReturn,
  kBreak,
  kContinue,
  kPragma,
  kEmpty,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind;

  virtual StmtPtr clone() const = 0;
};

/// One declared variable, also used for function parameters.
/// `type_text` is the specifier part ("double", "unsigned int", ...);
/// `array_dims` holds one expression per bracket pair (nullptr for []).
struct VarDecl {
  std::string type_text;
  std::string name;
  int pointer_depth = 0;
  std::vector<ExprPtr> array_dims;
  ExprPtr init;  ///< may be null

  VarDecl clone() const;
};

struct ExprStmt : Stmt {
  explicit ExprStmt(ExprPtr e) : Stmt(StmtKind::kExpr), expr(std::move(e)) {}
  ExprPtr expr;
  StmtPtr clone() const override;
};

struct DeclStmt : Stmt {
  explicit DeclStmt(std::vector<VarDecl> d) : Stmt(StmtKind::kDecl), decls(std::move(d)) {}
  std::vector<VarDecl> decls;  ///< "int i, j;" declares two
  StmtPtr clone() const override;
};

struct CompoundStmt : Stmt {
  CompoundStmt() : Stmt(StmtKind::kCompound) {}
  std::vector<StmtPtr> stmts;
  StmtPtr clone() const override;
  std::unique_ptr<CompoundStmt> clone_compound() const;
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr c, StmtPtr t, StmtPtr e)
      : Stmt(StmtKind::kIf), cond(std::move(c)), then_branch(std::move(t)),
        else_branch(std::move(e)) {}
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  ///< may be null
  StmtPtr clone() const override;
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(StmtKind::kFor) {}
  StmtPtr init;  ///< DeclStmt or ExprStmt or null
  ExprPtr cond;  ///< may be null
  ExprPtr inc;   ///< may be null
  StmtPtr body;
  StmtPtr clone() const override;
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr c, StmtPtr b)
      : Stmt(StmtKind::kWhile), cond(std::move(c)), body(std::move(b)) {}
  ExprPtr cond;
  StmtPtr body;
  StmtPtr clone() const override;
};

struct DoWhileStmt : Stmt {
  DoWhileStmt(StmtPtr b, ExprPtr c)
      : Stmt(StmtKind::kDoWhile), body(std::move(b)), cond(std::move(c)) {}
  StmtPtr body;
  ExprPtr cond;
  StmtPtr clone() const override;
};

/// switch (cond) { ... } — the body is always a compound statement.
struct SwitchStmt : Stmt {
  SwitchStmt(ExprPtr c, StmtPtr b)
      : Stmt(StmtKind::kSwitch), cond(std::move(c)), body(std::move(b)) {}
  ExprPtr cond;
  StmtPtr body;
  StmtPtr clone() const override;
};

/// "case <expr>:" or "default:" — a label statement inside a switch
/// body (C allows statements to follow on the same or the next lines;
/// we model labels as standalone statements preceding them).
struct CaseLabelStmt : Stmt {
  explicit CaseLabelStmt(ExprPtr v)
      : Stmt(StmtKind::kCaseLabel), value(std::move(v)) {}
  ExprPtr value;  ///< null for "default:"
  StmtPtr clone() const override;
};

struct ReturnStmt : Stmt {
  explicit ReturnStmt(ExprPtr e) : Stmt(StmtKind::kReturn), expr(std::move(e)) {}
  ExprPtr expr;  ///< may be null
  StmtPtr clone() const override;
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
  StmtPtr clone() const override;
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
  StmtPtr clone() const override;
};

/// A pragma appearing at statement position (e.g. "#pragma omp for"
/// immediately before a loop inside a function body).
struct PragmaStmt : Stmt {
  explicit PragmaStmt(Pragma p) : Stmt(StmtKind::kPragma), pragma(std::move(p)) {}
  Pragma pragma;
  StmtPtr clone() const override;
};

struct EmptyStmt : Stmt {
  EmptyStmt() : Stmt(StmtKind::kEmpty) {}
  StmtPtr clone() const override;
};

// ---------------------------------------------------------------------------
// Top-level declarations
// ---------------------------------------------------------------------------

enum class TopLevelKind { kInclude, kDefine, kPragma, kFunction, kGlobalVar, kRaw };

struct TopLevel;
using TopLevelPtr = std::unique_ptr<TopLevel>;

struct TopLevel {
  explicit TopLevel(TopLevelKind k) : kind(k) {}
  virtual ~TopLevel() = default;
  TopLevel(const TopLevel&) = delete;
  TopLevel& operator=(const TopLevel&) = delete;

  TopLevelKind kind;

  virtual TopLevelPtr clone() const = 0;
};

struct IncludeDirective : TopLevel {
  explicit IncludeDirective(std::string t)
      : TopLevel(TopLevelKind::kInclude), target(std::move(t)) {}
  std::string target;  ///< with delimiters: "<stdio.h>" or "\"margot.h\""
  TopLevelPtr clone() const override;
};

struct DefineDirective : TopLevel {
  explicit DefineDirective(std::string b) : TopLevel(TopLevelKind::kDefine), body(std::move(b)) {}
  std::string body;  ///< everything after "#define"
  TopLevelPtr clone() const override;
};

struct TopLevelPragma : TopLevel {
  explicit TopLevelPragma(Pragma p) : TopLevel(TopLevelKind::kPragma), pragma(std::move(p)) {}
  Pragma pragma;
  TopLevelPtr clone() const override;
};

struct FunctionDecl : TopLevel {
  FunctionDecl() : TopLevel(TopLevelKind::kFunction) {}
  std::string return_type = "void";
  int return_pointer_depth = 0;
  bool is_static = false;
  std::string name;
  std::vector<VarDecl> params;
  std::unique_ptr<CompoundStmt> body;  ///< null for a prototype
  TopLevelPtr clone() const override;
  std::unique_ptr<FunctionDecl> clone_function() const;
};

struct GlobalVarDecl : TopLevel {
  explicit GlobalVarDecl(std::vector<VarDecl> d)
      : TopLevel(TopLevelKind::kGlobalVar), decls(std::move(d)) {}
  std::vector<VarDecl> decls;
  TopLevelPtr clone() const override;
};

/// Verbatim pass-through for constructs outside the subset (typedefs
/// and similar), stored as raw text ending in ';'.
struct RawTopLevel : TopLevel {
  explicit RawTopLevel(std::string t) : TopLevel(TopLevelKind::kRaw), text(std::move(t)) {}
  std::string text;
  TopLevelPtr clone() const override;
};

/// A whole parsed source file.
struct TranslationUnit {
  std::vector<TopLevelPtr> items;

  TranslationUnit() = default;
  TranslationUnit(const TranslationUnit&) = delete;
  TranslationUnit& operator=(const TranslationUnit&) = delete;
  TranslationUnit(TranslationUnit&&) = default;
  TranslationUnit& operator=(TranslationUnit&&) = default;

  TranslationUnit clone() const;

  /// First function with the given name, or nullptr.
  FunctionDecl* find_function(const std::string& name);
  const FunctionDecl* find_function(const std::string& name) const;

  /// All function definitions (bodies present), in declaration order.
  std::vector<FunctionDecl*> functions();
  std::vector<const FunctionDecl*> functions() const;
};

// ---------------------------------------------------------------------------
// Walkers
// ---------------------------------------------------------------------------

/// Calls `fn` on `expr` and every sub-expression, pre-order.
void walk_expr(const Expr& expr, const std::function<void(const Expr&)>& fn);

/// Calls `fn` on `stmt` and every nested statement, pre-order; also
/// walks into initializer expressions via `expr_fn` when provided.
void walk_stmt(const Stmt& stmt, const std::function<void(const Stmt&)>& fn);

/// Walks every expression reachable from `stmt` (conditions,
/// increments, initializers, expression statements).
void walk_stmt_exprs(const Stmt& stmt, const std::function<void(const Expr&)>& fn);

/// Mutable pre-order statement walk (used by the weaver).
void walk_stmt_mut(Stmt& stmt, const std::function<void(Stmt&)>& fn);

}  // namespace socrates::ir
