#include "ir/lexer.hpp"

#include <array>
#include <cctype>
#include <sstream>
#include <unordered_set>

namespace socrates::ir {

bool is_c_keyword(const std::string& word) {
  static const std::unordered_set<std::string> kKeywords = {
      "auto",     "break",    "case",     "char",   "const",    "continue",
      "default",  "do",       "double",   "else",   "enum",     "extern",
      "float",    "for",      "goto",     "if",     "inline",   "int",
      "long",     "register", "restrict", "return", "short",    "signed",
      "sizeof",   "static",   "struct",   "switch", "typedef",  "union",
      "unsigned", "void",     "volatile", "while",
  };
  return kKeywords.count(word) > 0;
}

LexError::LexError(const std::string& message, int line, int column)
    : std::runtime_error([&] {
        std::ostringstream os;
        os << "lex error at " << line << ':' << column << ": " << message;
        return os.str();
      }()),
      line_(line),
      column_(column) {}

namespace {

/// Multi-character punctuators, longest first so maximal munch works.
constexpr std::array<std::string_view, 19> kLongPuncts = {
    "<<=", ">>=", "...",                                    // 3 chars
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",   // 2 chars
    "&&", "||", "+=", "-=", "*=", "/=", "%=",
};

constexpr std::array<std::string_view, 4> kLongPuncts2 = {"&=", "|=", "^=", "##"};

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  bool match_str(std::string_view s) const {
    return src_.substr(pos_, s.size()) == s;
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  void advance_by(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) advance();
  }

  int line() const { return line_; }
  int column() const { return column_; }
  bool at_line_start() const { return column_at_token_ == 1; }
  void note_token_start() {
    column_at_token_ = column_;
    token_line_ = line_;
  }
  int token_line() const { return token_line_; }
  int token_column() const { return column_at_token_; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int column_at_token_ = 1;
  int token_line_ = 1;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);
  bool line_has_token = false;  // tracks whether '#' is the first non-ws on its line

  while (!cur.done()) {
    const char c = cur.peek();

    if (c == '\n') {
      cur.advance();
      line_has_token = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      const int start_line = cur.line();
      const int start_col = cur.column();
      cur.advance_by(2);
      while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) cur.advance();
      if (cur.done()) throw LexError("unterminated block comment", start_line, start_col);
      cur.advance_by(2);
      continue;
    }

    cur.note_token_start();

    // Preprocessor directive: '#' as first token of a line; capture the
    // whole (continuation-joined) line.
    if (c == '#' && !line_has_token) {
      cur.advance();  // '#'
      std::string text;
      while (!cur.done()) {
        if (cur.peek() == '\\' && cur.peek(1) == '\n') {
          cur.advance_by(2);
          text += ' ';
          continue;
        }
        if (cur.peek() == '\n') break;
        text += cur.advance();
      }
      tokens.push_back(Token{TokenKind::kDirective, std::string(text), cur.token_line(),
                             cur.token_column()});
      continue;
    }

    line_has_token = true;

    if (is_ident_start(c)) {
      std::string word;
      while (!cur.done() && is_ident_char(cur.peek())) word += cur.advance();
      const TokenKind kind = is_c_keyword(word) ? TokenKind::kKeyword : TokenKind::kIdentifier;
      tokens.push_back(Token{kind, std::move(word), cur.token_line(), cur.token_column()});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      std::string num;
      bool is_float = false;
      if (c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
        num += cur.advance();
        num += cur.advance();
        while (!cur.done() && std::isxdigit(static_cast<unsigned char>(cur.peek())))
          num += cur.advance();
      } else {
        while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek())))
          num += cur.advance();
        if (cur.peek() == '.') {
          is_float = true;
          num += cur.advance();
          while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek())))
            num += cur.advance();
        }
        if (cur.peek() == 'e' || cur.peek() == 'E') {
          is_float = true;
          num += cur.advance();
          if (cur.peek() == '+' || cur.peek() == '-') num += cur.advance();
          while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek())))
            num += cur.advance();
        }
      }
      // Suffixes (f, F, l, L, u, U) — kept in the spelling.
      while (cur.peek() == 'f' || cur.peek() == 'F' || cur.peek() == 'l' ||
             cur.peek() == 'L' || cur.peek() == 'u' || cur.peek() == 'U') {
        if (cur.peek() == 'f' || cur.peek() == 'F') is_float = true;
        num += cur.advance();
      }
      tokens.push_back(Token{is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral,
                             std::move(num), cur.token_line(), cur.token_column()});
      continue;
    }

    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = cur.line();
      const int start_col = cur.column();
      std::string lit;
      lit += cur.advance();
      while (!cur.done() && cur.peek() != quote) {
        if (cur.peek() == '\\') lit += cur.advance();
        if (cur.done()) break;
        lit += cur.advance();
      }
      if (cur.done())
        throw LexError(quote == '"' ? "unterminated string literal"
                                    : "unterminated character literal",
                       start_line, start_col);
      lit += cur.advance();
      tokens.push_back(Token{quote == '"' ? TokenKind::kStringLiteral : TokenKind::kCharLiteral,
                             std::move(lit), cur.token_line(), cur.token_column()});
      continue;
    }

    // Punctuation: maximal munch.
    bool matched = false;
    for (const auto p : kLongPuncts) {
      if (cur.match_str(p)) {
        cur.advance_by(p.size());
        tokens.push_back(
            Token{TokenKind::kPunct, std::string(p), cur.token_line(), cur.token_column()});
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const auto p : kLongPuncts2) {
      if (cur.match_str(p)) {
        cur.advance_by(p.size());
        tokens.push_back(
            Token{TokenKind::kPunct, std::string(p), cur.token_line(), cur.token_column()});
        matched = true;
        break;
      }
    }
    if (matched) continue;

    static const std::string kSingles = "+-*/%<>=!&|^~?:;,.(){}[]#";
    if (kSingles.find(c) != std::string::npos) {
      cur.advance();
      tokens.push_back(
          Token{TokenKind::kPunct, std::string(1, c), cur.token_line(), cur.token_column()});
      continue;
    }

    throw LexError(std::string("unexpected character '") + c + "'", cur.line(), cur.column());
  }

  tokens.push_back(Token{TokenKind::kEnd, "", cur.line(), cur.column()});
  return tokens;
}

}  // namespace socrates::ir
