// Structured view of OpenMP pragmas.
//
// The weaver inspects OpenMP pragma attributes (directive kind, clause
// values — each inspection counts towards the paper's `Att` metric) and
// rewrites the num_threads / proc_bind clauses when generating kernel
// versions, so pragmas need a parse/update/render cycle rather than
// string pasting.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/ast.hpp"

namespace socrates::ir {

/// One OpenMP clause, e.g. name="num_threads", argument="NT" or
/// name="nowait", argument=nullopt.
struct OmpClause {
  std::string name;
  std::optional<std::string> argument;
};

/// Parsed "#pragma omp ..." line.
struct OmpPragma {
  /// Directive words before the first clause: "parallel for", "for",
  /// "parallel", "barrier", ...
  std::string directive;
  std::vector<OmpClause> clauses;

  bool has_clause(const std::string& name) const;
  std::optional<std::string> clause_argument(const std::string& name) const;

  /// Adds the clause or replaces its argument when already present.
  void set_clause(const std::string& name, std::optional<std::string> argument);

  /// Removes every clause with the given name.
  void remove_clause(const std::string& name);

  /// Renders back to pragma text (without the leading "#pragma ").
  std::string render() const;
};

/// Parses `pragma.raw`; returns nullopt when it is not an OpenMP pragma.
std::optional<OmpPragma> parse_omp(const Pragma& pragma);

/// Builds a "GCC optimize" pragma from a comma-separated option string,
/// e.g. gcc_optimize_pragma("O2,no-inline") ->
/// raw == "GCC optimize(\"O2,no-inline\")".
Pragma gcc_optimize_pragma(const std::string& options);

/// Extracts the option string back out of a GCC optimize pragma, if any.
std::optional<std::string> gcc_optimize_options(const Pragma& pragma);

}  // namespace socrates::ir
