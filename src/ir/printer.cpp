#include "ir/printer.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::ir {

namespace {

/// Precedence used to decide parenthesisation when printing.  Mirrors
/// the parser's table; primaries get the highest value.
int expr_precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kAssign: return 0;
    case ExprKind::kConditional: return 1;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      const std::string& op = b.op;
      if (op == "||") return 2;
      if (op == "&&") return 3;
      if (op == "|") return 4;
      if (op == "^") return 5;
      if (op == "&") return 6;
      if (op == "==" || op == "!=") return 7;
      if (op == "<" || op == ">" || op == "<=" || op == ">=") return 8;
      if (op == "<<" || op == ">>") return 9;
      if (op == "+" || op == "-") return 10;
      return 11;  // * / %
    }
    case ExprKind::kUnary: return 12;
    case ExprKind::kCast: return 12;
    default: return 13;  // postfix & primary
  }
}

std::string paren_child(const Expr& child, int parent_prec) {
  const std::string text = print_expr(child);
  if (expr_precedence(child) < parent_prec) return "(" + text + ")";
  return text;
}

class StmtPrinter {
 public:
  explicit StmtPrinter(std::ostringstream& os) : os_(os) {}

  void print(const Stmt& stmt, int indent) {
    switch (stmt.kind) {
      case StmtKind::kExpr:
        line(indent, print_expr(*static_cast<const ExprStmt&>(stmt).expr) + ";");
        break;
      case StmtKind::kDecl: {
        const auto& d = static_cast<const DeclStmt&>(stmt);
        std::vector<std::string> parts;
        // "int i, j;" prints each declarator after the shared type once.
        SOCRATES_ENSURE(!d.decls.empty());
        std::string text = print_var_decl(d.decls.front());
        for (std::size_t i = 1; i < d.decls.size(); ++i) {
          text += ", " + declarator_only(d.decls[i]);
        }
        line(indent, text + ";");
        break;
      }
      case StmtKind::kCompound: {
        const auto& c = static_cast<const CompoundStmt&>(stmt);
        line(indent, "{");
        for (const auto& s : c.stmts) print(*s, indent + 1);
        line(indent, "}");
        break;
      }
      case StmtKind::kIf: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        line(indent, "if (" + print_expr(*s.cond) + ")");
        // Dangling-else protection: a non-compound then-branch followed
        // by an else must be braced, or the reparse would attach the
        // else to an inner if.
        if (s.else_branch && s.then_branch->kind != StmtKind::kCompound) {
          line(indent, "{");
          print(*s.then_branch, indent + 1);
          line(indent, "}");
        } else {
          print_branch(*s.then_branch, indent);
        }
        if (s.else_branch) {
          line(indent, "else");
          print_branch(*s.else_branch, indent);
        }
        break;
      }
      case StmtKind::kFor: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        std::string head = "for (";
        if (s.init) {
          // The init statement already ends in ';' when printed standalone;
          // inline it without the newline.
          head += inline_simple_stmt(*s.init);
        } else {
          head += ";";
        }
        head += " ";
        if (s.cond) head += print_expr(*s.cond);
        head += "; ";
        if (s.inc) head += print_expr(*s.inc);
        head += ")";
        line(indent, head);
        print_branch(*s.body, indent);
        break;
      }
      case StmtKind::kWhile: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        line(indent, "while (" + print_expr(*s.cond) + ")");
        print_branch(*s.body, indent);
        break;
      }
      case StmtKind::kDoWhile: {
        const auto& s = static_cast<const DoWhileStmt&>(stmt);
        line(indent, "do");
        print_branch(*s.body, indent);
        line(indent, "while (" + print_expr(*s.cond) + ");");
        break;
      }
      case StmtKind::kSwitch: {
        const auto& s = static_cast<const SwitchStmt&>(stmt);
        line(indent, "switch (" + print_expr(*s.cond) + ")");
        print(*s.body, indent);  // always a compound
        break;
      }
      case StmtKind::kCaseLabel: {
        const auto& s = static_cast<const CaseLabelStmt&>(stmt);
        line(indent, s.value ? "case " + print_expr(*s.value) + ":" : "default:");
        break;
      }
      case StmtKind::kReturn: {
        const auto& s = static_cast<const ReturnStmt&>(stmt);
        line(indent, s.expr ? "return " + print_expr(*s.expr) + ";" : "return;");
        break;
      }
      case StmtKind::kBreak:
        line(indent, "break;");
        break;
      case StmtKind::kContinue:
        line(indent, "continue;");
        break;
      case StmtKind::kPragma:
        line(indent, "#pragma " + static_cast<const PragmaStmt&>(stmt).pragma.raw);
        break;
      case StmtKind::kEmpty:
        line(indent, ";");
        break;
    }
  }

 private:
  void line(int indent, const std::string& text) {
    os_ << repeated("  ", static_cast<std::size_t>(indent)) << text << '\n';
  }

  /// Bodies of if/for/while: compounds print at the same indent, single
  /// statements print one level deeper.
  void print_branch(const Stmt& body, int indent) {
    if (body.kind == StmtKind::kCompound) {
      print(body, indent);
    } else {
      print(body, indent + 1);
    }
  }

  static std::string inline_simple_stmt(const Stmt& stmt) {
    if (stmt.kind == StmtKind::kExpr)
      return print_expr(*static_cast<const ExprStmt&>(stmt).expr) + ";";
    if (stmt.kind == StmtKind::kDecl) {
      const auto& d = static_cast<const DeclStmt&>(stmt);
      SOCRATES_ENSURE(!d.decls.empty());
      std::string text = print_var_decl(d.decls.front());
      for (std::size_t i = 1; i < d.decls.size(); ++i)
        text += ", " + declarator_only(d.decls[i]);
      return text + ";";
    }
    SOCRATES_ENSURE(stmt.kind == StmtKind::kEmpty);
    return ";";
  }

  static std::string declarator_only(const VarDecl& d) {
    std::string text = repeated("*", static_cast<std::size_t>(d.pointer_depth)) + d.name;
    for (const auto& dim : d.array_dims) {
      text += "[";
      if (dim) text += print_expr(*dim);
      text += "]";
    }
    if (d.init) text += " = " + print_expr(*d.init);
    return text;
  }

  std::ostringstream& os_;
};

}  // namespace

std::string print_expr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLit: return static_cast<const IntLit&>(expr).spelling;
    case ExprKind::kFloatLit: return static_cast<const FloatLit&>(expr).spelling;
    case ExprKind::kStringLit: return static_cast<const StringLit&>(expr).spelling;
    case ExprKind::kCharLit: return static_cast<const CharLit&>(expr).spelling;
    case ExprKind::kIdent: return static_cast<const Ident&>(expr).name;
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      if (e.op == "sizeof") return "sizeof(" + print_expr(*e.operand) + ")";
      const std::string inner = paren_child(*e.operand, expr_precedence(expr));
      return e.is_prefix ? e.op + inner : inner + e.op;
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      const int prec = expr_precedence(expr);
      // Left-associative: right child needs parens at equal precedence.
      const std::string lhs = paren_child(*e.lhs, prec);
      const std::string rhs_text = print_expr(*e.rhs);
      const std::string rhs =
          expr_precedence(*e.rhs) <= prec ? "(" + rhs_text + ")" : rhs_text;
      return lhs + " " + e.op + " " + rhs;
    }
    case ExprKind::kAssign: {
      const auto& e = static_cast<const AssignExpr&>(expr);
      // Right-associative: the RHS may be another assignment.
      return paren_child(*e.lhs, 1) + " " + e.op + " " + print_expr(*e.rhs);
    }
    case ExprKind::kConditional: {
      const auto& e = static_cast<const ConditionalExpr&>(expr);
      return paren_child(*e.cond, 2) + " ? " + print_expr(*e.then_expr) + " : " +
             print_expr(*e.else_expr);
    }
    case ExprKind::kCall: {
      const auto& e = static_cast<const CallExpr&>(expr);
      std::string out = e.callee + "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += print_expr(*e.args[i]);
      }
      return out + ")";
    }
    case ExprKind::kIndex: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      return paren_child(*e.base, 13) + "[" + print_expr(*e.index) + "]";
    }
    case ExprKind::kMember: {
      const auto& e = static_cast<const MemberExpr&>(expr);
      return paren_child(*e.base, 13) + (e.is_arrow ? "->" : ".") + e.member;
    }
    case ExprKind::kCast: {
      const auto& e = static_cast<const CastExpr&>(expr);
      return "(" + e.type_text + ")" + paren_child(*e.operand, 12);
    }
  }
  SOCRATES_ENSURE(false);
  return {};
}

std::string print_var_decl(const VarDecl& d) {
  std::string text = d.type_text + " " +
                     repeated("*", static_cast<std::size_t>(d.pointer_depth)) + d.name;
  for (const auto& dim : d.array_dims) {
    text += "[";
    if (dim) text += print_expr(*dim);
    text += "]";
  }
  if (d.init) text += " = " + print_expr(*d.init);
  return text;
}

std::string print_signature(const FunctionDecl& fn) {
  std::string out;
  if (fn.is_static) out += "static ";
  out += fn.return_type + " " +
         repeated("*", static_cast<std::size_t>(fn.return_pointer_depth)) + fn.name + "(";
  if (fn.params.empty()) {
    out += "void";
  } else {
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i > 0) out += ", ";
      out += print_var_decl(fn.params[i]);
    }
  }
  return out + ")";
}

std::string print_stmt(const Stmt& stmt, int indent) {
  std::ostringstream os;
  StmtPrinter printer(os);
  printer.print(stmt, indent);
  return os.str();
}

std::string print(const TranslationUnit& tu) {
  std::ostringstream os;
  for (const auto& item : tu.items) {
    switch (item->kind) {
      case TopLevelKind::kInclude:
        os << "#include " << static_cast<const IncludeDirective&>(*item).target << '\n';
        break;
      case TopLevelKind::kDefine:
        os << "#define " << static_cast<const DefineDirective&>(*item).body << '\n';
        break;
      case TopLevelKind::kPragma:
        os << "#pragma " << static_cast<const TopLevelPragma&>(*item).pragma.raw << '\n';
        break;
      case TopLevelKind::kFunction: {
        const auto& fn = static_cast<const FunctionDecl&>(*item);
        os << print_signature(fn);
        if (!fn.body) {
          os << ";\n";
        } else {
          os << '\n' << print_stmt(*fn.body, 0);
        }
        os << '\n';
        break;
      }
      case TopLevelKind::kGlobalVar: {
        const auto& g = static_cast<const GlobalVarDecl&>(*item);
        for (const auto& d : g.decls) os << print_var_decl(d) << ";\n";
        break;
      }
      case TopLevelKind::kRaw:
        os << static_cast<const RawTopLevel&>(*item).text << '\n';
        break;
    }
  }
  return os.str();
}

}  // namespace socrates::ir
