#include "ir/ast.hpp"

#include "support/strings.hpp"

namespace socrates::ir {

namespace {

ExprPtr clone_or_null(const ExprPtr& e) { return e ? e->clone() : nullptr; }
StmtPtr clone_or_null(const StmtPtr& s) { return s ? s->clone() : nullptr; }

}  // namespace

// ---- Pragma helpers --------------------------------------------------------

bool Pragma::is_omp() const { return starts_with(trim(raw), "omp"); }

bool Pragma::is_gcc_optimize() const {
  const std::string t = trim(raw);
  return starts_with(t, "GCC optimize") || starts_with(t, "GCC push_options") ||
         starts_with(t, "GCC pop_options");
}

// ---- Expression clones -----------------------------------------------------

ExprPtr IntLit::clone() const { return std::make_unique<IntLit>(spelling); }
ExprPtr FloatLit::clone() const { return std::make_unique<FloatLit>(spelling); }
ExprPtr StringLit::clone() const { return std::make_unique<StringLit>(spelling); }
ExprPtr CharLit::clone() const { return std::make_unique<CharLit>(spelling); }
ExprPtr Ident::clone() const { return std::make_unique<Ident>(name); }

ExprPtr UnaryExpr::clone() const {
  return std::make_unique<UnaryExpr>(op, operand->clone(), is_prefix);
}

ExprPtr BinaryExpr::clone() const {
  return std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone());
}

ExprPtr AssignExpr::clone() const {
  return std::make_unique<AssignExpr>(op, lhs->clone(), rhs->clone());
}

ExprPtr ConditionalExpr::clone() const {
  return std::make_unique<ConditionalExpr>(cond->clone(), then_expr->clone(),
                                           else_expr->clone());
}

ExprPtr CallExpr::clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(args.size());
  for (const auto& a : args) cloned.push_back(a->clone());
  return std::make_unique<CallExpr>(callee, std::move(cloned));
}

ExprPtr IndexExpr::clone() const {
  return std::make_unique<IndexExpr>(base->clone(), index->clone());
}

ExprPtr MemberExpr::clone() const {
  return std::make_unique<MemberExpr>(base->clone(), member, is_arrow);
}

ExprPtr CastExpr::clone() const {
  return std::make_unique<CastExpr>(type_text, operand->clone());
}

// ---- VarDecl ----------------------------------------------------------------

VarDecl VarDecl::clone() const {
  VarDecl d;
  d.type_text = type_text;
  d.name = name;
  d.pointer_depth = pointer_depth;
  d.array_dims.reserve(array_dims.size());
  for (const auto& dim : array_dims) d.array_dims.push_back(clone_or_null(dim));
  d.init = clone_or_null(init);
  return d;
}

// ---- Statement clones --------------------------------------------------------

StmtPtr ExprStmt::clone() const { return std::make_unique<ExprStmt>(expr->clone()); }

StmtPtr DeclStmt::clone() const {
  std::vector<VarDecl> cloned;
  cloned.reserve(decls.size());
  for (const auto& d : decls) cloned.push_back(d.clone());
  return std::make_unique<DeclStmt>(std::move(cloned));
}

std::unique_ptr<CompoundStmt> CompoundStmt::clone_compound() const {
  auto out = std::make_unique<CompoundStmt>();
  out->stmts.reserve(stmts.size());
  for (const auto& s : stmts) out->stmts.push_back(s->clone());
  return out;
}

StmtPtr CompoundStmt::clone() const { return clone_compound(); }

StmtPtr IfStmt::clone() const {
  return std::make_unique<IfStmt>(cond->clone(), then_branch->clone(),
                                  clone_or_null(else_branch));
}

StmtPtr ForStmt::clone() const {
  auto out = std::make_unique<ForStmt>();
  out->init = clone_or_null(init);
  out->cond = clone_or_null(cond);
  out->inc = clone_or_null(inc);
  out->body = clone_or_null(body);
  return out;
}

StmtPtr WhileStmt::clone() const {
  return std::make_unique<WhileStmt>(cond->clone(), body->clone());
}

StmtPtr DoWhileStmt::clone() const {
  return std::make_unique<DoWhileStmt>(body->clone(), cond->clone());
}

StmtPtr SwitchStmt::clone() const {
  return std::make_unique<SwitchStmt>(cond->clone(), body->clone());
}

StmtPtr CaseLabelStmt::clone() const {
  return std::make_unique<CaseLabelStmt>(clone_or_null(value));
}

StmtPtr ReturnStmt::clone() const { return std::make_unique<ReturnStmt>(clone_or_null(expr)); }
StmtPtr BreakStmt::clone() const { return std::make_unique<BreakStmt>(); }
StmtPtr ContinueStmt::clone() const { return std::make_unique<ContinueStmt>(); }
StmtPtr PragmaStmt::clone() const { return std::make_unique<PragmaStmt>(pragma); }
StmtPtr EmptyStmt::clone() const { return std::make_unique<EmptyStmt>(); }

// ---- Top-level clones ---------------------------------------------------------

TopLevelPtr IncludeDirective::clone() const {
  return std::make_unique<IncludeDirective>(target);
}

TopLevelPtr DefineDirective::clone() const { return std::make_unique<DefineDirective>(body); }

TopLevelPtr TopLevelPragma::clone() const { return std::make_unique<TopLevelPragma>(pragma); }

std::unique_ptr<FunctionDecl> FunctionDecl::clone_function() const {
  auto out = std::make_unique<FunctionDecl>();
  out->return_type = return_type;
  out->return_pointer_depth = return_pointer_depth;
  out->is_static = is_static;
  out->name = name;
  out->params.reserve(params.size());
  for (const auto& p : params) out->params.push_back(p.clone());
  if (body) out->body = body->clone_compound();
  return out;
}

TopLevelPtr FunctionDecl::clone() const { return clone_function(); }

TopLevelPtr GlobalVarDecl::clone() const {
  std::vector<VarDecl> cloned;
  cloned.reserve(decls.size());
  for (const auto& d : decls) cloned.push_back(d.clone());
  return std::make_unique<GlobalVarDecl>(std::move(cloned));
}

TopLevelPtr RawTopLevel::clone() const { return std::make_unique<RawTopLevel>(text); }

// ---- TranslationUnit ----------------------------------------------------------

TranslationUnit TranslationUnit::clone() const {
  TranslationUnit tu;
  tu.items.reserve(items.size());
  for (const auto& item : items) tu.items.push_back(item->clone());
  return tu;
}

FunctionDecl* TranslationUnit::find_function(const std::string& fname) {
  for (auto& item : items) {
    if (item->kind != TopLevelKind::kFunction) continue;
    auto* fn = static_cast<FunctionDecl*>(item.get());
    if (fn->name == fname) return fn;
  }
  return nullptr;
}

const FunctionDecl* TranslationUnit::find_function(const std::string& fname) const {
  return const_cast<TranslationUnit*>(this)->find_function(fname);
}

std::vector<FunctionDecl*> TranslationUnit::functions() {
  std::vector<FunctionDecl*> out;
  for (auto& item : items) {
    if (item->kind != TopLevelKind::kFunction) continue;
    auto* fn = static_cast<FunctionDecl*>(item.get());
    if (fn->body) out.push_back(fn);
  }
  return out;
}

std::vector<const FunctionDecl*> TranslationUnit::functions() const {
  std::vector<const FunctionDecl*> out;
  for (const auto& item : items) {
    if (item->kind != TopLevelKind::kFunction) continue;
    const auto* fn = static_cast<const FunctionDecl*>(item.get());
    if (fn->body) out.push_back(fn);
  }
  return out;
}

// ---- Walkers -------------------------------------------------------------------

void walk_expr(const Expr& expr, const std::function<void(const Expr&)>& fn) {
  fn(expr);
  switch (expr.kind) {
    case ExprKind::kUnary:
      walk_expr(*static_cast<const UnaryExpr&>(expr).operand, fn);
      break;
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      walk_expr(*e.lhs, fn);
      walk_expr(*e.rhs, fn);
      break;
    }
    case ExprKind::kAssign: {
      const auto& e = static_cast<const AssignExpr&>(expr);
      walk_expr(*e.lhs, fn);
      walk_expr(*e.rhs, fn);
      break;
    }
    case ExprKind::kConditional: {
      const auto& e = static_cast<const ConditionalExpr&>(expr);
      walk_expr(*e.cond, fn);
      walk_expr(*e.then_expr, fn);
      walk_expr(*e.else_expr, fn);
      break;
    }
    case ExprKind::kCall:
      for (const auto& a : static_cast<const CallExpr&>(expr).args) walk_expr(*a, fn);
      break;
    case ExprKind::kIndex: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      walk_expr(*e.base, fn);
      walk_expr(*e.index, fn);
      break;
    }
    case ExprKind::kMember:
      walk_expr(*static_cast<const MemberExpr&>(expr).base, fn);
      break;
    case ExprKind::kCast:
      walk_expr(*static_cast<const CastExpr&>(expr).operand, fn);
      break;
    default:
      break;  // literals and identifiers have no children
  }
}

void walk_stmt(const Stmt& stmt, const std::function<void(const Stmt&)>& fn) {
  fn(stmt);
  switch (stmt.kind) {
    case StmtKind::kCompound:
      for (const auto& s : static_cast<const CompoundStmt&>(stmt).stmts) walk_stmt(*s, fn);
      break;
    case StmtKind::kIf: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      walk_stmt(*s.then_branch, fn);
      if (s.else_branch) walk_stmt(*s.else_branch, fn);
      break;
    }
    case StmtKind::kFor: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      if (s.init) walk_stmt(*s.init, fn);
      if (s.body) walk_stmt(*s.body, fn);
      break;
    }
    case StmtKind::kWhile:
      walk_stmt(*static_cast<const WhileStmt&>(stmt).body, fn);
      break;
    case StmtKind::kDoWhile:
      walk_stmt(*static_cast<const DoWhileStmt&>(stmt).body, fn);
      break;
    case StmtKind::kSwitch:
      walk_stmt(*static_cast<const SwitchStmt&>(stmt).body, fn);
      break;
    default:
      break;
  }
}

void walk_stmt_exprs(const Stmt& stmt, const std::function<void(const Expr&)>& fn) {
  walk_stmt(stmt, [&](const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
        walk_expr(*static_cast<const ExprStmt&>(s).expr, fn);
        break;
      case StmtKind::kDecl:
        for (const auto& d : static_cast<const DeclStmt&>(s).decls) {
          for (const auto& dim : d.array_dims)
            if (dim) walk_expr(*dim, fn);
          if (d.init) walk_expr(*d.init, fn);
        }
        break;
      case StmtKind::kIf:
        walk_expr(*static_cast<const IfStmt&>(s).cond, fn);
        break;
      case StmtKind::kFor: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.cond) walk_expr(*f.cond, fn);
        if (f.inc) walk_expr(*f.inc, fn);
        break;
      }
      case StmtKind::kWhile:
        walk_expr(*static_cast<const WhileStmt&>(s).cond, fn);
        break;
      case StmtKind::kDoWhile:
        walk_expr(*static_cast<const DoWhileStmt&>(s).cond, fn);
        break;
      case StmtKind::kSwitch:
        walk_expr(*static_cast<const SwitchStmt&>(s).cond, fn);
        break;
      case StmtKind::kCaseLabel: {
        const auto& label = static_cast<const CaseLabelStmt&>(s);
        if (label.value) walk_expr(*label.value, fn);
        break;
      }
      case StmtKind::kReturn: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.expr) walk_expr(*r.expr, fn);
        break;
      }
      default:
        break;
    }
  });
}

void walk_stmt_mut(Stmt& stmt, const std::function<void(Stmt&)>& fn) {
  fn(stmt);
  switch (stmt.kind) {
    case StmtKind::kCompound:
      for (auto& s : static_cast<CompoundStmt&>(stmt).stmts) walk_stmt_mut(*s, fn);
      break;
    case StmtKind::kIf: {
      auto& s = static_cast<IfStmt&>(stmt);
      walk_stmt_mut(*s.then_branch, fn);
      if (s.else_branch) walk_stmt_mut(*s.else_branch, fn);
      break;
    }
    case StmtKind::kFor: {
      auto& s = static_cast<ForStmt&>(stmt);
      if (s.init) walk_stmt_mut(*s.init, fn);
      if (s.body) walk_stmt_mut(*s.body, fn);
      break;
    }
    case StmtKind::kWhile:
      walk_stmt_mut(*static_cast<WhileStmt&>(stmt).body, fn);
      break;
    case StmtKind::kDoWhile:
      walk_stmt_mut(*static_cast<DoWhileStmt&>(stmt).body, fn);
      break;
    case StmtKind::kSwitch:
      walk_stmt_mut(*static_cast<SwitchStmt&>(stmt).body, fn);
      break;
    default:
      break;
  }
}

}  // namespace socrates::ir
