#include "features/features.hpp"

#include <algorithm>
#include <unordered_set>

#include "ir/loc_counter.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::features {

namespace {

bool is_float_type(const std::string& type_text) {
  return contains(type_text, "float") || contains(type_text, "double");
}

bool is_int_type(const std::string& type_text) {
  return contains(type_text, "int") || contains(type_text, "long") ||
         contains(type_text, "short") || contains(type_text, "char") ||
         contains(type_text, "unsigned") || contains(type_text, "signed");
}

/// Depth of an A[i][j][k] chain rooted at `e`.
std::size_t index_chain_depth(const ir::Expr& e) {
  if (e.kind != ir::ExprKind::kIndex) return 0;
  return 1 + index_chain_depth(*static_cast<const ir::IndexExpr&>(e).base);
}

struct LoopInfo {
  std::size_t count = 0;
  std::size_t max_depth = 0;
  std::size_t perfect_nests = 0;
  std::size_t total_body_loc = 0;
};

/// True when `body` consists of exactly one loop statement (ignoring
/// pragmas), i.e. the surrounding loop is part of a perfect nest.
bool body_is_single_loop(const ir::Stmt& body) {
  if (body.kind == ir::StmtKind::kFor || body.kind == ir::StmtKind::kWhile ||
      body.kind == ir::StmtKind::kDoWhile)
    return true;
  if (body.kind != ir::StmtKind::kCompound) return false;
  const auto& block = static_cast<const ir::CompoundStmt&>(body);
  const ir::Stmt* only_loop = nullptr;
  for (const auto& s : block.stmts) {
    if (s->kind == ir::StmtKind::kPragma) continue;
    if (s->kind == ir::StmtKind::kFor || s->kind == ir::StmtKind::kWhile ||
        s->kind == ir::StmtKind::kDoWhile) {
      if (only_loop != nullptr) return false;
      only_loop = s.get();
      continue;
    }
    return false;
  }
  return only_loop != nullptr;
}

void analyze_loops(const ir::Stmt& stmt, std::size_t depth, LoopInfo& info) {
  const auto handle_loop = [&](const ir::Stmt& body) {
    ++info.count;
    info.max_depth = std::max(info.max_depth, depth + 1);
    info.total_body_loc += ir::logical_loc(body);
    if (body_is_single_loop(body)) ++info.perfect_nests;
    analyze_loops(body, depth + 1, info);
  };

  switch (stmt.kind) {
    case ir::StmtKind::kFor: {
      const auto& s = static_cast<const ir::ForStmt&>(stmt);
      if (s.body) handle_loop(*s.body);
      break;
    }
    case ir::StmtKind::kWhile:
      handle_loop(*static_cast<const ir::WhileStmt&>(stmt).body);
      break;
    case ir::StmtKind::kDoWhile:
      handle_loop(*static_cast<const ir::DoWhileStmt&>(stmt).body);
      break;
    case ir::StmtKind::kCompound:
      for (const auto& s : static_cast<const ir::CompoundStmt&>(stmt).stmts)
        analyze_loops(*s, depth, info);
      break;
    case ir::StmtKind::kIf: {
      const auto& s = static_cast<const ir::IfStmt&>(stmt);
      analyze_loops(*s.then_branch, depth, info);
      if (s.else_branch) analyze_loops(*s.else_branch, depth, info);
      break;
    }
    default:
      break;
  }
}

}  // namespace

const std::array<std::string, kFeatureCount>& FeatureVector::names() {
  static const std::array<std::string, kFeatureCount> kNames = {
      "num_stmts",         "num_loops",          "max_loop_depth",
      "num_ifs",           "num_assignments",    "num_compound_assigns",
      "num_add_sub",       "num_mul_div",        "num_mod",
      "num_comparisons",   "num_logical_ops",    "num_bitwise_ops",
      "num_calls",         "num_distinct_callees", "num_array_accesses",
      "max_index_chain",   "num_scalar_refs",    "num_float_literals",
      "num_int_literals",  "num_float_decls",    "num_int_decls",
      "num_params",        "num_pointer_params", "num_array_params",
      "num_local_decls",   "num_returns",        "num_jumps",
      "num_omp_pragmas",   "num_perfect_nests",  "avg_loop_body_stmts",
      "arith_intensity",   "float_op_ratio",
  };
  return kNames;
}

FeatureVector extract_features(const ir::FunctionDecl& fn) {
  SOCRATES_REQUIRE_MSG(fn.body != nullptr, "cannot extract features of prototype " << fn.name);
  FeatureVector f;

  f[kNumStmts] = static_cast<double>(ir::logical_loc(*fn.body));
  f[kNumParams] = static_cast<double>(fn.params.size());

  for (const auto& p : fn.params) {
    if (p.pointer_depth > 0) f[kNumPointerParams] += 1;
    if (!p.array_dims.empty()) f[kNumArrayParams] += 1;
    if (is_float_type(p.type_text)) f[kNumFloatDecls] += 1;
    if (is_int_type(p.type_text)) f[kNumIntDecls] += 1;
  }

  LoopInfo loops;
  analyze_loops(*fn.body, 0, loops);
  f[kNumLoops] = static_cast<double>(loops.count);
  f[kMaxLoopDepth] = static_cast<double>(loops.max_depth);
  f[kNumPerfectNests] = static_cast<double>(loops.perfect_nests);
  f[kAvgLoopBodyStmts] =
      loops.count == 0 ? 0.0
                       : static_cast<double>(loops.total_body_loc) /
                             static_cast<double>(loops.count);

  std::unordered_set<std::string> callees;

  ir::walk_stmt(*fn.body, [&](const ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::kIf:
      case ir::StmtKind::kSwitch:  // a switch is one multi-way branch
        f[kNumIfs] += 1;
        break;
      case ir::StmtKind::kReturn:
        f[kNumReturns] += 1;
        break;
      case ir::StmtKind::kBreak:
      case ir::StmtKind::kContinue:
        f[kNumJumps] += 1;
        break;
      case ir::StmtKind::kPragma:
        if (static_cast<const ir::PragmaStmt&>(s).pragma.is_omp()) f[kNumOmpPragmas] += 1;
        break;
      case ir::StmtKind::kDecl: {
        const auto& d = static_cast<const ir::DeclStmt&>(s);
        f[kNumLocalDecls] += static_cast<double>(d.decls.size());
        for (const auto& v : d.decls) {
          if (is_float_type(v.type_text)) f[kNumFloatDecls] += 1;
          if (is_int_type(v.type_text)) f[kNumIntDecls] += 1;
        }
        break;
      }
      default:
        break;
    }
  });

  ir::walk_stmt_exprs(*fn.body, [&](const ir::Expr& e) {
    switch (e.kind) {
      case ir::ExprKind::kAssign: {
        const auto& a = static_cast<const ir::AssignExpr&>(e);
        if (a.op == "=")
          f[kNumAssignments] += 1;
        else
          f[kNumCompoundAssigns] += 1;
        // Compound assignments also contribute to the operator mix.
        if (a.op == "+=" || a.op == "-=") f[kNumAddSub] += 1;
        if (a.op == "*=" || a.op == "/=") f[kNumMulDiv] += 1;
        if (a.op == "%=") f[kNumMod] += 1;
        break;
      }
      case ir::ExprKind::kBinary: {
        const std::string& op = static_cast<const ir::BinaryExpr&>(e).op;
        if (op == "+" || op == "-") f[kNumAddSub] += 1;
        else if (op == "*" || op == "/") f[kNumMulDiv] += 1;
        else if (op == "%") f[kNumMod] += 1;
        else if (op == "==" || op == "!=" || op == "<" || op == ">" || op == "<=" ||
                 op == ">=")
          f[kNumComparisons] += 1;
        else if (op == "&&" || op == "||")
          f[kNumLogicalOps] += 1;
        else
          f[kNumBitwiseOps] += 1;
        break;
      }
      case ir::ExprKind::kUnary: {
        const std::string& op = static_cast<const ir::UnaryExpr&>(e).op;
        if (op == "!") f[kNumLogicalOps] += 1;
        if (op == "~") f[kNumBitwiseOps] += 1;
        break;
      }
      case ir::ExprKind::kCall: {
        const auto& c = static_cast<const ir::CallExpr&>(e);
        f[kNumCalls] += 1;
        callees.insert(c.callee);
        break;
      }
      case ir::ExprKind::kIndex:
        f[kNumArrayAccesses] += 1;
        f[kMaxIndexChain] =
            std::max(f[kMaxIndexChain], static_cast<double>(index_chain_depth(e)));
        break;
      case ir::ExprKind::kIdent:
        f[kNumScalarRefs] += 1;
        break;
      case ir::ExprKind::kFloatLit:
        f[kNumFloatLiterals] += 1;
        break;
      case ir::ExprKind::kIntLit:
        f[kNumIntLiterals] += 1;
        break;
      default:
        break;
    }
  });

  f[kNumDistinctCallees] = static_cast<double>(callees.size());

  const double arith = f[kNumAddSub] + f[kNumMulDiv];
  f[kArithIntensity] = arith / std::max(1.0, f[kNumArrayAccesses]);

  // Float-op proxy: fraction of arithmetic happening on float data,
  // approximated by the declared-type mix of the operands in scope.
  const double float_w = f[kNumFloatDecls] + f[kNumFloatLiterals];
  const double int_w = f[kNumIntDecls] + f[kNumIntLiterals];
  f[kFloatOpRatio] = (float_w + int_w) == 0.0 ? 0.0 : float_w / (float_w + int_w);

  return f;
}

std::vector<std::pair<std::string, FeatureVector>> extract_kernel_features(
    const ir::TranslationUnit& tu) {
  std::vector<std::pair<std::string, FeatureVector>> out;
  for (const ir::FunctionDecl* fn : tu.functions()) {
    if (!starts_with(fn->name, "kernel_")) continue;
    out.emplace_back(fn->name, extract_features(*fn));
  }
  return out;
}

}  // namespace socrates::features
