// Milepost-style static code features.
//
// GCC-Milepost characterizes each compiled function with a vector of
// static features extracted from GIMPLE; SOCRATES feeds those vectors
// to COBAYN to predict promising compiler flags per kernel.  Our
// front end is the ir:: AST rather than GIMPLE, so the extractor
// computes the AST-level analogues of the Milepost ft* features
// (instruction mix, CFG shape, loop structure, memory-access counts).
// The feature *indices* are stable — models are trained and queried on
// the same layout.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "ir/ast.hpp"

namespace socrates::features {

/// Number of static features per kernel.
inline constexpr std::size_t kFeatureCount = 32;

/// Indices into FeatureVector::values.  Kept explicit (not just an
/// array order) because COBAYN's discretizer references features by
/// index and tests assert individual entries.
enum FeatureIndex : std::size_t {
  kNumStmts = 0,           ///< logical statements in the body
  kNumLoops,               ///< for + while + do-while
  kMaxLoopDepth,           ///< deepest loop nesting level
  kNumIfs,                 ///< conditional statements
  kNumAssignments,         ///< plain '=' assignments
  kNumCompoundAssigns,     ///< '+=', '*=' and friends
  kNumAddSub,              ///< binary + and -
  kNumMulDiv,              ///< binary * and /
  kNumMod,                 ///< binary %
  kNumComparisons,         ///< == != < > <= >=
  kNumLogicalOps,          ///< && || !
  kNumBitwiseOps,          ///< & | ^ ~ << >>
  kNumCalls,               ///< call expressions
  kNumDistinctCallees,     ///< unique callee names
  kNumArrayAccesses,       ///< index expressions
  kMaxIndexChain,          ///< deepest A[i][j][k] chain
  kNumScalarRefs,          ///< identifier uses in expressions
  kNumFloatLiterals,
  kNumIntLiterals,
  kNumFloatDecls,          ///< float/double locals + params
  kNumIntDecls,            ///< integer-typed locals + params
  kNumParams,
  kNumPointerParams,
  kNumArrayParams,
  kNumLocalDecls,
  kNumReturns,
  kNumJumps,               ///< break + continue
  kNumOmpPragmas,
  kNumPerfectNests,        ///< loops whose body is exactly one loop
  kAvgLoopBodyStmts,       ///< mean logical LOC per loop body
  kArithIntensity,         ///< (addsub+muldiv) / max(1, array accesses)
  kFloatOpRatio,           ///< float-ish ops / all arithmetic ops
};

struct FeatureVector {
  std::array<double, kFeatureCount> values{};

  double operator[](std::size_t i) const { return values[i]; }
  double& operator[](std::size_t i) { return values[i]; }

  /// Human-readable names, index-aligned with `values`.
  static const std::array<std::string, kFeatureCount>& names();
};

/// Extracts the feature vector of one function definition.
/// Precondition: `fn.body != nullptr`.
FeatureVector extract_features(const ir::FunctionDecl& fn);

/// Extracts features for every function definition in the unit whose
/// name matches the SOCRATES kernel convention (name starts with
/// "kernel_"), returning (name, features) pairs in declaration order.
std::vector<std::pair<std::string, FeatureVector>> extract_kernel_features(
    const ir::TranslationUnit& tu);

}  // namespace socrates::features
