#include "features/params_from_features.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace socrates::features {

platform::KernelModelParams estimate_model_params(const FeatureVector& f,
                                                  const std::string& name,
                                                  double seq_work_s) {
  SOCRATES_REQUIRE(seq_work_s > 0.0);

  platform::KernelModelParams p;
  p.name = name;
  p.seq_work_s = seq_work_s;

  const double stmts = std::max(1.0, f[kNumStmts]);
  const double loops = f[kNumLoops];
  const double depth = f[kMaxLoopDepth];
  const double body = loops > 0.0 ? f[kAvgLoopBodyStmts] : stmts;

  // Parallelism: kernels with OpenMP pragmas parallelize their loop
  // nests; the serial remainder grows with code outside the nests.
  if (f[kNumOmpPragmas] > 0.0) {
    const double covered = std::min(1.0, f[kNumOmpPragmas] / std::max(1.0, loops));
    p.parallel_fraction = std::clamp(0.80 + 0.18 * covered, 0.4, 0.99);
  } else {
    p.parallel_fraction = 0.40;  // auto-parallelization is not assumed
  }

  // Memory behaviour: data reuse grows with the loop-nest depth
  // relative to the data dimensionality (a depth-3 matmul reuses each
  // element O(n) times, a depth-2 matvec streams everything once), with
  // arithmetic intensity as a secondary signal.
  p.mem_intensity =
      std::clamp(0.95 - 0.16 * depth - 0.08 * f[kArithIntensity], 0.10, 0.85);

  // Branch / call structure.
  p.branchiness = std::clamp((f[kNumIfs] + f[kNumJumps]) / stmts * 4.0, 0.03, 0.9);
  p.call_density = std::clamp(f[kNumCalls] / stmts * 3.0, 0.02, 0.9);

  // Flag affinities (mirrors cobayn::derive_model_params).
  p.unroll_affinity =
      std::clamp(0.9 - 0.06 * body + 0.08 * depth - 0.4 * p.branchiness, 0.05, 0.95);
  p.vectorization_affinity = std::clamp(
      0.8 * f[kFloatOpRatio] - 0.5 * p.branchiness - 0.3 * p.call_density + 0.08 * depth,
      0.05, 0.95);
  p.fp_ratio = std::clamp(f[kFloatOpRatio], 0.0, 1.0);
  p.icache_sensitivity =
      std::clamp(0.05 + 0.004 * stmts + 0.03 * f[kNumCompoundAssigns], 0.05, 0.9);
  p.ivopt_sensitivity = std::clamp(0.25 + 0.12 * depth, 0.05, 0.9);
  p.loop_opt_sensitivity =
      std::clamp(0.55 - 0.25 * (p.mem_intensity - 0.4), 0.05, 0.9);
  return p;
}

}  // namespace socrates::features
