// Static-feature -> platform-model parameter estimation.
//
// The 12 Polybench kernels carry hand-calibrated KernelModelParams; an
// *arbitrary* C kernel handed to the toolchain has none.  This
// estimator derives them from the Milepost-style feature vector with
// the same structural heuristics the synthetic-corpus generator uses
// (tight deep nests unroll well, FP streaming code vectorizes, call-
// dense bodies suffer from no-inline, low arithmetic intensity means
// bandwidth-bound, ...), so the simulated behaviour of an unknown
// kernel is consistent with how the known corpus behaves.  The absolute
// sequential time cannot be derived statically and must be supplied
// (or measured with socrates::profile_real_kernel).
#pragma once

#include <string>

#include "features/features.hpp"
#include "platform/kernel_model.hpp"

namespace socrates::features {

/// Estimates model parameters for a kernel with the given features.
/// `seq_work_s` is the sequential -O2 execution time on the reference
/// dataset (measured or assumed); must be > 0.
platform::KernelModelParams estimate_model_params(const FeatureVector& features,
                                                  const std::string& name,
                                                  double seq_work_s);

}  // namespace socrates::features
