#include "support/strings.hpp"

#include <cctype>
#include <sstream>

#include "support/error.hpp"

namespace socrates {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  SOCRATES_REQUIRE(!from.empty());
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string format_double(double value, int decimals) {
  SOCRATES_REQUIRE(decimals >= 0);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string repeated(std::string_view unit, std::size_t count) {
  std::string out;
  out.reserve(unit.size() * count);
  for (std::size_t i = 0; i < count; ++i) out += unit;
  return out;
}

}  // namespace socrates
