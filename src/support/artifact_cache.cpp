#include "support/artifact_cache.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "observability/metrics.hpp"
#include "support/chaos.hpp"
#include "support/env.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace socrates {

namespace {

constexpr const char* kMagic = "socrates-artifact";
constexpr const char* kVersion = "v1";

std::string sanitize_label(std::string_view label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("artifact") : out;
}

}  // namespace

ArtifactCache::ArtifactCache(std::string disk_dir) : dir_(std::move(disk_dir)) {
  if (dir_.empty()) return;
  // Sweep temp files a killed process left behind.  A live writer's
  // temp can in principle be swept too; it then fails its rename and
  // recomputes — graceful either way (see the rename error path below).
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return;  // directory does not exist yet (created on first store)
  std::size_t swept = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (!contains(name, ".artifact.tmp.")) continue;
    std::filesystem::remove(entry.path(), ec);
    if (!ec) ++swept;
  }
  if (swept > 0) {
    stats_.swept_tmp_files = swept;
    MetricsRegistry::global().counter("cache.tmp_files_swept").add(swept);
    log_info() << "artifact cache: swept " << swept << " stale tmp file(s) in "
               << dir_;
  }
}

ArtifactCache& ArtifactCache::global() {
  static ArtifactCache kCache(env::string_or("SOCRATES_CACHE_DIR", ""));
  return kCache;
}

std::string ArtifactCache::file_path(std::uint64_t key, std::string_view label) const {
  std::ostringstream os;
  os << dir_ << '/' << sanitize_label(label) << '-' << std::hex << key << ".artifact";
  return os.str();
}

std::optional<std::string> ArtifactCache::load(std::uint64_t key,
                                               std::string_view label) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      ++stats_.memory_hits;
      MetricsRegistry::global().counter("cache.memory_hits").add(1);
      return it->second;
    }
  }
  if (!dir_.empty()) {
    const std::string path = file_path(key, label);
    std::ifstream in(path, std::ios::binary);
    if (in && ChaosEngine::global().corrupt_read("cache.read")) {
      // Injected read error: behave exactly like a corrupted file — a
      // miss, never an exception (the stage recomputes).
      log_warn() << "artifact cache: chaos-injected read error on " << path;
      in.setstate(std::ios::failbit);
      MetricsRegistry::global().counter("cache.corrupted_files").add(1);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
      MetricsRegistry::global().counter("cache.misses").add(1);
      return std::nullopt;
    }
    if (in) {
      // Header: magic version key-hex payload-size payload-hash-hex
      std::string magic, version, key_text, size_text, hash_text;
      if (in >> magic >> version >> key_text >> size_text >> hash_text &&
          magic == kMagic && version == kVersion) {
        in.get();  // the single separator newline
        char* end = nullptr;
        const std::uint64_t stored_key = std::strtoull(key_text.c_str(), &end, 16);
        const unsigned long long size = std::strtoull(size_text.c_str(), nullptr, 10);
        const std::uint64_t payload_hash = std::strtoull(hash_text.c_str(), nullptr, 16);
        std::string payload(static_cast<std::size_t>(size), '\0');
        in.read(payload.data(), static_cast<std::streamsize>(size));
        if (in.gcount() == static_cast<std::streamsize>(size) && stored_key == key &&
            stable_hash64(payload) == payload_hash) {
          std::lock_guard<std::mutex> lock(mu_);
          memory_.emplace(key, payload);
          ++stats_.disk_hits;
          MetricsRegistry::global().counter("cache.disk_hits").add(1);
          MetricsRegistry::global().counter("cache.bytes_loaded").add(payload.size());
          return payload;
        }
      }
      log_warn() << "artifact cache: ignoring corrupted file " << path;
      MetricsRegistry::global().counter("cache.corrupted_files").add(1);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  MetricsRegistry::global().counter("cache.misses").add(1);
  return std::nullopt;
}

void ArtifactCache::store(std::uint64_t key, std::string_view label,
                          std::string_view payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    memory_[key] = std::string(payload);
    ++stats_.stores;
  }
  if (dir_.empty()) return;

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    log_warn() << "artifact cache: cannot create " << dir_ << ": " << ec.message();
    return;
  }
  const std::string path = file_path(key, label);
  // Per-process temp name: concurrent writers of the same artifact
  // (e.g. two bench binaries racing on a cold cache) publish atomically
  // via rename and the loser's bytes simply win — same content anyway.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  if (ChaosEngine::global().fail_write("cache.write")) {
    // ENOSPC-style short write: some bytes land in the temp file, the
    // write "fails", and nothing may be published.
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out.write(payload.data(), static_cast<std::streamsize>(payload.size() / 2));
    }
    log_warn() << "artifact cache: chaos-injected short write, discarding " << tmp;
    MetricsRegistry::global().counter("cache.store_failures").add(1);
    std::filesystem::remove(tmp, ec);
    return;
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      log_warn() << "artifact cache: cannot write " << tmp;
      return;
    }
    out << kMagic << ' ' << kVersion << ' ' << std::hex << key << std::dec << ' '
        << payload.size() << ' ' << std::hex << stable_hash64(payload) << std::dec
        << '\n';
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      // A short write (disk full, I/O error) must never be published: a
      // rename here could replace a complete artifact with a truncated
      // one.  Drop the temp file and keep whatever is already on disk.
      out.close();
      log_warn() << "artifact cache: short write, discarding " << tmp;
      MetricsRegistry::global().counter("cache.store_failures").add(1);
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  if (ChaosEngine::global().drop_rename("cache.tmp")) {
    // Simulated kill between the temp write and the rename: the temp
    // file stays behind (the next construction sweeps it) and the
    // artifact is never published — readers simply miss and recompute.
    log_warn() << "artifact cache: chaos-injected crash before publishing " << path;
    return;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    log_warn() << "artifact cache: cannot publish " << path << ": " << ec.message();
    std::filesystem::remove(tmp, ec);
    return;
  }
  MetricsRegistry::global().counter("cache.bytes_stored").add(payload.size());
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::clear_memory() {
  std::lock_guard<std::mutex> lock(mu_);
  memory_.clear();
}

}  // namespace socrates
