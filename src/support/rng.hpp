// Deterministic pseudo-random number generation.
//
// All stochastic components of SOCRATES (measurement noise in the
// platform model, likelihood-weighted sampling in the Bayesian-network
// engine, workload disturbance in the runtime traces) draw from this
// generator so that every experiment is bit-reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace socrates {

/// xoshiro256** 1.0 — small, fast, high-quality 64-bit PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can
/// be plugged into <random> distributions, but the convenience members
/// below are preferred because their results are identical across
/// standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (both inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method, deterministic).
  double normal();

  /// Normal deviate with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Multiplicative noise factor: exp(N(0, sigma)).  sigma == 0 -> 1.0.
  double lognormal_factor(double sigma);

  /// Picks an index in [0, weights.size()) with probability proportional
  /// to weights[i].  Weights must be non-negative with a positive sum.
  std::size_t weighted_pick(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t next();

  std::uint64_t state_[4]{};
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace socrates
