#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace socrates {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::mean() const {
  SOCRATES_REQUIRE(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  SOCRATES_REQUIRE(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  SOCRATES_REQUIRE(n_ > 0);
  return max_;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  SOCRATES_REQUIRE(!sorted.empty());
  SOCRATES_REQUIRE_MSG(std::isfinite(q) && q >= 0.0 && q <= 1.0,
                       "quantile requires q in [0, 1], got " << q);
  // A NaN poisons std::sort's ordering, so the interpolation below
  // would silently read from the wrong ranks; reject it up front.
  for (const double v : sorted)
    SOCRATES_REQUIRE_MSG(!std::isnan(v), "quantile input contains NaN");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

BoxplotSummary boxplot_summary(std::vector<double> values) {
  SOCRATES_REQUIRE(!values.empty());
  std::sort(values.begin(), values.end());
  BoxplotSummary s;
  s.n = values.size();
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.50);
  s.q3 = quantile_sorted(values, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;
  // Non-finite fences (e.g. an all-infinite sample makes the IQR NaN)
  // match no value; the box edges are then the only sane whiskers.
  bool found_low = false;
  bool found_high = false;
  for (const double v : values) {
    if (v >= lo_fence) {
      s.whisker_low = v;
      found_low = true;
      break;  // sorted: the first in-fence sample is the low whisker
    }
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    if (*it <= hi_fence) {
      s.whisker_high = *it;
      found_high = true;
      break;
    }
  }
  if (!found_low) s.whisker_low = s.q1;
  if (!found_high) s.whisker_high = s.q3;
  for (const double v : values) {
    if (v < lo_fence || v > hi_fence) ++s.n_outliers;
  }
  return s;
}

std::vector<double> normalized_by(const std::vector<double>& values, double denom) {
  SOCRATES_REQUIRE(denom > 0.0);
  std::vector<double> out;
  out.reserve(values.size());
  for (const double v : values) out.push_back(v / denom);
  return out;
}

double mean_of(const std::vector<double>& values) {
  SOCRATES_REQUIRE(!values.empty());
  double s = 0.0;
  for (const double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double geometric_mean_of(const std::vector<double>& values) {
  SOCRATES_REQUIRE(!values.empty());
  double log_sum = 0.0;
  for (const double v : values) {
    SOCRATES_REQUIRE_MSG(v > 0.0, "geometric mean requires positive values, got " << v);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace socrates
