// Stage supervisor: retry / timeout / backoff around any callable.
//
// Long campaigns meet flaky stages — a chaos-injected fault, a
// transient I/O error, a stage that wedges past its deadline.  The
// Supervisor runs a stage body under a policy of `max_attempts`, a
// per-attempt deadline enforced by a steady-clock watchdog (an attempt
// that completes after its deadline is treated as a timeout failure
// and retried — the injected "hang" fault of support/chaos.hpp is a
// bounded sleep, so the watchdog observes it without needing to kill
// threads), and exponential backoff between attempts with
// deterministic seeded jitter: the k-th backoff of a named stage is a
// pure function of (seed, stage, k) via derive_stream, so retry timing
// is byte-reproducible at any SOCRATES_JOBS.
//
// Failures are *classified*: transient failures (ChaosFault,
// socrates::Error, std::runtime_error — bad I/O, injected faults) are
// retried; permanent ones (ContractViolation and every other
// std::logic_error — caller bugs) are rethrown immediately, because
// re-running a buggy call cannot help.  When every attempt fails the
// supervisor either rethrows (Supervisor::run) or reports exhaustion so
// the caller can substitute a degraded fallback product
// (socrates::Pipeline does; see docs/ROBUSTNESS.md for the policy
// table).
//
// Observability: every retry, timeout, exhaustion and fallback bumps a
// `supervisor.*` counter, and each failed attempt records a
// "supervisor" trace span when tracing is on.  A first-attempt success
// touches neither — the clean path costs two steady_clock reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace socrates {

enum class FailureKind {
  kTransient,  ///< worth retrying (I/O, injected chaos, flaky stage)
  kPermanent,  ///< retrying cannot help (contract violation, logic bug)
};

struct SupervisorPolicy {
  std::size_t max_attempts = 3;    ///< >= 1
  double attempt_deadline_s = 0.0; ///< watchdog deadline per attempt; 0 = none
  double base_backoff_s = 0.0;     ///< sleep before retry k is base * 2^(k-1); 0 = none
  double max_backoff_s = 1.0;      ///< backoff ceiling
  double jitter = 0.5;             ///< fraction of each backoff randomized, [0, 1]
  std::uint64_t seed = 2018;       ///< jitter stream seed
};

/// What one supervised execution did.
struct SupervisorReport {
  std::string stage;
  std::size_t attempts = 0;     ///< attempts actually made (>= 1)
  bool succeeded = false;       ///< body eventually returned in time
  bool timed_out = false;       ///< at least one attempt breached the deadline
  std::string last_error;       ///< what() of the last failure ("" on clean runs)
  double backoff_total_s = 0.0; ///< deterministic backoff this execution chose

  bool retried() const { return attempts > 1; }
};

class Supervisor {
 public:
  using Classifier = std::function<FailureKind(const std::exception&)>;
  using Sleeper = std::function<void(double seconds)>;

  explicit Supervisor(SupervisorPolicy policy = {});

  const SupervisorPolicy& policy() const { return policy_; }

  /// Replaces the failure classifier (default: classify_default).
  void set_classifier(Classifier classifier);
  /// Replaces the backoff sleeper (default: std::this_thread::sleep_for).
  /// Tests install a recorder so retry tests take no wall time.
  void set_sleeper(Sleeper sleeper);

  /// Runs `body` under the policy.  Returns a report with
  /// succeeded == true as soon as one attempt completes within its
  /// deadline.  A permanent failure rethrows immediately; exhausted
  /// transient failures rethrow the last error.
  SupervisorReport run(std::string_view stage, const std::function<void()>& body);

  /// Like run(), but exhaustion returns succeeded == false instead of
  /// rethrowing — the caller substitutes a degraded fallback product.
  /// Permanent failures still rethrow unless `absorb_permanent`.
  SupervisorReport run_or_report(std::string_view stage,
                                 const std::function<void()>& body,
                                 bool absorb_permanent = false);

  /// The deterministic backoff before retry `attempt` (1-based: the
  /// sleep after the attempt-th failure) of `stage` — exponential with
  /// seeded jitter, pure in (policy.seed, stage, attempt).
  double backoff_s(std::string_view stage, std::size_t attempt) const;

  /// Default classification: ContractViolation / std::logic_error are
  /// permanent, everything else (ChaosFault, socrates::Error,
  /// std::runtime_error, unknown) is transient.
  static FailureKind classify_default(const std::exception& error);

 private:
  SupervisorPolicy policy_;
  Classifier classifier_;
  Sleeper sleeper_;
};

}  // namespace socrates
