#include "support/bench_json.hpp"

#include <unistd.h>

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace socrates {

// ---- writer ----------------------------------------------------------------

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the separator for this value
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (!needs_comma_.empty()) needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (!needs_comma_.empty()) needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

void JsonWriter::append_escaped(std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      case '\b': out_ += "\\b"; break;
      case '\f': out_ += "\\f"; break;
      default:
        // RFC 8259: every control character must be escaped, or the
        // document is invalid JSON.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  append_escaped(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  // to_chars, not snprintf: "%.17g" spells the radix point per the
  // global C locale, and a comma there corrupts the document.
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  append_escaped(text);
  out_ += '"';
  return *this;
}

// ---- parser ----------------------------------------------------------------

namespace {

/// Strict RFC 8259 number: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
/// scanned at `*pos` in `text`.  Rejects, with named errors, the
/// laxities strtod/stod let through: leading '+', leading '.', hex
/// floats, "inf"/"nan", and digit-less exponents — and, because the
/// conversion runs through from_chars, the parse is identical under
/// every global locale.  On success advances `*pos` past the number,
/// stores the value and returns nullptr; on failure returns the error
/// message and leaves `*pos` untouched.
const char* scan_strict_number(std::string_view text, std::size_t* pos,
                               double* value) {
  const std::size_t start = *pos;
  std::size_t p = start;
  auto digit = [&](std::size_t i) {
    return i < text.size() && text[i] >= '0' && text[i] <= '9';
  };
  if (p >= text.size()) return "expected a value";
  if (text[p] == '+') return "leading '+' is not valid JSON";
  if (text[p] == '.') return "leading '.' is not valid JSON (write 0.x)";
  if (text[p] == '-') ++p;
  if (p < text.size() &&
      (text.substr(p, 3) == "inf" || text.substr(p, 3) == "nan" ||
       text.substr(p, 3) == "Inf" || text.substr(p, 3) == "NaN"))
    return "non-finite literals are not valid JSON";
  if (!digit(p)) return "expected a value";
  if (text[p] == '0') {
    ++p;
    if (digit(p)) return "leading zero is not valid JSON";
    if (p < text.size() && (text[p] == 'x' || text[p] == 'X'))
      return "hex numbers are not valid JSON";
  } else {
    while (digit(p)) ++p;
  }
  if (p < text.size() && text[p] == '.') {
    ++p;
    if (!digit(p)) return "expected digits after '.'";
    while (digit(p)) ++p;
  }
  if (p < text.size() && (text[p] == 'e' || text[p] == 'E')) {
    ++p;
    if (p < text.size() && (text[p] == '+' || text[p] == '-')) ++p;
    if (!digit(p)) return "expected digits in exponent";
    while (digit(p)) ++p;
  }
  double v = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data() + start, text.data() + p, v);
  if (ec == std::errc::result_out_of_range || end != text.data() + p)
    return "number out of double range";
  if (ec != std::errc{}) return "unparsable number";
  *pos = p;
  *value = v;
  return nullptr;
}

/// Minimal recursive-descent JSON reader that records numeric/boolean
/// leaves under dotted paths.  Good enough for bench artifacts and
/// baseline files; not a general-purpose validator.
class LeafParser {
 public:
  LeafParser(std::string_view text, std::map<std::string, double>& out)
      : text_(text), out_(out) {}

  void run() {
    skip_ws();
    parse_value("");
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() const {
    if (pos_ >= text_.size())
      throw Error("json: unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          default: s += e;  // \uXXXX etc. — passed through, paths stay ASCII
        }
      } else {
        s += c;
      }
    }
    return s;
  }

  void parse_value(const std::string& path) {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      skip_ws();
      if (peek() == '}') { ++pos_; return; }
      while (true) {
        skip_ws();
        const std::string name = parse_string();
        skip_ws();
        expect(':');
        parse_value(path.empty() ? name : path + '.' + name);
        skip_ws();
        if (peek() == ',') { ++pos_; continue; }
        expect('}');
        break;
      }
    } else if (c == '[') {
      ++pos_;
      skip_ws();
      if (peek() == ']') { ++pos_; return; }
      std::size_t index = 0;
      while (true) {
        parse_value(path + '[' + std::to_string(index++) + ']');
        skip_ws();
        if (peek() == ',') { ++pos_; continue; }
        expect(']');
        break;
      }
    } else if (c == '"') {
      (void)parse_string();  // string leaf: skipped
    } else if (c == 't') {
      literal("true");
      out_[path] = 1.0;
    } else if (c == 'f') {
      literal("false");
      out_[path] = 0.0;
    } else if (c == 'n') {
      // Distinguish the JSON literal from C-library spellings strtod
      // would have silently accepted.
      if (text_.substr(pos_, 3) == "nan") fail("'nan' is not valid JSON");
      literal("null");  // null leaf: skipped
    } else {
      out_[path] = parse_number();
    }
  }

  /// Shared strict number grammar (scan_strict_number above); the
  /// rejected laxities get named errors so malformed artifacts fail
  /// loudly instead of parsing differently per locale.
  double parse_number() {
    peek();  // "unexpected end of document" on truncation, as elsewhere
    double v = 0.0;
    if (const char* error = scan_strict_number(text_, &pos_, &v)) fail(error);
    return v;
  }

  void literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
  }

  std::string_view text_;
  std::map<std::string, double>& out_;
  std::size_t pos_ = 0;
};

}  // namespace

std::map<std::string, double> parse_numeric_leaves(std::string_view text) {
  std::map<std::string, double> out;
  LeafParser(text, out).run();
  return out;
}

std::optional<double> parse_strict_double(std::string_view text) {
  std::size_t pos = 0;
  double v = 0.0;
  if (scan_strict_number(text, &pos, &v) != nullptr || pos != text.size())
    return std::nullopt;
  return v;
}

std::vector<BaselineCheck> parse_baseline(std::string_view text) {
  // A baseline is JSON too, but its "path" fields are strings — parse
  // it structurally by re-reading the raw text per check entry would be
  // overkill; instead rely on the known flat shape: numeric leaves give
  // the bounds, and the paths are recovered from the same document with
  // a dedicated string scan.
  const auto leaves = parse_numeric_leaves(text);
  // Count entries: checks[i].min / checks[i].max leaves.
  std::vector<BaselineCheck> checks;
  // Recover the "path" strings with a second, tiny pass: find every
  // "path" key inside the checks array, in order.
  std::size_t pos = 0;
  while (true) {
    const auto key_at = text.find("\"path\"", pos);
    if (key_at == std::string_view::npos) break;
    auto colon = text.find(':', key_at + 6);
    if (colon == std::string_view::npos)
      throw Error("baseline: malformed path entry");
    auto open = text.find('"', colon + 1);
    auto close = text.find('"', open + 1);
    if (open == std::string_view::npos || close == std::string_view::npos)
      throw Error("baseline: malformed path entry");
    BaselineCheck check;
    check.path = std::string(text.substr(open + 1, close - open - 1));
    const std::string prefix = "checks[" + std::to_string(checks.size()) + "].";
    if (const auto it = leaves.find(prefix + "min"); it != leaves.end())
      check.min = it->second;
    if (const auto it = leaves.find(prefix + "max"); it != leaves.end())
      check.max = it->second;
    checks.push_back(std::move(check));
    pos = close + 1;
  }
  if (checks.empty()) throw Error("baseline: no checks found");
  return checks;
}

std::vector<std::string> check_against_baseline(
    const std::vector<BaselineCheck>& checks, std::string_view candidate_json) {
  const auto leaves = parse_numeric_leaves(candidate_json);
  std::vector<std::string> failures;
  for (const auto& check : checks) {
    const auto it = leaves.find(check.path);
    if (it == leaves.end()) {
      failures.push_back("missing key '" + check.path + "'");
      continue;
    }
    if (!std::isfinite(it->second)) {
      // A non-finite measurement can never satisfy a bound; name the
      // failure instead of letting the NaN comparisons mask it.
      failures.push_back("'" + check.path + "' is not finite (NaN or Inf)");
      continue;
    }
    if (!(it->second >= check.min)) {
      failures.push_back("'" + check.path + "' = " + std::to_string(it->second) +
                         " below minimum " + std::to_string(check.min));
    } else if (!(it->second <= check.max)) {
      failures.push_back("'" + check.path + "' = " + std::to_string(it->second) +
                         " above maximum " + std::to_string(check.max));
    }
  }
  return failures;
}

std::string bench_json_path(std::string_view name) {
  const std::string dir = env::string_or("SOCRATES_BENCH_JSON_DIR", ".");
  return dir + "/BENCH_" + std::string(name) + ".json";
}

bool write_bench_json(std::string_view name, const std::string& json) {
  const std::string path = bench_json_path(name);
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      log_warn() << "bench_json: cannot write " << tmp;
      return false;
    }
    out << json << '\n';
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      log_warn() << "bench_json: short write on " << tmp;
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    log_warn() << "bench_json: cannot publish " << path << ": " << ec.message();
    std::filesystem::remove(tmp, ec);
    return false;
  }
  log_info() << "bench_json: wrote " << path;
  return true;
}

}  // namespace socrates
