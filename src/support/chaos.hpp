// Pipeline-level fault injection ("chaos engineering" for the
// toolchain).
//
// PR 1 made the *sensors* lie; this layer makes the *pipeline itself*
// fail: stages throw, hang past their supervisor deadline or run slow,
// and ArtifactCache disk I/O suffers ENOSPC-style short writes, read
// corruption and stale temp files left behind by a "killed" process.
// The injector is driven by the SOCRATES_CHAOS environment variable (or
// installed programmatically by tests) and every decision is drawn from
// a deterministic seeded schedule, so a chaotic run is byte-reproducible
// and the supervisor (support/supervisor.hpp) is testable in-tree.
//
// Spec grammar (documented in docs/ROBUSTNESS.md):
//
//   SOCRATES_CHAOS = <entry>("," <entry>)* [":" <seed>]
//   entry          = key "=" value
//   key            = stage-fail | stage-hang | stage-slow
//                  | cache-read | cache-write | cache-tmp
//                  | shard-stall | ingest-flood | journal-fail
//                  | dse-explore | disk-full | pool-corrupt | crash-at
//                  | hang-ms | slow-ms | stall-ms | flood-burst
//
// The fault keys take per-call probabilities in [0, 1]; hang-ms /
// slow-ms / stall-ms set the injected sleep durations and flood-burst
// the amplification factor of an ingest flood.  The server-side sites
// (docs/SERVER.md): `shard-stall` parks a shard worker past its
// watchdog deadline (exercising restart + checkpoint recovery),
// `ingest-flood` duplicates a submitted feedback event flood-burst
// times (exercising backpressure shedding), and `journal-fail` makes a
// checkpoint group-commit flush fail (the batch is lost, exactly like
// a crash between commits), and `pool-corrupt` makes a knowledge-pool
// lookup behave as if the matched entry were damaged (the tenant falls
// back to a cold start — docs/SERVER.md).  Example:
//
//   SOCRATES_CHAOS="stage-fail=0.2,cache-write=0.1:2024"
//
// Storage-resilience keys (docs/ROBUSTNESS.md §6): `disk-full` makes
// every CheckpointStore disk operation (journal open/append, snapshot
// write, rename) fail as if the device returned ENOSPC, driving the
// store into its degraded in-memory mode; `crash-at=<site>[:<n>]`
// simulates a process death at the n-th arrival (default: the first)
// at one of the checkpoint write boundaries
//
//   journal-append | journal-flush | snapshot-header | snapshot-body
//   | snapshot-rename | journal-truncate
//
// — the bytes written before the boundary stay on disk (torn exactly
// as a power cut would tear them) and the store goes permanently dead,
// so a test can restore from the surviving files and assert the loss
// bound.  Because the crash-at value itself contains ':', a trailing
// ":<n>" on the *last* entry binds to crash-at, not the seed; append
// an explicit seed (`crash-at=snapshot-rename:2:99`) to set both.
//
// Determinism: each injection site (a short string like "stage.Parse"
// or "cache.write") owns a call counter; the n-th decision at a site
// draws from Rng(derive_stream(hash(seed, site), n)) — independent of
// every other site, of thread scheduling and of the measurement-noise
// streams.  Parallel call sites (DSE points) pass an explicit index
// instead of using the counter.
//
// Cost when disabled (the default): ChaosEngine::global().enabled() is
// a single relaxed atomic load, and call sites gate on it — pinned by
// ablation_margot_overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace socrates {

/// Thrown by an injected stage failure.  The supervisor's default
/// classifier treats it as *transient* (retryable).
class ChaosFault : public std::runtime_error {
 public:
  explicit ChaosFault(const std::string& what) : std::runtime_error(what) {}
};

struct ChaosSpec {
  double stage_fail = 0.0;   ///< P(stage throws ChaosFault on entry)
  double stage_hang = 0.0;   ///< P(stage sleeps `hang_ms` before running)
  double stage_slow = 0.0;   ///< P(stage sleeps `slow_ms` before running)
  double cache_read = 0.0;   ///< P(disk artifact read is corrupted)
  double cache_write = 0.0;  ///< P(disk artifact write is cut short)
  double cache_tmp = 0.0;    ///< P(writer "dies" between tmp write and rename)
  double shard_stall = 0.0;  ///< P(server shard worker parks past its deadline)
  double ingest_flood = 0.0; ///< P(a submitted feedback event is amplified)
  double journal_fail = 0.0; ///< P(a checkpoint group-commit flush fails)
  double dse_explore = 0.0;  ///< P(a DSE explorer search round is voided)
  double disk_full = 0.0;    ///< P(a checkpoint disk operation hits ENOSPC)
  double pool_corrupt = 0.0; ///< P(a knowledge-pool lookup sees a corrupt entry)
  double hang_ms = 50.0;
  double slow_ms = 5.0;
  double stall_ms = 80.0;    ///< duration of an injected shard stall
  double flood_burst = 8.0;  ///< extra copies an ingest flood pushes
  /// Crash-point injection: at arrival number `crash_after` (1-based)
  /// at the named checkpoint write boundary, the store "dies" — see
  /// the crash-at grammar above.  Empty = disarmed.
  std::string crash_site;
  std::uint64_t crash_after = 1;
  std::uint64_t seed = 1;

  bool any() const {
    return stage_fail > 0 || stage_hang > 0 || stage_slow > 0 || cache_read > 0 ||
           cache_write > 0 || cache_tmp > 0 || shard_stall > 0 ||
           ingest_flood > 0 || journal_fail > 0 || dse_explore > 0 ||
           disk_full > 0 || pool_corrupt > 0 || !crash_site.empty();
  }

  /// The six checkpoint write boundaries crash-at accepts.
  static bool is_crash_site(std::string_view site);

  /// Parses the SOCRATES_CHAOS grammar above.  Throws socrates::Error
  /// on unknown keys, non-numeric values, probabilities outside [0,1]
  /// or an unknown crash-at site.
  static ChaosSpec parse(std::string_view text);
};

class ChaosEngine {
 public:
  ChaosEngine() = default;  ///< disabled: every hook is a no-op

  /// Arms the engine with `spec` (disarms when spec.any() is false).
  void install(const ChaosSpec& spec);
  void disarm();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// A consistent copy of the armed spec.  By value: install() may run
  /// concurrently (a test arming chaos while shard workers poll their
  /// sites), so readers must never alias the mutable spec_.
  ChaosSpec spec() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spec_;
  }

  /// Stage-entry hook: may throw ChaosFault or sleep (hang/slow),
  /// according to the site's deterministic schedule.  `site` should be
  /// "stage.<Name>".
  void on_stage(std::string_view site);

  /// Cache hooks: true = inject the fault at this call.
  bool corrupt_read(std::string_view site);
  bool fail_write(std::string_view site);
  bool drop_rename(std::string_view site);

  /// Server hooks (sites "server.shard<i>", "server.ingest",
  /// "checkpoint.journal"): true = inject the fault at this call.  The
  /// caller performs the effect (park the worker for spec().stall_ms,
  /// push spec().flood_burst extra copies, drop the journal batch).
  bool stall_shard(std::string_view site);
  bool flood_ingest(std::string_view site);
  bool fail_journal(std::string_view site);

  /// Disk-full hook for CheckpointStore I/O (site "checkpoint.disk"):
  /// true = this disk operation fails as if the device were full.
  bool fail_disk(std::string_view site);

  /// Knowledge-pool hook (site "server.pool"): true = the entry a
  /// lookup matched must be treated as corrupt (caller degrades the
  /// tenant to a cold start).
  bool corrupt_pool(std::string_view site);

  /// Crash-point hook: true exactly once, at the spec's crash_after-th
  /// arrival at the armed crash site (`site` is the short boundary
  /// name, e.g. "snapshot-rename").  The caller simulates the death —
  /// leaves its partial bytes on disk and stops touching the disk.
  bool crash_now(std::string_view site);

  /// Deterministic indexed draw for parallel sites (DSE points): fires
  /// with probability `stage_fail` for the given (site, index) pair,
  /// independent of call order.  Throws nothing; callers throw.
  bool fire_indexed(std::string_view site, std::uint64_t index) const;

  /// fire_indexed with an explicit probability and metric — the DSE
  /// explorer's "dse.explore" site draws with spec().dse_explore.
  bool fire_indexed(std::string_view site, std::uint64_t index, double probability,
                    const char* counter_name) const;

  /// Total injections performed since construction / install().
  std::uint64_t injected() const { return injected_.load(std::memory_order_relaxed); }

  /// Process-wide engine, armed at first use from SOCRATES_CHAOS (when
  /// set and parseable; a malformed spec warns and disables).  Tests
  /// re-install programmatically.
  static ChaosEngine& global();

 private:
  /// The site's next uniform draw in [0,1) (advances its counter).
  double draw(std::string_view site);
  bool decide(std::string_view site, double probability, const char* counter_name);

  std::atomic<bool> enabled_{false};
  ChaosSpec spec_;
  mutable std::atomic<std::uint64_t> injected_{0};
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> site_counters_;
};

}  // namespace socrates
