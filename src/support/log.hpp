// Minimal leveled logger.
//
// SOCRATES components report progress (pipeline stages, AS-RTM
// decisions) through this logger; tests silence it, benches keep it at
// Info.  write() serializes whole lines under a mutex so task-pool
// workers can log concurrently without interleaving.
#pragma once

#include <iosfwd>
#include <optional>
#include <sstream>
#include <string>

namespace socrates {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log configuration.
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// True when a message at `level` would actually be emitted.
  static bool enabled(LogLevel level);

  /// Redirects output (default: std::cerr).  Pass nullptr to restore.
  static void set_sink(std::ostream* sink);

  static void write(LogLevel level, const std::string& message);
};

namespace detail {

/// Builds one log line and hands it to Log::write on destruction.
/// The threshold is checked at construction: a suppressed line costs a
/// single level comparison — no stream is constructed, operands are
/// never formatted and the sink is never touched.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {
    if (Log::enabled(level)) stream_.emplace();
  }
  ~LogLine() {
    if (stream_) Log::write(level_, stream_->str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (stream_) *stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace socrates
