// Machine-readable bench artifacts (BENCH_*.json).
//
// ROADMAP item 5: the perf trajectory must be machine-checkable.  Every
// bench that pins a number writes a BENCH_<name>.json next to its
// human-readable output, and a CTest smoke compares the file against a
// committed baseline (bench/baselines/*.json) with explicit per-key
// bounds — so a regression of throughput, latency or allocation counts
// fails CI instead of scrolling by in a log.
//
// Two halves:
//   - JsonWriter: a tiny streaming writer (objects, arrays, numbers,
//     strings, bools) that benches use to dump their results.  Commas
//     and quoting are handled; non-finite doubles serialize as null so
//     the artifact stays valid JSON.
//   - parse_numeric_leaves: a minimal JSON reader that flattens every
//     numeric (and boolean) leaf of a document into a
//     "path.to[2].leaf" -> double map.  This is all the baseline
//     checker needs; strings and nulls are skipped.
//
// Baseline files are themselves JSON:
//   { "checks": [ {"path": "clean.throughput_per_s", "min": 2e4},
//                 {"path": "decide.steady_allocs",  "max": 0} ] }
// check_against_baseline() verifies every listed path exists in the
// candidate and lies within its [min, max] bounds (machine-stable
// ratios and counts, not absolute nanoseconds on unknown hardware).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace socrates {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key of the next value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view text);
  /// Without this overload a literal would convert to bool, not
  /// string_view (standard conversion beats user-defined).
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }

  /// key(name) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// The document built so far.  Balanced begin/end calls are the
  /// caller's contract; str() does not validate.
  const std::string& str() const { return out_; }

 private:
  void comma();
  void append_escaped(std::string_view text);

  std::string out_;
  std::vector<bool> needs_comma_;  ///< one frame per open object/array
  bool pending_key_ = false;
};

/// Flattens every numeric/boolean leaf of a JSON document into
/// "a.b[0].c" -> value.  Throws socrates::Error on malformed input.
std::map<std::string, double> parse_numeric_leaves(std::string_view text);

/// Parses the whole of `text` as one strict RFC 8259 number — the same
/// from_chars-based grammar the leaf parser uses, exposed for every
/// other text format in the tree (chaos specs, knowledge CSV cells).
/// Unlike std::stod this is locale-independent ("0.5" is 0.5 under a
/// comma-decimal locale too) and rejects the strtod laxities: leading
/// '+', leading '.', hex floats, "inf"/"nan", trailing garbage.
/// Returns nullopt when `text` is not exactly one such number.
std::optional<double> parse_strict_double(std::string_view text);

/// One bound of a committed baseline file.
struct BaselineCheck {
  std::string path;
  double min = -1e308;
  double max = 1e308;
};

/// Parses a baseline document ({"checks": [{"path", "min"?, "max"?}]}).
/// Throws socrates::Error on malformed input.
std::vector<BaselineCheck> parse_baseline(std::string_view text);

/// Verifies `candidate_json` against the parsed baseline.  Returns the
/// list of human-readable failures (empty = pass).
std::vector<std::string> check_against_baseline(
    const std::vector<BaselineCheck>& checks, std::string_view candidate_json);

/// Where BENCH_<name>.json lands: $SOCRATES_BENCH_JSON_DIR when set,
/// otherwise the current directory (benches and CTest share a cwd).
std::string bench_json_path(std::string_view name);

/// Writes the artifact (tmp + rename so a crashing bench never leaves a
/// torn file) and logs where it went.  Returns false on I/O failure.
bool write_bench_json(std::string_view name, const std::string& json);

}  // namespace socrates
