#include "support/hash.hpp"

#include <cstring>

namespace socrates {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t state, const unsigned char* bytes, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}

/// splitmix64 finalizer: bijective, strong avalanche.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

Hasher& Hasher::add_bytes(const void* data, std::size_t size) {
  state_ = fnv1a(state_, static_cast<const unsigned char*>(data), size);
  bytes_ += size;
  return *this;
}

Hasher& Hasher::add(std::string_view text) {
  add(static_cast<std::uint64_t>(text.size()));
  return add_bytes(text.data(), text.size());
}

Hasher& Hasher::add(std::uint64_t value) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(value >> (8 * i));
  return add_bytes(bytes, sizeof bytes);
}

Hasher& Hasher::add(std::int64_t value) {
  return add(static_cast<std::uint64_t>(value));
}

Hasher& Hasher::add(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return add(bits);
}

std::string Hasher::hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t v = state_;
  for (int i = 15; i >= 0; --i, v >>= 4) out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
  return out;
}

std::uint64_t stable_hash64(std::string_view bytes) {
  return fnv1a(0xcbf29ce484222325ULL,
               reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size());
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
}

std::uint64_t derive_stream(std::uint64_t master_seed, std::uint64_t index) {
  return hash_combine(mix64(master_seed), index + 1);
}

}  // namespace socrates
