#include "support/chaos.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "observability/metrics.hpp"
#include "support/bench_json.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace socrates {

namespace {

// parse_strict_double, not std::stod: stod honours the global C locale,
// so under a comma-decimal locale "0.5" silently parses as 0 and the
// injected fault rates change behind the caller's back.  The strict
// grammar also rejects stod laxities (hex floats, "inf"/"nan", leading
// '+') that were never meant to be part of the spec language.

double parse_probability(const std::string& key, const std::string& value) {
  const auto p = parse_strict_double(value);
  if (!p)
    throw Error("chaos spec: non-numeric value '" + value + "' for " + key);
  if (*p < 0.0 || *p > 1.0)
    throw Error("chaos spec: probability " + value + " for " + key +
                " outside [0, 1]");
  return *p;
}

double parse_millis(const std::string& key, const std::string& value) {
  const auto ms = parse_strict_double(value);
  if (!ms)
    throw Error("chaos spec: non-numeric value '" + value + "' for " + key);
  if (*ms < 0.0 || *ms > 60000.0)
    throw Error("chaos spec: duration '" + value + "' for " + key +
                " must be in [0, 60000] ms");
  return *ms;
}

double parse_count(const std::string& key, const std::string& value) {
  const auto n = parse_strict_double(value);
  if (!n)
    throw Error("chaos spec: non-numeric value '" + value + "' for " + key);
  if (*n < 1.0 || *n > 4096.0)
    throw Error("chaos spec: count '" + value + "' for " + key +
                " must be in [1, 4096]");
  return *n;
}

/// Parses a crash-at value "<site>[:<n>]" into the spec.
void parse_crash_at(ChaosSpec& spec, const std::string& value) {
  std::string site = value;
  std::uint64_t count = 1;
  if (const auto colon = value.find(':'); colon != std::string::npos) {
    site = trim(value.substr(0, colon));
    const std::string count_text = trim(value.substr(colon + 1));
    char* end = nullptr;
    count = std::strtoull(count_text.c_str(), &end, 10);
    if (count_text.empty() || end == count_text.c_str() || *end != '\0' ||
        count < 1 || count > 1u << 20)
      throw Error("chaos spec: crash-at occurrence '" + count_text +
                  "' must be a count in [1, 1048576]");
  }
  if (!ChaosSpec::is_crash_site(site))
    throw Error("chaos spec: unknown crash-at site '" + site + "'");
  spec.crash_site = site;
  spec.crash_after = count;
}

}  // namespace

bool ChaosSpec::is_crash_site(std::string_view site) {
  return site == "journal-append" || site == "journal-flush" ||
         site == "snapshot-header" || site == "snapshot-body" ||
         site == "snapshot-rename" || site == "journal-truncate";
}

ChaosSpec ChaosSpec::parse(std::string_view text) {
  ChaosSpec spec;
  std::string body(trim(text));
  if (body.empty()) return spec;

  // Optional ":<seed>" suffix — unless the text ends in
  // "crash-at=<site>:<n>", where the last colon belongs to the
  // crash-at occurrence count, not the seed.
  auto colon = body.rfind(':');
  if (colon != std::string::npos) {
    const auto comma = body.rfind(',');
    const std::string last_entry =
        trim(comma == std::string::npos ? body : body.substr(comma + 1));
    const std::string crash_prefix = "crash-at=";
    if (last_entry.rfind(crash_prefix, 0) == 0) {
      const std::string value = last_entry.substr(crash_prefix.size());
      // "crash-at=site:2" -> the colon is the count; "crash-at=site:2:7"
      // -> the first colon is the count, the last one the seed.
      if (value.find(':') == value.rfind(':')) colon = std::string::npos;
    }
  }
  if (colon != std::string::npos) {
    const std::string seed_text = trim(body.substr(colon + 1));
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(seed_text.c_str(), &end, 10);
    if (seed_text.empty() || end == seed_text.c_str() || *end != '\0')
      throw Error("chaos spec: seed '" + seed_text + "' is not a number");
    spec.seed = seed;
    body = body.substr(0, colon);
  }

  for (const auto& entry : split(body, ',')) {
    const std::string item = trim(entry);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      throw Error("chaos spec: entry '" + item + "' is not key=value");
    const std::string key = trim(item.substr(0, eq));
    const std::string value = trim(item.substr(eq + 1));
    if (key == "stage-fail")
      spec.stage_fail = parse_probability(key, value);
    else if (key == "stage-hang")
      spec.stage_hang = parse_probability(key, value);
    else if (key == "stage-slow")
      spec.stage_slow = parse_probability(key, value);
    else if (key == "cache-read")
      spec.cache_read = parse_probability(key, value);
    else if (key == "cache-write")
      spec.cache_write = parse_probability(key, value);
    else if (key == "cache-tmp")
      spec.cache_tmp = parse_probability(key, value);
    else if (key == "shard-stall")
      spec.shard_stall = parse_probability(key, value);
    else if (key == "ingest-flood")
      spec.ingest_flood = parse_probability(key, value);
    else if (key == "journal-fail")
      spec.journal_fail = parse_probability(key, value);
    else if (key == "dse-explore")
      spec.dse_explore = parse_probability(key, value);
    else if (key == "disk-full")
      spec.disk_full = parse_probability(key, value);
    else if (key == "pool-corrupt")
      spec.pool_corrupt = parse_probability(key, value);
    else if (key == "crash-at")
      parse_crash_at(spec, value);
    else if (key == "hang-ms")
      spec.hang_ms = parse_millis(key, value);
    else if (key == "slow-ms")
      spec.slow_ms = parse_millis(key, value);
    else if (key == "stall-ms")
      spec.stall_ms = parse_millis(key, value);
    else if (key == "flood-burst")
      spec.flood_burst = parse_count(key, value);
    else
      throw Error("chaos spec: unknown key '" + key + "'");
  }
  return spec;
}

void ChaosEngine::install(const ChaosSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  site_counters_.clear();
  injected_.store(0, std::memory_order_relaxed);
  enabled_.store(spec.any(), std::memory_order_relaxed);
}

void ChaosEngine::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  site_counters_.clear();
}

ChaosEngine& ChaosEngine::global() {
  static ChaosEngine* kEngine = [] {
    auto* engine = new ChaosEngine();
    if (const auto text = env::raw("SOCRATES_CHAOS"); text && !text->empty()) {
      try {
        engine->install(ChaosSpec::parse(*text));
        log_warn() << "SOCRATES_CHAOS armed: " << *text;
      } catch (const Error& e) {
        log_warn() << "SOCRATES_CHAOS ignored: " << e.what();
      }
    }
    return engine;
  }();
  return *kEngine;
}

double ChaosEngine::draw(std::string_view site) {
  std::uint64_t n = 0;
  std::uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = site_counters_[std::string(site)]++;
    seed = spec_.seed;
  }
  Rng rng(derive_stream(hash_combine(seed, stable_hash64(site)), n));
  return rng.uniform();
}

bool ChaosEngine::decide(std::string_view site, double probability,
                         const char* counter_name) {
  if (probability <= 0.0) return false;
  const bool fire = draw(site) < probability;
  if (fire) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter(counter_name).add(1);
  }
  return fire;
}

void ChaosEngine::on_stage(std::string_view site) {
  if (!enabled()) return;
  const ChaosSpec snap = spec();
  if (decide(site, snap.stage_hang, "chaos.stage_hangs")) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(snap.hang_ms * 1000.0)));
  } else if (decide(site, snap.stage_slow, "chaos.stage_slowdowns")) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(snap.slow_ms * 1000.0)));
  }
  if (decide(site, snap.stage_fail, "chaos.stage_faults")) {
    std::ostringstream os;
    os << "injected chaos fault at " << site;
    throw ChaosFault(os.str());
  }
}

bool ChaosEngine::corrupt_read(std::string_view site) {
  if (!enabled()) return false;
  return decide(site, spec().cache_read, "chaos.cache_read_faults");
}

bool ChaosEngine::fail_write(std::string_view site) {
  if (!enabled()) return false;
  return decide(site, spec().cache_write, "chaos.cache_write_faults");
}

bool ChaosEngine::drop_rename(std::string_view site) {
  if (!enabled()) return false;
  return decide(site, spec().cache_tmp, "chaos.cache_stale_tmps");
}

bool ChaosEngine::stall_shard(std::string_view site) {
  if (!enabled()) return false;
  return decide(site, spec().shard_stall, "chaos.shard_stalls");
}

bool ChaosEngine::flood_ingest(std::string_view site) {
  if (!enabled()) return false;
  return decide(site, spec().ingest_flood, "chaos.ingest_floods");
}

bool ChaosEngine::fail_journal(std::string_view site) {
  if (!enabled()) return false;
  return decide(site, spec().journal_fail, "chaos.journal_faults");
}

bool ChaosEngine::fail_disk(std::string_view site) {
  if (!enabled()) return false;
  return decide(site, spec().disk_full, "chaos.disk_full_faults");
}

bool ChaosEngine::corrupt_pool(std::string_view site) {
  if (!enabled()) return false;
  return decide(site, spec().pool_corrupt, "chaos.pool_corruptions");
}

bool ChaosEngine::crash_now(std::string_view site) {
  if (!enabled()) return false;
  std::uint64_t arrival = 0;
  std::uint64_t crash_after = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spec_.crash_site.empty() || site != spec_.crash_site) return false;
    crash_after = spec_.crash_after;
    arrival = ++site_counters_[std::string("crash.").append(site)];
  }
  if (arrival != crash_after) return false;
  injected_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::global().counter("chaos.crash_points").add(1);
  return true;
}

bool ChaosEngine::fire_indexed(std::string_view site, std::uint64_t index) const {
  if (!enabled()) return false;
  return fire_indexed(site, index, spec().stage_fail, "chaos.point_faults");
}

bool ChaosEngine::fire_indexed(std::string_view site, std::uint64_t index,
                               double probability, const char* counter_name) const {
  if (!enabled() || probability <= 0.0) return false;
  std::uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seed = spec_.seed;
  }
  Rng rng(derive_stream(hash_combine(seed, stable_hash64(site)), index));
  const bool fire = rng.uniform() < probability;
  if (fire) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter(counter_name).add(1);
  }
  return fire;
}

}  // namespace socrates
