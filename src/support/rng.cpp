#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace socrates {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
  has_spare_normal_ = false;
  spare_normal_ = 0.0;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 bits of mantissa, uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SOCRATES_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SOCRATES_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  has_spare_normal_ = true;
  return u * mul;
}

double Rng::normal(double mean, double stddev) {
  SOCRATES_REQUIRE(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal_factor(double sigma) {
  SOCRATES_REQUIRE(sigma >= 0.0);
  if (sigma == 0.0) return 1.0;
  return std::exp(normal(0.0, sigma));
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) {
  SOCRATES_REQUIRE(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    SOCRATES_REQUIRE_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  SOCRATES_REQUIRE_MSG(total > 0.0, "all weights are zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack: fall back to the last entry
}

}  // namespace socrates
