// Descriptive statistics used by the monitors, the DSE engine and the
// figure-reproduction benches (boxplots in Figure 3 of the paper).
#pragma once

#include <cstddef>
#include <vector>

namespace socrates {

/// Welford-style running statistics over a stream of doubles.
/// Numerically stable; O(1) per observation, O(1) state.
class RunningStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Mean of the observations.  Requires count() > 0.
  double mean() const;
  /// Unbiased sample variance.  Returns 0 for fewer than two samples.
  double variance() const;
  /// sqrt(variance()).
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolated quantile (type-7, the R/NumPy default).
/// `q` must lie in [0, 1]; `sorted` must be non-empty and ascending.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Convenience: copies, sorts, then calls quantile_sorted.
double quantile(std::vector<double> values, double q);

/// Median absolute deviation is not needed; the boxplot summary is.
/// Five-number boxplot summary with Tukey 1.5*IQR whiskers.
struct BoxplotSummary {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_low = 0.0;   ///< smallest sample >= q1 - 1.5*IQR
  double whisker_high = 0.0;  ///< largest sample <= q3 + 1.5*IQR
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
  std::size_t n_outliers = 0;  ///< samples outside the whiskers
};

/// Computes the summary.  `values` must be non-empty.
BoxplotSummary boxplot_summary(std::vector<double> values);

/// Divides every element by `denom` (> 0).  Used to normalize the
/// Pareto-set metric distributions in the Figure 3 reproduction.
std::vector<double> normalized_by(const std::vector<double>& values, double denom);

/// Arithmetic mean of a non-empty vector.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation of a vector (0 when n < 2).
double stddev_of(const std::vector<double>& values);

/// Geometric mean of a non-empty vector of positive values.
double geometric_mean_of(const std::vector<double>& values);

}  // namespace socrates
