// Exact-round-trip double formatting for text artifacts.
//
// Artifact payloads (trained COBAYN models, DSE profiles, the server
// knowledge pool) are whitespace-separated text; doubles are written as
// C99-style hexfloats and read back exactly — the determinism contract
// requires byte-identical reload.  Both directions run through
// to_chars/from_chars rather than snprintf("%a")/strtod: the printf
// family spells the radix point per the global C locale, so a program
// that (or whose host library) calls setlocale() would write artifacts
// no other machine could read.  The "0x" prefix is kept on output so
// existing artifacts and new ones share one shape, and the parser
// accepts both prefixed and bare mantissas.
#pragma once

#include <charconv>
#include <cmath>
#include <istream>
#include <string>
#include <string_view>

#include "support/error.hpp"

namespace socrates {

inline std::string format_exact(double v) {
  char buf[48];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::hex);
  std::string out(buf, res.ptr);
  if (std::isfinite(v)) out.insert(out.front() == '-' ? 1 : 0, "0x");
  return out;
}

inline double parse_exact_text(std::string_view token) {
  SOCRATES_REQUIRE_MSG(!token.empty(), "truncated artifact: missing double");
  std::string_view body = token;
  bool negative = false;
  if (body.front() == '+' || body.front() == '-') {
    negative = body.front() == '-';
    body.remove_prefix(1);
  }
  if (body.size() >= 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X'))
    body.remove_prefix(2);
  double v = 0.0;
  const auto res =
      std::from_chars(body.data(), body.data() + body.size(), v,
                      std::chars_format::hex);
  SOCRATES_REQUIRE_MSG(res.ec == std::errc{} && res.ptr == body.data() + body.size(),
                       "malformed double in artifact");
  return negative ? -v : v;
}

inline double parse_exact(std::istream& in) {
  std::string token;
  in >> token;
  SOCRATES_REQUIRE_MSG(in && !token.empty(), "truncated artifact: missing double");
  return parse_exact_text(token);
}

}  // namespace socrates
