// Exact-round-trip double formatting for text artifacts.
//
// Artifact payloads (trained COBAYN models, DSE profiles) are
// whitespace-separated text; doubles are written as C99 hexfloats
// ("%a") and read back with strtod, which reproduces the bit pattern
// exactly — the determinism contract requires byte-identical reload.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <string>

#include "support/error.hpp"

namespace socrates {

inline std::string format_exact(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

inline double parse_exact(std::istream& in) {
  std::string token;
  in >> token;
  SOCRATES_REQUIRE_MSG(in && !token.empty(), "truncated artifact: missing double");
  const char* begin = token.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  SOCRATES_REQUIRE_MSG(end == begin + token.size(), "malformed double in artifact");
  return v;
}

}  // namespace socrates
