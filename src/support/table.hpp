// Column-aligned plain-text tables.
//
// Every bench binary reproduces a table or a figure of the paper by
// printing rows; this formatter keeps that output aligned and uniform.
#pragma once

#include <string>
#include <vector>

namespace socrates {

/// Per-column alignment.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, add rows, render to string.
class TextTable {
 public:
  /// Creates a table with the given column headers, all right-aligned
  /// except the first (typically a row label).
  explicit TextTable(std::vector<std::string> headers);

  /// Overrides the alignment of column `col`.
  void set_align(std::size_t col, Align align);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with two spaces between columns and a header underline.
  std::string str() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace socrates
