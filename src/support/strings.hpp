// Small string helpers shared by the lexer, the weaver and the
// table-printing code.  Header-only free functions, no global state.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace socrates {

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any whitespace run, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Strips leading / trailing whitespace.
std::string trim(std::string_view text);

/// Joins with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// True if `text` contains `needle`.
bool contains(std::string_view text, std::string_view needle);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string text, std::string_view from, std::string_view to);

/// Formats a double with `decimals` digits after the point.
std::string format_double(double value, int decimals);

/// Repeats `unit` `count` times (used for indentation).
std::string repeated(std::string_view unit, std::size_t count);

}  // namespace socrates
