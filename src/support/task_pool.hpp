// Deterministic fixed-size task executor.
//
// The staged pipeline fans independent work items (DSE design points,
// corpus kernels, weave units) out to a fixed set of worker threads.
// Determinism is the cornerstone: every item writes only to its own
// result slot and derives any randomness from (master_seed, item index)
// via derive_stream(), so the output is bit-identical to a serial run
// at any job count — see docs/PIPELINE.md for the contract.
//
// The pool size comes from the SOCRATES_JOBS environment variable (or
// an explicit constructor argument); jobs == 1 spawns no threads and
// runs everything inline, which is the graceful serial fallback.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace socrates {

class TaskPool {
 public:
  /// `jobs` == 0 picks default_jobs().  `jobs` == 1 creates no worker
  /// threads at all: every parallel_for degrades to a plain serial loop
  /// on the calling thread.
  explicit TaskPool(std::size_t jobs = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Runs body(i) for every i in [0, n), each exactly once, and blocks
  /// until all completed.  The first exception any body throws is
  /// rethrown on the caller after the barrier (remaining indices still
  /// run).  Nested calls from inside a body run serially inline, so
  /// composed parallel stages cannot deadlock the pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// SOCRATES_JOBS when set (>= 1, capped at 256); otherwise the
  /// hardware concurrency; 1 when neither is available.
  static std::size_t default_jobs();

  /// Process-wide pool sized by default_jobs(), created on first use.
  static TaskPool& shared();

 private:
  /// One parallel_for invocation.  Heap-allocated and shared with the
  /// workers so a late-waking worker can never claim indices from a
  /// newer job: each job owns its claim counter.
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::size_t remaining = 0;  ///< guarded by the pool mutex
    std::exception_ptr first_error;  ///< guarded by the pool mutex
    std::int64_t submit_us = 0;  ///< tracer timestamp at submission (0 = untraced)
  };

  void worker_loop();
  void run_indices(Job& job);

  std::size_t jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::shared_ptr<Job> job_;  ///< current job, guarded by mu_

  std::mutex job_mu_;  ///< serializes concurrent parallel_for callers
};

}  // namespace socrates
