#include "support/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace socrates {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void record_failure_span(const char* kind, std::int64_t start_us) {
  if (!Tracer::global().enabled()) return;
  TraceEvent event;
  event.name = kind;
  event.category = "supervisor";
  event.lane = Tracer::current_lane();
  event.start_us = start_us;
  event.duration_us = Tracer::global().now_us() - start_us;
  Tracer::global().record(event);
}

}  // namespace

Supervisor::Supervisor(SupervisorPolicy policy)
    : policy_(policy),
      classifier_(&Supervisor::classify_default),
      sleeper_([](double seconds) {
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      }) {
  SOCRATES_REQUIRE(policy_.max_attempts >= 1);
  SOCRATES_REQUIRE(policy_.attempt_deadline_s >= 0.0);
  SOCRATES_REQUIRE(policy_.base_backoff_s >= 0.0);
  SOCRATES_REQUIRE(policy_.max_backoff_s >= policy_.base_backoff_s);
  SOCRATES_REQUIRE(policy_.jitter >= 0.0 && policy_.jitter <= 1.0);
}

void Supervisor::set_classifier(Classifier classifier) {
  SOCRATES_REQUIRE(static_cast<bool>(classifier));
  classifier_ = std::move(classifier);
}

void Supervisor::set_sleeper(Sleeper sleeper) {
  SOCRATES_REQUIRE(static_cast<bool>(sleeper));
  sleeper_ = std::move(sleeper);
}

FailureKind Supervisor::classify_default(const std::exception& error) {
  if (dynamic_cast<const std::logic_error*>(&error) != nullptr)
    return FailureKind::kPermanent;
  return FailureKind::kTransient;
}

double Supervisor::backoff_s(std::string_view stage, std::size_t attempt) const {
  SOCRATES_REQUIRE(attempt >= 1);
  if (policy_.base_backoff_s <= 0.0) return 0.0;
  const std::size_t shift = std::min<std::size_t>(attempt - 1, 32);
  const double exponential =
      std::min(policy_.base_backoff_s * static_cast<double>(std::uint64_t{1} << shift),
               policy_.max_backoff_s);
  if (policy_.jitter <= 0.0) return exponential;
  // Deterministic jitter: the k-th retry of a named stage always picks
  // the same point inside [1 - jitter, 1] x exponential, regardless of
  // job count or scheduling.
  Rng rng(derive_stream(hash_combine(policy_.seed, stable_hash64(stage)), attempt));
  const double factor = 1.0 - policy_.jitter * rng.uniform();
  return exponential * factor;
}

SupervisorReport Supervisor::run_or_report(std::string_view stage,
                                           const std::function<void()>& body,
                                           bool absorb_permanent) {
  SupervisorReport report;
  report.stage = std::string(stage);

  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    report.attempts = attempt;
    const bool traced = Tracer::global().enabled();
    const std::int64_t trace_start_us = traced ? Tracer::global().now_us() : 0;
    const Clock::time_point start = Clock::now();
    try {
      body();
      const double elapsed = seconds_since(start);
      if (policy_.attempt_deadline_s > 0.0 && elapsed > policy_.attempt_deadline_s) {
        // The watchdog caught a wedged attempt: the result arrived so
        // late it must not be trusted over a retry's.
        report.timed_out = true;
        report.last_error = "attempt exceeded its deadline";
        MetricsRegistry::global().counter("supervisor.timeouts").add(1);
        record_failure_span("timeout", trace_start_us);
        log_warn() << "supervisor: stage " << stage << " attempt " << attempt
                   << " took " << elapsed << " s (deadline "
                   << policy_.attempt_deadline_s << " s)";
      } else {
        report.succeeded = true;
        report.last_error.clear();
        return report;
      }
    } catch (const std::exception& e) {
      const FailureKind kind = classifier_(e);
      report.last_error = e.what();
      record_failure_span(kind == FailureKind::kPermanent ? "permanent" : "transient",
                          trace_start_us);
      if (kind == FailureKind::kPermanent) {
        MetricsRegistry::global().counter("supervisor.permanent_failures").add(1);
        log_warn() << "supervisor: stage " << stage << " failed permanently: "
                   << e.what();
        if (absorb_permanent) return report;
        throw;
      }
      MetricsRegistry::global().counter("supervisor.transient_failures").add(1);
      log_warn() << "supervisor: stage " << stage << " attempt " << attempt
                 << " failed: " << e.what();
    }

    if (attempt < policy_.max_attempts) {
      MetricsRegistry::global().counter("supervisor.retries").add(1);
      const double backoff = backoff_s(stage, attempt);
      report.backoff_total_s += backoff;
      if (backoff > 0.0) sleeper_(backoff);
    }
  }

  MetricsRegistry::global().counter("supervisor.exhausted").add(1);
  return report;
}

SupervisorReport Supervisor::run(std::string_view stage,
                                 const std::function<void()>& body) {
  // Re-running the body to rethrow would repeat side effects; capture
  // the last transient error instead and rethrow it on exhaustion.
  std::exception_ptr last_error;
  const auto capturing_body = [&] {
    try {
      body();
    } catch (...) {
      last_error = std::current_exception();
      throw;
    }
  };
  SupervisorReport report = run_or_report(stage, capturing_body);
  if (!report.succeeded) {
    if (last_error) std::rethrow_exception(last_error);
    throw Error("supervisor: stage " + report.stage + " exhausted " +
                std::to_string(report.attempts) + " attempts (" + report.last_error +
                ")");
  }
  return report;
}

}  // namespace socrates
