// Stable 64-bit content hashing.
//
// Artifact-cache keys and per-task RNG stream derivation both need a
// hash that is identical across platforms, processes and compiler
// versions — std::hash guarantees none of that.  Hasher is FNV-1a over
// a byte stream with an explicit little-endian encoding of integers and
// the IEEE-754 bit pattern of doubles, so a key computed today matches
// a key stored on disk by an earlier run on any machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace socrates {

/// Incremental FNV-1a (64-bit) hasher over typed fields.  Strings are
/// length-prefixed so consecutive adds never alias ("ab","c" != "a","bc").
class Hasher {
 public:
  Hasher& add_bytes(const void* data, std::size_t size);
  Hasher& add(std::string_view text);
  Hasher& add(std::uint64_t value);
  Hasher& add(std::int64_t value);
  Hasher& add(double value);  ///< IEEE-754 bit pattern, exact

  std::uint64_t digest() const { return state_; }
  /// 16 lowercase hex digits of digest().
  std::string hex() const;
  /// Bytes consumed so far (integers/doubles count 8, strings their
  /// length plus the 8-byte prefix) — feeds the bytes-hashed metric.
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t bytes_ = 0;
};

/// One-shot FNV-1a of a byte string.
std::uint64_t stable_hash64(std::string_view bytes);

/// Mixes two 64-bit values into a well-distributed third (splitmix64
/// finalizer over the combination) — order-sensitive.
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// Seed of the `index`-th RNG substream of `master_seed`.  Every
/// parallel task derives its own stream this way, so the task schedule
/// cannot influence the numbers any task draws (the determinism
/// contract of docs/PIPELINE.md).
std::uint64_t derive_stream(std::uint64_t master_seed, std::uint64_t index);

}  // namespace socrates
