// A single aligned heap block with bump allocation.
//
// Backs the structure-of-arrays knowledge-base geometry: every column
// (per-metric means, per-metric stddevs, the flat knob block) lives in
// one contiguous allocation, each sub-block starting on a cache-line /
// SIMD-lane boundary so the branchless decision sweeps stream over
// aligned doubles.  The arena is move-only: owners that need copies
// (KnowledgeBase) re-allocate and re-pack, because a raw byte copy
// would not fix up the typed pointers previously handed out.
#pragma once

#include <cstddef>
#include <new>

#include "support/error.hpp"

namespace socrates::support {

class Arena {
 public:
  static constexpr std::size_t kAlignment = 64;

  Arena() = default;

  explicit Arena(std::size_t bytes) : capacity_(round_up(bytes)) {
    if (capacity_ > 0)
      block_ = static_cast<std::byte*>(
          ::operator new(capacity_, std::align_val_t{kAlignment}));
  }

  Arena(Arena&& other) noexcept
      : block_(other.block_), capacity_(other.capacity_), used_(other.used_) {
    other.block_ = nullptr;
    other.capacity_ = 0;
    other.used_ = 0;
  }

  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      release();
      block_ = other.block_;
      capacity_ = other.capacity_;
      used_ = other.used_;
      other.block_ = nullptr;
      other.capacity_ = 0;
      other.used_ = 0;
    }
    return *this;
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() { release(); }

  /// Carves out `count` default-initialized T slots, starting on a
  /// kAlignment boundary.  The arena never grows: callers size it up
  /// front (see bytes_for) and rebuild into a fresh arena to expand.
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(alignof(T) <= kAlignment);
    const std::size_t bytes = round_up(count * sizeof(T));
    SOCRATES_REQUIRE_MSG(used_ + bytes <= capacity_,
                         "arena overflow: " << used_ << "+" << bytes << " > "
                                            << capacity_);
    T* out = reinterpret_cast<T*>(block_ + used_);
    used_ += bytes;
    return out;
  }

  /// Bytes to reserve so `counts_in_bytes` individually aligned blocks
  /// all fit (each block is padded up to the alignment boundary).
  template <typename... Sizes>
  static std::size_t bytes_for(Sizes... counts_in_bytes) {
    return (round_up(static_cast<std::size_t>(counts_in_bytes)) + ... + 0u);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

 private:
  static constexpr std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) / kAlignment * kAlignment;
  }

  void release() {
    if (block_ != nullptr)
      ::operator delete(block_, std::align_val_t{kAlignment});
    block_ = nullptr;
  }

  std::byte* block_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace socrates::support
