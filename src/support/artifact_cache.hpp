// Content-keyed artifact cache: in-memory tier plus an optional
// on-disk tier shared across processes.
//
// Pipeline stages store their products (a trained COBAYN model, a
// profiled design space) under a 64-bit content key computed from every
// input that can change the product — source text, options, seeds,
// platform constants and a stage version (see docs/PIPELINE.md).  A
// second build with the same inputs loads the artifact instead of
// recomputing it; a bench binary started later finds the artifacts of
// an earlier one through the disk tier.
//
// The cache is defensive by construction: a corrupted, truncated or
// hand-edited disk file fails its checksum and is treated as a miss
// (the stage recomputes), never as an error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace socrates {

class ArtifactCache {
 public:
  /// `disk_dir` empty -> memory-only.  The directory is created on the
  /// first store.  When the directory already exists, construction
  /// sweeps stale `*.tmp.<pid>` files a killed writer left behind (a
  /// crash between the temp write and the rename) — they can never be
  /// published, so they are deleted and counted in swept_tmp_files().
  explicit ArtifactCache(std::string disk_dir = "");

  /// The payload stored under `key`, or nullopt.  `label` is the
  /// human-readable artifact family ("cobayn-model", "dse-profile");
  /// it namespaces the disk file name but not the key.
  std::optional<std::string> load(std::uint64_t key, std::string_view label);

  /// Stores `payload` under `key` in memory and, when configured, on
  /// disk (written to a temp file and renamed, so concurrent readers
  /// never see a half-written artifact).
  void store(std::uint64_t key, std::string_view label, std::string_view payload);

  struct Stats {
    std::size_t memory_hits = 0;
    std::size_t disk_hits = 0;
    std::size_t misses = 0;
    std::size_t stores = 0;
    std::size_t swept_tmp_files = 0;  ///< stale temp files removed at construction
  };
  Stats stats() const;

  /// Drops the in-memory tier (disk files stay).  Tests use this to
  /// exercise the disk path.
  void clear_memory();

  const std::string& disk_dir() const { return dir_; }

  /// Process-wide cache: disk tier rooted at $SOCRATES_CACHE_DIR when
  /// the variable is set, memory-only otherwise.
  static ArtifactCache& global();

 private:
  std::string file_path(std::uint64_t key, std::string_view label) const;

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::string> memory_;
  Stats stats_;
  std::string dir_;
};

}  // namespace socrates
