// Shared, hardened environment-variable parsing.
//
// Every knob the library reads from the environment (SOCRATES_JOBS,
// SOCRATES_CACHE_DIR, SOCRATES_TRACE, SOCRATES_CHAOS, the
// SOCRATES_SERVER_* family) goes through these helpers instead of
// ad-hoc strtoul calls: a non-numeric, negative or absurd value is
// *clamped* to the documented range with a single logged warning per
// variable — never silently misparsed into "0 jobs" or a surprise
// fallback.  Tests can exercise the parsers directly (they take the
// value, not the variable) and the warn-once registry can be reset.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace socrates::env {

/// Raw getenv: nullopt when unset, the (possibly empty) value otherwise.
std::optional<std::string> raw(const char* name);

/// Parses `name` as a size in [lo, hi].  Unset or empty -> `fallback`.
/// Non-numeric, trailing garbage, negative or out-of-range values clamp
/// to the nearest bound (non-numeric clamps to `fallback`) and emit one
/// warning per variable name for the process lifetime.
std::size_t size_or(const char* name, std::size_t fallback, std::size_t lo,
                    std::size_t hi);

/// Parses a size value the same way size_or parses an environment
/// variable; `name` only labels the warning.  Exposed for tests.
std::size_t parse_size(const char* name, const std::string& value,
                       std::size_t fallback, std::size_t lo, std::size_t hi);

/// Parses `name` as a real number in [lo, hi] (e.g. a subset fraction).
/// Unset or empty -> `fallback`.  Non-numeric or non-finite values warn
/// once and fall back; out-of-range values clamp to the nearest bound.
double real_or(const char* name, double fallback, double lo, double hi);

/// Value-level worker behind real_or; `name` only labels the warning.
/// Exposed for tests.
double parse_real(const char* name, const std::string& value, double fallback,
                  double lo, double hi);

/// The variable's value, or `fallback` when unset.
std::string string_or(const char* name, std::string fallback);

/// Parses `name` as one of `choices` (exact, case-sensitive match —
/// e.g. a backpressure policy "block" / "drop-oldest" / "reject").
/// Unset or empty -> `fallback`; any other value warns once and falls
/// back.  `fallback` must itself be one of the choices.
std::string choice_or(const char* name, const std::string& fallback,
                      const std::vector<std::string>& choices);

/// Value-level worker behind choice_or; `name` only labels the warning.
/// Exposed for tests.
std::string parse_choice(const char* name, const std::string& value,
                         const std::string& fallback,
                         const std::vector<std::string>& choices);

/// True when the variable is set to anything but "" or "0".
bool flag(const char* name);

/// Like flag(), but an unset or empty variable yields `fallback`
/// instead of false — for features that default *on* and are disabled
/// with NAME=0 (e.g. SOCRATES_SERVER_SHARE_KNOWLEDGE).
bool flag_or(const char* name, bool fallback);

/// Forgets which variables have already warned (tests only).
void reset_warnings();

}  // namespace socrates::env
