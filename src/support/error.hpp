// Contract-checking helpers used across the SOCRATES code base.
//
// The library favours wide, checked interfaces: violated preconditions
// throw socrates::ContractViolation (a std::logic_error) carrying the
// failed expression and its source location, so misuse is diagnosed at
// the call site instead of corrupting downstream state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace socrates {

/// Thrown when a precondition / postcondition / invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Base class for *runtime* failures the library reports about the
/// outside world (malformed input files, bad environment specs) — as
/// opposed to ContractViolation, which flags caller bugs.  Runtime
/// failures are expected in production and are what the supervisor
/// retries or degrades around.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace socrates

/// Precondition check: throws ContractViolation when `expr` is false.
#define SOCRATES_REQUIRE(expr)                                                \
  do {                                                                        \
    if (!(expr))                                                              \
      ::socrates::detail::contract_fail("Precondition", #expr, __FILE__,      \
                                        __LINE__, "");                        \
  } while (false)

/// Precondition check with an explanatory message (streamed).
#define SOCRATES_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream os_;                                                 \
      os_ << msg;                                                             \
      ::socrates::detail::contract_fail("Precondition", #expr, __FILE__,      \
                                        __LINE__, os_.str());                 \
    }                                                                         \
  } while (false)

/// Internal-invariant check: logic errors inside the library itself.
#define SOCRATES_ENSURE(expr)                                                 \
  do {                                                                        \
    if (!(expr))                                                              \
      ::socrates::detail::contract_fail("Invariant", #expr, __FILE__,         \
                                        __LINE__, "");                        \
  } while (false)
