#include "support/env.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <set>

#include "support/bench_json.hpp"
#include "support/log.hpp"

namespace socrates::env {

namespace {

std::mutex g_warned_mu;
std::set<std::string>& warned_set() {
  static std::set<std::string> kWarned;
  return kWarned;
}

/// True the first time `name` warns in this process.
bool first_warning(const char* name) {
  std::lock_guard<std::mutex> lock(g_warned_mu);
  return warned_set().insert(name).second;
}

void warn_once(const char* name, const std::string& value, const std::string& why,
               std::size_t used) {
  if (!first_warning(name)) return;
  log_warn() << name << "='" << value << "' " << why << "; using " << used;
}

void warn_once_real(const char* name, const std::string& value, const std::string& why,
                    double used) {
  if (!first_warning(name)) return;
  log_warn() << name << "='" << value << "' " << why << "; using " << used;
}

}  // namespace

std::optional<std::string> raw(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::size_t parse_size(const char* name, const std::string& value,
                       std::size_t fallback, std::size_t lo, std::size_t hi) {
  if (value.empty()) return fallback;
  const char* text = value.c_str();
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    warn_once(name, value, "is not a number", fallback);
    return fallback;
  }
  if (parsed < 0 || static_cast<unsigned long long>(parsed) < lo) {
    warn_once(name, value, "is below the minimum", lo);
    return lo;
  }
  if (errno == ERANGE || static_cast<unsigned long long>(parsed) > hi) {
    warn_once(name, value, "exceeds the maximum", hi);
    return hi;
  }
  return static_cast<std::size_t>(parsed);
}

std::size_t size_or(const char* name, std::size_t fallback, std::size_t lo,
                    std::size_t hi) {
  const auto value = raw(name);
  if (!value) return fallback;
  return parse_size(name, *value, fallback, lo, hi);
}

double parse_real(const char* name, const std::string& value, double fallback,
                  double lo, double hi) {
  if (value.empty()) return fallback;
  // Strict locale-independent grammar, not strtod: under a
  // comma-decimal locale strtod reads "0.25" as 0, silently changing
  // every real-valued knob.
  const auto strict = parse_strict_double(value);
  if (!strict || !std::isfinite(*strict)) {
    warn_once_real(name, value, "is not a finite number", fallback);
    return fallback;
  }
  const double parsed = *strict;
  if (parsed < lo) {
    warn_once_real(name, value, "is below the minimum", lo);
    return lo;
  }
  if (parsed > hi) {
    warn_once_real(name, value, "exceeds the maximum", hi);
    return hi;
  }
  return parsed;
}

double real_or(const char* name, double fallback, double lo, double hi) {
  const auto value = raw(name);
  if (!value) return fallback;
  return parse_real(name, *value, fallback, lo, hi);
}

std::string string_or(const char* name, std::string fallback) {
  const auto value = raw(name);
  return value ? *value : std::move(fallback);
}

std::string parse_choice(const char* name, const std::string& value,
                         const std::string& fallback,
                         const std::vector<std::string>& choices) {
  if (value.empty()) return fallback;
  for (const auto& choice : choices)
    if (value == choice) return choice;
  if (first_warning(name)) {
    std::string allowed;
    for (const auto& choice : choices) {
      if (!allowed.empty()) allowed += '/';
      allowed += choice;
    }
    log_warn() << name << "='" << value << "' is not one of " << allowed
               << "; using " << fallback;
  }
  return fallback;
}

std::string choice_or(const char* name, const std::string& fallback,
                      const std::vector<std::string>& choices) {
  const auto value = raw(name);
  if (!value) return fallback;
  return parse_choice(name, *value, fallback, choices);
}

bool flag(const char* name) {
  const auto value = raw(name);
  return value && !value->empty() && *value != "0";
}

bool flag_or(const char* name, bool fallback) {
  const auto value = raw(name);
  if (!value || value->empty()) return fallback;
  return *value != "0";
}

void reset_warnings() {
  std::lock_guard<std::mutex> lock(g_warned_mu);
  warned_set().clear();
}

}  // namespace socrates::env
