#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SOCRATES_REQUIRE(!headers_.empty());
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t col, Align align) {
  SOCRATES_REQUIRE(col < aligns_.size());
  aligns_[col] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  SOCRATES_REQUIRE_MSG(cells.size() == headers_.size(),
                       "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  const auto render_cell = [&](const std::string& text, std::size_t c) {
    const std::size_t pad = widths[c] - text.size();
    if (aligns_[c] == Align::kLeft) return text + repeated(" ", pad);
    return repeated(" ", pad) + text;
  };

  std::size_t total = 2 * (headers_.size() - 1);
  for (const std::size_t w : widths) total += w;

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "  ";
    os << render_cell(headers_[c], c);
  }
  os << '\n' << repeated("-", total) << '\n';
  for (const Row& row : rows_) {
    if (row.separator) {
      os << repeated("-", total) << '\n';
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c > 0) os << "  ";
      os << render_cell(row.cells[c], c);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace socrates
