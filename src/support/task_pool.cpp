#include "support/task_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace socrates {

namespace {

/// True while the current thread is executing a pool body; nested
/// parallel_for calls detect this and run inline.
thread_local bool tls_inside_pool_body = false;

Counter& tasks_counter() {
  static Counter& counter = MetricsRegistry::global().counter("taskpool.tasks");
  return counter;
}

}  // namespace

TaskPool::TaskPool(std::size_t jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {
  SOCRATES_ENSURE(jobs_ >= 1);
  for (std::size_t w = 0; w + 1 < jobs_; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t TaskPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : hw;
  // Hardened parsing: non-numeric falls back to the hardware, negative
  // or zero clamps to 1, absurd values clamp to 256 — one warning each.
  return env::size_or("SOCRATES_JOBS", fallback, 1, 256);
}

TaskPool& TaskPool::shared() {
  static TaskPool kPool;
  return kPool;
}

void TaskPool::run_indices(Job& job) {
  const bool was_inside = tls_inside_pool_body;
  tls_inside_pool_body = true;
  std::size_t completed_here = 0;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    tasks_counter().add(1);
    TraceSpan span("task", "taskpool");
    if (span.active())
      span.set_arg("queue_wait_us", Tracer::global().now_us() - job.submit_us);
    try {
      (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job.first_error) job.first_error = std::current_exception();
    }
    ++completed_here;
  }
  tls_inside_pool_body = was_inside;
  if (completed_here > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    job.remaining -= completed_here;
    if (job.remaining == 0) work_done_.notify_all();
  }
}

void TaskPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    // A job whose indices are exhausted yields no claims; the claim
    // counter lives in the job itself, so a stale wake-up is harmless.
    if (job) run_indices(*job);
  }
}

void TaskPool::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1 || tls_inside_pool_body) {
    // Serial fallback: same per-index code, same per-index RNG streams,
    // therefore the same result as the parallel path.  The exception
    // contract also matches: remaining indices still run, the first
    // exception is rethrown after the loop.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      tasks_counter().add(1);
      TraceSpan span("task", "taskpool");
      if (span.active()) span.set_arg("queue_wait_us", 0);
      try {
        body(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  std::lock_guard<std::mutex> job_lock(job_mu_);
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->n = n;
  job->remaining = n;
  if (Tracer::global().enabled()) job->submit_us = Tracer::global().now_us();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_ready_.notify_all();
  run_indices(*job);  // the caller participates too

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] { return job->remaining == 0; });
    if (job_ == job) job_.reset();
    error = job->first_error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace socrates
