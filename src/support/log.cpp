#include "support/log.hpp"

#include <iostream>

namespace socrates {

namespace {

LogLevel g_level = LogLevel::kWarn;
std::ostream* g_sink = nullptr;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info ";
    case LogLevel::kWarn:  return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff:   return "off  ";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }
void Log::set_sink(std::ostream* sink) { g_sink = sink; }

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::ostream& os = g_sink != nullptr ? *g_sink : std::cerr;
  os << "[socrates:" << level_tag(level) << "] " << message << '\n';
}

}  // namespace socrates
