#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace socrates {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<std::ostream*> g_sink{nullptr};
std::mutex g_write_mu;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info ";
    case LogLevel::kWarn:  return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff:   return "off  ";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }

bool Log::enabled(LogLevel level) {
  return level >= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}
void Log::set_sink(std::ostream* sink) { g_sink = sink; }

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  // Task-pool workers may log concurrently; serialize whole lines so
  // interleaved messages stay readable.
  std::lock_guard<std::mutex> lock(g_write_mu);
  std::ostream* sink = g_sink.load(std::memory_order_acquire);
  std::ostream& os = sink != nullptr ? *sink : std::cerr;
  os << "[socrates:" << level_tag(level) << "] " << message << '\n';
}

}  // namespace socrates
