#include "cobayn/cobayn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/serialize.hpp"
#include "ir/parser.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace socrates::cobayn {

namespace {

using platform::FlagConfig;
using platform::OptLevel;

/// Query-variable layout inside the network, after the feature nodes:
/// [level, flag0..flag5].  The mixed-radix posterior index therefore
/// has `level` as its most significant bit.
constexpr std::size_t kFlagVars = 1 + platform::kFlagCount;

FlagConfig combo_to_config(std::size_t combo) {
  const unsigned bits = static_cast<unsigned>(combo) & ((1u << platform::kFlagCount) - 1);
  const bool o3 = (combo >> platform::kFlagCount) != 0;
  return FlagConfig(o3 ? OptLevel::kO3 : OptLevel::kO2, bits);
}

std::size_t config_to_combo(const FlagConfig& config) {
  SOCRATES_REQUIRE(config.level() == OptLevel::kO2 || config.level() == OptLevel::kO3);
  const std::size_t level_bit = config.level() == OptLevel::kO3 ? 1 : 0;
  return (level_bit << platform::kFlagCount) | config.flag_bits();
}

}  // namespace

features::FeatureVector kernel_features_of_source(const std::string& source) {
  const ir::TranslationUnit tu = ir::parse(source);
  const auto kernels = features::extract_kernel_features(tu);
  SOCRATES_REQUIRE_MSG(!kernels.empty(), "source has no kernel_* function");
  return kernels.front().second;
}

const std::vector<std::size_t>& CobaynModel::model_feature_indices() {
  using namespace features;
  static const std::vector<std::size_t> kIndices = {
      kNumLoops,     kMaxLoopDepth,     kNumIfs,          kNumCalls,
      kNumArrayAccesses, kAvgLoopBodyStmts, kArithIntensity, kFloatOpRatio,
  };
  return kIndices;
}

std::vector<double> CobaynModel::project_features(const features::FeatureVector& fv) const {
  std::vector<double> row;
  row.reserve(model_feature_indices().size());
  for (const std::size_t idx : model_feature_indices()) row.push_back(fv[idx]);
  return row;
}

CobaynModel CobaynModel::train(const std::vector<TrainingKernel>& corpus,
                               const platform::PerformanceModel& platform,
                               const TrainOptions& options) {
  SOCRATES_REQUIRE_MSG(corpus.size() >= 4, "corpus too small: " << corpus.size());
  SOCRATES_REQUIRE(options.good_share > 0.0 && options.good_share <= 1.0);

  CobaynModel model;
  TaskPool& executor = options.pool != nullptr ? *options.pool : TaskPool::shared();
  TraceSpan train_span("cobayn-train", "cobayn");
  train_span.set_arg("corpus", static_cast<std::int64_t>(corpus.size()));

  // ---- feature extraction + discretizer fit ---------------------------
  // Each kernel's parse + feature extraction is independent; every task
  // writes only its own row, so the result matches the serial loop.
  std::vector<std::vector<double>> feature_rows(corpus.size());
  executor.parallel_for(corpus.size(), [&](std::size_t ki) {
    const auto fv = kernel_features_of_source(corpus[ki].source);
    feature_rows[ki] = model.project_features(fv);
  });
  model.discretizer_.fit(feature_rows, options.feature_bins);

  // ---- iterative compilation: label good configurations ----------------
  // The 128-configuration sweep per kernel is deterministic (no noise
  // stream), so kernels can be labelled in parallel into per-kernel
  // slots; rows are then appended serially in corpus order, which keeps
  // the dataset byte-identical at any job count.
  const auto space = platform::cobayn_search_space();
  std::vector<std::vector<bayes::FullAssignment>> kernel_rows(corpus.size());
  executor.parallel_for(corpus.size(), [&](std::size_t ki) {
    TraceSpan span("cobayn-label", "cobayn");
    span.set_arg("kernel", static_cast<std::int64_t>(ki));
    platform::Configuration run_config;
    run_config.threads = options.profile_threads;
    run_config.binding = platform::BindingPolicy::kClose;

    std::vector<std::pair<double, std::size_t>> timed;  // (exec time, combo)
    timed.reserve(space.size());
    for (const auto& flags : space) {
      run_config.flags = flags;
      const auto m = platform.evaluate(corpus[ki].params, run_config);
      timed.emplace_back(m.exec_time_s, config_to_combo(flags));
    }
    std::sort(timed.begin(), timed.end());
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(options.good_share *
                                              static_cast<double>(timed.size()))));

    const auto binned = model.discretizer_.transform_row(feature_rows[ki]);
    kernel_rows[ki].reserve(keep);
    for (std::size_t g = 0; g < keep; ++g) {
      bayes::FullAssignment row;
      row.reserve(binned.size() + kFlagVars);
      for (const std::size_t b : binned) row.push_back(b);
      const std::size_t combo = timed[g].second;
      row.push_back(combo >> platform::kFlagCount);  // level bit
      for (std::size_t f = 0; f < platform::kFlagCount; ++f)
        row.push_back((combo >> (platform::kFlagCount - 1 - f)) & 1u);
      kernel_rows[ki].push_back(std::move(row));
    }
  });
  bayes::Dataset data;
  for (auto& rows : kernel_rows)
    for (auto& row : rows) data.push_back(std::move(row));
  model.training_rows_ = data.size();

  // ---- structure + parameter learning ----------------------------------
  std::vector<bayes::Variable> vars;
  const auto& findices = model_feature_indices();
  for (std::size_t i = 0; i < findices.size(); ++i) {
    vars.push_back(bayes::Variable{"f_" + features::FeatureVector::names()[findices[i]],
                                   model.discretizer_.cardinality(i)});
  }
  vars.push_back(bayes::Variable{"opt_level", 2});
  // Flag variable order mirrors the mixed-radix posterior layout: the
  // f-th flag node holds combo bit (kFlagCount-1-f), so the posterior
  // index over [level, flags...] equals the combo encoding directly.
  for (std::size_t f = 0; f < platform::kFlagCount; ++f) {
    const auto flag = static_cast<platform::Flag>(platform::kFlagCount - 1 - f);
    vars.push_back(bayes::Variable{platform::flag_spelling(flag), 2});
  }

  std::vector<std::size_t> order(vars.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;  // features first

  model.net_.push_back(bayes::k2_search(vars, data, order, options.k2));
  log_info() << "COBAYN trained: " << data.size() << " rows, "
             << model.net_.front().parameter_count() << " parameters";
  return model;
}

const bayes::BayesNet& CobaynModel::network() const {
  SOCRATES_REQUIRE_MSG(!net_.empty(), "model is not trained");
  return net_.front();
}

void CobaynModel::save(std::ostream& out) const {
  out << "cobayn v1 " << training_rows_ << ' ' << net_.size() << '\n';
  discretizer_.save(out);
  if (!net_.empty()) net_.front().save(out);
}

CobaynModel CobaynModel::load(std::istream& in) {
  std::string magic, version;
  std::size_t rows = 0, nets = 0;
  in >> magic >> version >> rows >> nets;
  SOCRATES_REQUIRE_MSG(in && magic == "cobayn" && version == "v1" && nets <= 1,
                       "not a cobayn artifact");
  CobaynModel model;
  model.training_rows_ = rows;
  model.discretizer_ = bayes::Discretizer::load(in);
  if (nets == 1) model.net_.push_back(bayes::BayesNet::load(in));
  return model;
}

std::vector<double> CobaynModel::posterior_for(const features::FeatureVector& fv) const {
  // Degenerate-model guards: a loaded artifact can carry zero training
  // rows (empty corpus upstream), and a hostile feature vector can hold
  // NaN/Inf — the discretizer's clamping comparisons are all false for
  // NaN, so the row would silently land in an arbitrary bin.  Both get
  // named errors instead of an empty-posterior deref downstream.
  SOCRATES_REQUIRE_MSG(training_rows_ > 0,
                       "cobayn: model has zero training rows, cannot predict");
  const bayes::BayesNet& net = network();

  const auto projected = project_features(fv);
  for (std::size_t i = 0; i < projected.size(); ++i) {
    SOCRATES_REQUIRE_MSG(
        std::isfinite(projected[i]),
        "cobayn: non-finite feature 'f_"
            << features::FeatureVector::names()[model_feature_indices()[i]]
            << "' in prediction query");
  }
  const auto binned = discretizer_.transform_row(projected);
  const std::size_t n_features = binned.size();

  bayes::Assignment evidence(net.variable_count(), std::nullopt);
  for (std::size_t i = 0; i < n_features; ++i) evidence[i] = binned[i];

  std::vector<std::size_t> query(kFlagVars);
  for (std::size_t i = 0; i < kFlagVars; ++i) query[i] = n_features + i;

  // Mixed-radix posterior with query[0] (= opt level) most significant
  // and each flag a bit below it — i.e. index == combo encoding.
  auto posterior = net.posterior_over(query, evidence);
  SOCRATES_ENSURE(posterior.size() == (std::size_t{2} << platform::kFlagCount));

  // An evidence combination the training data never covered can
  // underflow the log-sum-exp normalization to all-zero (or NaN).
  // Clamp to the uniform prior — "the model knows nothing here" — so
  // ranking and sampling stay well-defined.
  double total = 0.0;
  bool finite = true;
  for (const double p : posterior) {
    if (!std::isfinite(p)) { finite = false; break; }
    total += p;
  }
  if (!finite || !(total > 0.0)) {
    static Counter& degenerate =
        MetricsRegistry::global().counter("cobayn.degenerate_posteriors");
    degenerate.add(1);
    std::fill(posterior.begin(), posterior.end(),
              1.0 / static_cast<double>(posterior.size()));
  }
  return posterior;
}

std::vector<double> CobaynModel::export_posterior(const features::FeatureVector& fv) const {
  static Counter& exports = MetricsRegistry::global().counter("cobayn.prior_exports");
  exports.add(1);
  return posterior_for(fv);
}

std::vector<double> CobaynModel::merge_posterior(const std::vector<double>& a,
                                                 double weight_a,
                                                 const std::vector<double>& b,
                                                 double weight_b) {
  SOCRATES_REQUIRE_MSG(a.size() == b.size(),
                       "cobayn: posterior size mismatch in merge: "
                           << a.size() << " vs " << b.size());
  SOCRATES_REQUIRE_MSG(weight_a >= 0.0 && weight_b >= 0.0 &&
                           weight_a + weight_b > 0.0,
                       "cobayn: merge weights must be non-negative with a "
                       "positive sum");
  std::vector<double> merged(a.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    merged[i] = weight_a * a[i] + weight_b * b[i];
    total += merged[i];
  }
  if (total > 0.0)
    for (double& p : merged) p /= total;
  else
    std::fill(merged.begin(), merged.end(),
              merged.empty() ? 0.0 : 1.0 / static_cast<double>(merged.size()));
  static Counter& merges = MetricsRegistry::global().counter("cobayn.prior_merges");
  merges.add(1);
  return merged;
}

std::vector<platform::FlagConfig> CobaynModel::top_configs(
    const std::vector<double>& posterior, std::size_t n) {
  SOCRATES_REQUIRE_MSG(posterior.size() == (std::size_t{2} << platform::kFlagCount),
                       "cobayn: posterior has " << posterior.size()
                                                << " entries, expected "
                                                << (std::size_t{2} << platform::kFlagCount));
  std::vector<std::size_t> idx(posterior.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return posterior[a] > posterior[b];
  });
  std::vector<platform::FlagConfig> out;
  const std::size_t count = std::min(n, idx.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(combo_to_config(idx[i]));
  return out;
}

std::vector<RankedConfig> CobaynModel::predict(const features::FeatureVector& fv,
                                               std::size_t top_n) const {
  SOCRATES_REQUIRE(top_n >= 1);
  const auto posterior = posterior_for(fv);

  std::vector<std::size_t> idx(posterior.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return posterior[a] > posterior[b];
  });

  std::vector<RankedConfig> out;
  const std::size_t n = std::min(top_n, idx.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(RankedConfig{combo_to_config(idx[i]), posterior[idx[i]]});
  return out;
}

std::vector<platform::FlagConfig> CobaynModel::sample_configs(
    Rng& rng, const features::FeatureVector& fv, std::size_t n) const {
  SOCRATES_REQUIRE_MSG(n >= 1, "cobayn: cannot sample zero configurations");
  // `n` beyond the whole space is clamped — the caller gets every
  // configuration, which is the only sensible reading of "n distinct".
  n = std::min(n, std::size_t{2} << platform::kFlagCount);
  // Reuse the exact posterior and draw without replacement: pick by
  // weight, zero the weight, repeat.  Equivalent to sampling the BN
  // conditioned on the features and rejecting duplicates, but O(n*128).
  auto ranked = predict(fv, std::size_t{2} << platform::kFlagCount);
  std::vector<double> weights(ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) weights[i] = ranked[i].probability;

  std::vector<platform::FlagConfig> out;
  out.reserve(n);
  std::size_t next_ranked = 0;  // fallback cursor once the mass runs out
  std::vector<bool> taken(ranked.size(), false);
  for (std::size_t k = 0; k < n; ++k) {
    double remaining = 0.0;
    for (const double w : weights) remaining += w;
    if (remaining > 0.0) {
      const std::size_t pick = rng.weighted_pick(weights);
      out.push_back(ranked[pick].config);
      taken[pick] = true;
      weights[pick] = 0.0;
    } else {
      // Every positive-probability entry is drawn (a sparse posterior
      // can exhaust its mass long before n picks).  weighted_pick on an
      // all-zero vector would abort; take the untaken entries in ranked
      // order instead — deterministic, and still "most probable first".
      while (taken[next_ranked]) ++next_ranked;
      out.push_back(ranked[next_ranked].config);
      taken[next_ranked] = true;
    }
  }
  return out;
}

std::vector<platform::NamedConfig> CobaynModel::predict_named(
    const features::FeatureVector& fv, std::size_t top_n) const {
  const auto ranked = predict(fv, top_n);
  std::vector<platform::NamedConfig> out;
  out.reserve(ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i)
    out.push_back(platform::NamedConfig{"CF" + std::to_string(i + 1), ranked[i].config});
  return out;
}

}  // namespace socrates::cobayn
