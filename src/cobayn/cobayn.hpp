// COBAYN: compiler autotuning with Bayesian networks.
//
// Reimplementation of the COBAYN methodology (Ashouri et al., TACO
// 2016) at the granularity SOCRATES needs (kernel functions):
//   1. iterative compilation over a training corpus labels, for every
//      kernel, the flag configurations in the fastest decile;
//   2. a Bayesian network is learned over (discretized Milepost-style
//      features, flag settings) with K2/BIC structure search;
//   3. for a new kernel, the network is conditioned on the kernel's
//      static features and the posterior over the 128 flag
//      configurations is enumerated exactly; the top-N most probable
//      configurations become the reduced compiler design space
//      (the paper's CF1..CF4).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "bayes/discretizer.hpp"
#include "bayes/network.hpp"
#include "bayes/structure_learning.hpp"
#include "cobayn/corpus.hpp"
#include "features/features.hpp"
#include "platform/flags.hpp"
#include "platform/perf_model.hpp"
#include "support/task_pool.hpp"

namespace socrates::cobayn {

struct TrainOptions {
  std::size_t feature_bins = 3;       ///< discretization granularity
  double good_share = 0.10;           ///< top decile = "good" configurations
  std::size_t profile_threads = 16;   ///< thread count used while labelling
  bayes::K2Options k2;                ///< structure-search options
  /// Executor for the per-kernel labelling sweep (and, in
  /// cross_validate, the folds).  nullptr = TaskPool::shared().
  /// The result is identical at any job count.
  TaskPool* pool = nullptr;
};

/// A flag configuration with its posterior probability.
struct RankedConfig {
  platform::FlagConfig config;
  double probability = 0.0;
};

class CobaynModel {
 public:
  /// Learns the model from a corpus via iterative compilation on the
  /// platform model.  Throws when the corpus is too small to bin.
  static CobaynModel train(const std::vector<TrainingKernel>& corpus,
                           const platform::PerformanceModel& platform,
                           const TrainOptions& options = {});

  /// Posterior-ranked flag configurations for a kernel's features,
  /// most probable first; size = min(top_n, 128).
  std::vector<RankedConfig> predict(const features::FeatureVector& fv,
                                    std::size_t top_n) const;

  /// Like predict(), named CF1..CFn — the paper's reduced space.
  std::vector<platform::NamedConfig> predict_named(const features::FeatureVector& fv,
                                                   std::size_t top_n) const;

  /// Draws `n` *distinct* configurations from the posterior (the
  /// original COBAYN samples the network rather than enumerating it;
  /// useful when the prediction should explore, e.g. across repeated
  /// iterative-compilation rounds).  `n` larger than the config space
  /// is clamped to it; once every positive-probability entry has been
  /// drawn, the remaining picks fall back to ranked order instead of
  /// rejection-looping over a zero-mass posterior.
  std::vector<platform::FlagConfig> sample_configs(Rng& rng,
                                                   const features::FeatureVector& fv,
                                                   std::size_t n) const;

  /// The full conditioned posterior over the 2^(1+kFlagCount) flag
  /// combinations, indexed by combo encoding (opt-level bit most
  /// significant, then the flag bits).  This is the transferable form
  /// of the model's knowledge for a kernel: the server's knowledge pool
  /// stores it per donor and warm-starts similar kernels from it
  /// (docs/MODEL.md).  Throws a named ContractViolation on a degenerate
  /// model (zero training rows) or non-finite features; an underflowed
  /// all-zero posterior is clamped to uniform instead of propagating
  /// NaNs.  Counts `cobayn.prior_exports`.
  std::vector<double> export_posterior(const features::FeatureVector& fv) const;

  /// Weighted merge of two exported posteriors: renormalized
  /// `weight_a * a + weight_b * b`.  Weights must be non-negative with
  /// a positive sum; sizes must match.  Counts `cobayn.prior_merges`.
  static std::vector<double> merge_posterior(const std::vector<double>& a,
                                             double weight_a,
                                             const std::vector<double>& b,
                                             double weight_b);

  /// The `n` most probable configurations of an exported posterior,
  /// best first (ties broken by combo index, so the order is
  /// deterministic).  n is clamped to the posterior size.
  static std::vector<platform::FlagConfig> top_configs(
      const std::vector<double>& posterior, std::size_t n);

  /// The static-feature indices the model conditions on.
  static const std::vector<std::size_t>& model_feature_indices();

  const bayes::BayesNet& network() const;
  std::size_t training_rows() const { return training_rows_; }

  /// Writes the trained model (discretizer + network) in a stable text
  /// format with exact double round trip — the artifact-cache
  /// representation.
  void save(std::ostream& out) const;

  /// Parses a model written by save().  Throws ContractViolation on
  /// malformed input.
  static CobaynModel load(std::istream& in);

 private:
  CobaynModel() = default;

  std::vector<double> project_features(const features::FeatureVector& fv) const;
  std::vector<double> posterior_for(const features::FeatureVector& fv) const;

  bayes::Discretizer discretizer_;
  std::vector<bayes::BayesNet> net_;  ///< 0 or 1 element (late init)
  std::size_t training_rows_ = 0;
};

/// Extracts the feature vector of the first kernel_* function in a
/// source file (helper shared by training and the toolchain driver).
features::FeatureVector kernel_features_of_source(const std::string& source);

}  // namespace socrates::cobayn
