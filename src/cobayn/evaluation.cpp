#include "cobayn/evaluation.hpp"

#include <algorithm>

#include "observability/trace.hpp"
#include "support/error.hpp"
#include "support/statistics.hpp"

namespace socrates::cobayn {

CrossValidationSummary cross_validate(const std::vector<TrainingKernel>& corpus,
                                      const platform::PerformanceModel& platform,
                                      std::size_t top_n, const TrainOptions& options) {
  SOCRATES_REQUIRE_MSG(corpus.size() >= 5, "need at least 5 kernels for LOO-CV");
  SOCRATES_REQUIRE(top_n >= 1);

  const auto space = platform::cobayn_search_space();

  // Folds are independent: each writes only its own slot, so the
  // summary (assembled serially in fold order below) is identical at
  // any job count.  Nested parallelism inside train() inlines serially.
  std::vector<FoldResult> fold_results(corpus.size());
  TaskPool& executor = options.pool != nullptr ? *options.pool : TaskPool::shared();
  executor.parallel_for(corpus.size(), [&](std::size_t fold) {
    TraceSpan span("cobayn-fold", "cobayn");
    span.set_arg("fold", static_cast<std::int64_t>(fold));
    std::vector<TrainingKernel> training;
    training.reserve(corpus.size() - 1);
    for (std::size_t i = 0; i < corpus.size(); ++i)
      if (i != fold) training.push_back(corpus[i]);

    const CobaynModel model = CobaynModel::train(training, platform, options);

    const auto& held_out = corpus[fold];
    platform::Configuration rc;
    rc.threads = options.profile_threads;
    rc.binding = platform::BindingPolicy::kClose;
    const auto time_of = [&](const platform::FlagConfig& f) {
      rc.flags = f;
      return platform.evaluate(held_out.params, rc).exec_time_s;
    };

    FoldResult result;
    result.kernel_name = held_out.spec.name;
    result.oracle_time_s = 1e100;
    for (const auto& f : space)
      result.oracle_time_s = std::min(result.oracle_time_s, time_of(f));
    result.o2_time_s = time_of(platform::FlagConfig(platform::OptLevel::kO2));
    result.o3_time_s = time_of(platform::FlagConfig(platform::OptLevel::kO3));

    const auto fv = kernel_features_of_source(held_out.source);
    result.predicted_time_s = 1e100;
    for (const auto& p : model.predict(fv, top_n))
      result.predicted_time_s = std::min(result.predicted_time_s, time_of(p.config));

    fold_results[fold] = std::move(result);
  });

  CrossValidationSummary summary;
  std::vector<double> predicted_slowdowns;
  std::vector<double> o3_slowdowns;
  for (FoldResult& result : fold_results) {
    predicted_slowdowns.push_back(result.predicted_slowdown());
    o3_slowdowns.push_back(result.o3_slowdown());
    if (result.predicted_time_s <= result.o3_time_s * 1.001) ++summary.wins_vs_o3;
    summary.folds.push_back(std::move(result));
  }

  summary.geomean_predicted_slowdown = geometric_mean_of(predicted_slowdowns);
  summary.geomean_o3_slowdown = geometric_mean_of(o3_slowdowns);
  return summary;
}

}  // namespace socrates::cobayn
