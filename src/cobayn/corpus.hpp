// Synthetic training corpus for COBAYN.
//
// COBAYN is trained by iterative compilation over a corpus of kernels
// (the original paper uses cBench/Polybench applications).  Training on
// the 12 evaluation kernels themselves would leak the test set, so this
// generator synthesizes structurally diverse loop-nest kernels: each
// spec drives BOTH the generated C source (from which static features
// are extracted, like GCC-Milepost would) AND the derived
// KernelModelParams (how the platform model reacts to compiler flags).
// The mapping spec -> {source, params} is consistent, so the
// feature/flag correlations COBAYN learns are real properties of the
// modelled platform, not bookkeeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "platform/kernel_model.hpp"
#include "support/rng.hpp"

namespace socrates::cobayn {

/// Structural recipe of a synthetic kernel.
struct SyntheticSpec {
  std::string name;
  std::size_t loop_nests = 1;     ///< number of top-level loop nests (1..3)
  std::size_t nest_depth = 2;     ///< loops per nest (1..3)
  std::size_t body_ops = 4;       ///< arithmetic statements per innermost body
  double fp_share = 1.0;          ///< fraction of float (vs int) arithmetic
  bool has_branch = false;        ///< data-dependent if in the body
  bool has_call = false;          ///< helper-function call in the body
  bool is_reduction = false;      ///< accumulates into a scalar
  bool memory_heavy = false;      ///< streams several arrays per iteration
};

/// One training kernel: source (front-end input) + model parameters
/// (platform behaviour).
struct TrainingKernel {
  SyntheticSpec spec;
  std::string source;                 ///< a full C file with one kernel_* fn
  platform::KernelModelParams params;
};

/// Generates the C source of a spec.  The kernel function is named
/// "kernel_<spec.name>".
std::string generate_source(const SyntheticSpec& spec);

/// Derives platform-model parameters from a spec (with mild jitter from
/// `rng` so the corpus is not perfectly deterministic in the features).
platform::KernelModelParams derive_model_params(const SyntheticSpec& spec, Rng& rng);

/// Samples a corpus of `size` kernels.
std::vector<TrainingKernel> make_corpus(std::size_t size, std::uint64_t seed);

}  // namespace socrates::cobayn
