#include "cobayn/corpus.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace socrates::cobayn {

namespace {

/// Emits one loop nest writing into array `out`, reading `in`.
void emit_nest(std::ostringstream& os, const SyntheticSpec& spec, std::size_t nest_id) {
  const char* ivs[] = {"i", "j", "k"};
  const std::size_t depth = std::min<std::size_t>(spec.nest_depth, 3);

  os << "  #pragma omp parallel for\n";
  for (std::size_t d = 0; d < depth; ++d) {
    os << repeated("  ", d + 1) << "for (" << ivs[d] << " = 0; " << ivs[d]
       << " < n; " << ivs[d] << "++)\n";
  }
  const std::string indent = repeated("  ", depth + 1);
  os << repeated("  ", depth) << "{\n";

  const std::string idx = depth >= 2 ? "i * n + j" : "i";
  const char* type_suffix = spec.fp_share >= 0.5 ? "" : "I";

  for (std::size_t op = 0; op < spec.body_ops; ++op) {
    std::ostringstream rhs;
    if (spec.memory_heavy) {
      rhs << "A" << type_suffix << "[" << idx << "] + B" << type_suffix << "[" << idx
          << "] * C" << type_suffix << "[" << idx << "]";
    } else {
      rhs << "A" << type_suffix << "[" << idx << "] * " << (op + 2) << " + " << nest_id;
    }
    if (spec.has_call) rhs << " + helper(A" << type_suffix << "[" << idx << "])";

    if (spec.has_branch && op == 0) {
      os << indent << "if (A" << type_suffix << "[" << idx << "] > " << (nest_id + 1)
         << ")\n";
      os << indent << "  B" << type_suffix << "[" << idx << "] = " << rhs.str() << ";\n";
      os << indent << "else\n";
      os << indent << "  B" << type_suffix << "[" << idx << "] = A" << type_suffix << "["
         << idx << "];\n";
      continue;
    }
    if (spec.is_reduction) {
      os << indent << "acc" << type_suffix << " += " << rhs.str() << ";\n";
    } else {
      os << indent << "B" << type_suffix << "[" << idx << "] = " << rhs.str() << ";\n";
    }
  }
  os << repeated("  ", depth) << "}\n";
}

}  // namespace

std::string generate_source(const SyntheticSpec& spec) {
  SOCRATES_REQUIRE(spec.loop_nests >= 1 && spec.loop_nests <= 3);
  SOCRATES_REQUIRE(spec.nest_depth >= 1 && spec.nest_depth <= 3);
  SOCRATES_REQUIRE(spec.body_ops >= 1);

  const bool fp = spec.fp_share >= 0.5;
  const char* elem = fp ? "double" : "int";
  const char* suffix = fp ? "" : "I";

  std::ostringstream os;
  os << "#include <stdio.h>\n";
  os << "#define N 1000\n\n";
  os << elem << " A" << suffix << "[N * N];\n";
  os << elem << " B" << suffix << "[N * N];\n";
  if (spec.memory_heavy) os << elem << " C" << suffix << "[N * N];\n";
  os << "\n";

  if (spec.has_call) {
    os << elem << " helper(" << elem << " x)\n{\n  return x * 3 + 1;\n}\n\n";
  }

  os << "void kernel_" << spec.name << "(int n)\n{\n";
  os << "  int i;\n";
  if (spec.nest_depth >= 2) os << "  int j;\n";
  if (spec.nest_depth >= 3) os << "  int k;\n";
  if (spec.is_reduction) os << "  " << elem << " acc" << suffix << " = 0;\n";
  for (std::size_t nest = 0; nest < spec.loop_nests; ++nest) emit_nest(os, spec, nest);
  if (spec.is_reduction) os << "  B" << suffix << "[0] = acc" << suffix << ";\n";
  os << "}\n\n";

  os << "int main(int argc, char **argv)\n{\n";
  os << "  kernel_" << spec.name << "(N);\n";
  os << "  return 0;\n}\n";
  return os.str();
}

platform::KernelModelParams derive_model_params(const SyntheticSpec& spec, Rng& rng) {
  platform::KernelModelParams p;
  p.name = spec.name;
  p.seq_work_s = 1.0;  // irrelevant for flag-quality labels (ratios only)
  p.parallel_fraction = 0.95;

  const double body = static_cast<double>(spec.body_ops);
  const double depth = static_cast<double>(spec.nest_depth);

  p.mem_intensity = std::clamp(
      (spec.memory_heavy ? 0.65 : 0.30) - 0.03 * body + rng.uniform(-0.05, 0.05), 0.05,
      0.9);
  // Small bodies in deep regular nests unroll well.
  p.unroll_affinity =
      std::clamp(0.9 - 0.08 * body + 0.1 * depth - (spec.has_branch ? 0.25 : 0.0) +
                     rng.uniform(-0.05, 0.05),
                 0.05, 0.95);
  // FP streaming code without branches vectorizes.
  p.vectorization_affinity =
      std::clamp(spec.fp_share * 0.8 - (spec.has_branch ? 0.35 : 0.0) -
                     (spec.has_call ? 0.2 : 0.0) + 0.1 * depth + rng.uniform(-0.05, 0.05),
                 0.05, 0.95);
  p.fp_ratio = std::clamp(spec.fp_share + rng.uniform(-0.05, 0.05), 0.0, 1.0);
  p.branchiness =
      std::clamp((spec.has_branch ? 0.55 : 0.05) + rng.uniform(-0.03, 0.03), 0.0, 1.0);
  p.call_density =
      std::clamp((spec.has_call ? 0.5 : 0.03) + rng.uniform(-0.03, 0.03), 0.0, 1.0);
  p.icache_sensitivity =
      std::clamp(0.05 + 0.05 * body * static_cast<double>(spec.loop_nests) +
                     rng.uniform(-0.05, 0.05),
                 0.05, 0.9);
  p.ivopt_sensitivity = std::clamp(0.25 + 0.15 * depth + rng.uniform(-0.05, 0.05), 0.05, 0.9);
  p.loop_opt_sensitivity = std::clamp(
      0.55 - (spec.memory_heavy ? 0.2 : 0.0) + rng.uniform(-0.1, 0.1), 0.05, 0.9);
  return p;
}

std::vector<TrainingKernel> make_corpus(std::size_t size, std::uint64_t seed) {
  SOCRATES_REQUIRE(size >= 1);
  Rng rng(seed);
  std::vector<TrainingKernel> corpus;
  corpus.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    SyntheticSpec spec;
    spec.name = "synth" + std::to_string(i);
    spec.loop_nests = static_cast<std::size_t>(rng.uniform_int(1, 3));
    spec.nest_depth = static_cast<std::size_t>(rng.uniform_int(1, 3));
    spec.body_ops = static_cast<std::size_t>(rng.uniform_int(1, 8));
    spec.fp_share = rng.uniform() < 0.7 ? 1.0 : 0.0;
    spec.has_branch = rng.uniform() < 0.35;
    spec.has_call = rng.uniform() < 0.3;
    spec.is_reduction = rng.uniform() < 0.25;
    spec.memory_heavy = rng.uniform() < 0.4;

    TrainingKernel k;
    k.source = generate_source(spec);
    k.params = derive_model_params(spec, rng);
    k.spec = std::move(spec);
    corpus.push_back(std::move(k));
  }
  return corpus;
}

}  // namespace socrates::cobayn
