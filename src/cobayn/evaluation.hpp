// COBAYN model evaluation: leave-one-out cross-validation.
//
// The COBAYN paper evaluates its predictions by training on N-1
// applications and predicting flags for the held-out one, reporting the
// speedup of the predicted configurations against baselines.  This
// harness reproduces that protocol on the synthetic corpus: for every
// fold it trains a model without the fold's kernel, predicts top-N
// configurations, and scores them on the platform model against the
// 128-point oracle, -O2 and -O3.
#pragma once

#include <cstddef>
#include <vector>

#include "cobayn/cobayn.hpp"
#include "cobayn/corpus.hpp"
#include "platform/perf_model.hpp"

namespace socrates::cobayn {

/// Per-fold result of the cross-validation.
struct FoldResult {
  std::string kernel_name;
  double oracle_time_s = 0.0;      ///< best of all 128 configurations
  double predicted_time_s = 0.0;   ///< best of the top-N predictions
  double o2_time_s = 0.0;
  double o3_time_s = 0.0;

  double predicted_slowdown() const { return predicted_time_s / oracle_time_s; }
  double o3_slowdown() const { return o3_time_s / oracle_time_s; }
};

struct CrossValidationSummary {
  std::vector<FoldResult> folds;
  double geomean_predicted_slowdown = 0.0;
  double geomean_o3_slowdown = 0.0;
  /// Folds where the predictions beat (or tie within 0.1%) -O3.
  std::size_t wins_vs_o3 = 0;
};

/// Runs leave-one-out CV over `corpus` with `top_n` predictions per
/// fold.  `profile_threads` matches the labelling configuration.
CrossValidationSummary cross_validate(const std::vector<TrainingKernel>& corpus,
                                      const platform::PerformanceModel& platform,
                                      std::size_t top_n,
                                      const TrainOptions& options = {});

}  // namespace socrates::cobayn
